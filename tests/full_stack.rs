//! Workspace-level integration tests: the complete RobustStore stack
//! (consensus → middleware → bookstore → servers/proxy/clients) under
//! the paper's faultloads, on scaled-down schedules.

use robuststore_repro::cluster::{run_experiment, ExperimentConfig};
use robuststore_repro::faultload::Faultload;
use robuststore_repro::tpcw::{Profile, Schedule};

fn quick(replicas: usize, profile: Profile) -> ExperimentConfig {
    let mut config = ExperimentConfig::quick(replicas, profile);
    config.rbes = 300;
    config.client_nodes = 3;
    config.schedule = Schedule::quick(90);
    config
}

#[test]
fn runs_are_deterministic_given_seed() {
    let config = quick(5, Profile::Shopping);
    let a = run_experiment(&config);
    let b = run_experiment(&config);
    assert_eq!(a.recorder.wips_series(), b.recorder.wips_series());
    assert_eq!(a.recorder.total_ok(), b.recorder.total_ok());
    assert_eq!(a.recorder.total_errors(), b.recorder.total_errors());
}

#[test]
fn different_seeds_differ() {
    let mut config = quick(5, Profile::Shopping);
    let a = run_experiment(&config);
    config.seed = 43;
    let b = run_experiment(&config);
    assert_ne!(a.recorder.wips_series(), b.recorder.wips_series());
}

#[test]
fn two_overlapped_crashes_recover_autonomously() {
    let mut config = quick(5, Profile::Shopping);
    config.faultload = Faultload::double_crash().scaled(1, 4); // 60 s, 67.5 s
    let report = run_experiment(&config);
    assert_eq!(report.spans.len(), 2);
    for span in &report.spans {
        assert!(
            span.recovered_at.is_some(),
            "recovery incomplete: {:?}",
            report.spans
        );
    }
    let d = &report.dependability;
    assert_eq!(d.autonomy, 1.0, "no operator involved");
    assert!(d.accuracy_percent > 99.5, "accuracy {}", d.accuracy_percent);
    assert!(report.awips > 200.0, "service continued: {}", report.awips);
    // Replicas converge: every surviving server reaches a close decided
    // watermark (small in-flight spread allowed).
    let decided: Vec<u64> = report
        .server_status
        .iter()
        .flatten()
        .map(|s| s.paxos.decided_upto.0)
        .collect();
    assert_eq!(decided.len(), 5);
    let min = decided.iter().min().unwrap();
    let max = decided.iter().max().unwrap();
    assert!(max - min < 50, "decided spread {decided:?}");
}

#[test]
fn delayed_recovery_counts_operator_intervention() {
    let mut config = quick(5, Profile::Browsing);
    // Crash both at 60 s; manual restart of the second at 97.5 s.
    config.faultload = Faultload::double_crash_delayed().scaled(1, 4);
    let report = run_experiment(&config);
    let d = &report.dependability;
    assert_eq!(d.autonomy, 0.5, "one of two recoveries was manual");
    assert_eq!(report.spans.len(), 2);
    let manual = report.spans.iter().find(|s| s.manual).expect("manual span");
    assert_eq!(manual.restart_at, 97_500_000);
    assert!(manual.recovered_at.is_some(), "manual recovery completes");
}

#[test]
fn classic_only_baseline_serves_the_workload() {
    let mut config = quick(5, Profile::Shopping);
    config.classic_only = true;
    let report = run_experiment(&config);
    assert!(report.awips > 200.0, "classic-only AWIPS {}", report.awips);
    assert!(report.dependability.accuracy_percent > 99.5);
    for status in report.server_status.iter().flatten() {
        assert!(
            !status.paxos.ballot.is_fast(),
            "classic-only run used a fast ballot"
        );
    }
}

#[test]
fn ordering_profile_stresses_total_order() {
    let config = quick(5, Profile::Ordering);
    let report = run_experiment(&config);
    // Half the interactions are updates; all replicas apply them.
    let applied: Vec<u64> = report
        .server_status
        .iter()
        .flatten()
        .map(|s| s.applied)
        .collect();
    assert!(applied.iter().all(|a| *a > 1_000), "applied {applied:?}");
    let min = applied.iter().min().unwrap();
    let max = applied.iter().max().unwrap();
    assert!(max - min < 100, "apply divergence {applied:?}");
    assert!(report.dependability.accuracy_percent > 99.0);
}

#[test]
fn crash_of_majority_blocks_writes_until_recovery() {
    // 3 of 5 replicas crash at 50 s and recover autonomously: the
    // write path blocks below a majority, then resumes; reads keep
    // flowing throughout (served from local state).
    let mut config = quick(5, Profile::Shopping);
    config.schedule = Schedule::quick(120);
    config.faultload = Faultload {
        events: (0..3)
            .map(|v| faultload::FaultEvent {
                at_us: 50_000_000,
                victim: v,
                recovery: faultload::RecoveryKind::Autonomous,
            })
            .collect(),
        ..Faultload::default()
    };
    let report = run_experiment(&config);
    for span in &report.spans {
        assert!(
            span.recovered_at.is_some(),
            "all three recover: {:?}",
            report.spans
        );
    }
    // Service continued (reads at minimum) and ended healthy.
    assert!(report.awips > 100.0, "AWIPS {}", report.awips);
    let decided: Vec<u64> = report
        .server_status
        .iter()
        .flatten()
        .map(|s| s.paxos.decided_upto.0)
        .collect();
    let min = decided.iter().min().unwrap();
    let max = decided.iter().max().unwrap();
    assert!(max - min < 50, "decided spread {decided:?}");
}

#[test]
fn network_partition_starves_minority_then_heals() {
    // Beyond the paper's crash faultloads: isolate two of five replicas
    // for 30 s. The majority side keeps serving (proxy requests to the
    // isolated servers still reach them — only replica-to-replica links
    // are cut — but their writes stall), and after healing everything
    // converges with no human intervention.
    let mut config = quick(5, Profile::Shopping);
    config.schedule = Schedule::quick(120);
    config.faultload = Faultload::partition(50_000_000, 80_000_000, vec![0, 1]);
    let report = run_experiment(&config);
    assert!(report.awips > 150.0, "AWIPS {}", report.awips);
    assert_eq!(report.dependability.autonomy, 1.0);
    let decided: Vec<u64> = report
        .server_status
        .iter()
        .flatten()
        .map(|s| s.paxos.decided_upto.0)
        .collect();
    assert_eq!(decided.len(), 5, "nobody crashed");
    let min = decided.iter().min().unwrap();
    let max = decided.iter().max().unwrap();
    assert!(max - min < 50, "post-heal convergence: {decided:?}");
}
