//! Property tests: consensus agreement holds for arbitrary seeds under
//! adversarially lossy, duplicating and reordering networks.
//!
//! `run_experiment` threads every server effect through the invariant
//! auditor and asserts zero violations before returning, so each case
//! here is a full agreement/durability/mode-rule check of a complete
//! TPC-W run — the properties fail loudly if any seed finds a hole.

use proptest::prelude::*;
use robuststore_repro::cluster::{run_experiment, ExperimentConfig};
use robuststore_repro::faultload::{Faultload, LinkFaultSpec};
use robuststore_repro::tpcw::Profile;

fn lossy_config(seed: u64, loss: f64, duplicate: f64, reorder: f64) -> ExperimentConfig {
    let mut config = ExperimentConfig::quick(5, Profile::Shopping);
    config.seed = seed;
    config.faultload = Faultload::lossy_links(
        0,
        config.schedule.total_us(),
        LinkFaultSpec {
            loss,
            duplicate,
            reorder,
            reorder_delay_us: 5_000,
        },
    );
    config
}

proptest! {
    // Each case is a whole simulated run (~1–2 s); keep the count small.
    #![proptest_config(ProptestConfig::with_cases(4))]

    #[test]
    fn agreement_holds_under_random_seeds_and_lossy_links(
        seed in 0u64..10_000,
        loss_bp in 0u32..500,        // basis points: up to 5% loss
        duplicate_bp in 0u32..300,   // up to 3% duplication
        reorder_bp in 0u32..2_500,   // up to 25% reordering
    ) {
        let report = run_experiment(&lossy_config(
            seed,
            f64::from(loss_bp) / 10_000.0,
            f64::from(duplicate_bp) / 10_000.0,
            f64::from(reorder_bp) / 10_000.0,
        ));
        // The auditor ran (and asserted zero violations internally).
        prop_assert!(report.audit.checks > 1_000);
        prop_assert_eq!(report.audit.total_violations, 0);
    }
}
