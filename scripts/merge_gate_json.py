#!/usr/bin/env python3
"""Merges several ``exp_* --gate --json`` reports into one document.

Usage: merge_gate_json.py OUT.json IN1.json IN2.json [...]

The output keeps the inputs' runs in argument order under an
``experiment`` name that joins the inputs' names with ``+``. Run labels
must be unique across inputs — a duplicate is an error, because the
perf gate keys on labels. This is how the committed
``BENCH_baseline.json`` is regenerated (see ``perf_gate.py``'s
docstring for the full recipe).

Stdlib only; no third-party imports.
"""

import json
import sys


def load(path):
    try:
        with open(path) as f:
            doc = json.load(f)
    except OSError as e:
        sys.exit(f"merge: cannot read {path}: {e.strerror or e}")
    except json.JSONDecodeError as e:
        sys.exit(f"merge: {path} is not valid JSON: {e}")
    if not isinstance(doc, dict) or not isinstance(doc.get("runs"), list):
        sys.exit(f"merge: {path} lacks a top-level \"runs\" array")
    return doc


def main(argv):
    if len(argv) < 4:
        sys.exit("usage: merge_gate_json.py OUT.json IN1.json IN2.json [...]")
    out_path, in_paths = argv[1], argv[2:]
    runs, names, modes, seen = [], [], set(), set()
    for path in in_paths:
        doc = load(path)
        names.append(str(doc.get("experiment", path)))
        modes.add(str(doc.get("mode", "?")))
        for run in doc["runs"]:
            label = run.get("label")
            if label in seen:
                sys.exit(f"merge: run label {label!r} appears twice")
            seen.add(label)
            runs.append(run)
    if len(modes) > 1:
        sys.exit(f"merge: inputs mix modes {sorted(modes)}")
    merged = {
        "experiment": "+".join(names),
        "mode": modes.pop(),
        "runs": runs,
    }
    try:
        with open(out_path, "w") as f:
            json.dump(merged, f, indent=2)
            f.write("\n")
    except OSError as e:
        sys.exit(f"merge: cannot write {out_path}: {e.strerror or e}")
    print(f"merged {len(runs)} runs from {len(in_paths)} files into {out_path}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
