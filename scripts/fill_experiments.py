#!/usr/bin/env python3
"""Splice exp_all output into EXPERIMENTS.md placeholders."""
import re, sys

results = open('exp_results_quick.txt').read()

def section(start, end=None):
    i = results.find(start)
    assert i >= 0, f"missing {start!r}"
    j = results.find(end, i) if end else len(results)
    if j < 0: j = len(results)
    return results[i:j].strip()

fig3 = section('Figure 3 (browsing)', '== Figure 4')
fig4 = section('Figure 4 (browsing)', '== One crash')
one  = section('5R browsing', '== Recovery times')
fig6 = section('Figure 6 —', '== Two overlapped')
two  = section('5R browsing', '== Delayed recovery')
# find the second '5R browsing' (two crashes section)
i1 = results.find('== Two overlapped')
two = results[results.find('5R browsing', i1):results.find('== Delayed recovery')].strip()
i2 = results.find('== Delayed recovery')
delayed = results[results.find('5R browsing', i2):].strip()

md = open('EXPERIMENTS.md').read()
def put(tag, text):
    global md
    md = md.replace(f'<!-- {tag} -->', '```text\n' + text + '\n```')
put('FIG3', fig3)
put('FIG4', fig4)
put('ONE_CRASH', one)
put('FIG6', fig6)
put('TWO_CRASHES', two)
put('DELAYED', delayed)
open('EXPERIMENTS.md','w').write(md)
print("EXPERIMENTS.md filled")
