#!/usr/bin/env python3
"""CI perf-regression gate for the consensus hot path.

Usage: perf_gate.py BASELINE.json CURRENT.json [CURRENT2.json ...]

The baseline is the committed union of the gate points (``exp_batching
--gate --json`` and ``exp_reconfig --gate --json``, merged by
``scripts/merge_gate_json.py``); the current side may be one merged
file or the per-experiment files listed separately — their run arrays
are merged, and a label appearing twice is an error. The gate fails
(exit 1) when any labelled point's committed-updates/sec drops more than
REGRESSION_TOLERANCE below the committed baseline, when the batch-8 over
batch-1 speedup collapses below MIN_SPEEDUP, when a point that carries
an availability decomposition ramps back to 95% of baseline WIPS more
than RAMP_TOLERANCE slower than the committed baseline, when a
membership change stops completing or completes more than
RECONFIG_SLACK_US later than the committed baseline (or its own
post-change WIPS ramp regresses past RAMP_TOLERANCE), or when the
always-on consensus auditor reported any violation. The simulator is deterministic,
so on unchanged code the current run reproduces the baseline bit-for-bit;
a tripped gate always points at a real behavioural change.

Points that carry host-timing fields (``events_per_sec``,
``wall_clock_s``, emitted by ``push_timed``) additionally gate raw
engine throughput — but unlike everything above those numbers are
machine-dependent, so the tolerances are deliberately loose
(EVENTS_TOLERANCE / WALL_TOLERANCE): they catch an order-of-magnitude
hot-path regression (say, the event queue degenerating to a linear
scan), not CI-runner noise. Baselines predating those fields skip the
check. After an intentional recalibration, regenerate the baseline
with::

    cargo run --release -p bench --bin exp_batching -- --gate --json /tmp/batching.json
    cargo run --release -p bench --bin exp_reconfig -- --gate --json /tmp/reconfig.json
    cargo run --release -p bench --bin exp_reconfig -- --scenarios crash --quiet --trace /tmp/causal.jsonl
    cargo run --release -p bench --bin exp_causal -- /tmp/causal.jsonl --gate --quiet --json /tmp/causal.json
    cargo run --release -p bench --bin exp_monitor -- --gate --json /tmp/monitor.json
    scripts/merge_gate_json.py BENCH_baseline.json /tmp/batching.json /tmp/reconfig.json /tmp/causal.json /tmp/monitor.json

Points produced by ``exp_causal --json`` carry no throughput numbers;
instead their ``causal_quorum_decide_mean_us`` (mean flush→decide
latency over every reconstructed critical path) gates the distributed
consensus round-trip, with ``causal_paths`` and ``blame_disk_fsync_us``
asserting the causal DAG keeps reconstructing and the synchronous log
write stays visible on the critical path.

Points produced by ``exp_monitor --gate --json`` pin the online SLO
monitor: every ground-truth incident the baseline detected must stay
detected (``monitor_missed_incidents`` must stay 0), monitored labels
must stay free of false positives (``monitor_false_positives`` must
stay 0 — the fault-free label exists for exactly this), and the mean
``alert_detection_latency_us`` may not drift more than
MONITOR_TOLERANCE over the committed baseline.

Stdlib only; no third-party imports.
"""

import json
import sys

# A current point may be up to 15% below baseline before the gate trips.
REGRESSION_TOLERANCE = 0.15
# Group commit must keep paying for itself: batch=8 throughput must stay
# at least this multiple of batch=1 on the ordering mix.
MIN_SPEEDUP = 1.8
# Post-crash ramp back to 95% of baseline WIPS may be up to 15% slower
# than the committed baseline before the gate trips (higher is worse).
RAMP_TOLERANCE = 0.15
# A membership change may complete this much later than the committed
# baseline (absolute, µs) before the gate trips. Absolute, not
# relative: completion is quantised by the driver's epoch poll, so a
# healthy baseline is a few hundred ms and a ratio would be noise.
RECONFIG_SLACK_US = 2_000_000
# Mean quorum-decide (flush→decide) latency from the causal profile may
# rise this much over baseline before the gate trips. Simulated time,
# deterministic — the slack absorbs intentional wire-format drift, not
# host noise.
CAUSAL_TOLERANCE = 0.15
# Mean alert detection latency from the online monitor may rise this
# much over baseline before the gate trips. Simulated time and
# quantised by the scrape interval, so a real drift here means the
# scrape/debounce pipeline changed behaviour, not that CI was slow.
MONITOR_TOLERANCE = 0.15
# Host-timing tolerances: engine events/sec may fall to half the
# baseline, wall clock may stretch to 3x, before the gate trips. Loose
# on purpose — CI runners vary; these exist to catch the hot path
# falling off a cliff, not a noisy neighbour.
EVENTS_TOLERANCE = 0.5
WALL_TOLERANCE = 3.0


def load_runs(path):
    try:
        with open(path) as f:
            doc = json.load(f)
    except OSError as e:
        sys.exit(f"perf gate: cannot read {path}: {e.strerror or e}")
    except json.JSONDecodeError as e:
        sys.exit(f"perf gate: {path} is not valid JSON: {e}")
    if not isinstance(doc, dict) or not isinstance(doc.get("runs"), list):
        sys.exit(f"perf gate: {path} lacks a top-level \"runs\" array")
    try:
        runs = {run["label"]: run for run in doc["runs"]}
    except (KeyError, TypeError):
        sys.exit(f"perf gate: {path} has a run without a \"label\"")
    if not runs:
        sys.exit(f"perf gate: {path} contains no runs")
    return runs


def field(run, key, path):
    """A run's numeric field, or a clean exit naming what's missing."""
    value = run.get(key)
    if not isinstance(value, (int, float)):
        label = run.get("label", "?")
        sys.exit(f"perf gate: {path}: run {label!r} lacks numeric {key!r}")
    return value


def merge_runs(paths):
    """Loads and merges several gate reports into one label→run map."""
    merged = {}
    for path in paths:
        for label, run in load_runs(path).items():
            if label in merged:
                sys.exit(f"perf gate: run label {label!r} appears twice "
                         f"across {', '.join(paths)}")
            merged[label] = run
    return merged


def main(argv):
    if len(argv) < 3:
        sys.exit("usage: perf_gate.py BASELINE.json CURRENT.json [CURRENT2.json ...]")
    baseline = load_runs(argv[1])
    current = merge_runs(argv[2:])
    current_name = ", ".join(argv[2:])

    failures = []
    print(f"{'point':<24} {'baseline':>10} {'current':>10} {'ratio':>7}")
    for label, base in sorted(baseline.items()):
        cur = current.get(label)
        if cur is None:
            failures.append(f"{label}: missing from current run")
            continue
        # Throughput: skipped for points that never carried it (the
        # causal-profile points gate latency, not updates/sec).
        base_ups = base.get("updates_per_sec")
        if isinstance(base_ups, (int, float)):
            cur_ups = field(cur, "updates_per_sec", current_name)
            ratio = cur_ups / base_ups if base_ups else float("inf")
            print(f"{label:<24} {base_ups:>10.1f} {cur_ups:>10.1f} {ratio:>6.2f}x")
            if cur_ups < base_ups * (1.0 - REGRESSION_TOLERANCE):
                failures.append(
                    f"{label}: {cur_ups:.1f} upd/s is more than "
                    f"{REGRESSION_TOLERANCE:.0%} below baseline {base_ups:.1f}"
                )
        if cur.get("audit_violations", 0) != 0:
            failures.append(f"{label}: {cur['audit_violations']} audit violations")

        # Causal blame: a baseline that profiled the distributed quorum
        # round-trip pins it. The causal DAG must keep reconstructing
        # paths, the synchronous log write must stay on the critical
        # path, and the mean flush→decide latency must hold.
        base_qd = base.get("causal_quorum_decide_mean_us")
        if isinstance(base_qd, (int, float)) and base_qd > 0:
            cur_qd = cur.get("causal_quorum_decide_mean_us")
            if not isinstance(cur_qd, (int, float)) or cur_qd <= 0:
                failures.append(
                    f"{label}: baseline has causal_quorum_decide_mean_us "
                    f"but current run reports {cur_qd!r}"
                )
                continue
            print(
                f"{label + ' qdecide(ms)':<24} {base_qd / 1e3:>10.2f} "
                f"{cur_qd / 1e3:>10.2f} {cur_qd / base_qd:>6.2f}x"
            )
            if cur_qd > base_qd * (1.0 + CAUSAL_TOLERANCE):
                failures.append(
                    f"{label}: mean quorum decide {cur_qd / 1e3:.2f}ms is "
                    f"more than {CAUSAL_TOLERANCE:.0%} over baseline "
                    f"{base_qd / 1e3:.2f}ms"
                )
            if cur.get("causal_paths", 0) <= 0:
                failures.append(f"{label}: no causal paths reconstructed")
            if cur.get("blame_disk_fsync_us", 0) <= 0:
                failures.append(
                    f"{label}: zero disk-fsync blame — the synchronous "
                    f"log write left the critical path"
                )

        # Host timing: only when the committed baseline carries the
        # fields (older baselines predate them), and loosely — these
        # are host-dependent, unlike every other gated number.
        base_eps = base.get("events_per_sec")
        if isinstance(base_eps, (int, float)) and base_eps > 0:
            cur_eps = field(cur, "events_per_sec", current_name)
            eps_ratio = cur_eps / base_eps
            print(
                f"{label + ' events/s':<24} {base_eps:>10.0f} "
                f"{cur_eps:>10.0f} {eps_ratio:>6.2f}x"
            )
            if cur_eps < base_eps * (1.0 - EVENTS_TOLERANCE):
                failures.append(
                    f"{label}: engine throughput {cur_eps:.0f} events/s is "
                    f"more than {EVENTS_TOLERANCE:.0%} below baseline "
                    f"{base_eps:.0f}"
                )
        base_wall = base.get("wall_clock_s")
        if isinstance(base_wall, (int, float)) and base_wall > 0:
            cur_wall = field(cur, "wall_clock_s", current_name)
            if cur_wall > base_wall * WALL_TOLERANCE:
                failures.append(
                    f"{label}: wall clock {cur_wall:.1f}s is more than "
                    f"{WALL_TOLERANCE:.1f}x baseline {base_wall:.1f}s"
                )

        # Availability: a baseline that measured a post-crash ramp pins
        # the recovery path too. null (never ramped back) never gates.
        base_ramp = base.get("ramp_to_95pct_us")
        if isinstance(base_ramp, (int, float)) and base_ramp > 0:
            cur_ramp = cur.get("ramp_to_95pct_us")
            if not isinstance(cur_ramp, (int, float)):
                failures.append(
                    f"{label}: baseline has ramp_to_95pct_us but current "
                    f"run reports {cur_ramp!r}"
                )
                continue
            ramp_ratio = cur_ramp / base_ramp
            print(
                f"{label + ' ramp95(s)':<24} {base_ramp / 1e6:>10.1f} "
                f"{cur_ramp / 1e6:>10.1f} {ramp_ratio:>6.2f}x"
            )
            if cur_ramp > base_ramp * (1.0 + RAMP_TOLERANCE):
                failures.append(
                    f"{label}: ramp to 95% of baseline WIPS took "
                    f"{cur_ramp / 1e6:.1f}s, more than {RAMP_TOLERANCE:.0%} "
                    f"over baseline {base_ramp / 1e6:.1f}s"
                )

        # Reconfiguration: a baseline whose membership change completed
        # pins the epoch-switch path — it must keep completing, must
        # not complete more than RECONFIG_SLACK_US later, and its
        # post-change WIPS ramp (measured from the operator's
        # submission) must not regress past RAMP_TOLERANCE.
        if base.get("reconfig_completed") == 1:
            if cur.get("reconfig_completed") != 1:
                failures.append(
                    f"{label}: baseline's membership change completed but "
                    f"the current run's did not"
                )
                continue
            base_done = field(base, "reconfig_complete_us", argv[1])
            cur_done = field(cur, "reconfig_complete_us", current_name)
            print(
                f"{label + ' reconfig(s)':<24} {base_done / 1e6:>10.1f} "
                f"{cur_done / 1e6:>10.1f}"
            )
            if cur_done > base_done + RECONFIG_SLACK_US:
                failures.append(
                    f"{label}: membership change took {cur_done / 1e6:.1f}s, "
                    f"more than {RECONFIG_SLACK_US / 1e6:.0f}s over baseline "
                    f"{base_done / 1e6:.1f}s"
                )
        # Online monitor: a baseline produced by a monitored faultload
        # pins the alerting pipeline. Detection must stay complete,
        # silence must stay silent, and latency must hold.
        base_mi = base.get("monitor_incidents")
        if isinstance(base_mi, (int, float)):
            cur_missed = field(cur, "monitor_missed_incidents", current_name)
            if cur_missed != 0:
                failures.append(
                    f"{label}: monitor missed {cur_missed:.0f} of "
                    f"{field(cur, 'monitor_incidents', current_name):.0f} "
                    f"ground-truth incidents"
                )
            cur_fp = field(cur, "monitor_false_positives", current_name)
            if cur_fp != 0:
                failures.append(
                    f"{label}: monitor fired {cur_fp:.0f} false positive(s)"
                )
            base_dl = base.get("alert_detection_latency_us")
            if isinstance(base_dl, (int, float)) and base_dl > 0:
                cur_dl = field(cur, "alert_detection_latency_us", current_name)
                print(
                    f"{label + ' detect(s)':<24} {base_dl / 1e6:>10.1f} "
                    f"{cur_dl / 1e6:>10.1f} {cur_dl / base_dl:>6.2f}x"
                )
                if cur_dl > base_dl * (1.0 + MONITOR_TOLERANCE):
                    failures.append(
                        f"{label}: mean alert detection took "
                        f"{cur_dl / 1e6:.1f}s, more than "
                        f"{MONITOR_TOLERANCE:.0%} over baseline "
                        f"{base_dl / 1e6:.1f}s"
                    )

        base_rramp = base.get("reconfig_ramp_to_95pct_us")
        if isinstance(base_rramp, (int, float)) and base_rramp > 0:
            cur_rramp = cur.get("reconfig_ramp_to_95pct_us")
            if not isinstance(cur_rramp, (int, float)) or cur_rramp <= 0:
                failures.append(
                    f"{label}: baseline has reconfig_ramp_to_95pct_us but "
                    f"current run reports {cur_rramp!r}"
                )
                continue
            print(
                f"{label + ' rc-ramp95(s)':<24} {base_rramp / 1e6:>10.1f} "
                f"{cur_rramp / 1e6:>10.1f} {cur_rramp / base_rramp:>6.2f}x"
            )
            if cur_rramp > base_rramp * (1.0 + RAMP_TOLERANCE):
                failures.append(
                    f"{label}: post-reconfig ramp to 95% of baseline WIPS "
                    f"took {cur_rramp / 1e6:.1f}s, more than "
                    f"{RAMP_TOLERANCE:.0%} over baseline {base_rramp / 1e6:.1f}s"
                )

    by_batch = {run.get("batch"): run for run in current.values()}
    if 1 in by_batch and 8 in by_batch:
        ups1 = field(by_batch[1], "updates_per_sec", current_name)
        ups8 = field(by_batch[8], "updates_per_sec", current_name)
        speedup = ups8 / ups1 if ups1 else float("inf")
        print(f"{'batch-8 speedup':<24} {'':>10} {'':>10} {speedup:>6.2f}x")
        if speedup < MIN_SPEEDUP:
            failures.append(
                f"batch-8 speedup {speedup:.2f}x "
                f"({ups8:.1f} vs {ups1:.1f} upd/s) fell below {MIN_SPEEDUP}x"
            )
    else:
        failures.append("current run lacks batch=1 and batch=8 points")

    if failures:
        print("\nPERF GATE FAILED:", file=sys.stderr)
        for f in failures:
            print(f"  - {f}", file=sys.stderr)
        return 1
    print("\nperf gate passed")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
