#!/usr/bin/env python3
"""CI perf-regression gate for the group-commit batching hot path.

Usage: perf_gate.py BASELINE.json CURRENT.json

Both files are ``exp_batching --gate --json`` reports. The gate fails
(exit 1) when any labelled point's committed-updates/sec drops more than
REGRESSION_TOLERANCE below the committed baseline, when the batch-8 over
batch-1 speedup collapses below MIN_SPEEDUP, when a point that carries
an availability decomposition ramps back to 95% of baseline WIPS more
than RAMP_TOLERANCE slower than the committed baseline, or when the
always-on consensus auditor reported any violation. The simulator is deterministic,
so on unchanged code the current run reproduces the baseline bit-for-bit;
a tripped gate always points at a real behavioural change.

Points that carry host-timing fields (``events_per_sec``,
``wall_clock_s``, emitted by ``push_timed``) additionally gate raw
engine throughput — but unlike everything above those numbers are
machine-dependent, so the tolerances are deliberately loose
(EVENTS_TOLERANCE / WALL_TOLERANCE): they catch an order-of-magnitude
hot-path regression (say, the event queue degenerating to a linear
scan), not CI-runner noise. Baselines predating those fields skip the
check. After an intentional recalibration, regenerate the baseline
with::

    cargo run --release -p bench --bin exp_batching -- --gate --json BENCH_baseline.json

Stdlib only; no third-party imports.
"""

import json
import sys

# A current point may be up to 15% below baseline before the gate trips.
REGRESSION_TOLERANCE = 0.15
# Group commit must keep paying for itself: batch=8 throughput must stay
# at least this multiple of batch=1 on the ordering mix.
MIN_SPEEDUP = 1.8
# Post-crash ramp back to 95% of baseline WIPS may be up to 15% slower
# than the committed baseline before the gate trips (higher is worse).
RAMP_TOLERANCE = 0.15
# Host-timing tolerances: engine events/sec may fall to half the
# baseline, wall clock may stretch to 3x, before the gate trips. Loose
# on purpose — CI runners vary; these exist to catch the hot path
# falling off a cliff, not a noisy neighbour.
EVENTS_TOLERANCE = 0.5
WALL_TOLERANCE = 3.0


def load_runs(path):
    try:
        with open(path) as f:
            doc = json.load(f)
    except OSError as e:
        sys.exit(f"perf gate: cannot read {path}: {e.strerror or e}")
    except json.JSONDecodeError as e:
        sys.exit(f"perf gate: {path} is not valid JSON: {e}")
    if not isinstance(doc, dict) or not isinstance(doc.get("runs"), list):
        sys.exit(f"perf gate: {path} lacks a top-level \"runs\" array")
    try:
        runs = {run["label"]: run for run in doc["runs"]}
    except (KeyError, TypeError):
        sys.exit(f"perf gate: {path} has a run without a \"label\"")
    if not runs:
        sys.exit(f"perf gate: {path} contains no runs")
    return runs


def field(run, key, path):
    """A run's numeric field, or a clean exit naming what's missing."""
    value = run.get(key)
    if not isinstance(value, (int, float)):
        label = run.get("label", "?")
        sys.exit(f"perf gate: {path}: run {label!r} lacks numeric {key!r}")
    return value


def main(argv):
    if len(argv) != 3:
        sys.exit("usage: perf_gate.py BASELINE.json CURRENT.json")
    baseline = load_runs(argv[1])
    current = load_runs(argv[2])

    failures = []
    print(f"{'point':<24} {'baseline':>10} {'current':>10} {'ratio':>7}")
    for label, base in sorted(baseline.items()):
        cur = current.get(label)
        if cur is None:
            failures.append(f"{label}: missing from current run")
            continue
        base_ups = field(base, "updates_per_sec", argv[1])
        cur_ups = field(cur, "updates_per_sec", argv[2])
        ratio = cur_ups / base_ups if base_ups else float("inf")
        print(f"{label:<24} {base_ups:>10.1f} {cur_ups:>10.1f} {ratio:>6.2f}x")
        if cur_ups < base_ups * (1.0 - REGRESSION_TOLERANCE):
            failures.append(
                f"{label}: {cur_ups:.1f} upd/s is more than "
                f"{REGRESSION_TOLERANCE:.0%} below baseline {base_ups:.1f}"
            )
        if cur.get("audit_violations", 0) != 0:
            failures.append(f"{label}: {cur['audit_violations']} audit violations")

        # Host timing: only when the committed baseline carries the
        # fields (older baselines predate them), and loosely — these
        # are host-dependent, unlike every other gated number.
        base_eps = base.get("events_per_sec")
        if isinstance(base_eps, (int, float)) and base_eps > 0:
            cur_eps = field(cur, "events_per_sec", argv[2])
            eps_ratio = cur_eps / base_eps
            print(
                f"{label + ' events/s':<24} {base_eps:>10.0f} "
                f"{cur_eps:>10.0f} {eps_ratio:>6.2f}x"
            )
            if cur_eps < base_eps * (1.0 - EVENTS_TOLERANCE):
                failures.append(
                    f"{label}: engine throughput {cur_eps:.0f} events/s is "
                    f"more than {EVENTS_TOLERANCE:.0%} below baseline "
                    f"{base_eps:.0f}"
                )
        base_wall = base.get("wall_clock_s")
        if isinstance(base_wall, (int, float)) and base_wall > 0:
            cur_wall = field(cur, "wall_clock_s", argv[2])
            if cur_wall > base_wall * WALL_TOLERANCE:
                failures.append(
                    f"{label}: wall clock {cur_wall:.1f}s is more than "
                    f"{WALL_TOLERANCE:.1f}x baseline {base_wall:.1f}s"
                )

        # Availability: a baseline that measured a post-crash ramp pins
        # the recovery path too. null (never ramped back) never gates.
        base_ramp = base.get("ramp_to_95pct_us")
        if isinstance(base_ramp, (int, float)) and base_ramp > 0:
            cur_ramp = cur.get("ramp_to_95pct_us")
            if not isinstance(cur_ramp, (int, float)):
                failures.append(
                    f"{label}: baseline has ramp_to_95pct_us but current "
                    f"run reports {cur_ramp!r}"
                )
                continue
            ramp_ratio = cur_ramp / base_ramp
            print(
                f"{label + ' ramp95(s)':<24} {base_ramp / 1e6:>10.1f} "
                f"{cur_ramp / 1e6:>10.1f} {ramp_ratio:>6.2f}x"
            )
            if cur_ramp > base_ramp * (1.0 + RAMP_TOLERANCE):
                failures.append(
                    f"{label}: ramp to 95% of baseline WIPS took "
                    f"{cur_ramp / 1e6:.1f}s, more than {RAMP_TOLERANCE:.0%} "
                    f"over baseline {base_ramp / 1e6:.1f}s"
                )

    by_batch = {run.get("batch"): run for run in current.values()}
    if 1 in by_batch and 8 in by_batch:
        ups1 = field(by_batch[1], "updates_per_sec", argv[2])
        ups8 = field(by_batch[8], "updates_per_sec", argv[2])
        speedup = ups8 / ups1 if ups1 else float("inf")
        print(f"{'batch-8 speedup':<24} {'':>10} {'':>10} {speedup:>6.2f}x")
        if speedup < MIN_SPEEDUP:
            failures.append(
                f"batch-8 speedup {speedup:.2f}x "
                f"({ups8:.1f} vs {ups1:.1f} upd/s) fell below {MIN_SPEEDUP}x"
            )
    else:
        failures.append("current run lacks batch=1 and batch=8 points")

    if failures:
        print("\nPERF GATE FAILED:", file=sys.stderr)
        for f in failures:
            print(f"  - {f}", file=sys.stderr)
        return 1
    print("\nperf gate passed")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
