//! Offline drop-in subset of the `criterion` 0.5 API.
//!
//! The build environment has no registry access, so the workspace's
//! benchmarks link against this shim: same macros and builder surface,
//! but measurement is a simple best-of-N wall-clock timing with no
//! statistical machinery, warm-up schedule, or HTML reports. Good
//! enough to compare orders of magnitude and keep `cargo bench`
//! runnable; not a replacement for real criterion numbers.

// Benchmarks measure real elapsed time by definition.
#![allow(clippy::disallowed_methods)]

use std::fmt;
use std::time::Instant;

/// Iterations per measured sample.
const ITERS_PER_SAMPLE: u32 = 32;
/// Samples taken per benchmark (the minimum is reported).
const SAMPLES: u32 = 8;

/// Prevents the optimizer from deleting a benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Per-benchmark timing driver handed to the closure.
pub struct Bencher {
    best_ns: Option<u128>,
}

impl Bencher {
    /// Times `routine`, keeping the best average over a few samples.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        for _ in 0..SAMPLES {
            let start = Instant::now();
            for _ in 0..ITERS_PER_SAMPLE {
                black_box(routine());
            }
            let per_iter = start.elapsed().as_nanos() / ITERS_PER_SAMPLE as u128;
            self.best_ns = Some(self.best_ns.map_or(per_iter, |b| b.min(per_iter)));
        }
    }
}

/// Identifier for a parameterized benchmark.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// A `name/parameter` id.
    pub fn new(name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", name.into(), parameter),
        }
    }

    /// An id that is just the parameter.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

/// The benchmark registry/driver.
#[derive(Default)]
pub struct Criterion {}

fn run_one(label: &str, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher { best_ns: None };
    f(&mut b);
    match b.best_ns {
        Some(ns) => println!("bench {label:<40} {ns:>12} ns/iter"),
        None => println!("bench {label:<40} (no measurement)"),
    }
}

impl Criterion {
    /// Runs one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        run_one(name, &mut f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            _parent: self,
        }
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    name: String,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Runs one benchmark in the group with an input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.label);
        run_one(&label, &mut |b| f(b, input));
        self
    }

    /// Finishes the group (no-op in the shim).
    pub fn finish(self) {}
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares the benchmark binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(c: &mut Criterion) {
        c.bench_function("add", |b| b.iter(|| black_box(1u64) + black_box(2)));
        let mut g = c.benchmark_group("grp");
        g.bench_with_input(BenchmarkId::new("sq", 3), &3u64, |b, &x| b.iter(|| x * x));
        g.bench_with_input(BenchmarkId::from_parameter(7), &7u64, |b, &x| {
            b.iter(|| x + 1)
        });
        g.finish();
    }

    criterion_group!(benches, quick);

    #[test]
    fn harness_runs() {
        benches();
    }
}
