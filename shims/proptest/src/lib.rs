//! Offline drop-in subset of the `proptest` 1.x API.
//!
//! The build environment has no registry access, so this shim supplies
//! the slice of proptest the workspace's property tests use: the
//! [`Strategy`] trait with `prop_map`, range and tuple strategies,
//! [`collection::vec`], [`any`], weighted [`prop_oneof!`], and the
//! [`proptest!`] test macro. Cases are generated from a deterministic
//! per-test seed (FNV-1a of the test name), so failures reproduce on
//! every run. There is **no shrinking**: a failing case panics with the
//! generated inputs printed via `Debug`, which is enough to pin down a
//! regression in a deterministic codebase.

use rand::rngs::StdRng;

pub mod strategy {
    //! Value-generation strategies.

    use super::TestRng;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Generates one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<T, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> T,
        {
            Map { inner: self, f }
        }
    }

    impl<S: Strategy + ?Sized> Strategy for Box<S> {
        type Value = S::Value;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (**self).generate(rng)
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (**self).generate(rng)
        }
    }

    /// Strategy adapter produced by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, F, T> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> T,
    {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Weighted choice among boxed strategies (backs [`prop_oneof!`]).
    pub struct Union<T> {
        variants: Vec<(u32, Box<dyn Strategy<Value = T>>)>,
        total: u32,
    }

    impl<T> Union<T> {
        /// An empty union; populate with [`Union::or`].
        #[allow(clippy::new_without_default)]
        pub fn new() -> Self {
            Union {
                variants: Vec::new(),
                total: 0,
            }
        }

        /// Adds a weighted variant. Taking `impl Strategy` here (rather
        /// than a pre-boxed trait object) lets inference unify `T` with
        /// each variant's value type, which a coercion cast cannot.
        pub fn or<S>(mut self, weight: u32, strat: S) -> Self
        where
            S: Strategy<Value = T> + 'static,
        {
            assert!(weight > 0, "prop_oneof!: zero weight");
            self.total += weight;
            self.variants.push((weight, Box::new(strat)));
            self
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            assert!(self.total > 0, "prop_oneof!: empty union");
            let mut pick = rng.gen_u32_below(self.total);
            for (w, s) in &self.variants {
                if pick < *w {
                    return s.generate(rng);
                }
                pick -= w;
            }
            unreachable!("weight accounting")
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty => $sample:ident),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.$sample(self.start, self.end, false)
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.$sample(*self.start(), *self.end(), true)
                }
            }
        )*};
    }

    impl_range_strategy!(
        u8 => sample_u8,
        u16 => sample_u16,
        u32 => sample_u32,
        u64 => sample_u64,
        usize => sample_usize,
        i32 => sample_i32,
        i64 => sample_i64
    );

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
}

/// Deterministic generator driving the strategies.
pub struct TestRng {
    inner: StdRng,
}

impl TestRng {
    /// Creates the generator for one test from its name-derived seed.
    pub fn from_seed(seed: u64) -> TestRng {
        use rand::SeedableRng;
        TestRng {
            inner: StdRng::seed_from_u64(seed),
        }
    }

    fn next_u64(&mut self) -> u64 {
        use rand::RngCore;
        self.inner.next_u64()
    }

    /// Uniform draw below `bound` (used for union weights).
    pub fn gen_u32_below(&mut self, bound: u32) -> u32 {
        (self.next_u64() % bound as u64) as u32
    }
}

macro_rules! testrng_samplers {
    ($($f:ident => $t:ty),*) => {
        impl TestRng {
            $(
                #[doc = "Uniform draw from the given bounds."]
                pub fn $f(&mut self, low: $t, high: $t, inclusive: bool) -> $t {
                    let span = if inclusive {
                        (high as i128) - (low as i128) + 1
                    } else {
                        (high as i128) - (low as i128)
                    };
                    assert!(span > 0, "empty strategy range");
                    (low as i128 + (self.next_u64() as i128).rem_euclid(span)) as $t
                }
            )*
        }
    };
}

testrng_samplers!(
    sample_u8 => u8,
    sample_u16 => u16,
    sample_u32 => u32,
    sample_u64 => u64,
    sample_usize => usize,
    sample_i32 => i32,
    sample_i64 => i64
);

/// Per-run configuration (subset: `cases`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Configuration running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Generates an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_uint {
    ($($t:ty => $f:ident),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.$f(<$t>::MIN, <$t>::MAX, true)
            }
        }
    )*};
}

impl_arbitrary_uint!(u8 => sample_u8, u16 => sample_u16, u32 => sample_u32);

/// Strategy for [`Arbitrary`] types (backs [`any`]).
pub struct AnyStrategy<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> strategy::Strategy for AnyStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for any value of `T`.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy {
        _marker: std::marker::PhantomData,
    }
}

pub mod collection {
    //! Collection strategies.

    use super::strategy::Strategy;
    use super::TestRng;

    /// Strategy generating `Vec`s with lengths drawn from a range.
    pub struct VecStrategy<S> {
        elem: S,
        min: usize,
        max: usize,
    }

    /// Generates vectors of `elem`-generated values with a length in
    /// `len` (half-open, matching proptest's `1..25` idiom).
    pub fn vec<S: Strategy>(elem: S, len: std::ops::Range<usize>) -> VecStrategy<S> {
        assert!(len.start < len.end, "collection::vec: empty length range");
        VecStrategy {
            elem,
            min: len.start,
            max: len.end,
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.sample_usize(self.min, self.max, false);
            (0..len).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

/// FNV-1a of the test path: the deterministic per-test seed.
pub fn seed_for(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

pub mod prelude {
    //! One-stop imports for property tests.

    pub use crate::strategy::Strategy;
    pub use crate::{any, ProptestConfig};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Defines property tests: each `fn` runs its body over generated
/// inputs for the configured number of cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { config = $crate::ProptestConfig::default(); $($rest)* }
    };
}

/// Internal expansion of [`proptest!`]; not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = $cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::TestRng::from_seed($crate::seed_for(concat!(
                module_path!(),
                "::",
                stringify!($name)
            )));
            for case in 0..config.cases {
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                let result = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(|| {
                    $(let $arg = $arg.clone();)+
                    $body
                }));
                if let Err(panic) = result {
                    eprintln!(
                        "proptest case {} of {} failed for {}:",
                        case + 1,
                        config.cases,
                        stringify!($name)
                    );
                    $(eprintln!("  {} = {:?}", stringify!($arg), $arg);)+
                    ::std::panic::resume_unwind(panic);
                }
            }
        }
    )*};
}

/// Weighted (`w => strategy`) or uniform choice among strategies.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new()$(.or($weight as u32, $strat))+
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new()$(.or(1u32, $strat))+
    };
}

/// Asserts a condition inside a property (panics, no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property (panics, no shrinking).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a property (panics, no shrinking).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Debug, Clone, PartialEq)]
    enum Pick {
        Small(u8),
        Big(u64),
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_in_bounds(x in 3u64..9, y in 1usize..=4) {
            prop_assert!((3..9).contains(&x));
            prop_assert!((1..=4).contains(&y));
        }

        #[test]
        fn tuples_and_maps(pair in (0u32..5, 10u32..20).prop_map(|(a, b)| a + b)) {
            prop_assert!((10..25).contains(&pair));
        }

        #[test]
        fn vec_lengths(v in crate::collection::vec(0u8..10, 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
            prop_assert!(v.iter().all(|&x| x < 10));
        }

        #[test]
        fn oneof_is_weighted(p in prop_oneof![
            3 => (0u8..10).prop_map(Pick::Small),
            1 => (0u64..10).prop_map(Pick::Big),
        ]) {
            match p {
                Pick::Small(x) => prop_assert!(x < 10),
                Pick::Big(x) => prop_assert!(x < 10),
            }
        }

        #[test]
        fn any_u8_works(b in any::<u8>()) {
            let _ = b;
        }
    }

    #[test]
    fn deterministic_per_test_name() {
        let mut a = crate::TestRng::from_seed(crate::seed_for("x"));
        let mut b = crate::TestRng::from_seed(crate::seed_for("x"));
        let s = 0u64..1_000;
        assert_eq!(s.generate(&mut a), s.generate(&mut b));
    }
}
