//! Offline drop-in subset of the `rand` 0.8 API.
//!
//! The build environment has no network access to a crates registry, so
//! this workspace vendors the small slice of `rand` it actually uses:
//! a seedable deterministic generator ([`rngs::StdRng`], here
//! xoshiro256++ seeded via SplitMix64), uniform range sampling,
//! Bernoulli draws, and Fisher–Yates shuffling. Determinism per seed is
//! the only contract the simulator needs; the stream differs from
//! upstream `rand`'s ChaCha-based `StdRng`, which is fine because no
//! test pins exact draw values, only seed-reproducibility.

/// Low-level generator interface: a source of raw 64-bit words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let word = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Seedable generators (subset: `seed_from_u64` only).
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed, expanding it internally.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from a range (`gen_range`).
pub trait SampleUniform: Copy + PartialOrd {
    /// Draws uniformly from `[low, high)`. `high > low` must hold.
    fn sample_half_open<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self;
    /// Draws uniformly from `[low, high]`.
    fn sample_inclusive<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self;
}

macro_rules! impl_sample_uniform_uint {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(low: $t, high: $t, rng: &mut R) -> $t {
                assert!(low < high, "gen_range: empty range");
                let span = (high as u128).wrapping_sub(low as u128);
                low.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
            fn sample_inclusive<R: RngCore + ?Sized>(low: $t, high: $t, rng: &mut R) -> $t {
                assert!(low <= high, "gen_range: empty range");
                let span = (high as u128) - (low as u128) + 1;
                low.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
        }
    )*};
}

impl_sample_uniform_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(low: $t, high: $t, rng: &mut R) -> $t {
                assert!(low < high, "gen_range: empty range");
                let span = (high as i128 - low as i128) as u128;
                (low as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
            fn sample_inclusive<R: RngCore + ?Sized>(low: $t, high: $t, rng: &mut R) -> $t {
                assert!(low <= high, "gen_range: empty range");
                let span = (high as i128 - low as i128) as u128 + 1;
                (low as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(i8, i16, i32, i64, isize);

macro_rules! impl_sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(low: $t, high: $t, rng: &mut R) -> $t {
                assert!(low < high, "gen_range: empty range");
                let unit = (rng.next_u64() >> 11) as $t * (1.0 / (1u64 << 53) as $t);
                low + (high - low) * unit
            }
            fn sample_inclusive<R: RngCore + ?Sized>(low: $t, high: $t, rng: &mut R) -> $t {
                // For floats the closed upper bound is a measure-zero
                // distinction; reuse the half-open transform.
                assert!(low <= high, "gen_range: empty range");
                let unit = (rng.next_u64() >> 11) as $t * (1.0 / (1u64 << 53) as $t);
                low + (high - low) * unit
            }
        }
    )*};
}

impl_sample_uniform_float!(f32, f64);

/// Range argument accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(self.start, self.end, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_inclusive(*self.start(), *self.end(), rng)
    }
}

/// Types producible by [`Rng::gen`] (the `Standard` distribution).
pub trait StandardSample {
    /// Draws one value.
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_uint {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_uint!(u8, u16, u32, u64, usize);

impl StandardSample for f64 {
    /// Uniform in `[0, 1)` using the top 53 bits.
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for bool {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// High-level convenience methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform draw from a half-open or inclusive range.
    fn gen_range<T, Rg>(&mut self, range: Rg) -> T
    where
        T: SampleUniform,
        Rg: SampleRange<T>,
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Draws a value of type `T` from its standard distribution.
    #[allow(clippy::should_implement_trait)]
    fn gen<T: StandardSample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::standard_sample(self)
    }

    /// Bernoulli draw: `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of range");
        self.gen::<f64>() < p
    }
}

impl<R: RngCore> Rng for R {}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++
    /// with SplitMix64 seed expansion. Not cryptographic; stable across
    /// platforms and builds, which is what seeded simulation requires.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    //! Sequence helpers.

    use super::Rng;

    /// Slice extensions (subset: `shuffle`).
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// In-place Fisher–Yates shuffle.
        fn shuffle<R: Rng>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.gen()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.gen()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1_000 {
            let x = rng.gen_range(10..20u64);
            assert!((10..20).contains(&x));
            let y = rng.gen_range(3..=5usize);
            assert!((3..=5).contains(&y));
            let z = rng.gen_range(-4..4i64);
            assert!((-4..4).contains(&z));
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(9);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "p=0.25 gave {hits}/10000");
    }

    #[test]
    fn shuffle_is_a_permutation_and_seed_stable() {
        let mut v: Vec<usize> = (0..10).collect();
        let mut rng = StdRng::seed_from_u64(5);
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..10).collect::<Vec<_>>());
        let mut v2: Vec<usize> = (0..10).collect();
        let mut rng2 = StdRng::seed_from_u64(5);
        v2.shuffle(&mut rng2);
        assert_eq!(v, v2);
    }
}
