//! Offline drop-in subset of the `crossbeam` 0.8 API.
//!
//! The workspace only uses `crossbeam::channel::{unbounded, Sender,
//! Receiver}` (the threaded Treplica runtime), so this shim provides an
//! unbounded MPMC channel built on `Mutex` + `Condvar` with crossbeam's
//! disconnect semantics: `recv` blocks until a message arrives and
//! errors once every `Sender` is dropped and the queue is drained;
//! `send` errors once every `Receiver` is dropped.

pub mod channel {
    //! Multi-producer multi-consumer channels.

    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex};

    struct State<T> {
        queue: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    struct Shared<T> {
        state: Mutex<State<T>>,
        ready: Condvar,
    }

    /// Error returned by [`Sender::send`] when all receivers are gone;
    /// gives the message back.
    pub struct SendError<T>(pub T);

    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    impl<T> std::error::Error for SendError<T> {}

    /// Error returned by [`Receiver::recv`] when the channel is empty
    /// and all senders are gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("receiving on an empty and disconnected channel")
        }
    }

    impl std::error::Error for RecvError {}

    /// The sending half of an unbounded channel.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// The receiving half of an unbounded channel.
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// Creates an unbounded MPMC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                senders: 1,
                receivers: 1,
            }),
            ready: Condvar::new(),
        });
        (
            Sender {
                shared: shared.clone(),
            },
            Receiver { shared },
        )
    }

    impl<T> Sender<T> {
        /// Enqueues `msg`, failing if every receiver has been dropped.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            let mut state = self.shared.state.lock().unwrap();
            if state.receivers == 0 {
                return Err(SendError(msg));
            }
            state.queue.push_back(msg);
            drop(state);
            self.shared.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.state.lock().unwrap().senders += 1;
            Sender {
                shared: self.shared.clone(),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut state = self.shared.state.lock().unwrap();
            state.senders -= 1;
            if state.senders == 0 {
                drop(state);
                // Wake blocked receivers so they observe disconnection.
                self.shared.ready.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Dequeues a message, blocking while the channel is empty and
        /// at least one sender is alive.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut state = self.shared.state.lock().unwrap();
            loop {
                if let Some(msg) = state.queue.pop_front() {
                    return Ok(msg);
                }
                if state.senders == 0 {
                    return Err(RecvError);
                }
                state = self.shared.ready.wait(state).unwrap();
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared.state.lock().unwrap().receivers += 1;
            Receiver {
                shared: self.shared.clone(),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.shared.state.lock().unwrap().receivers -= 1;
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn send_recv_fifo() {
            let (tx, rx) = unbounded();
            tx.send(1).unwrap();
            tx.send(2).unwrap();
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(rx.recv(), Ok(2));
        }

        #[test]
        fn recv_errors_after_all_senders_drop() {
            let (tx, rx) = unbounded();
            let tx2 = tx.clone();
            tx.send(7).unwrap();
            drop(tx);
            drop(tx2);
            assert_eq!(rx.recv(), Ok(7));
            assert_eq!(rx.recv(), Err(RecvError));
        }

        #[test]
        fn send_errors_after_all_receivers_drop() {
            let (tx, rx) = unbounded();
            drop(rx);
            assert!(tx.send(1).is_err());
        }

        #[test]
        fn blocking_recv_wakes_on_send() {
            let (tx, rx) = unbounded();
            let handle = std::thread::spawn(move || rx.recv());
            std::thread::sleep(std::time::Duration::from_millis(20));
            tx.send(99).unwrap();
            assert_eq!(handle.join().unwrap(), Ok(99));
        }

        #[test]
        fn cross_thread_disconnect_wakes_receiver() {
            let (tx, rx) = unbounded::<u8>();
            let handle = std::thread::spawn(move || rx.recv());
            std::thread::sleep(std::time::Duration::from_millis(20));
            drop(tx);
            assert_eq!(handle.join().unwrap(), Err(RecvError));
        }
    }
}
