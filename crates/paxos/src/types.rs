//! Core identifier types of the consensus protocol.

use std::fmt;

/// Identifies one of the `N` replicas participating in consensus.
///
/// Treplica runs all three Paxos roles (proposer, acceptor, learner) in
/// every process, so a single id addresses all of them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ReplicaId(pub u32);

impl ReplicaId {
    /// Dense index of this replica.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ReplicaId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// A position in the totally ordered log (a consensus instance).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Slot(pub u64);

impl Slot {
    /// The first slot.
    pub const ZERO: Slot = Slot(0);

    /// The slot after this one. Saturates at `u64::MAX` instead of
    /// wrapping: a wrapped slot would re-order the log, while a
    /// saturated one merely stalls an (unreachable in practice) run
    /// that consumed 2^64 consensus instances.
    pub fn next(self) -> Slot {
        Slot(self.0.saturating_add(1))
    }
}

impl fmt::Display for Slot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// Whether a ballot's round is classic or fast (Fast Paxos §3).
///
/// In a fast round, acceptors may accept values sent directly by
/// proposers (saving one message delay); deciding then requires the
/// larger fast quorum ⌈3N/4⌉ instead of the classic majority.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum BallotClass {
    /// Classic round: coordinator relays, majority quorum decides.
    Classic,
    /// Fast round: proposers address acceptors directly, ⌈3N/4⌉ decides.
    Fast,
}

/// A ballot (round) number, totally ordered by `(round, node)`.
///
/// The class is carried alongside but does not participate in the
/// ordering: round numbers are unique per coordinator, and a coordinator
/// never issues the same round with two classes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Ballot {
    /// Monotone counter, the dominant ordering key.
    pub round: u64,
    /// Coordinator that owns the ballot, breaking ties.
    pub node: ReplicaId,
    /// Fast or classic.
    pub class: BallotClass,
}

impl Ballot {
    /// The ballot below all real ballots; acceptors start here.
    pub const BOTTOM: Ballot = Ballot {
        round: 0,
        node: ReplicaId(0),
        class: BallotClass::Classic,
    };

    /// Creates a classic ballot.
    pub fn classic(round: u64, node: ReplicaId) -> Ballot {
        Ballot {
            round,
            node,
            class: BallotClass::Classic,
        }
    }

    /// Creates a fast ballot.
    pub fn fast(round: u64, node: ReplicaId) -> Ballot {
        Ballot {
            round,
            node,
            class: BallotClass::Fast,
        }
    }

    /// Whether this is a fast ballot.
    pub fn is_fast(self) -> bool {
        self.class == BallotClass::Fast
    }
}

impl PartialOrd for Ballot {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Ballot {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.round, self.node).cmp(&(other.round, other.node))
    }
}

impl fmt::Display for Ballot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let c = match self.class {
            BallotClass::Classic => "c",
            BallotClass::Fast => "f",
        };
        write!(f, "b{}.{}{}", self.round, self.node.0, c)
    }
}

/// Uniquely identifies a client proposal for retry deduplication.
///
/// Fast Paxos may orphan a proposal (collision loser) or decide it twice
/// under proposer retries; learners deliver each id at most once.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ProposalId {
    /// Replica whose proposer issued the proposal.
    pub node: ReplicaId,
    /// Process incarnation of the proposer. A restarted replica proposes
    /// under a fresh epoch, so its ids never collide with pre-crash ones
    /// (which may already be in the delivered-dedup set at learners).
    pub epoch: u64,
    /// Per-proposer sequence number within the epoch.
    pub seq: u64,
}

impl fmt::Display for ProposalId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}.{}.{}", self.node.0, self.epoch, self.seq)
    }
}

/// A group-committed batch of client updates ordered as one decree.
///
/// Batching amortizes the per-decree costs of the stack — one consensus
/// round, one stable-log append (one simulated seek) and one set of
/// protocol messages — over up to `batch_max` updates. The consensus
/// layer stays value-agnostic: a batch is just the `V` of
/// `Replica<Batch<A>>`, so acceptors persist one coalesced record per
/// batch and learners deliver whole batches, which the middleware
/// unpacks in order (items keep their per-update [`ProposalId`]s so
/// exactly-once delivery and reply routing still work per update).
///
/// Invariant: a batch is never empty (the wire codec rejects empty
/// batches on decode; [`Batch::new`] asserts on construction).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Batch<V> {
    /// The batched updates in submission order, each with the id its
    /// submitter waits on.
    pub items: Vec<(ProposalId, V)>,
}

impl<V> Batch<V> {
    /// Creates a batch from `items`.
    ///
    /// # Panics
    ///
    /// Panics if `items` is empty — an empty batch would consume a
    /// consensus slot and a disk seek for nothing.
    pub fn new(items: Vec<(ProposalId, V)>) -> Batch<V> {
        assert!(!items.is_empty(), "batches must carry at least one update");
        Batch { items }
    }

    /// Wraps a single update (the unbatched degenerate case).
    pub fn single(pid: ProposalId, value: V) -> Batch<V> {
        Batch {
            items: vec![(pid, value)],
        }
    }

    /// Number of updates in the batch (always ≥ 1).
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Always false for a well-formed batch; part of the conventional
    /// `len`/`is_empty` pair.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }
}

/// What a slot can hold: a real proposal or a gap-filling no-op.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Decree<V> {
    /// A no-op used by new leaders to finish unclaimed slots.
    Noop,
    /// A client proposal.
    Value(ProposalId, V),
}

impl<V> Decree<V> {
    /// The proposal id, if this is a real value.
    pub fn proposal_id(&self) -> Option<ProposalId> {
        match self {
            Decree::Noop => None,
            Decree::Value(pid, _) => Some(*pid),
        }
    }
}

/// Quorum arithmetic for `n` replicas, per the paper (§2):
/// fast quorum ⌈3N/4⌉, classic quorum ⌊N/2⌋+1.
///
/// ```
/// use paxos::Quorums;
/// let q = Quorums::new(5);
/// assert_eq!(q.classic(), 3);
/// assert_eq!(q.fast(), 4);
/// // The paper's mode rule: fast while ≥4 of 5 work, classic down to 3.
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Quorums {
    n: usize,
}

impl Quorums {
    /// Creates quorum arithmetic for an ensemble of `n` replicas.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(n: usize) -> Quorums {
        assert!(n > 0, "ensemble must have at least one replica");
        Quorums { n }
    }

    /// Ensemble size `N`.
    pub fn n(self) -> usize {
        self.n
    }

    /// Classic quorum ⌊N/2⌋+1.
    pub fn classic(self) -> usize {
        self.n / 2 + 1
    }

    /// Fast quorum ⌈3N/4⌉.
    pub fn fast(self) -> usize {
        (3 * self.n).div_ceil(4)
    }

    /// Minimum overlap between a classic quorum `Q` and any fast quorum:
    /// `|Q| + fast − N`. A value is *choosable* in a fast round only if at
    /// least this many members of `Q` report having accepted it (Fast
    /// Paxos rule O4); at most one value can reach this bound.
    pub fn recovery_threshold(self, q_size: usize) -> usize {
        (q_size + self.fast()).saturating_sub(self.n).max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ballot_total_order_ignores_class() {
        let a = Ballot::classic(1, ReplicaId(0));
        let b = Ballot::fast(1, ReplicaId(1));
        let c = Ballot::classic(2, ReplicaId(0));
        assert!(a < b && b < c);
        assert!(Ballot::BOTTOM < a);
    }

    #[test]
    fn quorum_sizes_match_paper() {
        // Paper deployments: 4..12 replicas; key claims for 5 and 8.
        let q5 = Quorums::new(5);
        assert_eq!(q5.classic(), 3);
        assert_eq!(q5.fast(), 4);
        let q8 = Quorums::new(8);
        assert_eq!(q8.classic(), 5);
        assert_eq!(q8.fast(), 6);
        let q4 = Quorums::new(4);
        assert_eq!(q4.classic(), 3);
        assert_eq!(q4.fast(), 3);
        let q12 = Quorums::new(12);
        assert_eq!(q12.classic(), 7);
        assert_eq!(q12.fast(), 9);
    }

    #[test]
    fn recovery_threshold_unique_winner() {
        // For every ensemble size used in the paper, the O4 threshold must
        // guarantee at most one choosable value in a classic quorum.
        for n in 3..=12 {
            let q = Quorums::new(n);
            let t = q.recovery_threshold(q.classic());
            assert!(2 * t > q.classic(), "n={n}: threshold {t} not unique");
        }
    }

    #[test]
    fn slot_next_advances() {
        assert_eq!(Slot::ZERO.next(), Slot(1));
        assert!(Slot(3) < Slot(4));
    }

    #[test]
    fn slot_next_saturates_instead_of_wrapping() {
        // Regression: `next()` used unchecked `+ 1`; at u64::MAX that
        // wraps to Slot(0) in release builds and re-orders the log.
        assert_eq!(Slot(u64::MAX).next(), Slot(u64::MAX));
        assert!(
            Slot(u64::MAX).next() >= Slot(u64::MAX),
            "monotone at the cap"
        );
    }

    #[test]
    fn decree_proposal_id() {
        let pid = ProposalId {
            node: ReplicaId(1),
            epoch: 0,
            seq: 9,
        };
        assert_eq!(Decree::Value(pid, "x").proposal_id(), Some(pid));
        assert_eq!(Decree::<&str>::Noop.proposal_id(), None);
    }

    #[test]
    fn display_forms() {
        assert_eq!(ReplicaId(2).to_string(), "r2");
        assert_eq!(Slot(7).to_string(), "s7");
        assert_eq!(Ballot::fast(3, ReplicaId(1)).to_string(), "b3.1f");
        assert_eq!(
            ProposalId {
                node: ReplicaId(0),
                epoch: 1,
                seq: 4
            }
            .to_string(),
            "p0.1.4"
        );
    }

    #[test]
    #[should_panic(expected = "at least one replica")]
    fn zero_ensemble_panics() {
        Quorums::new(0);
    }
}
