//! Core identifier types of the consensus protocol.

use std::fmt;

/// Identifies one of the `N` replicas participating in consensus.
///
/// Treplica runs all three Paxos roles (proposer, acceptor, learner) in
/// every process, so a single id addresses all of them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ReplicaId(pub u32);

impl ReplicaId {
    /// Dense index of this replica.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ReplicaId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// A position in the totally ordered log (a consensus instance).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Slot(pub u64);

impl Slot {
    /// The first slot.
    pub const ZERO: Slot = Slot(0);

    /// The slot after this one. Saturates at `u64::MAX` instead of
    /// wrapping: a wrapped slot would re-order the log, while a
    /// saturated one merely stalls an (unreachable in practice) run
    /// that consumed 2^64 consensus instances.
    pub fn next(self) -> Slot {
        Slot(self.0.saturating_add(1))
    }
}

impl fmt::Display for Slot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// Whether a ballot's round is classic or fast (Fast Paxos §3).
///
/// In a fast round, acceptors may accept values sent directly by
/// proposers (saving one message delay); deciding then requires the
/// larger fast quorum ⌈3N/4⌉ instead of the classic majority.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum BallotClass {
    /// Classic round: coordinator relays, majority quorum decides.
    Classic,
    /// Fast round: proposers address acceptors directly, ⌈3N/4⌉ decides.
    Fast,
}

/// A ballot (round) number, totally ordered by `(round, node)`.
///
/// The class is carried alongside but does not participate in the
/// ordering: round numbers are unique per coordinator, and a coordinator
/// never issues the same round with two classes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Ballot {
    /// Monotone counter, the dominant ordering key.
    pub round: u64,
    /// Coordinator that owns the ballot, breaking ties.
    pub node: ReplicaId,
    /// Fast or classic.
    pub class: BallotClass,
}

impl Ballot {
    /// The ballot below all real ballots; acceptors start here.
    pub const BOTTOM: Ballot = Ballot {
        round: 0,
        node: ReplicaId(0),
        class: BallotClass::Classic,
    };

    /// Creates a classic ballot.
    pub fn classic(round: u64, node: ReplicaId) -> Ballot {
        Ballot {
            round,
            node,
            class: BallotClass::Classic,
        }
    }

    /// Creates a fast ballot.
    pub fn fast(round: u64, node: ReplicaId) -> Ballot {
        Ballot {
            round,
            node,
            class: BallotClass::Fast,
        }
    }

    /// Whether this is a fast ballot.
    pub fn is_fast(self) -> bool {
        self.class == BallotClass::Fast
    }
}

impl PartialOrd for Ballot {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Ballot {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.round, self.node).cmp(&(other.round, other.node))
    }
}

impl fmt::Display for Ballot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let c = match self.class {
            BallotClass::Classic => "c",
            BallotClass::Fast => "f",
        };
        write!(f, "b{}.{}{}", self.round, self.node.0, c)
    }
}

/// Uniquely identifies a client proposal for retry deduplication.
///
/// Fast Paxos may orphan a proposal (collision loser) or decide it twice
/// under proposer retries; learners deliver each id at most once.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ProposalId {
    /// Replica whose proposer issued the proposal.
    pub node: ReplicaId,
    /// Process incarnation of the proposer. A restarted replica proposes
    /// under a fresh epoch, so its ids never collide with pre-crash ones
    /// (which may already be in the delivered-dedup set at learners).
    pub epoch: u64,
    /// Per-proposer sequence number within the epoch.
    pub seq: u64,
}

impl fmt::Display for ProposalId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}.{}.{}", self.node.0, self.epoch, self.seq)
    }
}

/// A group-committed batch of client updates ordered as one decree.
///
/// Batching amortizes the per-decree costs of the stack — one consensus
/// round, one stable-log append (one simulated seek) and one set of
/// protocol messages — over up to `batch_max` updates. The consensus
/// layer stays value-agnostic: a batch is just the `V` of
/// `Replica<Batch<A>>`, so acceptors persist one coalesced record per
/// batch and learners deliver whole batches, which the middleware
/// unpacks in order (items keep their per-update [`ProposalId`]s so
/// exactly-once delivery and reply routing still work per update).
///
/// Invariant: a batch is never empty (the wire codec rejects empty
/// batches on decode; [`Batch::new`] asserts on construction).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Batch<V> {
    /// The batched updates in submission order, each with the id its
    /// submitter waits on.
    pub items: Vec<(ProposalId, V)>,
}

impl<V> Batch<V> {
    /// Creates a batch from `items`.
    ///
    /// # Panics
    ///
    /// Panics if `items` is empty — an empty batch would consume a
    /// consensus slot and a disk seek for nothing.
    pub fn new(items: Vec<(ProposalId, V)>) -> Batch<V> {
        assert!(!items.is_empty(), "batches must carry at least one update");
        Batch { items }
    }

    /// Wraps a single update (the unbatched degenerate case).
    pub fn single(pid: ProposalId, value: V) -> Batch<V> {
        Batch {
            items: vec![(pid, value)],
        }
    }

    /// Number of updates in the batch (always ≥ 1).
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Always false for a well-formed batch; part of the conventional
    /// `len`/`is_empty` pair.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }
}

/// A membership-change command ordered through the log like any decree.
///
/// Deciding and *delivering* a `Reconfig` is what moves the ensemble
/// from configuration epoch `epoch - 1` to `epoch`: the slot it occupies
/// is the fence — everything below it runs under the old replica set,
/// everything above under the new one ("Reconfigurable State Machine
/// Replication from Non-Reconfigurable Building Blocks"-style, as used
/// by Spinnaker's membership epochs).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Reconfig {
    /// The epoch this command creates (always the proposer's current
    /// epoch + 1; anything else is stale and ignored at delivery).
    pub epoch: u64,
    /// Replicas joining the ensemble.
    pub add: Vec<ReplicaId>,
    /// Replicas leaving the ensemble.
    pub remove: Vec<ReplicaId>,
}

/// An epoch-stamped replica set: which replicas form the ensemble and
/// the configuration epoch that installed them.
///
/// Member ids need not be dense — a replaced replica keeps its id out
/// of the set forever and its successor joins under a fresh id — so all
/// per-member bookkeeping must key by [`ReplicaId`], not by index.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Membership {
    epoch: u64,
    /// Sorted, deduplicated member ids.
    members: Vec<ReplicaId>,
}

impl Membership {
    /// The bootstrap membership: epoch 0, replicas `0..n`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn initial(n: usize) -> Membership {
        assert!(n > 0, "ensemble must have at least one replica");
        Membership {
            epoch: 0,
            members: (0..n as u32).map(ReplicaId).collect(),
        }
    }

    /// Creates a membership at `epoch` from an explicit member list
    /// (sorted and deduplicated here).
    ///
    /// # Panics
    ///
    /// Panics if `members` is empty.
    pub fn new(epoch: u64, mut members: Vec<ReplicaId>) -> Membership {
        members.sort_unstable();
        members.dedup();
        assert!(
            !members.is_empty(),
            "ensemble must have at least one replica"
        );
        Membership { epoch, members }
    }

    /// The configuration epoch.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Ensemble size `N` of this epoch — the mode rule's N.
    pub fn n(&self) -> usize {
        self.members.len()
    }

    /// The member ids, sorted ascending.
    pub fn members(&self) -> &[ReplicaId] {
        &self.members
    }

    /// Whether `id` belongs to this configuration.
    pub fn contains(&self, id: ReplicaId) -> bool {
        self.members.binary_search(&id).is_ok()
    }

    /// Quorum arithmetic for this epoch's `N`.
    pub fn quorums(&self) -> Quorums {
        Quorums::new(self.members.len())
    }

    /// Applies a reconfiguration command, yielding the next membership.
    ///
    /// Returns `None` if the command is stale (its epoch is not exactly
    /// this epoch + 1 — e.g. a decree replayed during catch-up after
    /// the switch already happened) or would empty the ensemble.
    pub fn apply(&self, rc: &Reconfig) -> Option<Membership> {
        if rc.epoch != self.epoch.checked_add(1)? {
            return None;
        }
        let mut members: Vec<ReplicaId> = self
            .members
            .iter()
            .copied()
            .filter(|m| !rc.remove.contains(m))
            .chain(rc.add.iter().copied())
            .collect();
        members.sort_unstable();
        members.dedup();
        if members.is_empty() {
            return None;
        }
        Some(Membership {
            epoch: rc.epoch,
            members,
        })
    }
}

/// What a slot can hold: a real proposal, a gap-filling no-op, or a
/// membership change.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Decree<V> {
    /// A no-op used by new leaders to finish unclaimed slots.
    Noop,
    /// A client proposal.
    Value(ProposalId, V),
    /// A fenced membership change (see [`Reconfig`]).
    Reconfig(Reconfig),
}

impl<V> Decree<V> {
    /// The proposal id, if this is a real value.
    pub fn proposal_id(&self) -> Option<ProposalId> {
        match self {
            Decree::Noop => None,
            Decree::Value(pid, _) => Some(*pid),
            Decree::Reconfig(_) => None,
        }
    }
}

/// Quorum arithmetic for `n` replicas, per the paper (§2):
/// fast quorum ⌈3N/4⌉, classic quorum ⌊N/2⌋+1.
///
/// ```
/// use paxos::Quorums;
/// let q = Quorums::new(5);
/// assert_eq!(q.classic(), 3);
/// assert_eq!(q.fast(), 4);
/// // The paper's mode rule: fast while ≥4 of 5 work, classic down to 3.
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Quorums {
    n: usize,
}

impl Quorums {
    /// Creates quorum arithmetic for an ensemble of `n` replicas.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(n: usize) -> Quorums {
        assert!(n > 0, "ensemble must have at least one replica");
        Quorums { n }
    }

    /// Ensemble size `N`.
    pub fn n(self) -> usize {
        self.n
    }

    /// Classic quorum ⌊N/2⌋+1.
    pub fn classic(self) -> usize {
        self.n / 2 + 1
    }

    /// Fast quorum ⌈3N/4⌉.
    pub fn fast(self) -> usize {
        (3 * self.n).div_ceil(4)
    }

    /// Minimum overlap between a classic quorum `Q` and any fast quorum:
    /// `|Q| + fast − N`. A value is *choosable* in a fast round only if at
    /// least this many members of `Q` report having accepted it (Fast
    /// Paxos rule O4); at most one value can reach this bound.
    pub fn recovery_threshold(self, q_size: usize) -> usize {
        (q_size + self.fast()).saturating_sub(self.n).max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ballot_total_order_ignores_class() {
        let a = Ballot::classic(1, ReplicaId(0));
        let b = Ballot::fast(1, ReplicaId(1));
        let c = Ballot::classic(2, ReplicaId(0));
        assert!(a < b && b < c);
        assert!(Ballot::BOTTOM < a);
    }

    #[test]
    fn quorum_sizes_match_paper() {
        // Paper deployments: 4..12 replicas; key claims for 5 and 8.
        let q5 = Quorums::new(5);
        assert_eq!(q5.classic(), 3);
        assert_eq!(q5.fast(), 4);
        let q8 = Quorums::new(8);
        assert_eq!(q8.classic(), 5);
        assert_eq!(q8.fast(), 6);
        let q4 = Quorums::new(4);
        assert_eq!(q4.classic(), 3);
        assert_eq!(q4.fast(), 3);
        let q12 = Quorums::new(12);
        assert_eq!(q12.classic(), 7);
        assert_eq!(q12.fast(), 9);
    }

    #[test]
    fn recovery_threshold_unique_winner() {
        // For every ensemble size used in the paper, the O4 threshold must
        // guarantee at most one choosable value in a classic quorum.
        for n in 3..=12 {
            let q = Quorums::new(n);
            let t = q.recovery_threshold(q.classic());
            assert!(2 * t > q.classic(), "n={n}: threshold {t} not unique");
        }
    }

    #[test]
    fn slot_next_advances() {
        assert_eq!(Slot::ZERO.next(), Slot(1));
        assert!(Slot(3) < Slot(4));
    }

    #[test]
    fn slot_next_saturates_instead_of_wrapping() {
        // Regression: `next()` used unchecked `+ 1`; at u64::MAX that
        // wraps to Slot(0) in release builds and re-orders the log.
        assert_eq!(Slot(u64::MAX).next(), Slot(u64::MAX));
        assert!(
            Slot(u64::MAX).next() >= Slot(u64::MAX),
            "monotone at the cap"
        );
    }

    #[test]
    fn decree_proposal_id() {
        let pid = ProposalId {
            node: ReplicaId(1),
            epoch: 0,
            seq: 9,
        };
        assert_eq!(Decree::Value(pid, "x").proposal_id(), Some(pid));
        assert_eq!(Decree::<&str>::Noop.proposal_id(), None);
    }

    #[test]
    fn display_forms() {
        assert_eq!(ReplicaId(2).to_string(), "r2");
        assert_eq!(Slot(7).to_string(), "s7");
        assert_eq!(Ballot::fast(3, ReplicaId(1)).to_string(), "b3.1f");
        assert_eq!(
            ProposalId {
                node: ReplicaId(0),
                epoch: 1,
                seq: 4
            }
            .to_string(),
            "p0.1.4"
        );
    }

    #[test]
    #[should_panic(expected = "at least one replica")]
    fn zero_ensemble_panics() {
        Quorums::new(0);
    }

    #[test]
    fn initial_membership_is_dense_epoch_zero() {
        let m = Membership::initial(5);
        assert_eq!(m.epoch(), 0);
        assert_eq!(m.n(), 5);
        assert_eq!(m.quorums(), Quorums::new(5));
        assert!(m.contains(ReplicaId(4)));
        assert!(!m.contains(ReplicaId(5)));
    }

    #[test]
    fn membership_apply_replaces_and_bumps_epoch() {
        let m = Membership::initial(5);
        let rc = Reconfig {
            epoch: 1,
            add: vec![ReplicaId(8)],
            remove: vec![ReplicaId(0)],
        };
        let next = m.apply(&rc).expect("valid reconfig");
        assert_eq!(next.epoch(), 1);
        assert_eq!(next.n(), 5, "replace keeps N constant");
        assert!(!next.contains(ReplicaId(0)));
        assert!(next.contains(ReplicaId(8)));
        assert_eq!(
            next.members(),
            &[
                ReplicaId(1),
                ReplicaId(2),
                ReplicaId(3),
                ReplicaId(4),
                ReplicaId(8)
            ]
        );
    }

    #[test]
    fn membership_apply_rejects_stale_and_empty() {
        let m = Membership::initial(3);
        // Wrong epoch: a replayed decree from the already-installed
        // switch must be a no-op.
        assert!(m
            .apply(&Reconfig {
                epoch: 0,
                add: vec![],
                remove: vec![ReplicaId(0)],
            })
            .is_none());
        assert!(m
            .apply(&Reconfig {
                epoch: 2,
                add: vec![],
                remove: vec![ReplicaId(0)],
            })
            .is_none());
        // Removing everyone is invalid.
        assert!(m
            .apply(&Reconfig {
                epoch: 1,
                add: vec![],
                remove: vec![ReplicaId(0), ReplicaId(1), ReplicaId(2)],
            })
            .is_none());
        // Remove + add of N changes the quorum arithmetic.
        let grown = m
            .apply(&Reconfig {
                epoch: 1,
                add: vec![ReplicaId(3), ReplicaId(4)],
                remove: vec![],
            })
            .expect("grow to 5");
        assert_eq!(grown.quorums().classic(), 3);
        assert_eq!(grown.quorums().fast(), 4);
    }

    #[test]
    fn reconfig_decree_has_no_proposal_id() {
        let d: Decree<&str> = Decree::Reconfig(Reconfig {
            epoch: 1,
            add: vec![],
            remove: vec![ReplicaId(1)],
        });
        assert_eq!(d.proposal_id(), None);
    }
}
