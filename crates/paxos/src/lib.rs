//! # paxos — classic Paxos and Fast Paxos for replicated logs
//!
//! A faithful, sans-io implementation of the consensus core of Treplica,
//! the replication middleware evaluated in *"Dynamic Content Web
//! Applications: Crash, Failover, and Recovery Analysis"* (DSN 2009).
//!
//! The protocol maintains a totally ordered log of values (one consensus
//! instance per [`Slot`]) across `N` replicas, each running all three
//! roles. Operating modes follow the paper's rule (§2):
//!
//! * **Fast** — while ⌈3N/4⌉ processes work, proposers send values
//!   straight to the acceptors (Fast Paxos, 2 message delays), deciding
//!   on the fast quorum ⌈3N/4⌉; the coordinator recovers collided slots
//!   with single-slot classic rounds chosen by rule O4.
//! * **Classic** — between ⌊N/2⌋+1 and ⌈3N/4⌉−1 working processes,
//!   proposals route through the coordinator (classic Paxos, 3 message
//!   delays), deciding on a majority.
//! * **Blocked** — below a majority the log stops until recoveries.
//!
//! The crate is pure protocol logic: handlers return [`Effect`]s (sends,
//! durable-log appends, in-order deliveries) and the embedding driver
//! supplies the network, disk and clock. Durable appends *gate* the
//! protocol messages that depend on them, so stable-storage latency sits
//! on the critical path exactly as in the paper's testbed.
//!
//! ## Example
//!
//! ```
//! use paxos::{PaxosConfig, Replica, ReplicaId, Effect};
//!
//! // A replica is pure: feeding it events yields effects to apply.
//! let mut r0: Replica<String> = Replica::new(ReplicaId(0), PaxosConfig::lan(3), 0);
//! let effects = r0.on_tick(0); // first tick: heartbeat + election start
//! assert!(effects.iter().any(|e| matches!(e, Effect::Send { .. })));
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod acceptor;
mod config;
mod fd;
mod leader;
mod learner;
mod msg;
mod proposer;
mod replica;
mod types;

pub use acceptor::{Acceptor, AcceptorOut, Dest};
pub use config::PaxosConfig;
pub use fd::{FailureDetector, FdTransition, Mode};
pub use leader::{choose_decree, Leader, LeaderPhase};
pub use learner::{Delivery, Learner};
pub use msg::{AcceptedReport, CausalTag, Effect, Effects, Msg, PersistToken, Record};
pub use proposer::{PendingProposal, Proposer};
pub use replica::{Replica, ReplicaStatus};
pub use types::{
    Ballot, BallotClass, Batch, Decree, Membership, ProposalId, Quorums, Reconfig, ReplicaId, Slot,
};
