//! The full replica: all Paxos roles composed behind one sans-io facade.
//!
//! Every Treplica process runs proposer, acceptor, learner and (when
//! elected) coordinator. [`Replica`] wires them together and owns the
//! cross-cutting concerns: durability gating of acceptor messages,
//! leader election and the fast/classic/blocked mode rule, fast-round
//! collision recovery, proposal retries, and log catch-up.
//!
//! Drive it with four entry points — [`Replica::propose`],
//! [`Replica::on_message`], [`Replica::on_tick`],
//! [`Replica::on_persisted`] — and apply the returned [`Effect`]s.

use std::collections::BTreeMap;

use obs::{EventBuf, TraceEvent, MODE_BLOCKED, MODE_CLASSIC, MODE_FAST};

use crate::acceptor::{Acceptor, AcceptorOut, Dest};
use crate::config::PaxosConfig;
use crate::fd::{FailureDetector, Mode};
use crate::leader::{Leader, LeaderPhase};
use crate::learner::{Delivery, Learner};
use crate::msg::{Effect, Effects, Msg, PersistToken, Record};
use crate::proposer::Proposer;
use crate::types::{Ballot, Decree, Membership, ProposalId, Reconfig, ReplicaId, Slot};

/// Introspection snapshot of a replica (metrics and tests).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplicaStatus {
    /// Operating mode per the failure detector.
    pub mode: Mode,
    /// Whether this replica currently coordinates.
    pub leading: bool,
    /// Highest ballot observed.
    pub ballot: Ballot,
    /// Contiguously decided/delivered watermark.
    pub decided_upto: Slot,
    /// Proposals issued here and not yet delivered.
    pub pending_proposals: usize,
    /// Replicas the failure detector currently counts alive (self
    /// included) — the mode rule requires ⌈3N/4⌉ of them for `Fast`.
    pub alive: usize,
    /// Configuration epoch this replica currently operates under.
    pub epoch: u64,
    /// Ensemble size `N` of the current epoch (the mode rule's N).
    pub n: usize,
}

/// A complete Paxos/Fast Paxos replica (sans-io).
#[derive(Debug)]
pub struct Replica<V> {
    id: ReplicaId,
    config: PaxosConfig,
    acceptor: Acceptor<V>,
    learner: Learner<V>,
    leader: Leader<V>,
    proposer: Proposer<V>,
    fd: FailureDetector,
    /// Persist-token → messages released on completion.
    gated: BTreeMap<u64, Vec<(Dest, Msg<V>)>>,
    next_token: u64,
    now: u64,
    last_heartbeat: u64,
    prepare_started: u64,
    /// Highest ballot observed anywhere (election and routing hints).
    highest_ballot: Ballot,
    /// The fast window as announced by the coordinator's `Any`; cleared
    /// by any higher whole-range prepare (single-slot recovery prepares
    /// leave it open).
    fast_window: Option<Ballot>,
    /// Proposals that could not be routed yet (no leader/blocked).
    unrouted: Vec<(ProposalId, V)>,
    last_learn_request: u64,
    /// Watermark + first-observed time of an uncleared small lag behind
    /// a peer; drives the stalled-tail catch-up (see
    /// [`PaxosConfig::tail_catchup_grace_us`]).
    lag_since: Option<(Slot, u64)>,
    /// Set by [`Replica::recover`]: aggressively catch up (any positive
    /// lag triggers a learn request) until level with the ensemble.
    recovering: bool,
    /// A catch-up response revealed the peer truncated its history past
    /// our watermark: the middleware must perform a snapshot transfer.
    snapshot_needed: Option<(ReplicaId, Slot)>,
    /// The current configuration: epoch + member set. Quorum arithmetic,
    /// broadcasts and the failure detector all follow it.
    membership: Membership,
    /// A reconfiguration accepted by [`Replica::propose_reconfig`] while
    /// the coordinator held a fast ballot: assigned a slot as soon as
    /// the classic re-prepare completes.
    pending_reconfig: Option<Reconfig>,
    /// The slot a proposed `Reconfig` decree occupies. While set, the
    /// coordinator parks new assignments so no slot above the fence is
    /// decided under the old epoch; delivery of the fence slot clears it.
    reconfig_fence: Option<Slot>,
    /// This replica was removed from the configuration: it stops
    /// participating (it only answers catch-up requests) until the
    /// driver decommissions it.
    retired: bool,
    /// The configuration epoch in force at the delivery watermark: the
    /// epoch stamped onto [`Effect::Deliver`]. Starts at the replay
    /// base (0 for an empty log, the checkpoint's epoch after recovery
    /// or a snapshot transfer) and advances as replayed fences cross —
    /// so it tracks the epoch slots were *decided* under, which for a
    /// catching-up joiner lags its own configuration's epoch.
    log_epoch: u64,
    /// Structured trace events (disabled by default: plain construction
    /// keeps every pre-existing test silent). The driver drains this via
    /// [`Replica::take_trace_events`].
    trace: EventBuf,
    /// Mode at the last trace check, for `ModeSwitch` edge detection.
    /// Only maintained while tracing is enabled.
    last_mode: Mode,
}

fn mode_tag(mode: Mode) -> &'static str {
    match mode {
        Mode::Fast => MODE_FAST,
        Mode::Classic => MODE_CLASSIC,
        Mode::Blocked => MODE_BLOCKED,
    }
}

impl<V: Clone + Eq + std::fmt::Debug> Replica<V> {
    /// Creates a fresh replica (empty durable log), delivering from slot
    /// 0 and proposing under epoch 0, in the bootstrap configuration
    /// (config epoch 0, dense members `0..config.n`).
    pub fn new(id: ReplicaId, config: PaxosConfig, now: u64) -> Self {
        let membership = Membership::initial(config.n);
        Self::with_state(id, config, membership, Acceptor::new(), Slot::ZERO, 0, now)
    }

    /// Creates a fresh replica in an explicit (possibly sparse, possibly
    /// later-epoch) configuration — how a node provisioned mid-run joins
    /// the ensemble it was added to.
    pub fn new_with_membership(
        id: ReplicaId,
        config: PaxosConfig,
        membership: Membership,
        now: u64,
    ) -> Self {
        Self::with_state(id, config, membership, Acceptor::new(), Slot::ZERO, 0, now)
    }

    /// Reconstructs a replica after a crash: `records` is the replica's
    /// durable acceptor log, `start_slot` the application-checkpoint
    /// watermark — the learner resumes delivery there and re-learns the
    /// suffix from its peers (the paper's queue re-synchronization) —
    /// and `epoch` the new process incarnation (must be greater than any
    /// previous one, so proposal ids never collide across lifetimes).
    pub fn recover<'a, I>(
        id: ReplicaId,
        config: PaxosConfig,
        records: I,
        start_slot: Slot,
        epoch: u64,
        now: u64,
    ) -> Self
    where
        I: IntoIterator<Item = &'a Record<V>>,
        V: 'a,
    {
        let membership = Membership::initial(config.n);
        Self::recover_with_membership(id, config, membership, records, start_slot, epoch, now)
    }

    /// [`Replica::recover`] with an explicit configuration — the one the
    /// replica's durable metadata recorded at its last checkpoint. Log
    /// replay and catch-up re-apply any reconfigurations decided after
    /// that point (stale ones are ignored by the epoch check).
    #[allow(clippy::too_many_arguments)]
    pub fn recover_with_membership<'a, I>(
        id: ReplicaId,
        config: PaxosConfig,
        membership: Membership,
        records: I,
        start_slot: Slot,
        epoch: u64,
        now: u64,
    ) -> Self
    where
        I: IntoIterator<Item = &'a Record<V>>,
        V: 'a,
    {
        let acceptor = Acceptor::recover(records);
        let mut r = Self::with_state(id, config, membership, acceptor, start_slot, epoch, now);
        r.recovering = true;
        r
    }

    fn with_state(
        id: ReplicaId,
        config: PaxosConfig,
        membership: Membership,
        acceptor: Acceptor<V>,
        start_slot: Slot,
        epoch: u64,
        now: u64,
    ) -> Self {
        let quorums = membership.quorums();
        let mut fd = FailureDetector::new(id, quorums, config.fd_timeout_us, now);
        fd.set_membership(&membership, now);
        let retired = !membership.contains(id);
        Replica {
            id,
            acceptor,
            learner: Learner::new(quorums, start_slot),
            leader: Leader::new(id, quorums),
            proposer: Proposer::new(id, epoch),
            fd,
            gated: BTreeMap::new(),
            next_token: 0,
            now,
            last_heartbeat: 0,
            prepare_started: 0,
            highest_ballot: Ballot::BOTTOM,
            fast_window: None,
            unrouted: Vec::new(),
            last_learn_request: 0,
            lag_since: None,
            recovering: false,
            snapshot_needed: None,
            // Delivering from slot 0 means replaying history decided
            // under epoch 0 regardless of the boot configuration; a
            // recovery from a checkpoint resumes at its epoch.
            log_epoch: if start_slot == Slot::ZERO {
                0
            } else {
                membership.epoch()
            },
            membership,
            pending_reconfig: None,
            reconfig_fence: None,
            retired,
            trace: EventBuf::default(),
            last_mode: Mode::Blocked,
            config,
        }
    }

    /// Enables or disables structured trace emission. Off by default;
    /// when off no event is ever constructed or buffered.
    pub fn set_tracing(&mut self, on: bool) {
        self.trace.set_enabled(on);
        if on {
            self.last_mode = self.fd.mode(self.now);
        }
    }

    /// Drains the trace events buffered since the last call, in the
    /// order the protocol emitted them.
    pub fn take_trace_events(&mut self) -> Vec<TraceEvent> {
        self.trace.take()
    }

    /// Records a `ModeSwitch` edge if the detector's mode changed since
    /// the last check. No-op (one branch) when tracing is off.
    fn trace_mode_edge(&mut self) {
        if self.trace.enabled() {
            let mode = self.fd.mode(self.now);
            if mode != self.last_mode {
                self.trace.push(TraceEvent::ModeSwitch {
                    from: mode_tag(self.last_mode),
                    to: mode_tag(mode),
                });
                self.last_mode = mode;
            }
        }
    }

    /// Polls the failure detector's suspicion edges into the trace
    /// buffer ([`crate::FdTransition`] → `peer_suspected`/
    /// `peer_cleared`). Pure observation: the edges never feed back
    /// into `mode()` or any protocol decision, so tracing on or off
    /// cannot perturb a run.
    fn trace_fd_edges(&mut self) {
        if !self.trace.enabled() {
            return;
        }
        for tr in self.fd.poll_transitions(self.now) {
            self.trace.push(match tr {
                crate::FdTransition::Suspected { peer, silent_us } => TraceEvent::PeerSuspected {
                    peer: peer.0,
                    silent_us,
                },
                crate::FdTransition::Cleared { peer, suspected_us } => TraceEvent::PeerCleared {
                    peer: peer.0,
                    suspected_us,
                },
            });
        }
    }

    /// This replica's id.
    pub fn id(&self) -> ReplicaId {
        self.id
    }

    /// Introspection snapshot.
    pub fn status(&self) -> ReplicaStatus {
        ReplicaStatus {
            mode: self.fd.mode(self.now),
            leading: self.leader.is_leading(),
            ballot: self.highest_ballot,
            decided_upto: self.learner.next_deliver(),
            pending_proposals: self.proposer.pending_len() + self.unrouted.len(),
            alive: self.fd.alive_count(self.now),
            epoch: self.membership.epoch(),
            n: self.membership.n(),
        }
    }

    /// The current configuration (epoch + member set).
    pub fn membership(&self) -> &Membership {
        &self.membership
    }

    /// The configuration epoch this replica operates under.
    pub fn config_epoch(&self) -> u64 {
        self.membership.epoch()
    }

    /// The configuration epoch in force at the delivery watermark — the
    /// epoch the *next* delivered slot belongs to. Lags
    /// [`Replica::config_epoch`] while a joiner replays history decided
    /// under earlier epochs.
    pub fn log_epoch(&self) -> u64 {
        self.log_epoch
    }

    /// Whether this replica was removed by a reconfiguration and is
    /// waiting to be decommissioned.
    pub fn is_retired(&self) -> bool {
        self.retired
    }

    /// Contiguously decided watermark.
    pub fn decided_upto(&self) -> Slot {
        self.learner.next_deliver()
    }

    /// Current operating mode.
    pub fn mode(&self) -> Mode {
        self.fd.mode(self.now)
    }

    /// Whether this replica is the active coordinator.
    pub fn is_leader(&self) -> bool {
        self.leader.is_leading()
    }

    /// Whether this replica is still re-learning the backlog after a
    /// [`Replica::recover`] (clears once a peer reports no remaining lag).
    pub fn is_recovering(&self) -> bool {
        self.recovering
    }

    /// Discards consensus state below `upto` after the application
    /// checkpointed through it.
    pub fn truncate(&mut self, upto: Slot) {
        self.acceptor.truncate(upto);
        self.learner.truncate(upto);
    }

    fn observe_ballot(&mut self, ballot: Ballot) {
        self.leader.observe_round(ballot.round);
        if ballot > self.highest_ballot {
            if self.leader.is_leading() && ballot.node != self.id {
                self.leader.abdicate();
            }
            self.highest_ballot = ballot;
        }
    }

    /// Converts an acceptor output into effects, gating sends on
    /// persistence when a record is present.
    fn gate(&mut self, out: AcceptorOut<V>, fx: &mut Effects<V>) {
        match out.record {
            Some(record) => {
                if self.trace.enabled() {
                    self.trace.push(match &record {
                        Record::Promised(b) => TraceEvent::Promised {
                            round: b.round,
                            by: self.id.0,
                        },
                        Record::Accepted { ballot, slot, .. } => TraceEvent::Accepted {
                            slot: slot.0,
                            round: ballot.round,
                            fast: ballot.is_fast(),
                        },
                    });
                }
                let token = self.next_token;
                self.next_token += 1;
                self.gated.insert(token, out.sends);
                fx.persist(record, PersistToken(token));
            }
            None => self.emit(out.sends, fx),
        }
    }

    fn emit(&mut self, sends: Vec<(Dest, Msg<V>)>, fx: &mut Effects<V>) {
        for (dest, msg) in sends {
            match dest {
                Dest::One(to) => fx.send(to, msg),
                Dest::All => fx.broadcast(self.membership.members(), msg),
            }
        }
    }

    /// A durable write completed: release the gated messages.
    pub fn on_persisted(&mut self, token: PersistToken) -> Vec<Effect<V>> {
        let mut fx = Effects::new();
        if let Some(sends) = self.gated.remove(&token.0) {
            self.emit(sends, &mut fx);
        }
        fx.into_vec()
    }

    /// Re-routes a still-pending proposal immediately (used by
    /// middleware flow control to release withheld submissions without
    /// waiting for the retry timer). No-op if already delivered.
    pub fn nudge(&mut self, pid: ProposalId) -> Vec<Effect<V>> {
        let mut fx = Effects::new();
        if self.learner.was_delivered(pid) {
            return fx.into_vec();
        }
        if let Some(value) = self.proposer.pending_value(pid) {
            self.route(pid, value, &mut fx);
        }
        fx.into_vec()
    }

    /// Submits a new proposal; returns its id and the immediate effects.
    pub fn propose(&mut self, value: V) -> (ProposalId, Vec<Effect<V>>) {
        let pid = self
            .proposer
            .submit(value.clone(), self.now, self.config.propose_retry_us);
        self.trace.push(TraceEvent::ProposalIssued { seq: pid.seq });
        let mut fx = Effects::new();
        self.route(pid, value, &mut fx);
        (pid, fx.into_vec())
    }

    /// Routes a proposal according to the current mode: fast-broadcast to
    /// the acceptors, unicast to the coordinator, or park it.
    fn route(&mut self, pid: ProposalId, value: V, fx: &mut Effects<V>) {
        match self.fd.mode(self.now) {
            Mode::Blocked => {
                self.unrouted.push((pid, value));
            }
            mode => {
                // The fast window alone is not enough: the mode rule
                // forbids the fast path once the detector drops below
                // ⌈3N/4⌉ alive, even if no higher ballot closed the
                // window yet. Fall back to the coordinator instead.
                if mode == Mode::Fast && self.fast_window.is_some() {
                    fx.broadcast(self.membership.members(), Msg::FastPropose { pid, value });
                } else {
                    let owner = self.highest_ballot.node;
                    if self.highest_ballot > Ballot::BOTTOM && self.fd.is_alive(owner, self.now) {
                        fx.send(owner, Msg::Propose { pid, value });
                    } else {
                        self.unrouted.push((pid, value));
                    }
                }
            }
        }
    }

    /// Handles one incoming message.
    pub fn on_message(&mut self, from: ReplicaId, msg: Msg<V>, now: u64) -> Vec<Effect<V>> {
        self.now = self.now.max(now);
        if self.retired {
            // A removed replica no longer participates; it only answers
            // catch-up requests until the driver decommissions it.
            let mut fx = Effects::new();
            if let Msg::LearnRequest { from_slot } = msg {
                let (entries, truncated_below, decided_upto) =
                    self.learner.serve_learn(from_slot, self.config.learn_chunk);
                fx.send(
                    from,
                    Msg::LearnReply {
                        entries,
                        truncated_below,
                        decided_upto,
                    },
                );
            }
            return fx.into_vec();
        }
        self.fd.heard(from, self.now);
        self.trace_mode_edge();
        self.trace_fd_edges();
        let mut fx = Effects::new();
        match msg {
            Msg::Prepare {
                ballot,
                from_slot,
                only_slot,
            } => {
                self.observe_ballot(ballot);
                if only_slot.is_none() && self.fast_window.is_some_and(|w| ballot > w) {
                    self.fast_window = None;
                }
                let out = self.acceptor.on_prepare(from, ballot, from_slot, only_slot);
                self.gate(out, &mut fx);
            }
            Msg::Promise {
                ballot,
                from_slot: _,
                only_slot,
                accepted,
            } => match only_slot {
                Some(slot) => {
                    if let Some((decree, losers)) = self
                        .leader
                        .on_recovery_promise(from, ballot, slot, accepted)
                    {
                        fx.broadcast(
                            self.membership.members(),
                            Msg::Accept {
                                ballot,
                                slot,
                                decree,
                            },
                        );
                        // Rescue collision losers right away: assign them
                        // fresh slots under the main ballot instead of
                        // waiting out their proposers' retry timers (or
                        // park them while a reconfiguration fence holds).
                        for (pid, value) in losers {
                            if !self.learner.was_delivered(pid) && self.leader.is_leading() {
                                if self.reconfig_fence.is_some() {
                                    self.unrouted.push((pid, value));
                                    continue;
                                }
                                let rescue_slot = self.leader.assign_slot();
                                let main = self.leader.ballot;
                                fx.broadcast(
                                    self.membership.members(),
                                    Msg::Accept {
                                        ballot: main,
                                        slot: rescue_slot,
                                        decree: Decree::Value(pid, value),
                                    },
                                );
                            }
                        }
                    }
                }
                None => {
                    if let Some((plan, next_free)) = self.leader.on_promise(from, ballot, accepted)
                    {
                        self.issue_plan(ballot, plan, next_free, &mut fx);
                    }
                }
            },
            Msg::Accept {
                ballot,
                slot,
                decree,
            } => {
                self.observe_ballot(ballot);
                let out = self.acceptor.on_accept(ballot, slot, decree);
                self.gate(out, &mut fx);
            }
            Msg::Any { ballot, from_slot } => {
                self.observe_ballot(ballot);
                let out = self.acceptor.on_any(ballot, from_slot);
                self.gate(out, &mut fx);
                if self.acceptor.fast_window_open() {
                    self.fast_window = Some(ballot);
                    self.flush_unrouted(&mut fx);
                }
            }
            Msg::FastPropose { pid, value } => {
                if self.learner.was_delivered(pid) {
                    // Retry of something already decided: ignore.
                } else if self.acceptor.fast_window_open() {
                    let out = self.acceptor.on_fast_propose(pid, value);
                    self.gate(out, &mut fx);
                } else if self.leader.is_leading() && !self.leader.ballot.is_fast() {
                    // Mode switched under the proposer: treat as classic.
                    self.classic_assign(pid, value, &mut fx);
                }
            }
            Msg::Propose { pid, value } => {
                if self.learner.was_delivered(pid) {
                    // Already decided; drop the retry.
                } else if self.leader.is_leading() {
                    if self.leader.ballot.is_fast() {
                        if self.fd.mode(self.now) == Mode::Fast {
                            // Relay onto the fast path on the proposer's behalf.
                            fx.broadcast(
                                self.membership.members(),
                                Msg::FastPropose { pid, value },
                            );
                        } else {
                            // Fast ballot but the detector has degraded:
                            // park until the class-mismatch election
                            // re-prepares with a classic ballot.
                            self.unrouted.push((pid, value));
                        }
                    } else {
                        self.classic_assign(pid, value, &mut fx);
                    }
                } else if self.leader.phase == LeaderPhase::Preparing {
                    // Phase 1 in flight: park and serve once leading.
                    self.unrouted.push((pid, value));
                }
                // Otherwise drop; the proposer's retry will re-route.
            }
            Msg::Accepted {
                ballot,
                slot,
                decree,
            } => {
                self.observe_ballot(ballot);
                if ballot.is_fast() {
                    self.leader.observe_occupied(slot);
                }
                let deliveries = self
                    .learner
                    .on_accepted(from, ballot, slot, decree, self.now);
                self.handle_deliveries(deliveries, &mut fx);
                if self.learner.is_decided(slot) {
                    self.leader.finish_recovery(slot);
                }
                self.maybe_recover_collisions(&mut fx);
            }
            Msg::Alive {
                ballot,
                decided_upto,
            } => {
                self.observe_ballot(ballot);
                if from == self.id {
                    // Our own looped-back heartbeat carries no catch-up
                    // information.
                    return fx.into_vec();
                }
                // Catch-up: a peer is decidedly ahead of us.
                let next = self.learner.next_deliver();
                let behind = decided_upto.0.saturating_sub(next.0);
                if self.recovering && behind == 0 {
                    self.recovering = false;
                }
                let threshold = if self.recovering {
                    0
                } else {
                    self.config.catchup_lag_slots
                };
                // A small lag is normally transient (broadcasts still in
                // flight) — but if it persists with no delivery progress,
                // the missing `Accepted`s were lost for good (e.g. the
                // tail of a burst over a lossy link) and only an explicit
                // learn request can close it.
                let tail_stalled = if behind == 0 {
                    self.lag_since = None;
                    false
                } else {
                    match self.lag_since {
                        Some((mark, since)) if mark == next => {
                            self.now.saturating_sub(since) > self.config.tail_catchup_grace_us
                        }
                        _ => {
                            self.lag_since = Some((next, self.now));
                            false
                        }
                    }
                };
                if (behind > threshold || tail_stalled)
                    && self.now.saturating_sub(self.last_learn_request)
                        > self.config.alive_catchup_throttle_us
                {
                    self.last_learn_request = self.now;
                    fx.send(
                        from,
                        Msg::LearnRequest {
                            from_slot: self.learner.next_deliver(),
                        },
                    );
                }
            }
            Msg::LearnRequest { from_slot } => {
                let (entries, truncated_below, decided_upto) =
                    self.learner.serve_learn(from_slot, self.config.learn_chunk);
                fx.send(
                    from,
                    Msg::LearnReply {
                        entries,
                        truncated_below,
                        decided_upto,
                    },
                );
            }
            Msg::LearnReply {
                entries,
                truncated_below,
                decided_upto,
            } => {
                let deliveries = self.learner.on_learned(entries);
                self.handle_deliveries(deliveries, &mut fx);
                if truncated_below > self.learner.next_deliver() {
                    // The responder no longer stores the slots we need:
                    // flag for a middleware-level snapshot transfer.
                    self.snapshot_needed = Some((from, truncated_below));
                } else if decided_upto > self.learner.next_deliver() {
                    self.last_learn_request = self.now;
                    fx.send(
                        from,
                        Msg::LearnRequest {
                            from_slot: self.learner.next_deliver(),
                        },
                    );
                }
            }
        }
        fx.into_vec()
    }

    /// Takes the pending snapshot-transfer requirement, if a catch-up
    /// exchange revealed one: `(peer, its truncation watermark)`.
    pub fn take_snapshot_needed(&mut self) -> Option<(ReplicaId, Slot)> {
        self.snapshot_needed.take()
    }

    /// Installs the result of an external state transfer covering all
    /// slots below `slot`: delivery resumes there under `epoch` (the
    /// configuration epoch in force at the transfer's watermark), and
    /// any decided entries already known past the new watermark are
    /// delivered.
    pub fn fast_forward(&mut self, slot: Slot, epoch: u64) -> Vec<Effect<V>> {
        self.log_epoch = self.log_epoch.max(epoch);
        self.learner.fast_forward(slot);
        if let Some((_, needed)) = self.snapshot_needed {
            if slot >= needed {
                self.snapshot_needed = None;
            }
        }
        let mut fx = Effects::new();
        let deliveries = self.learner.drain();
        self.handle_deliveries(deliveries, &mut fx);
        fx.into_vec()
    }

    /// Installs a configuration learned out-of-band (a snapshot transfer
    /// whose checkpoint postdates one or more reconfigurations). Ignored
    /// unless strictly newer than the current epoch.
    pub fn adopt_membership(&mut self, membership: Membership) {
        if membership.epoch() <= self.membership.epoch() {
            return;
        }
        self.install_membership(membership, None);
    }

    /// Emits deliveries, applying any reconfiguration fence the learner
    /// surfaced and resuming delivery past it.
    fn handle_deliveries(&mut self, deliveries: Vec<Delivery<V>>, fx: &mut Effects<V>) {
        let mut batch = deliveries;
        loop {
            for d in batch {
                self.trace.push(TraceEvent::Decided {
                    slot: d.slot.0,
                    noop: false,
                });
                self.proposer.delivered(d.pid);
                fx.deliver(d.slot, d.pid, d.value, self.log_epoch);
            }
            match self.learner.take_reconfig() {
                Some((slot, rc)) => {
                    self.apply_reconfig(slot, rc, fx);
                    batch = self.learner.ack_reconfig(slot);
                }
                None => break,
            }
        }
    }

    /// Applies a delivered `Reconfig` decree: the fence at `slot` lifts
    /// and (unless the decree is stale) the new configuration takes
    /// over — quorum arithmetic, failure detection and broadcasts all
    /// switch to the new epoch's member set from this slot on.
    fn apply_reconfig(&mut self, slot: Slot, rc: Reconfig, fx: &mut Effects<V>) {
        if self.reconfig_fence == Some(slot) {
            self.reconfig_fence = None;
        }
        // Even a stale fence (replayed by a node already configured at
        // or past `rc.epoch`) marks where the log's epoch advances:
        // everything above this slot was decided under `rc.epoch`.
        self.log_epoch = self.log_epoch.max(rc.epoch);
        let Some(next) = self.membership.apply(&rc) else {
            // Stale: a decree replayed through catch-up after the epoch
            // already advanced. The fence still lifts; nothing changes.
            return;
        };
        self.install_membership(next, Some(slot));
        fx.reconfigured(slot, self.membership.clone());
        if !self.retired {
            // Proposals parked behind the fence can flow again.
            self.flush_unrouted(fx);
        }
    }

    fn install_membership(&mut self, membership: Membership, slot: Option<Slot>) {
        self.membership = membership;
        let quorums = self.membership.quorums();
        self.learner.set_quorums(quorums);
        self.leader.set_quorums(quorums);
        self.fd.set_membership(&self.membership, self.now);
        self.retired = !self.membership.contains(self.id);
        self.trace.push(TraceEvent::EpochChanged {
            epoch: self.membership.epoch(),
            n: self.membership.n() as u32,
            slot: slot.map(|s| s.0).unwrap_or(0),
        });
    }

    /// The snapshot-transfer watermark a recovering peer asked us about:
    /// slots below this are no longer in our log (checkpoint required).
    pub fn truncated_below(&self) -> Slot {
        self.learner.truncated_below()
    }

    /// Requests a membership change, ordered through the log as a fenced
    /// [`Decree::Reconfig`]. Returns `false` (no effects) unless this
    /// replica is currently leading with no other change in flight and
    /// the command is valid against the current membership.
    ///
    /// Under a classic ballot the command is assigned its slot — the
    /// fence — immediately; under a fast ballot the coordinator first
    /// re-prepares classically (closing the fast window so no fast
    /// proposal can claim a slot above the fence under the old epoch)
    /// and assigns the command when phase 1 completes.
    pub fn propose_reconfig(
        &mut self,
        add: Vec<ReplicaId>,
        remove: Vec<ReplicaId>,
    ) -> (bool, Vec<Effect<V>>) {
        let mut fx = Effects::new();
        if self.retired
            || !self.leader.is_leading()
            || self.pending_reconfig.is_some()
            || self.reconfig_fence.is_some()
            || self.fd.mode(self.now) == Mode::Blocked
        {
            return (false, fx.into_vec());
        }
        let rc = Reconfig {
            epoch: self.membership.epoch().saturating_add(1),
            add,
            remove,
        };
        if self.membership.apply(&rc).is_none() {
            return (false, fx.into_vec());
        }
        self.trace.push(TraceEvent::ReconfigProposed {
            epoch: rc.epoch,
            adds: rc.add.len() as u32,
            removes: rc.remove.len() as u32,
        });
        if self.leader.ballot.is_fast() {
            self.pending_reconfig = Some(rc);
            let from_slot = self.learner.next_deliver();
            let ballot = self.leader.start_prepare(false, from_slot);
            self.trace.push(TraceEvent::PrepareStarted {
                round: ballot.round,
                fast: false,
            });
            self.highest_ballot = ballot;
            self.fast_window = None;
            self.prepare_started = self.now;
            fx.broadcast(
                self.membership.members(),
                Msg::Prepare {
                    ballot,
                    from_slot,
                    only_slot: None,
                },
            );
        } else {
            self.assign_reconfig(rc, &mut fx);
        }
        (true, fx.into_vec())
    }

    /// Assigns a validated reconfiguration its fence slot under the
    /// current classic ballot.
    fn assign_reconfig(&mut self, rc: Reconfig, fx: &mut Effects<V>) {
        if rc.epoch != self.membership.epoch().saturating_add(1) {
            return; // The epoch advanced since the request: stale.
        }
        let slot = self.leader.assign_slot();
        self.reconfig_fence = Some(slot);
        let ballot = self.leader.ballot;
        fx.broadcast(
            self.membership.members(),
            Msg::Accept {
                ballot,
                slot,
                decree: Decree::Reconfig(rc),
            },
        );
    }

    fn classic_assign(&mut self, pid: ProposalId, value: V, fx: &mut Effects<V>) {
        if self.fd.mode(self.now) == Mode::Blocked || self.reconfig_fence.is_some() {
            // Blocked, or a reconfiguration fence holds: no slot above
            // the fence may be assigned under the old epoch.
            self.unrouted.push((pid, value));
            return;
        }
        let slot = self.leader.assign_slot();
        let ballot = self.leader.ballot;
        fx.broadcast(
            self.membership.members(),
            Msg::Accept {
                ballot,
                slot,
                decree: Decree::Value(pid, value),
            },
        );
    }

    fn issue_plan(
        &mut self,
        ballot: Ballot,
        plan: Vec<(Slot, Decree<V>)>,
        next_free: Slot,
        fx: &mut Effects<V>,
    ) {
        // `issue_plan` runs exactly when phase 1 completes and the
        // coordinator transitions to `Leading`.
        self.trace.push(TraceEvent::LeaderElected {
            round: ballot.round,
            fast: ballot.is_fast(),
        });
        for (slot, decree) in plan {
            fx.broadcast(
                self.membership.members(),
                Msg::Accept {
                    ballot,
                    slot,
                    decree,
                },
            );
        }
        if ballot.is_fast() {
            // Only open the fast window if the mode rule still holds at
            // send time; the detector can degrade mid-election, and an
            // `Any` sent then would invite fast proposals that can never
            // gather a fast quorum. The class-mismatch election will
            // re-prepare with a classic ballot instead.
            if self.fd.mode(self.now) == Mode::Fast {
                fx.broadcast(
                    self.membership.members(),
                    Msg::Any {
                        ballot,
                        from_slot: next_free,
                    },
                );
            }
        } else {
            // A reconfiguration waiting for this classic ballot gets its
            // fence slot first, ahead of any parked proposals.
            if let Some(rc) = self.pending_reconfig.take() {
                self.assign_reconfig(rc, fx);
            }
            self.flush_unrouted(fx);
        }
    }

    fn flush_unrouted(&mut self, fx: &mut Effects<V>) {
        let parked = std::mem::take(&mut self.unrouted);
        for (pid, value) in parked {
            if self.learner.was_delivered(pid) {
                continue;
            }
            if self.leader.is_leading() && !self.leader.ballot.is_fast() {
                // We are the classic coordinator: assign directly
                // (covers proposals parked while phase 1 ran).
                self.classic_assign(pid, value, fx);
            } else {
                self.route(pid, value, fx);
            }
        }
    }

    fn maybe_recover_collisions(&mut self, fx: &mut Effects<V>) {
        if !self.leader.is_leading() || !self.leader.ballot.is_fast() {
            return;
        }
        let stuck = self
            .learner
            .stuck_slots(self.now, self.config.collision_timeout_us);
        for slot in stuck {
            if self.learner.is_decided(slot) {
                continue;
            }
            if let Some(ballot) = self.leader.start_recovery(slot, self.now) {
                fx.broadcast(
                    self.membership.members(),
                    Msg::Prepare {
                        ballot,
                        from_slot: slot,
                        only_slot: Some(slot),
                    },
                );
            }
        }
    }

    /// Periodic driver callback: heartbeats, election, retries, and
    /// collision/recovery timeouts. Call it every few tens of
    /// milliseconds of driver time.
    pub fn on_tick(&mut self, now: u64) -> Vec<Effect<V>> {
        self.now = self.now.max(now);
        if self.retired {
            return Vec::new();
        }
        self.trace_mode_edge();
        self.trace_fd_edges();
        let mut fx = Effects::new();

        if self.recovering && self.membership.n() == 1 {
            // A singleton ensemble has no peers to learn from: its log
            // replay alone is complete recovery.
            self.recovering = false;
        }

        // Heartbeats.
        if self.now.saturating_sub(self.last_heartbeat) >= self.config.heartbeat_interval_us {
            self.last_heartbeat = self.now;
            fx.broadcast(
                self.membership.members(),
                Msg::Alive {
                    ballot: self.highest_ballot,
                    decided_upto: self.learner.next_deliver(),
                },
            );
        }

        let mode = self.fd.mode(self.now);
        // While a reconfiguration is in flight, hold the classic class:
        // a fast re-prepare would reopen the window and let fast
        // proposals claim slots above the fence under the old epoch.
        let want_fast = mode == Mode::Fast
            && self.config.fast_enabled
            && self.pending_reconfig.is_none()
            && self.reconfig_fence.is_none();

        if mode != Mode::Blocked && self.fd.candidate(self.now) == self.id {
            let owner_dead = self.highest_ballot != Ballot::BOTTOM
                && !self.fd.is_alive(self.highest_ballot.node, self.now);
            let class_mismatch =
                self.leader.is_leading() && self.leader.ballot.is_fast() != want_fast;
            let should_elect = match self.leader.phase {
                LeaderPhase::Idle => {
                    self.highest_ballot == Ballot::BOTTOM
                        || owner_dead
                        || self.highest_ballot.node == self.id
                }
                LeaderPhase::Preparing => {
                    // Election stalled (lost messages): retry.
                    if self.now.saturating_sub(self.prepare_started) > self.config.prepare_grace_us
                        && self.leader.promise_count() >= 1
                    {
                        // Grace expired: finalize with the quorum we have.
                        let ballot = self.leader.ballot;
                        if let Some((plan, next_free)) = self.leader.finalize_prepare() {
                            self.issue_plan(ballot, plan, next_free, &mut fx);
                        }
                    }
                    self.now.saturating_sub(self.prepare_started) > self.config.fd_timeout_us
                }
                LeaderPhase::Leading => class_mismatch,
            };
            if should_elect {
                let from_slot = self.learner.next_deliver();
                let ballot = self.leader.start_prepare(want_fast, from_slot);
                self.trace.push(TraceEvent::PrepareStarted {
                    round: ballot.round,
                    fast: ballot.is_fast(),
                });
                self.highest_ballot = ballot;
                self.fast_window = None;
                self.prepare_started = self.now;
                fx.broadcast(
                    self.membership.members(),
                    Msg::Prepare {
                        ballot,
                        from_slot,
                        only_slot: None,
                    },
                );
            }
        }

        // Gap repair: if delivery is blocked by a hole whose slot was
        // decided while we were down (or deaf), ongoing traffic can
        // never fill it — fetch it explicitly from a live peer.
        if mode != Mode::Blocked
            && self
                .learner
                .gapped(self.now, 2 * self.config.collision_timeout_us)
            && self.now.saturating_sub(self.last_learn_request) > self.config.gap_repair_throttle_us
        {
            let target = if self.highest_ballot != Ballot::BOTTOM
                && self.highest_ballot.node != self.id
                && self.fd.is_alive(self.highest_ballot.node, self.now)
            {
                Some(self.highest_ballot.node)
            } else {
                self.fd.alive(self.now).into_iter().find(|p| *p != self.id)
            };
            if let Some(target) = target {
                self.last_learn_request = self.now;
                fx.send(
                    target,
                    Msg::LearnRequest {
                        from_slot: self.learner.next_deliver(),
                    },
                );
            }
        }

        // Proposal retries and parked proposals.
        if mode != Mode::Blocked {
            let expired = self
                .proposer
                .expired(self.now, self.config.propose_retry_us);
            for (pid, value) in expired {
                if !self.learner.was_delivered(pid) {
                    self.route(pid, value, &mut fx);
                }
            }
            self.flush_unrouted(&mut fx);
        }

        // Collision recovery by timeout, and stalled recovery restart.
        self.maybe_recover_collisions(&mut fx);
        if self.leader.is_leading() {
            for slot in self
                .leader
                .stalled_recoveries(self.now, 4 * self.config.collision_timeout_us)
            {
                self.leader.cancel_recovery(slot);
                if let Some(ballot) = self.leader.start_recovery(slot, self.now) {
                    fx.broadcast(
                        self.membership.members(),
                        Msg::Prepare {
                            ballot,
                            from_slot: slot,
                            only_slot: Some(slot),
                        },
                    );
                }
            }
        }

        fx.into_vec()
    }
}
