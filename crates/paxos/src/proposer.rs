//! The proposer role: issues proposals and retries orphans.
//!
//! A proposal may be orphaned by a fast-round collision (the recovery
//! decides the competing value and this one lands nowhere) or by plain
//! message loss. The proposer keeps every proposal pending until its id
//! is delivered locally, re-submitting after a timeout; learner-side
//! deduplication keeps retries exactly-once.

use std::collections::BTreeMap;

use crate::types::{ProposalId, ReplicaId};

/// A proposal awaiting delivery.
#[derive(Debug, Clone)]
pub struct PendingProposal<V> {
    /// The value proposed.
    pub value: V,
    /// Driver-clock deadline (µs) after which it is re-submitted.
    pub deadline: u64,
    /// Number of submissions so far.
    pub attempts: u32,
}

/// Volatile proposer state.
#[derive(Debug)]
pub struct Proposer<V> {
    id: ReplicaId,
    epoch: u64,
    next_seq: u64,
    pending: BTreeMap<ProposalId, PendingProposal<V>>,
}

impl<V: Clone> Proposer<V> {
    /// Creates the proposer for replica `id` running as process
    /// incarnation `epoch` (restarts must use a fresh epoch).
    pub fn new(id: ReplicaId, epoch: u64) -> Self {
        Proposer {
            id,
            epoch,
            next_seq: 0,
            pending: BTreeMap::new(),
        }
    }

    /// Registers a new proposal, returning its id.
    pub fn submit(&mut self, value: V, now: u64, retry_us: u64) -> ProposalId {
        let pid = ProposalId {
            node: self.id,
            epoch: self.epoch,
            seq: self.next_seq,
        };
        self.next_seq += 1;
        self.pending.insert(
            pid,
            PendingProposal {
                value,
                deadline: now + retry_us,
                attempts: 1,
            },
        );
        pid
    }

    /// Marks `pid` delivered; returns whether it was pending here.
    pub fn delivered(&mut self, pid: ProposalId) -> bool {
        self.pending.remove(&pid).is_some()
    }

    /// Proposals whose deadline has passed; bumps their deadline (with
    /// exponential backoff, capped at 8× the base interval, so retry
    /// storms cannot amplify congestion) and attempt count, returning
    /// `(pid, value)` pairs to re-submit.
    pub fn expired(&mut self, now: u64, retry_us: u64) -> Vec<(ProposalId, V)> {
        let mut out = Vec::new();
        for (pid, p) in self.pending.iter_mut() {
            if now >= p.deadline {
                let backoff = retry_us.saturating_mul(1 << p.attempts.min(3));
                p.deadline = now + backoff;
                p.attempts += 1;
                out.push((*pid, p.value.clone()));
            }
        }
        out
    }

    /// Number of proposals awaiting delivery.
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }

    /// The value of a still-pending proposal (for explicit re-routing).
    pub fn pending_value(&self, pid: ProposalId) -> Option<V> {
        self.pending.get(&pid).map(|p| p.value.clone())
    }

    /// Iterates over pending proposals (for tests/metrics).
    pub fn pending(&self) -> impl Iterator<Item = (&ProposalId, &PendingProposal<V>)> {
        self.pending.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn submit_assigns_unique_ids() {
        let mut p: Proposer<&str> = Proposer::new(ReplicaId(3), 0);
        let a = p.submit("a", 0, 100);
        let b = p.submit("b", 0, 100);
        assert_ne!(a, b);
        assert_eq!(a.node, ReplicaId(3));
        assert_eq!(p.pending_len(), 2);
    }

    #[test]
    fn delivered_clears_pending() {
        let mut p: Proposer<&str> = Proposer::new(ReplicaId(0), 0);
        let a = p.submit("a", 0, 100);
        assert!(p.delivered(a));
        assert!(!p.delivered(a), "second delivery is not pending");
        assert_eq!(p.pending_len(), 0);
    }

    #[test]
    fn expiry_backs_off_exponentially() {
        let mut p: Proposer<&str> = Proposer::new(ReplicaId(0), 0);
        let a = p.submit("a", 0, 100);
        assert!(p.expired(50, 100).is_empty());
        // First expiry at deadline 100: re-arms with 2× backoff.
        let again = p.expired(120, 100);
        assert_eq!(again, vec![(a, "a")]);
        assert!(p.expired(310, 100).is_empty(), "backoff deadline is 320");
        let third = p.expired(330, 100);
        assert_eq!(third.len(), 1);
        assert_eq!(p.pending().next().unwrap().1.attempts, 3);
        // Backoff caps at 8× the base interval.
        p.expired(10_000, 100);
        p.expired(20_000, 100);
        let last = p.pending().next().unwrap().1;
        assert!(last.deadline <= 20_000 + 800);
    }
}

#[cfg(test)]
mod pending_value_tests {
    use super::*;

    #[test]
    fn pending_value_lookup() {
        let mut p: Proposer<&str> = Proposer::new(ReplicaId(0), 0);
        let a = p.submit("x", 0, 100);
        assert_eq!(p.pending_value(a), Some("x"));
        p.delivered(a);
        assert_eq!(p.pending_value(a), None);
    }
}
