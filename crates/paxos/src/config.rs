//! Protocol tuning knobs.

/// Timing and sizing parameters of the protocol (all times in µs of the
/// driver's clock).
#[derive(Debug, Clone)]
pub struct PaxosConfig {
    /// Ensemble size `N`.
    pub n: usize,
    /// Heartbeat broadcast period.
    pub heartbeat_interval_us: u64,
    /// Failure-detector suspicion timeout (should be several heartbeats).
    pub fd_timeout_us: u64,
    /// How long a proposer waits for its proposal to be delivered before
    /// re-proposing (must exceed a typical commit latency).
    pub propose_retry_us: u64,
    /// How long the coordinator lets fast-round votes sit undecided
    /// before starting collision recovery for the slot.
    pub collision_timeout_us: u64,
    /// Whether fast rounds are ever used. With `false` the ensemble is a
    /// pure classic-Paxos deployment (the baseline configuration).
    pub fast_enabled: bool,
    /// Maximum decided entries in one catch-up reply.
    pub learn_chunk: usize,
    /// How far (slots) a peer may run ahead before we ask to be caught
    /// up instead of waiting for straggling `Accepted` broadcasts.
    pub catchup_lag_slots: u64,
    /// Minimum spacing between heartbeat-triggered `LearnRequest`s, so
    /// a flurry of `Alive` messages from many peers cannot stampede the
    /// catch-up path.
    pub alive_catchup_throttle_us: u64,
    /// Minimum spacing between gap-repair `LearnRequest`s issued from
    /// the tick path when delivery is blocked on a hole.
    pub gap_repair_throttle_us: u64,
    /// How long a *small* lag (≤ `catchup_lag_slots`) may persist with
    /// no delivery progress before we request catch-up anyway. Covers
    /// the tail of the log: when the final `Accepted` broadcasts of a
    /// burst are lost, no further traffic will ever re-deliver them, so
    /// waiting for the lag threshold would strand the replica behind.
    pub tail_catchup_grace_us: u64,
    /// How long a new coordinator waits for promises beyond the classic
    /// quorum before finalizing phase 1 without the stragglers (waiting
    /// for everyone recovers minority-accepted values after outages).
    pub prepare_grace_us: u64,
}

impl PaxosConfig {
    /// Reasonable defaults for an ensemble of `n` on a LAN-like network.
    pub fn lan(n: usize) -> Self {
        PaxosConfig {
            n,
            heartbeat_interval_us: 100_000, // 100 ms
            fd_timeout_us: 350_000,         // 3.5 heartbeats
            propose_retry_us: 1_000_000,    // 1 s
            collision_timeout_us: 150_000,  // 150 ms
            fast_enabled: true,
            learn_chunk: 2_000,
            catchup_lag_slots: 8,
            alive_catchup_throttle_us: 50_000,
            gap_repair_throttle_us: 100_000,
            tail_catchup_grace_us: 400_000,
            prepare_grace_us: 200_000,
        }
    }

    /// Same as [`PaxosConfig::lan`] but with fast rounds disabled.
    pub fn lan_classic_only(n: usize) -> Self {
        PaxosConfig {
            fast_enabled: false,
            ..PaxosConfig::lan(n)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lan_defaults_are_consistent() {
        let c = PaxosConfig::lan(5);
        assert!(c.fd_timeout_us > 2 * c.heartbeat_interval_us);
        assert!(c.propose_retry_us > c.collision_timeout_us);
        assert!(c.fast_enabled);
        // Stalled-tail catch-up must out-wait ordinary commit latency
        // (several heartbeats) but fire well before a proposal retry.
        assert!(c.tail_catchup_grace_us > 2 * c.heartbeat_interval_us);
        assert!(c.tail_catchup_grace_us < c.propose_retry_us);
        assert!(c.alive_catchup_throttle_us < c.heartbeat_interval_us);
    }

    #[test]
    fn classic_only_disables_fast() {
        assert!(!PaxosConfig::lan_classic_only(5).fast_enabled);
    }
}
