//! The learner role: quorum detection, in-order delivery, catch-up.
//!
//! Learners watch the `Accepted` announcements broadcast by acceptors.
//! A slot decides when a single `(ballot, decree)` gathers the ballot's
//! quorum — the classic majority for classic ballots, ⌈3N/4⌉ for fast
//! ballots. Decided decrees are delivered in contiguous slot order; real
//! values are deduplicated by [`ProposalId`] so collision-recovery
//! re-proposals and proposer retries stay exactly-once.

use std::collections::{BTreeMap, BTreeSet};

use crate::types::{Ballot, Decree, ProposalId, Quorums, Reconfig, ReplicaId, Slot};

/// One delivery produced by the learner.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Delivery<V> {
    /// The decided slot.
    pub slot: Slot,
    /// Proposal identity.
    pub pid: ProposalId,
    /// The decided value.
    pub value: V,
}

/// Votes gathered for one undecided slot.
#[derive(Debug)]
struct SlotVotes<V> {
    /// ballot → (acceptor → decree). An acceptor votes at most once per
    /// ballot for a slot.
    by_ballot: BTreeMap<Ballot, BTreeMap<ReplicaId, Decree<V>>>,
    /// First time (driver clock, µs) a vote was recorded — used by the
    /// coordinator's collision timeout.
    first_vote_at: u64,
}

/// The learner.
#[derive(Debug)]
pub struct Learner<V> {
    quorums: Quorums,
    votes: BTreeMap<Slot, SlotVotes<V>>,
    decided: BTreeMap<Slot, Decree<V>>,
    next_deliver: Slot,
    delivered_pids: BTreeSet<ProposalId>,
    truncated_below: Slot,
    /// A decided `Reconfig` sitting at the delivery watermark: the
    /// fence. Delivery stops here until the replica applies the
    /// membership switch and calls [`Learner::ack_reconfig`].
    pending_reconfig: Option<(Slot, Reconfig)>,
}

/// Counts occurrences of each decree in `votes` without hashing: quorums
/// are tiny (N ≤ a handful of replicas), so a linear-scan Vec counter is
/// both deterministic and faster than building a map.
fn count_votes<'a, V: Eq>(
    votes: impl Iterator<Item = &'a Decree<V>>,
) -> Vec<(&'a Decree<V>, usize)> {
    let mut counts: Vec<(&Decree<V>, usize)> = Vec::new();
    for d in votes {
        match counts.iter_mut().find(|(k, _)| *k == d) {
            Some((_, n)) => *n += 1,
            None => counts.push((d, 1)),
        }
    }
    counts
}

impl<V: Clone + Eq> Learner<V> {
    /// Creates a learner for an ensemble of `n` replicas, delivering from
    /// slot `start` (0 for a fresh ensemble; the checkpoint watermark for
    /// a recovering replica).
    pub fn new(quorums: Quorums, start: Slot) -> Self {
        Learner {
            quorums,
            votes: BTreeMap::new(),
            decided: BTreeMap::new(),
            next_deliver: start,
            delivered_pids: BTreeSet::new(),
            truncated_below: start,
            pending_reconfig: None,
        }
    }

    /// Switches the quorum arithmetic to a new epoch's `N` (applied by
    /// the replica exactly at the reconfiguration fence).
    pub fn set_quorums(&mut self, quorums: Quorums) {
        self.quorums = quorums;
    }

    /// Slots below this are decided and delivered locally.
    pub fn next_deliver(&self) -> Slot {
        self.next_deliver
    }

    /// Whether `slot` is known decided.
    pub fn is_decided(&self, slot: Slot) -> bool {
        slot < self.next_deliver || self.decided.contains_key(&slot)
    }

    /// Number of retained decided entries (metrics/tests).
    pub fn decided_len(&self) -> usize {
        self.decided.len()
    }

    fn required(&self, ballot: Ballot) -> usize {
        if ballot.is_fast() {
            self.quorums.fast()
        } else {
            self.quorums.classic()
        }
    }

    /// Records an `Accepted` announcement; returns any new in-order
    /// deliveries it unlocked.
    pub fn on_accepted(
        &mut self,
        from: ReplicaId,
        ballot: Ballot,
        slot: Slot,
        decree: Decree<V>,
        now: u64,
    ) -> Vec<Delivery<V>> {
        if self.is_decided(slot) {
            return Vec::new();
        }
        // Decision check for this ballot.
        let needed = self.required(ballot);
        let entry = self.votes.entry(slot).or_insert_with(|| SlotVotes {
            by_ballot: BTreeMap::new(),
            first_vote_at: now,
        });
        let ballot_votes = entry.by_ballot.entry(ballot).or_default();
        ballot_votes.insert(from, decree);

        let counts = count_votes(ballot_votes.values());
        // Scan votes in acceptor order, not hash order: at most one
        // decree can reach the quorum, but replays must take identical
        // paths bit-for-bit.
        let winner = ballot_votes
            .values()
            .find(|d| counts.iter().any(|(k, n)| k == d && *n >= needed))
            .cloned();
        match winner {
            Some(decree) => {
                self.votes.remove(&slot);
                self.record_decided(slot, decree);
                self.drain_deliveries()
            }
            None => Vec::new(),
        }
    }

    /// Merges externally learned decided entries (catch-up replies);
    /// returns unlocked deliveries.
    pub fn on_learned(&mut self, entries: Vec<(Slot, Decree<V>)>) -> Vec<Delivery<V>> {
        for (slot, decree) in entries {
            if !self.is_decided(slot) {
                self.votes.remove(&slot);
                self.record_decided(slot, decree);
            }
        }
        self.drain_deliveries()
    }

    fn record_decided(&mut self, slot: Slot, decree: Decree<V>) {
        self.decided.insert(slot, decree);
    }

    fn drain_deliveries(&mut self) -> Vec<Delivery<V>> {
        let mut out = Vec::new();
        while let Some(decree) = self.decided.get(&self.next_deliver) {
            match decree {
                Decree::Value(pid, value) => {
                    if self.delivered_pids.insert(*pid) {
                        out.push(Delivery {
                            slot: self.next_deliver,
                            pid: *pid,
                            value: value.clone(),
                        });
                    }
                }
                Decree::Noop => {}
                Decree::Reconfig(rc) => {
                    // The fence: everything below this slot is delivered
                    // under the old epoch. Stop here; the replica applies
                    // the membership switch and resumes delivery with
                    // `ack_reconfig`.
                    self.pending_reconfig = Some((self.next_deliver, rc.clone()));
                    break;
                }
            }
            self.next_deliver = self.next_deliver.next();
        }
        out
    }

    /// Takes the reconfiguration decree blocking delivery, if any.
    pub fn take_reconfig(&mut self) -> Option<(Slot, Reconfig)> {
        self.pending_reconfig.take()
    }

    /// Acknowledges the fence at `slot` after the membership switch was
    /// applied (or found stale): delivery resumes past it. Returns the
    /// deliveries unlocked by crossing the fence.
    pub fn ack_reconfig(&mut self, slot: Slot) -> Vec<Delivery<V>> {
        if self.next_deliver == slot {
            self.next_deliver = slot.next();
        }
        self.drain_deliveries()
    }

    /// Whether `pid` has been delivered already (proposer retry check).
    pub fn was_delivered(&self, pid: ProposalId) -> bool {
        self.delivered_pids.contains(&pid)
    }

    /// Serves a catch-up request: decided entries from
    /// `max(from_slot, truncated_below)`, at most `cap` of them.
    ///
    /// Returns `(entries, truncated_below, decided_upto)`.
    pub fn serve_learn(&self, from_slot: Slot, cap: usize) -> (Vec<(Slot, Decree<V>)>, Slot, Slot) {
        let start = from_slot.max(self.truncated_below);
        let entries: Vec<(Slot, Decree<V>)> = self
            .decided
            .range(start..)
            .take(cap)
            .map(|(s, d)| (*s, d.clone()))
            .collect();
        (entries, self.truncated_below, self.next_deliver)
    }

    /// Slots that look like fast-round casualties needing coordinator
    /// recovery: undecided, carrying votes, below the highest voted slot
    /// or older than `timeout_us`, and provably or plausibly stuck.
    ///
    /// Two triggers:
    /// * **impossibility** — enough acceptors voted differently that no
    ///   value can still reach the fast quorum;
    /// * **staleness** — votes have sat for `timeout_us` without a
    ///   decision (covers lost messages and crashed acceptors).
    pub fn stuck_slots(&self, now: u64, timeout_us: u64) -> Vec<Slot> {
        let mut out = Vec::new();
        for (slot, sv) in &self.votes {
            let stale = now.saturating_sub(sv.first_vote_at) >= timeout_us;
            let impossible = sv.by_ballot.iter().any(|(ballot, votes)| {
                if !ballot.is_fast() {
                    return false;
                }
                let needed = self.quorums.fast();
                let counts = count_votes(votes.values());
                let top = counts.iter().map(|(_, n)| *n).max().unwrap_or(0);
                let unvoted = self.quorums.n() - votes.len();
                top + unvoted < needed
            });
            if stale || impossible {
                out.push(*slot);
            }
        }
        out
    }

    /// Whether delivery is blocked by a gap: some slot above the
    /// delivery watermark is already decided (so the watermark slot can
    /// never be filled by ongoing traffic — it must be learned), or
    /// votes have been sitting above an undelivered hole for longer
    /// than `timeout_us`.
    pub fn gapped(&self, now: u64, timeout_us: u64) -> bool {
        if self.decided.keys().any(|s| *s > self.next_deliver) {
            return true;
        }
        self.votes.iter().any(|(s, sv)| {
            *s > self.next_deliver && now.saturating_sub(sv.first_vote_at) >= timeout_us
        })
    }

    /// The votes recorded for `slot` at `ballot` (coordinator recovery
    /// uses these as its phase-1 information source for O4 counting).
    pub fn votes_at(&self, slot: Slot, ballot: Ballot) -> Option<&BTreeMap<ReplicaId, Decree<V>>> {
        self.votes
            .get(&slot)
            .and_then(|sv| sv.by_ballot.get(&ballot))
    }

    /// Jumps delivery past `slot` after an external state transfer: the
    /// application state now covers everything below `slot`, so decided
    /// entries and votes below it are dropped without delivery.
    pub fn fast_forward(&mut self, slot: Slot) {
        if slot <= self.next_deliver {
            return;
        }
        self.decided = self.decided.split_off(&slot);
        self.votes = self.votes.split_off(&slot);
        self.next_deliver = slot;
        if self.truncated_below < slot {
            self.truncated_below = slot;
        }
        // A fence below the transfer watermark was subsumed by the
        // snapshot (which carries the membership it installed).
        if self
            .pending_reconfig
            .as_ref()
            .is_some_and(|(s, _)| *s < slot)
        {
            self.pending_reconfig = None;
        }
    }

    /// Delivers anything contiguous from the current watermark (used
    /// after [`Learner::fast_forward`]).
    pub fn drain(&mut self) -> Vec<Delivery<V>> {
        self.drain_deliveries()
    }

    /// Drops decided entries below `upto` (after a checkpoint covers
    /// them). Also forgets votes for slots below `upto`.
    pub fn truncate(&mut self, upto: Slot) {
        if upto <= self.truncated_below {
            return;
        }
        self.decided = self.decided.split_off(&upto);
        self.votes = self.votes.split_off(&upto);
        self.truncated_below = upto;
    }

    /// First retained decided slot boundary.
    pub fn truncated_below(&self) -> Slot {
        self.truncated_below
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pid(node: u32, seq: u64) -> ProposalId {
        ProposalId {
            node: ReplicaId(node),
            epoch: 0,
            seq,
        }
    }

    fn learner() -> Learner<&'static str> {
        Learner::new(Quorums::new(5), Slot::ZERO)
    }

    #[test]
    fn classic_decides_on_majority() {
        let mut l = learner();
        let b = Ballot::classic(1, ReplicaId(0));
        let d = Decree::Value(pid(0, 1), "v");
        assert!(l
            .on_accepted(ReplicaId(0), b, Slot(0), d.clone(), 0)
            .is_empty());
        assert!(l
            .on_accepted(ReplicaId(1), b, Slot(0), d.clone(), 0)
            .is_empty());
        let out = l.on_accepted(ReplicaId(2), b, Slot(0), d, 0);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].slot, Slot(0));
        assert_eq!(out[0].value, "v");
        assert_eq!(l.next_deliver(), Slot(1));
    }

    #[test]
    fn fast_requires_three_quarters() {
        let mut l = learner();
        let b = Ballot::fast(1, ReplicaId(0));
        let d = Decree::Value(pid(1, 1), "v");
        for i in 0..3 {
            assert!(l
                .on_accepted(ReplicaId(i), b, Slot(0), d.clone(), 0)
                .is_empty());
        }
        // 4th vote = ⌈3·5/4⌉ = 4 → decided.
        let out = l.on_accepted(ReplicaId(3), b, Slot(0), d, 0);
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn duplicate_votes_from_same_acceptor_count_once() {
        let mut l = learner();
        let b = Ballot::classic(1, ReplicaId(0));
        let d = Decree::Value(pid(0, 1), "v");
        l.on_accepted(ReplicaId(0), b, Slot(0), d.clone(), 0);
        l.on_accepted(ReplicaId(0), b, Slot(0), d.clone(), 0);
        let out = l.on_accepted(ReplicaId(0), b, Slot(0), d, 0);
        assert!(out.is_empty(), "one acceptor is not a quorum");
    }

    #[test]
    fn delivery_is_in_order_and_gap_blocked() {
        let mut l = learner();
        let b = Ballot::classic(1, ReplicaId(0));
        let d1 = Decree::Value(pid(0, 1), "one");
        for i in 0..3 {
            l.on_accepted(ReplicaId(i), b, Slot(1), d1.clone(), 0);
        }
        assert_eq!(l.next_deliver(), Slot(0), "slot 1 decided but 0 missing");
        let d0 = Decree::Value(pid(0, 2), "zero");
        let mut out = Vec::new();
        for i in 0..3 {
            out.extend(l.on_accepted(ReplicaId(i), b, Slot(0), d0.clone(), 0));
        }
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].value, "zero");
        assert_eq!(out[1].value, "one");
        assert_eq!(l.next_deliver(), Slot(2));
    }

    #[test]
    fn noop_advances_without_delivery() {
        let mut l = learner();
        let b = Ballot::classic(1, ReplicaId(0));
        let mut out = Vec::new();
        for i in 0..3 {
            out.extend(l.on_accepted(ReplicaId(i), b, Slot(0), Decree::Noop, 0));
        }
        assert!(out.is_empty());
        assert_eq!(l.next_deliver(), Slot(1));
    }

    #[test]
    fn duplicate_pid_across_slots_delivered_once() {
        let mut l = learner();
        let b = Ballot::classic(1, ReplicaId(0));
        let d = Decree::Value(pid(2, 7), "dup");
        let mut out = Vec::new();
        for i in 0..3 {
            out.extend(l.on_accepted(ReplicaId(i), b, Slot(0), d.clone(), 0));
        }
        for i in 0..3 {
            out.extend(l.on_accepted(ReplicaId(i), b, Slot(1), d.clone(), 0));
        }
        assert_eq!(out.len(), 1, "same pid decided twice delivers once");
        assert_eq!(l.next_deliver(), Slot(2));
        assert!(l.was_delivered(pid(2, 7)));
    }

    #[test]
    fn fast_collision_impossibility_detected() {
        let mut l = learner();
        let b = Ballot::fast(1, ReplicaId(0));
        // 5 replicas, fast quorum 4: a 2-2 split with 1 unvoted is stuck.
        l.on_accepted(ReplicaId(0), b, Slot(0), Decree::Value(pid(0, 1), "a"), 10);
        l.on_accepted(ReplicaId(1), b, Slot(0), Decree::Value(pid(0, 1), "a"), 10);
        l.on_accepted(ReplicaId(2), b, Slot(0), Decree::Value(pid(1, 1), "z"), 10);
        assert!(
            l.stuck_slots(10, 1_000_000).is_empty(),
            "3 votes: still winnable"
        );
        l.on_accepted(ReplicaId(3), b, Slot(0), Decree::Value(pid(1, 1), "z"), 10);
        assert_eq!(l.stuck_slots(10, 1_000_000), vec![Slot(0)]);
    }

    #[test]
    fn stale_votes_reported_after_timeout() {
        let mut l = learner();
        let b = Ballot::fast(1, ReplicaId(0));
        l.on_accepted(ReplicaId(0), b, Slot(3), Decree::Value(pid(0, 1), "a"), 100);
        assert!(l.stuck_slots(500, 1_000).is_empty());
        assert_eq!(l.stuck_slots(1_200, 1_000), vec![Slot(3)]);
    }

    #[test]
    fn serve_learn_respects_truncation_and_cap() {
        let mut l = learner();
        let b = Ballot::classic(1, ReplicaId(0));
        for s in 0..6u64 {
            let d = Decree::Value(pid(0, s), "v");
            for i in 0..3 {
                l.on_accepted(ReplicaId(i), b, Slot(s), d.clone(), 0);
            }
        }
        l.truncate(Slot(2));
        let (entries, trunc, upto) = l.serve_learn(Slot(0), 3);
        assert_eq!(trunc, Slot(2));
        assert_eq!(upto, Slot(6));
        assert_eq!(entries.len(), 3);
        assert_eq!(entries[0].0, Slot(2));
    }

    #[test]
    fn on_learned_merges_and_delivers() {
        let mut l = learner();
        let out = l.on_learned(vec![
            (Slot(0), Decree::Value(pid(0, 1), "a")),
            (Slot(1), Decree::Noop),
            (Slot(2), Decree::Value(pid(0, 2), "b")),
        ]);
        assert_eq!(out.len(), 2);
        assert_eq!(l.next_deliver(), Slot(3));
    }

    #[test]
    fn late_votes_for_decided_slot_ignored() {
        let mut l = learner();
        let b = Ballot::classic(1, ReplicaId(0));
        let d = Decree::Value(pid(0, 1), "v");
        for i in 0..3 {
            l.on_accepted(ReplicaId(i), b, Slot(0), d.clone(), 0);
        }
        let out = l.on_accepted(ReplicaId(4), b, Slot(0), d, 0);
        assert!(out.is_empty());
    }

    #[test]
    fn votes_at_exposes_recovery_information() {
        let mut l = learner();
        let b = Ballot::fast(1, ReplicaId(0));
        l.on_accepted(ReplicaId(0), b, Slot(0), Decree::Value(pid(0, 1), "a"), 0);
        l.on_accepted(ReplicaId(1), b, Slot(0), Decree::Value(pid(1, 1), "z"), 0);
        let votes = l.votes_at(Slot(0), b).unwrap();
        assert_eq!(votes.len(), 2);
        assert!(l.votes_at(Slot(1), b).is_none());
    }

    #[test]
    fn reconfig_decree_fences_delivery() {
        let mut l = learner();
        let b = Ballot::classic(1, ReplicaId(0));
        let rc = Reconfig {
            epoch: 1,
            add: vec![],
            remove: vec![ReplicaId(4)],
        };
        // Decide slots 0 (value), 1 (reconfig), 2 (value) out of order.
        let out = l.on_learned(vec![
            (Slot(0), Decree::Value(pid(0, 1), "a")),
            (Slot(1), Decree::Reconfig(rc.clone())),
            (Slot(2), Decree::Value(pid(0, 2), "b")),
        ]);
        // Delivery stops at the fence: only slot 0 comes out.
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].slot, Slot(0));
        assert_eq!(l.next_deliver(), Slot(1), "watermark parked at fence");
        let (slot, got) = l.take_reconfig().expect("fence surfaced");
        assert_eq!(slot, Slot(1));
        assert_eq!(got, rc);
        // New epoch has N=4: classic quorum drops to 3.
        l.set_quorums(Quorums::new(4));
        let resumed = l.ack_reconfig(Slot(1));
        assert_eq!(resumed.len(), 1);
        assert_eq!(resumed[0].slot, Slot(2));
        assert_eq!(l.next_deliver(), Slot(3));
        // Quorum rule now follows the new N.
        let d = Decree::Value(pid(0, 3), "c");
        assert!(l
            .on_accepted(ReplicaId(0), b, Slot(3), d.clone(), 0)
            .is_empty());
        assert!(l
            .on_accepted(ReplicaId(1), b, Slot(3), d.clone(), 0)
            .is_empty());
        let out = l.on_accepted(ReplicaId(2), b, Slot(3), d, 0);
        assert_eq!(out.len(), 1, "3 of 4 decides under the new epoch");
    }

    #[test]
    fn learner_starting_at_checkpoint_ignores_older_slots() {
        let mut l: Learner<&str> = Learner::new(Quorums::new(5), Slot(10));
        let b = Ballot::classic(1, ReplicaId(0));
        let out = l.on_accepted(ReplicaId(0), b, Slot(3), Decree::Value(pid(0, 1), "v"), 0);
        assert!(out.is_empty());
        assert!(
            l.is_decided(Slot(3)),
            "pre-checkpoint slots count as decided"
        );
        assert_eq!(l.next_deliver(), Slot(10));
    }
}
