//! The acceptor role.
//!
//! One acceptor runs inside every replica. Its durable state is the
//! promise/acceptance log; every state change is expressed as a
//! [`Record`] that must reach stable storage *before* the corresponding
//! protocol message leaves the node (see [`AcceptorOut`]).
//!
//! Multi-instance structure: one promised ballot (`rnd_global`) covers
//! all slots, the multi-Paxos optimization that lets a stable coordinator
//! skip phase 1. Fast Paxos collision recovery, however, re-runs phase 1
//! for a *single* slot; those claims are kept as per-slot overrides
//! (`slot_rnd`) so the surrounding fast round stays open.

use std::collections::BTreeMap;

use crate::msg::{AcceptedReport, Msg, Record};
use crate::types::{Ballot, Decree, ProposalId, ReplicaId, Slot};

/// Destination of a message an acceptor wants to send.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Dest {
    /// Unicast to one replica.
    One(ReplicaId),
    /// Broadcast to every replica (including the local one).
    All,
}

/// What an acceptor handler wants done, with durability ordering:
/// if `record` is `Some`, the sends must be withheld until the record is
/// durable.
#[derive(Debug)]
pub struct AcceptorOut<V> {
    /// Record to persist before sending, if any.
    pub record: Option<Record<V>>,
    /// Messages to emit (after persistence, when `record` is `Some`).
    pub sends: Vec<(Dest, Msg<V>)>,
}

impl<V> AcceptorOut<V> {
    fn nothing() -> Self {
        AcceptorOut {
            record: None,
            sends: Vec::new(),
        }
    }

    fn gated(record: Record<V>, sends: Vec<(Dest, Msg<V>)>) -> Self {
        AcceptorOut {
            record: Some(record),
            sends,
        }
    }

    fn immediate(sends: Vec<(Dest, Msg<V>)>) -> Self {
        AcceptorOut {
            record: None,
            sends,
        }
    }
}

/// The acceptor's volatile image of its durable state.
#[derive(Debug)]
pub struct Acceptor<V> {
    /// Highest ballot promised for the whole log.
    rnd_global: Ballot,
    /// Per-slot promise overrides from single-slot (recovery) prepares.
    slot_rnd: BTreeMap<Slot, Ballot>,
    /// Accepted decree per slot, with the ballot of acceptance.
    accepted: BTreeMap<Slot, (Ballot, Decree<V>)>,
    /// When `rnd_global` is fast and an `Any` arrived: fast accepts are
    /// allowed at free slots at or after this point.
    any_from: Option<Slot>,
    /// Monotone cursor for assigning fast proposals to slots.
    fast_cursor: Slot,
    /// Proposals already fast-accepted (undecided): a proposer retry for
    /// one of these is ignored instead of burning a fresh slot.
    fast_pids: BTreeMap<ProposalId, Slot>,
}

impl<V: Clone> Acceptor<V> {
    /// A fresh acceptor with empty durable state.
    pub fn new() -> Self {
        Acceptor {
            rnd_global: Ballot::BOTTOM,
            slot_rnd: BTreeMap::new(),
            accepted: BTreeMap::new(),
            any_from: None,
            fast_cursor: Slot::ZERO,
            fast_pids: BTreeMap::new(),
        }
    }

    /// Rebuilds an acceptor by replaying its durable log.
    ///
    /// The fast window (`any_from`) is *not* restored: it is volatile by
    /// design — after a crash the acceptor must hear a fresh `Any` before
    /// fast-accepting again, which is safe (it merely declines the fast
    /// path until the coordinator refreshes it).
    pub fn recover<'a, I>(records: I) -> Self
    where
        I: IntoIterator<Item = &'a Record<V>>,
        V: 'a,
    {
        let mut a = Acceptor::new();
        for record in records {
            match record {
                Record::Promised(ballot) => {
                    if ballot.round == u64::MAX {
                        // never produced; defensive
                        continue;
                    }
                    if *ballot > a.rnd_global {
                        a.rnd_global = *ballot;
                    }
                }
                Record::Accepted {
                    ballot,
                    slot,
                    decree,
                } => {
                    let replace = match a.accepted.get(slot) {
                        Some((b, _)) => ballot >= b,
                        None => true,
                    };
                    if replace {
                        a.accepted.insert(*slot, (*ballot, decree.clone()));
                    }
                    if *slot >= a.fast_cursor {
                        a.fast_cursor = slot.next();
                    }
                }
            }
        }
        a
    }

    /// The globally promised ballot.
    pub fn promised(&self) -> Ballot {
        self.rnd_global
    }

    /// Effective promised ballot for one slot (global promise or a
    /// per-slot recovery override, whichever is higher).
    fn effective_rnd(&self, slot: Slot) -> Ballot {
        match self.slot_rnd.get(&slot) {
            Some(b) => (*b).max(self.rnd_global),
            None => self.rnd_global,
        }
    }

    /// Whether the fast path is currently open.
    pub fn fast_window_open(&self) -> bool {
        self.any_from.is_some() && self.rnd_global.is_fast()
    }

    /// Number of slots with an accepted decree (for tests/metrics).
    pub fn accepted_len(&self) -> usize {
        self.accepted.len()
    }

    fn reports_from(&self, from_slot: Slot, only_slot: Option<Slot>) -> Vec<AcceptedReport<V>> {
        match only_slot {
            Some(s) => self
                .accepted
                .get(&s)
                .map(|(b, d)| {
                    vec![AcceptedReport {
                        slot: s,
                        ballot: *b,
                        decree: d.clone(),
                    }]
                })
                .unwrap_or_default(),
            None => self
                .accepted
                .range(from_slot..)
                .map(|(s, (b, d))| AcceptedReport {
                    slot: *s,
                    ballot: *b,
                    decree: d.clone(),
                })
                .collect(),
        }
    }

    /// Phase 1a: handles a `Prepare` from `from`.
    pub fn on_prepare(
        &mut self,
        from: ReplicaId,
        ballot: Ballot,
        from_slot: Slot,
        only_slot: Option<Slot>,
    ) -> AcceptorOut<V> {
        match only_slot {
            Some(slot) => {
                if ballot < self.effective_rnd(slot) {
                    return AcceptorOut::nothing();
                }
                self.slot_rnd.insert(slot, ballot);
                if slot >= self.fast_cursor {
                    // Do not fast-fill a slot that is under recovery.
                    self.fast_cursor = slot.next();
                }
                let promise = Msg::Promise {
                    ballot,
                    from_slot,
                    only_slot,
                    accepted: self.reports_from(from_slot, only_slot),
                };
                AcceptorOut::gated(Record::Promised(ballot), vec![(Dest::One(from), promise)])
            }
            None => {
                if ballot < self.rnd_global {
                    return AcceptorOut::nothing();
                }
                let renewed = ballot > self.rnd_global;
                self.rnd_global = ballot;
                if renewed {
                    // A new ballot closes the previous fast window until
                    // the new coordinator re-opens it with `Any`. The
                    // fast-proposal dedup is scoped to one fast round:
                    // under the new ballot, undecided proposals must be
                    // acceptable again or they would be orphaned.
                    self.any_from = None;
                    self.fast_pids.clear();
                }
                let promise = Msg::Promise {
                    ballot,
                    from_slot,
                    only_slot,
                    accepted: self.reports_from(from_slot, only_slot),
                };
                AcceptorOut::gated(Record::Promised(ballot), vec![(Dest::One(from), promise)])
            }
        }
    }

    /// Phase 2a (classic): handles an `Accept`.
    pub fn on_accept(&mut self, ballot: Ballot, slot: Slot, decree: Decree<V>) -> AcceptorOut<V>
    where
        V: PartialEq,
    {
        if ballot < self.effective_rnd(slot) {
            return AcceptorOut::nothing();
        }
        if let Some((prior, prior_decree)) = self.accepted.get(&slot) {
            if ballot == *prior && decree != *prior_decree {
                // An acceptor votes at most once per round per slot; a
                // same-ballot conflict (e.g. a coordinator re-proposal
                // racing a fast acceptance) must not flip the vote —
                // flipping could let two learners decide differently.
                return AcceptorOut::nothing();
            }
        }
        self.slot_rnd.insert(slot, ballot);
        // If a collision recovery overwrites this slot with a different
        // decree, the previously fast-accepted proposal is orphaned here:
        // clear its dedup entry so the proposer's retry can land again.
        if let Some((_, Decree::Value(old_pid, _))) = self.accepted.get(&slot) {
            if decree.proposal_id() != Some(*old_pid) {
                self.fast_pids.remove(old_pid);
            }
        }
        self.accepted.insert(slot, (ballot, decree.clone()));
        if slot >= self.fast_cursor {
            self.fast_cursor = slot.next();
        }
        let announce = Msg::Accepted {
            ballot,
            slot,
            decree: decree.clone(),
        };
        AcceptorOut::gated(
            Record::Accepted {
                ballot,
                slot,
                decree,
            },
            vec![(Dest::All, announce)],
        )
    }

    /// Opens fast rounds: handles the coordinator's `Any`.
    pub fn on_any(&mut self, ballot: Ballot, from_slot: Slot) -> AcceptorOut<V> {
        if ballot != self.rnd_global || !ballot.is_fast() {
            return AcceptorOut::nothing();
        }
        self.any_from = Some(from_slot);
        if from_slot > self.fast_cursor {
            self.fast_cursor = from_slot;
        }
        AcceptorOut::immediate(Vec::new())
    }

    /// Fast phase 2a: a proposer's value arriving directly.
    ///
    /// The acceptor assigns it to its next free slot at or after the fast
    /// window start. Different acceptors may pick different slots for the
    /// same proposal under concurrency — that is the fast-round collision
    /// the coordinator recovers from.
    pub fn on_fast_propose(&mut self, pid: ProposalId, value: V) -> AcceptorOut<V> {
        // `fast_window_open()` implies `any_from` is set; the let-else
        // keeps this handler panic-free even if that coupling drifts.
        let Some(any_from) = self.any_from else {
            return AcceptorOut::nothing();
        };
        if !self.rnd_global.is_fast() {
            return AcceptorOut::nothing();
        }
        if self.fast_pids.contains_key(&pid) {
            // Proposer retry of something already accepted here: the
            // original acceptance is still in flight, don't duplicate.
            return AcceptorOut::nothing();
        }
        let ballot = self.rnd_global;
        let mut slot = self.fast_cursor.max(any_from);
        while self.accepted.contains_key(&slot)
            || self.slot_rnd.get(&slot).is_some_and(|b| *b > ballot)
        {
            slot = slot.next();
        }
        self.fast_cursor = slot.next();
        self.fast_pids.insert(pid, slot);
        let decree = Decree::Value(pid, value);
        self.accepted.insert(slot, (ballot, decree.clone()));
        let announce = Msg::Accepted {
            ballot,
            slot,
            decree: decree.clone(),
        };
        AcceptorOut::gated(
            Record::Accepted {
                ballot,
                slot,
                decree,
            },
            vec![(Dest::All, announce)],
        )
    }

    /// Drops accepted state below `upto` (coordinated with application
    /// checkpoints by the middleware layer).
    pub fn truncate(&mut self, upto: Slot) {
        self.accepted = self.accepted.split_off(&upto);
        self.slot_rnd.retain(|s, _| *s >= upto);
        self.fast_pids.retain(|_, s| *s >= upto);
        if self.fast_cursor < upto {
            self.fast_cursor = upto;
        }
    }
}

impl<V: Clone> Default for Acceptor<V> {
    fn default() -> Self {
        Acceptor::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pid(node: u32, seq: u64) -> ProposalId {
        ProposalId {
            node: ReplicaId(node),
            epoch: 0,
            seq,
        }
    }

    fn fast_ready(round: u64) -> (Acceptor<&'static str>, Ballot) {
        let mut a = Acceptor::new();
        let b = Ballot::fast(round, ReplicaId(0));
        a.on_prepare(ReplicaId(0), b, Slot::ZERO, None);
        a.on_any(b, Slot::ZERO);
        (a, b)
    }

    #[test]
    fn prepare_promises_and_reports_accepted() {
        let mut a: Acceptor<&str> = Acceptor::new();
        let b1 = Ballot::classic(1, ReplicaId(0));
        let out = a.on_prepare(ReplicaId(0), b1, Slot::ZERO, None);
        assert!(matches!(out.record, Some(Record::Promised(b)) if b == b1));
        a.on_accept(b1, Slot(0), Decree::Value(pid(0, 1), "x"));
        let b2 = Ballot::classic(2, ReplicaId(1));
        let out = a.on_prepare(ReplicaId(1), b2, Slot::ZERO, None);
        match &out.sends[0].1 {
            Msg::Promise { accepted, .. } => {
                assert_eq!(accepted.len(), 1);
                assert_eq!(accepted[0].slot, Slot(0));
            }
            other => panic!("expected promise, got {other:?}"),
        }
    }

    #[test]
    fn stale_prepare_ignored() {
        let mut a: Acceptor<&str> = Acceptor::new();
        a.on_prepare(
            ReplicaId(1),
            Ballot::classic(5, ReplicaId(1)),
            Slot::ZERO,
            None,
        );
        let out = a.on_prepare(
            ReplicaId(0),
            Ballot::classic(3, ReplicaId(0)),
            Slot::ZERO,
            None,
        );
        assert!(out.record.is_none());
        assert!(out.sends.is_empty());
    }

    #[test]
    fn accept_below_promise_rejected() {
        let mut a: Acceptor<&str> = Acceptor::new();
        a.on_prepare(
            ReplicaId(1),
            Ballot::classic(5, ReplicaId(1)),
            Slot::ZERO,
            None,
        );
        let out = a.on_accept(
            Ballot::classic(3, ReplicaId(0)),
            Slot(0),
            Decree::Value(pid(0, 1), "x"),
        );
        assert!(out.record.is_none());
    }

    #[test]
    fn accept_is_persist_gated_broadcast() {
        let mut a: Acceptor<&str> = Acceptor::new();
        let b = Ballot::classic(1, ReplicaId(0));
        a.on_prepare(ReplicaId(0), b, Slot::ZERO, None);
        let out = a.on_accept(b, Slot(0), Decree::Value(pid(0, 1), "x"));
        assert!(matches!(out.record, Some(Record::Accepted { .. })));
        assert_eq!(out.sends.len(), 1);
        assert_eq!(out.sends[0].0, Dest::All);
    }

    #[test]
    fn fast_propose_requires_open_window() {
        let mut a: Acceptor<&str> = Acceptor::new();
        let out = a.on_fast_propose(pid(1, 1), "v");
        assert!(out.record.is_none(), "no window, no accept");
        let b = Ballot::fast(1, ReplicaId(0));
        a.on_prepare(ReplicaId(0), b, Slot::ZERO, None);
        assert!(!a.fast_window_open(), "promise alone does not open window");
        a.on_any(b, Slot::ZERO);
        assert!(a.fast_window_open());
        let out = a.on_fast_propose(pid(1, 1), "v");
        assert!(matches!(
            out.record,
            Some(Record::Accepted { slot: Slot(0), .. })
        ));
    }

    #[test]
    fn fast_proposals_fill_consecutive_slots() {
        let (mut a, _b) = fast_ready(1);
        a.on_fast_propose(pid(1, 1), "v1");
        a.on_fast_propose(pid(2, 1), "v2");
        let out = a.on_fast_propose(pid(3, 1), "v3");
        assert!(matches!(
            out.record,
            Some(Record::Accepted { slot: Slot(2), .. })
        ));
        assert_eq!(a.accepted_len(), 3);
    }

    #[test]
    fn higher_prepare_closes_fast_window() {
        let (mut a, _b) = fast_ready(1);
        a.on_prepare(
            ReplicaId(1),
            Ballot::classic(2, ReplicaId(1)),
            Slot::ZERO,
            None,
        );
        assert!(!a.fast_window_open());
        let out = a.on_fast_propose(pid(1, 1), "v");
        assert!(out.record.is_none());
    }

    #[test]
    fn single_slot_recovery_keeps_window_open() {
        let (mut a, b) = fast_ready(1);
        a.on_fast_propose(pid(1, 1), "v1"); // slot 0
                                            // Coordinator recovers slot 1 with a higher classic ballot.
        let rec = Ballot::classic(2, ReplicaId(0));
        let out = a.on_prepare(ReplicaId(0), rec, Slot(1), Some(Slot(1)));
        assert!(matches!(out.record, Some(Record::Promised(x)) if x == rec));
        assert!(a.fast_window_open(), "global fast round must survive");
        // Fast accepts skip the slot under recovery.
        let out = a.on_fast_propose(pid(2, 1), "v2");
        assert!(matches!(
            out.record,
            Some(Record::Accepted { slot: Slot(2), .. })
        ));
        // And the recovery's classic accept lands at slot 1.
        let out = a.on_accept(rec, Slot(1), Decree::Value(pid(3, 1), "v3"));
        assert!(matches!(
            out.record,
            Some(Record::Accepted { slot: Slot(1), .. })
        ));
        assert_eq!(a.promised(), b, "global promise unchanged");
    }

    #[test]
    fn any_requires_matching_fast_ballot() {
        let mut a: Acceptor<&str> = Acceptor::new();
        let c = Ballot::classic(1, ReplicaId(0));
        a.on_prepare(ReplicaId(0), c, Slot::ZERO, None);
        a.on_any(c, Slot::ZERO);
        assert!(!a.fast_window_open(), "classic ballot cannot open window");
        let f = Ballot::fast(2, ReplicaId(0));
        a.on_any(f, Slot::ZERO);
        assert!(
            !a.fast_window_open(),
            "Any for a ballot not promised is ignored"
        );
    }

    #[test]
    fn recover_replays_log() {
        let b = Ballot::classic(3, ReplicaId(1));
        let records: Vec<Record<&str>> = vec![
            Record::Promised(Ballot::classic(1, ReplicaId(0))),
            Record::Accepted {
                ballot: Ballot::classic(1, ReplicaId(0)),
                slot: Slot(0),
                decree: Decree::Value(pid(0, 1), "old"),
            },
            Record::Promised(b),
            Record::Accepted {
                ballot: b,
                slot: Slot(0),
                decree: Decree::Value(pid(1, 1), "new"),
            },
        ];
        let a = Acceptor::recover(records.iter());
        assert_eq!(a.promised(), b);
        assert_eq!(a.accepted_len(), 1);
        // Reports must reflect the *latest* acceptance.
        let mut a = a;
        let out = a.on_prepare(
            ReplicaId(2),
            Ballot::classic(9, ReplicaId(2)),
            Slot::ZERO,
            None,
        );
        match &out.sends[0].1 {
            Msg::Promise { accepted, .. } => {
                assert_eq!(accepted[0].decree, Decree::Value(pid(1, 1), "new"));
            }
            other => panic!("expected promise, got {other:?}"),
        }
    }

    #[test]
    fn recover_does_not_reopen_fast_window() {
        let b = Ballot::fast(1, ReplicaId(0));
        let records: Vec<Record<&str>> = vec![Record::Promised(b)];
        let mut a = Acceptor::recover(records.iter());
        assert!(!a.fast_window_open());
        let out = a.on_fast_propose(pid(1, 1), "v");
        assert!(out.record.is_none());
    }

    #[test]
    fn truncate_drops_old_slots() {
        let (mut a, _b) = fast_ready(1);
        for i in 0..5 {
            a.on_fast_propose(pid(1, i), "v");
        }
        a.truncate(Slot(3));
        assert_eq!(a.accepted_len(), 2);
        // New fast accepts continue after the cursor, not in the hole.
        let out = a.on_fast_propose(pid(2, 1), "w");
        assert!(matches!(
            out.record,
            Some(Record::Accepted { slot: Slot(5), .. })
        ));
    }

    #[test]
    fn reaccept_same_slot_higher_ballot() {
        let mut a: Acceptor<&str> = Acceptor::new();
        let b1 = Ballot::classic(1, ReplicaId(0));
        a.on_prepare(ReplicaId(0), b1, Slot::ZERO, None);
        a.on_accept(b1, Slot(0), Decree::Value(pid(0, 1), "x"));
        let b2 = Ballot::classic(2, ReplicaId(1));
        let out = a.on_accept(b2, Slot(0), Decree::Noop);
        assert!(matches!(out.record, Some(Record::Accepted { ballot, .. }) if ballot == b2));
    }
}
// (test appended by maintenance; see tests module above for the rest)
#[cfg(test)]
mod orphan_tests {
    use super::*;

    fn pid(node: u32, seq: u64) -> ProposalId {
        ProposalId {
            node: ReplicaId(node),
            epoch: 0,
            seq,
        }
    }

    #[test]
    fn collision_loser_can_be_fast_accepted_again() {
        let mut a: Acceptor<&str> = Acceptor::new();
        let fast = Ballot::fast(1, ReplicaId(0));
        a.on_prepare(ReplicaId(0), fast, Slot::ZERO, None);
        a.on_any(fast, Slot::ZERO);
        // v1 fast-accepted at slot 0.
        a.on_fast_propose(pid(1, 1), "v1");
        // A retry is deduplicated while the acceptance is live.
        let out = a.on_fast_propose(pid(1, 1), "v1");
        assert!(out.record.is_none(), "dedup while in flight");
        // Collision recovery decides v2 for slot 0.
        let rec = Ballot::classic(2, ReplicaId(0));
        a.on_prepare(ReplicaId(0), rec, Slot(0), Some(Slot(0)));
        a.on_accept(rec, Slot(0), Decree::Value(pid(2, 9), "v2"));
        // The orphaned v1 retry must be accepted at a fresh slot now.
        let out = a.on_fast_propose(pid(1, 1), "v1");
        assert!(
            matches!(out.record, Some(Record::Accepted { slot, .. }) if slot > Slot(0)),
            "orphaned proposal must be re-acceptable"
        );
    }
}

#[cfg(test)]
mod round_scope_tests {
    use super::*;

    fn pid(node: u32, seq: u64) -> ProposalId {
        ProposalId {
            node: ReplicaId(node),
            epoch: 0,
            seq,
        }
    }

    #[test]
    fn dedup_cleared_by_new_ballot() {
        let mut a: Acceptor<&str> = Acceptor::new();
        let f1 = Ballot::fast(1, ReplicaId(0));
        a.on_prepare(ReplicaId(0), f1, Slot::ZERO, None);
        a.on_any(f1, Slot::ZERO);
        a.on_fast_propose(pid(1, 1), "v");
        // New coordinator round: same proposal must be acceptable again
        // under the new ballot (it was not decided).
        let f2 = Ballot::fast(2, ReplicaId(0));
        a.on_prepare(ReplicaId(0), f2, Slot(1), None);
        a.on_any(f2, Slot(1));
        let out = a.on_fast_propose(pid(1, 1), "v");
        assert!(
            matches!(out.record, Some(Record::Accepted { .. })),
            "retry must land under the new round"
        );
    }
}

#[cfg(test)]
mod single_vote_tests {
    use super::*;

    fn pid(node: u32, seq: u64) -> ProposalId {
        ProposalId {
            node: ReplicaId(node),
            epoch: 0,
            seq,
        }
    }

    #[test]
    fn never_votes_twice_in_one_round() {
        let mut a: Acceptor<&str> = Acceptor::new();
        let f = Ballot::fast(1, ReplicaId(0));
        a.on_prepare(ReplicaId(0), f, Slot::ZERO, None);
        a.on_any(f, Slot::ZERO);
        // Fast-accept X at slot 0, then a same-ballot coordinator Accept
        // for a different value must be refused…
        a.on_fast_propose(pid(1, 1), "X");
        let out = a.on_accept(f, Slot(0), Decree::Value(pid(2, 2), "Y"));
        assert!(out.record.is_none(), "no vote flip within a round");
        // …but an idempotent re-accept of the same decree re-announces.
        let out = a.on_accept(f, Slot(0), Decree::Value(pid(1, 1), "X"));
        assert!(out.record.is_some(), "idempotent re-accept allowed");
        // And a strictly higher ballot may overwrite, per classic Paxos.
        let c = Ballot::classic(2, ReplicaId(0));
        let out = a.on_accept(c, Slot(0), Decree::Value(pid(2, 2), "Y"));
        assert!(matches!(out.record, Some(Record::Accepted { ballot, .. }) if ballot == c));
    }
}
