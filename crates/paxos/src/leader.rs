//! The coordinator (leader) role.
//!
//! A single coordinator per ballot drives phase 1 (over the whole slot
//! range on election, or over one slot for fast-round collision
//! recovery), assigns slots to proposals in classic rounds, opens fast
//! rounds with `Any`, and picks safe values per Fast Paxos rule O4 when
//! recovering collided slots.

use std::collections::BTreeMap;

use crate::msg::AcceptedReport;
use crate::types::{Ballot, Decree, Quorums, ReplicaId, Slot};

/// Picks the safe decree for one slot from phase-1 reports.
///
/// `q_size` is the number of acceptors whose reports were sampled (the
/// promise quorum). Standard Paxos rule for classic top ballots; Fast
/// Paxos O4 for fast top ballots: a value reported by at least
/// `q_size + ⌈3N/4⌉ − N` members may have been chosen and must be used;
/// otherwise the coordinator is free (here: the most-reported value, or
/// `Noop` if there are no reports at all).
pub fn choose_decree<V: Clone + Eq>(
    reports: &[AcceptedReport<V>],
    q_size: usize,
    quorums: Quorums,
) -> Decree<V> {
    let top_ballot = match reports.iter().map(|r| r.ballot).max() {
        Some(b) => b,
        None => return Decree::Noop,
    };
    let top: Vec<&AcceptedReport<V>> = reports.iter().filter(|r| r.ballot == top_ballot).collect();
    if !top_ballot.is_fast() {
        // All classic acceptances at one ballot carry the same decree.
        // `top` is non-empty (top_ballot came from the same reports),
        // but stay panic-free on this path regardless.
        return top
            .first()
            .map(|r| r.decree.clone())
            .unwrap_or(Decree::Noop);
    }
    // Count occurrences per decree without hashing: the report set is
    // bounded by the ensemble size, so a linear Vec counter is
    // deterministic and cheap.
    let mut counts: Vec<(&Decree<V>, usize)> = Vec::new();
    for r in &top {
        match counts.iter_mut().find(|(k, _)| *k == &r.decree) {
            Some((_, n)) => *n += 1,
            None => counts.push((&r.decree, 1)),
        }
    }
    // Scan in reporting order (never hash order — replays must converge
    // bit-for-bit): a decree at the threshold is the choosable one (at
    // most one can reach it); otherwise fall back to the most reported,
    // ties broken by reporting order.
    let threshold = quorums.recovery_threshold(q_size);
    let mut best: Option<(&Decree<V>, usize)> = None;
    for r in &top {
        let c = counts
            .iter()
            .find(|(k, _)| *k == &r.decree)
            .map(|(_, n)| *n)
            .unwrap_or(0);
        if c >= threshold {
            return r.decree.clone();
        }
        if best.map(|(_, bc)| c > bc).unwrap_or(true) {
            best = Some((&r.decree, c));
        }
    }
    best.map(|(d, _)| d.clone()).unwrap_or(Decree::Noop)
}

/// Phase of the coordinator state machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LeaderPhase {
    /// Not coordinating.
    Idle,
    /// Phase 1 in progress for the whole range.
    Preparing,
    /// Phase 1 complete; assigning slots / fast rounds open.
    Leading,
}

/// An in-progress single-slot recovery (fast-round collision).
#[derive(Debug)]
pub struct Recovery<V> {
    /// Recovery ballot (classic, higher than the fast round).
    pub ballot: Ballot,
    /// Promises received so far: acceptor → its report for the slot.
    pub reports: BTreeMap<ReplicaId, Vec<AcceptedReport<V>>>,
    /// When the recovery started (for re-trigger suppression).
    pub started_at: u64,
    /// Whether phase 2 was already issued.
    pub resolved: bool,
}

/// Volatile coordinator state.
#[derive(Debug)]
pub struct Leader<V> {
    id: ReplicaId,
    quorums: Quorums,
    /// Highest ballot round observed anywhere (for picking fresh rounds).
    pub highest_round: u64,
    /// The ballot this coordinator currently owns (valid in
    /// `Preparing`/`Leading`).
    pub ballot: Ballot,
    /// Current phase.
    pub phase: LeaderPhase,
    /// Range-prepare promises: acceptor → reports.
    promises: BTreeMap<ReplicaId, Vec<AcceptedReport<V>>>,
    /// Start of the range being prepared.
    pub prepare_from: Slot,
    /// Next slot to assign in classic rounds.
    pub next_slot: Slot,
    /// Single-slot recoveries in flight.
    pub recoveries: BTreeMap<Slot, Recovery<V>>,
}

impl<V: Clone + Eq> Leader<V> {
    /// Creates an idle coordinator for replica `id`.
    pub fn new(id: ReplicaId, quorums: Quorums) -> Self {
        Leader {
            id,
            quorums,
            highest_round: 0,
            ballot: Ballot::BOTTOM,
            phase: LeaderPhase::Idle,
            promises: BTreeMap::new(),
            prepare_from: Slot::ZERO,
            next_slot: Slot::ZERO,
            recoveries: BTreeMap::new(),
        }
    }

    /// Switches the quorum arithmetic to a new epoch's `N` (applied by
    /// the replica exactly at the reconfiguration fence).
    pub fn set_quorums(&mut self, quorums: Quorums) {
        self.quorums = quorums;
    }

    /// Tracks ballots seen in any message so fresh rounds are higher.
    pub fn observe_round(&mut self, round: u64) {
        if round > self.highest_round {
            self.highest_round = round;
        }
    }

    /// Abandons leadership (a higher ballot was observed).
    pub fn abdicate(&mut self) {
        self.phase = LeaderPhase::Idle;
        self.promises.clear();
        self.recoveries.clear();
    }

    /// Starts phase 1 over all slots from `from_slot` with a fresh ballot
    /// of the requested class. Returns the new ballot.
    pub fn start_prepare(&mut self, fast: bool, from_slot: Slot) -> Ballot {
        self.highest_round += 1;
        self.ballot = if fast {
            Ballot::fast(self.highest_round, self.id)
        } else {
            Ballot::classic(self.highest_round, self.id)
        };
        self.phase = LeaderPhase::Preparing;
        self.promises.clear();
        self.recoveries.clear();
        self.prepare_from = from_slot;
        self.ballot
    }

    /// Records a range promise. Returns `Some(plan)` once *every*
    /// replica has promised — a classic quorum is sufficient for safety,
    /// but sampling everyone recovers all undecided acceptances (e.g.
    /// values accepted by a minority while the ensemble was blocked).
    /// When some replicas stay silent, the replica layer calls
    /// [`Leader::finalize_prepare`] after a grace period instead.
    #[allow(clippy::type_complexity)]
    pub fn on_promise(
        &mut self,
        from: ReplicaId,
        ballot: Ballot,
        reports: Vec<AcceptedReport<V>>,
    ) -> Option<(Vec<(Slot, Decree<V>)>, Slot)> {
        if self.phase != LeaderPhase::Preparing || ballot != self.ballot {
            return None;
        }
        self.promises.insert(from, reports);
        if self.promises.len() < self.quorums.n() {
            return None;
        }
        self.finalize_prepare()
    }

    /// Number of promises gathered for the in-flight prepare.
    pub fn promise_count(&self) -> usize {
        self.promises.len()
    }

    /// Completes phase 1 with the promises gathered so far (the grace
    /// path). Returns `None` if not preparing or below a classic quorum.
    #[allow(clippy::type_complexity)]
    pub fn finalize_prepare(&mut self) -> Option<(Vec<(Slot, Decree<V>)>, Slot)> {
        if self.phase != LeaderPhase::Preparing || self.promises.len() < self.quorums.classic() {
            return None;
        }
        // Quorum complete: compute the re-proposal plan.
        let q_size = self.promises.len();
        let mut by_slot: BTreeMap<Slot, Vec<AcceptedReport<V>>> = BTreeMap::new();
        let mut max_slot: Option<Slot> = None;
        for reports in self.promises.values() {
            for r in reports {
                if r.slot < self.prepare_from {
                    continue;
                }
                max_slot = Some(max_slot.map(|m: Slot| m.max(r.slot)).unwrap_or(r.slot));
                by_slot.entry(r.slot).or_default().push(r.clone());
            }
        }
        let mut plan = Vec::new();
        if let Some(max_slot) = max_slot {
            let mut s = self.prepare_from;
            while s <= max_slot {
                let decree = match by_slot.get(&s) {
                    Some(reports) => choose_decree(reports, q_size, self.quorums),
                    None => Decree::Noop,
                };
                plan.push((s, decree));
                s = s.next();
            }
            self.next_slot = max_slot.next();
        } else {
            self.next_slot = self.prepare_from;
        }
        self.phase = LeaderPhase::Leading;
        self.promises.clear();
        Some((plan, self.next_slot))
    }

    /// Whether this coordinator is currently in charge.
    pub fn is_leading(&self) -> bool {
        self.phase == LeaderPhase::Leading
    }

    /// Assigns the next classic slot.
    pub fn assign_slot(&mut self) -> Slot {
        let s = self.next_slot;
        self.next_slot = s.next();
        s
    }

    /// Notes that slots up to `slot` are occupied (fast rounds assign
    /// slots at acceptors; the coordinator must not reuse them for
    /// classic assignments or `Any` restarts).
    pub fn observe_occupied(&mut self, slot: Slot) {
        if slot >= self.next_slot {
            self.next_slot = slot.next();
        }
    }

    /// Starts a single-slot collision recovery; returns the recovery
    /// ballot to `Prepare` with, or `None` if one is already running.
    pub fn start_recovery(&mut self, slot: Slot, now: u64) -> Option<Ballot> {
        if self.recoveries.contains_key(&slot) {
            return None;
        }
        self.highest_round += 1;
        let ballot = Ballot::classic(self.highest_round, self.id);
        self.recoveries.insert(
            slot,
            Recovery {
                ballot,
                reports: BTreeMap::new(),
                started_at: now,
                resolved: false,
            },
        );
        Some(ballot)
    }

    /// Records a single-slot promise for a recovery. Returns
    /// `Some((winner, losers))` when the quorum completes and phase 2
    /// should fire: `winner` is the safe decree for the slot, and
    /// `losers` are the other values reported in the collided round —
    /// the coordinator re-proposes them immediately in fresh slots
    /// rather than leaving them to the proposers' retry timers.
    #[allow(clippy::type_complexity)]
    pub fn on_recovery_promise(
        &mut self,
        from: ReplicaId,
        ballot: Ballot,
        slot: Slot,
        reports: Vec<AcceptedReport<V>>,
    ) -> Option<(Decree<V>, Vec<(crate::types::ProposalId, V)>)> {
        let quorums = self.quorums;
        let rec = self.recoveries.get_mut(&slot)?;
        if rec.ballot != ballot || rec.resolved {
            return None;
        }
        rec.reports.insert(from, reports);
        if rec.reports.len() < quorums.classic() {
            return None;
        }
        rec.resolved = true;
        let q_size = rec.reports.len();
        let flat: Vec<AcceptedReport<V>> = rec
            .reports
            .values()
            .flatten()
            .filter(|r| r.slot == slot)
            .cloned()
            .collect();
        let winner = choose_decree(&flat, q_size, quorums);
        let mut losers: Vec<(crate::types::ProposalId, V)> = Vec::new();
        for r in &flat {
            if let Decree::Value(pid, value) = &r.decree {
                if winner.proposal_id() != Some(*pid) && !losers.iter().any(|(lp, _)| lp == pid) {
                    losers.push((*pid, value.clone()));
                }
            }
        }
        Some((winner, losers))
    }

    /// Forgets a recovery once the slot is decided.
    pub fn finish_recovery(&mut self, slot: Slot) {
        self.recoveries.remove(&slot);
    }

    /// Recoveries that have been running longer than `timeout_us`
    /// without their slot deciding: they are restarted by the replica
    /// with a fresh ballot. A recovery that already issued phase 2
    /// counts too — its `Accept` can be rejected wholesale when a
    /// concurrent recovery for another slot raised the acceptors'
    /// promised ballot in between, and only a fresh, higher ballot can
    /// unwedge the slot (decided slots leave the map via
    /// [`Leader::finish_recovery`], so anything still here is undecided).
    pub fn stalled_recoveries(&self, now: u64, timeout_us: u64) -> Vec<Slot> {
        self.recoveries
            .iter()
            .filter(|(_, r)| now.saturating_sub(r.started_at) >= timeout_us)
            .map(|(s, _)| *s)
            .collect()
    }

    /// Drops a stalled recovery so it can be restarted.
    pub fn cancel_recovery(&mut self, slot: Slot) {
        self.recoveries.remove(&slot);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::ProposalId;

    fn pid(node: u32, seq: u64) -> ProposalId {
        ProposalId {
            node: ReplicaId(node),
            epoch: 0,
            seq,
        }
    }

    fn report(
        slot: u64,
        ballot: Ballot,
        decree: Decree<&'static str>,
    ) -> AcceptedReport<&'static str> {
        AcceptedReport {
            slot: Slot(slot),
            ballot,
            decree,
        }
    }

    #[test]
    fn choose_decree_empty_is_noop() {
        let q = Quorums::new(5);
        let d: Decree<&str> = choose_decree(&[], 3, q);
        assert_eq!(d, Decree::Noop);
    }

    #[test]
    fn choose_decree_classic_takes_highest_ballot() {
        let q = Quorums::new(5);
        let lo = Ballot::classic(1, ReplicaId(0));
        let hi = Ballot::classic(2, ReplicaId(1));
        let reports = vec![
            report(0, lo, Decree::Value(pid(0, 1), "old")),
            report(0, hi, Decree::Value(pid(1, 1), "new")),
        ];
        assert_eq!(
            choose_decree(&reports, 3, q),
            Decree::Value(pid(1, 1), "new")
        );
    }

    #[test]
    fn choose_decree_fast_o4_forces_choosable_value() {
        // N=5, Q=3 ⇒ threshold = 3 + 4 - 5 = 2.
        let q = Quorums::new(5);
        let f = Ballot::fast(1, ReplicaId(0));
        let reports = vec![
            report(0, f, Decree::Value(pid(0, 1), "a")),
            report(0, f, Decree::Value(pid(0, 1), "a")),
            report(0, f, Decree::Value(pid(1, 1), "z")),
        ];
        assert_eq!(choose_decree(&reports, 3, q), Decree::Value(pid(0, 1), "a"));
    }

    #[test]
    fn choose_decree_fast_free_choice_picks_most_reported() {
        // Threshold 2 not reached by anyone: 1-1 split in a quorum of 3.
        let q = Quorums::new(5);
        let f = Ballot::fast(1, ReplicaId(0));
        let reports = vec![
            report(0, f, Decree::Value(pid(1, 1), "z")),
            report(0, f, Decree::Value(pid(0, 1), "a")),
        ];
        // Both count 1: deterministic first-seen tie-break → "z".
        assert_eq!(choose_decree(&reports, 3, q), Decree::Value(pid(1, 1), "z"));
    }

    #[test]
    fn prepare_quorum_produces_plan_with_gap_noops() {
        let q = Quorums::new(5);
        let mut l: Leader<&str> = Leader::new(ReplicaId(0), q);
        let b = l.start_prepare(false, Slot(0));
        assert_eq!(l.phase, LeaderPhase::Preparing);
        let old = Ballot::classic(0, ReplicaId(1));
        assert!(l
            .on_promise(
                ReplicaId(0),
                b,
                vec![report(2, old, Decree::Value(pid(0, 1), "x"))]
            )
            .is_none());
        assert!(l.on_promise(ReplicaId(1), b, vec![]).is_none());
        // A classic quorum alone no longer auto-finalizes (the replica
        // layer waits out a grace period for stragglers)…
        assert!(l.on_promise(ReplicaId(2), b, vec![]).is_none());
        assert_eq!(l.promise_count(), 3);
        // …but an explicit finalize proceeds with the quorum at hand.
        let (plan, next) = l.finalize_prepare().expect("quorum suffices");
        assert_eq!(next, Slot(3));
        assert_eq!(plan.len(), 3);
        assert_eq!(plan[0], (Slot(0), Decree::Noop));
        assert_eq!(plan[1], (Slot(1), Decree::Noop));
        assert_eq!(plan[2], (Slot(2), Decree::Value(pid(0, 1), "x")));
        assert!(l.is_leading());
    }

    #[test]
    fn promise_for_wrong_ballot_ignored() {
        let q = Quorums::new(5);
        let mut l: Leader<&str> = Leader::new(ReplicaId(0), q);
        let _b = l.start_prepare(false, Slot(0));
        let stale = Ballot::classic(999, ReplicaId(3));
        assert!(l.on_promise(ReplicaId(0), stale, vec![]).is_none());
        assert!(l.on_promise(ReplicaId(1), stale, vec![]).is_none());
        assert!(l.on_promise(ReplicaId(2), stale, vec![]).is_none());
        assert_eq!(l.promise_count(), 0, "stale promises never counted");
        assert_eq!(l.phase, LeaderPhase::Preparing);
    }

    #[test]
    fn full_promise_set_finalizes_immediately() {
        let q = Quorums::new(5);
        let mut l: Leader<&str> = Leader::new(ReplicaId(0), q);
        let b = l.start_prepare(true, Slot(0));
        for i in 0..4 {
            assert!(l.on_promise(ReplicaId(i), b, vec![]).is_none());
        }
        let (plan, next) = l
            .on_promise(ReplicaId(4), b, vec![])
            .expect("all five promises finalize without grace");
        assert!(plan.is_empty());
        assert_eq!(next, Slot(0));
        assert!(l.is_leading());
    }

    #[test]
    fn fresh_ballots_exceed_observed_rounds() {
        let q = Quorums::new(5);
        let mut l: Leader<&str> = Leader::new(ReplicaId(2), q);
        l.observe_round(41);
        let b = l.start_prepare(true, Slot(7));
        assert_eq!(b.round, 42);
        assert!(b.is_fast());
        assert_eq!(b.node, ReplicaId(2));
    }

    #[test]
    fn slot_assignment_monotone_and_occupancy_aware() {
        let q = Quorums::new(5);
        let mut l: Leader<&str> = Leader::new(ReplicaId(0), q);
        let b = l.start_prepare(false, Slot(0));
        for i in 0..3 {
            l.on_promise(ReplicaId(i), b, vec![]);
        }
        l.finalize_prepare().expect("quorum");
        assert_eq!(l.assign_slot(), Slot(0));
        assert_eq!(l.assign_slot(), Slot(1));
        l.observe_occupied(Slot(9));
        assert_eq!(l.assign_slot(), Slot(10));
    }

    #[test]
    fn recovery_lifecycle() {
        let q = Quorums::new(5);
        let mut l: Leader<&str> = Leader::new(ReplicaId(0), q);
        l.observe_round(5);
        let rb = l.start_recovery(Slot(4), 1_000).expect("fresh recovery");
        assert!(!rb.is_fast());
        assert!(rb.round > 5);
        assert!(l.start_recovery(Slot(4), 1_000).is_none(), "no duplicates");
        let f = Ballot::fast(5, ReplicaId(0));
        assert!(l
            .on_recovery_promise(
                ReplicaId(0),
                rb,
                Slot(4),
                vec![report(4, f, Decree::Value(pid(0, 1), "a"))]
            )
            .is_none());
        assert!(l
            .on_recovery_promise(
                ReplicaId(1),
                rb,
                Slot(4),
                vec![report(4, f, Decree::Value(pid(0, 1), "a"))]
            )
            .is_none());
        let (d, losers) = l
            .on_recovery_promise(ReplicaId(2), rb, Slot(4), vec![])
            .expect("quorum completes");
        assert_eq!(d, Decree::Value(pid(0, 1), "a"));
        assert!(losers.is_empty(), "no competing values reported");
        l.finish_recovery(Slot(4));
        assert!(l.recoveries.is_empty());
    }

    #[test]
    fn stalled_recoveries_reported_and_cancellable() {
        let q = Quorums::new(5);
        let mut l: Leader<&str> = Leader::new(ReplicaId(0), q);
        l.start_recovery(Slot(1), 0);
        assert!(l.stalled_recoveries(100, 1_000).is_empty());
        assert_eq!(l.stalled_recoveries(1_500, 1_000), vec![Slot(1)]);
        l.cancel_recovery(Slot(1));
        assert!(l.start_recovery(Slot(1), 2_000).is_some());
    }

    #[test]
    fn abdicate_clears_state() {
        let q = Quorums::new(5);
        let mut l: Leader<&str> = Leader::new(ReplicaId(0), q);
        let b = l.start_prepare(false, Slot(0));
        for i in 0..3 {
            l.on_promise(ReplicaId(i), b, vec![]);
        }
        l.finalize_prepare().expect("quorum");
        l.start_recovery(Slot(3), 0);
        l.abdicate();
        assert_eq!(l.phase, LeaderPhase::Idle);
        assert!(l.recoveries.is_empty());
    }
}
