//! Wire messages, durable records, and the effect vocabulary.
//!
//! The protocol core is *sans-io*: handlers never touch sockets, disks or
//! clocks. They return [`Effect`]s that the driver (the `treplica` crate,
//! running on `simnet`) turns into real sends and durable writes.
//! Durability gates progress: an [`Effect::Persist`] carries a token, and
//! the messages that acknowledge the persisted state are only released
//! when the driver calls back with that token — putting the paper's
//! stable-storage latency on the write path.

use crate::types::{Ballot, Decree, Membership, ProposalId, ReplicaId, Slot};

/// A promise's report of what an acceptor had already accepted.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AcceptedReport<V> {
    /// The slot concerned.
    pub slot: Slot,
    /// Ballot at which the decree was accepted.
    pub ballot: Ballot,
    /// The accepted decree.
    pub decree: Decree<V>,
}

/// Protocol messages exchanged between replicas.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Msg<V> {
    /// Phase 1a: a coordinator claims ballot `ballot` for all slots from
    /// `from_slot`, or for exactly one slot (collision recovery).
    Prepare {
        /// The ballot being claimed.
        ballot: Ballot,
        /// First slot covered by the claim.
        from_slot: Slot,
        /// If set, the claim covers only this slot.
        only_slot: Option<Slot>,
    },
    /// Phase 1b: acceptor's promise not to accept lower ballots, with its
    /// prior accepted decrees in the covered range.
    Promise {
        /// Ballot being promised.
        ballot: Ballot,
        /// Echo of the prepare's range start.
        from_slot: Slot,
        /// Echo of the prepare's single-slot restriction.
        only_slot: Option<Slot>,
        /// Previously accepted decrees in the covered range.
        accepted: Vec<AcceptedReport<V>>,
    },
    /// Phase 2a (classic): the coordinator asks acceptors to accept a
    /// decree at a slot.
    Accept {
        /// The coordinator's ballot.
        ballot: Ballot,
        /// Target slot.
        slot: Slot,
        /// Decree to accept.
        decree: Decree<V>,
    },
    /// Phase 2a (fast): the coordinator opens fast rounds — acceptors may
    /// accept proposer values directly at any free slot ≥ `from_slot`
    /// (the "any" message of Fast Paxos).
    Any {
        /// The fast ballot now active.
        ballot: Ballot,
        /// Fast accepts may use slots at or after this.
        from_slot: Slot,
    },
    /// A proposer's value addressed directly to acceptors (fast rounds).
    FastPropose {
        /// Proposal identity for dedup/retry.
        pid: ProposalId,
        /// The proposed value.
        value: V,
    },
    /// A proposal forwarded to the coordinator (classic rounds).
    Propose {
        /// Proposal identity for dedup/retry.
        pid: ProposalId,
        /// The proposed value.
        value: V,
    },
    /// Phase 2b: an acceptor announces it accepted `decree` at `slot`
    /// under `ballot` (broadcast to all learners).
    Accepted {
        /// Ballot of the acceptance.
        ballot: Ballot,
        /// Slot concerned.
        slot: Slot,
        /// The accepted decree.
        decree: Decree<V>,
    },
    /// Failure-detector heartbeat, also carrying the sender's
    /// contiguously-decided watermark for catch-up detection.
    Alive {
        /// Sender's current ballot view (highest seen).
        ballot: Ballot,
        /// Slots below this are decided at the sender.
        decided_upto: Slot,
    },
    /// Request decided slots starting at `from_slot` (catch-up/recovery).
    LearnRequest {
        /// First slot the requester is missing.
        from_slot: Slot,
    },
    /// A chunk of decided slots. `truncated_below` tells the requester
    /// the responder no longer stores slots below that point (it must
    /// fetch a checkpoint instead — handled by the middleware layer).
    LearnReply {
        /// Decided `(slot, decree)` pairs, contiguous from the request
        /// where available.
        entries: Vec<(Slot, Decree<V>)>,
        /// Responder's log starts here; earlier slots require snapshot
        /// transfer.
        truncated_below: Slot,
        /// Responder's decided watermark (for chunked catch-up).
        decided_upto: Slot,
    },
}

impl<V> Msg<V> {
    /// Stable snake_case name of the message kind, used in causal-trace
    /// tags (`msg_tag.kind`).
    pub fn kind(&self) -> &'static str {
        match self {
            Msg::Prepare { .. } => "prepare",
            Msg::Promise { .. } => "promise",
            Msg::Accept { .. } => "accept",
            Msg::Any { .. } => "any",
            Msg::FastPropose { .. } => "fast_propose",
            Msg::Propose { .. } => "propose",
            Msg::Accepted { .. } => "accepted",
            Msg::Alive { .. } => "alive",
            Msg::LearnRequest { .. } => "learn_request",
            Msg::LearnReply { .. } => "learn_reply",
        }
    }

    /// `(slot, round)` provenance for causal tags: the slot the message
    /// is about (or covers from) and the ballot round it runs under,
    /// [`CausalTag::NONE`] where the kind carries neither.
    pub fn provenance(&self) -> (u64, u64) {
        match self {
            Msg::Prepare {
                ballot, from_slot, ..
            } => (from_slot.0, ballot.round),
            Msg::Promise {
                ballot, from_slot, ..
            } => (from_slot.0, ballot.round),
            Msg::Accept { ballot, slot, .. } => (slot.0, ballot.round),
            Msg::Any { ballot, from_slot } => (from_slot.0, ballot.round),
            Msg::FastPropose { .. } | Msg::Propose { .. } => (CausalTag::NONE, CausalTag::NONE),
            Msg::Accepted { ballot, slot, .. } => (slot.0, ballot.round),
            Msg::Alive {
                ballot,
                decided_upto,
            } => (decided_upto.0, ballot.round),
            Msg::LearnRequest { from_slot } => (from_slot.0, CausalTag::NONE),
            Msg::LearnReply { decided_upto, .. } => (decided_upto.0, CausalTag::NONE),
        }
    }
}

/// Compact causal provenance stamped onto every wire message by the
/// sending middleware: who sent it (origin + monotone per-sender
/// counter) and which slot/ballot it concerns. Carried through the wire
/// codec so the receiver's `msg_recv` trace can be joined back to the
/// sender's `msg_sent`/`msg_tag` — the raw material of
/// `obs::causal`'s happens-before reconstruction. 28 bytes on the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CausalTag {
    /// Sending replica (the middleware that stamped the tag).
    pub origin: u32,
    /// The origin's transmission counter; advances on every stamped
    /// send, traced or not, so tracing never perturbs the byte stream.
    pub seq: u64,
    /// Slot provenance, [`CausalTag::NONE`] for slot-less kinds.
    pub slot: u64,
    /// Ballot-round provenance, [`CausalTag::NONE`] where absent.
    pub round: u64,
}

impl CausalTag {
    /// Sentinel for "no slot/round provenance".
    pub const NONE: u64 = u64::MAX;

    /// Encoded size on the wire.
    pub const WIRE_SIZE: u64 = 4 + 8 + 8 + 8;

    /// Stamps `msg` as transmission `seq` from `origin`.
    pub fn for_msg<V>(origin: ReplicaId, seq: u64, msg: &Msg<V>) -> CausalTag {
        let (slot, round) = msg.provenance();
        CausalTag {
            origin: origin.0,
            seq,
            slot,
            round,
        }
    }
}

impl Default for CausalTag {
    fn default() -> CausalTag {
        CausalTag {
            origin: 0,
            seq: 0,
            slot: CausalTag::NONE,
            round: CausalTag::NONE,
        }
    }
}

/// A record appended to the acceptor's durable log before the
/// corresponding protocol message may be sent.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Record<V> {
    /// The acceptor promised ballot `0`'s value.
    Promised(Ballot),
    /// The acceptor accepted `decree` at `slot` under `ballot`.
    Accepted {
        /// Ballot of the acceptance.
        ballot: Ballot,
        /// Slot concerned.
        slot: Slot,
        /// The accepted decree.
        decree: Decree<V>,
    },
}

/// Opaque token correlating an [`Effect::Persist`] with the driver's
/// completion callback.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PersistToken(pub u64);

/// Side effects requested by the protocol core.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Effect<V> {
    /// Send `msg` to replica `to` (may be the sender itself; the driver
    /// routes loopback through the network model's loopback path).
    Send {
        /// Destination replica.
        to: ReplicaId,
        /// The message.
        msg: Msg<V>,
    },
    /// Append `record` durably, then call `on_persisted(token)`.
    Persist {
        /// Record to append to the consensus log.
        record: Record<V>,
        /// Completion token.
        token: PersistToken,
    },
    /// A decree was decided and is ready for in-order delivery.
    ///
    /// Emitted in strictly increasing slot order with no gaps; no-ops are
    /// filtered out, and each [`ProposalId`] is delivered at most once per
    /// replica incarnation.
    Deliver {
        /// The slot that committed.
        slot: Slot,
        /// Proposal identity.
        pid: ProposalId,
        /// The decided value.
        value: V,
        /// The configuration epoch the slot belongs to. Derived from the
        /// log itself (the fences crossed up to this point of the
        /// replay), so a late joiner replaying old slots reports the
        /// epoch they were decided under, not its own boot epoch.
        epoch: u64,
    },
    /// A [`crate::Reconfig`] decree reached its fenced slot: the replica
    /// switched to `membership` and everything at or above `slot` now
    /// runs under the new epoch's replica set and quorum rule.
    Reconfigured {
        /// The fence slot the reconfiguration occupied.
        slot: Slot,
        /// The newly installed configuration.
        membership: Membership,
    },
}

/// Convenience collection of effects with builder-style helpers.
#[derive(Debug)]
pub struct Effects<V> {
    inner: Vec<Effect<V>>,
}

impl<V> Effects<V> {
    /// An empty effect set.
    pub fn new() -> Self {
        Effects { inner: Vec::new() }
    }

    /// Queues a unicast.
    pub fn send(&mut self, to: ReplicaId, msg: Msg<V>) {
        self.inner.push(Effect::Send { to, msg });
    }

    /// Queues the same message to every listed member, including the
    /// local one (self-delivery is how the local acceptor/learner hears
    /// its own coordinator, mirroring Treplica's in-process roles). The
    /// caller passes the *current epoch's* member list, so messages
    /// never leak to replicas outside the active configuration.
    pub fn broadcast(&mut self, members: &[ReplicaId], msg: Msg<V>)
    where
        Msg<V>: Clone,
    {
        for &to in members {
            self.inner.push(Effect::Send {
                to,
                msg: msg.clone(),
            });
        }
    }

    /// Queues a persist effect.
    pub fn persist(&mut self, record: Record<V>, token: PersistToken) {
        self.inner.push(Effect::Persist { record, token });
    }

    /// Queues a delivery under the configuration epoch owning `slot`.
    pub fn deliver(&mut self, slot: Slot, pid: ProposalId, value: V, epoch: u64) {
        self.inner.push(Effect::Deliver {
            slot,
            pid,
            value,
            epoch,
        });
    }

    /// Queues a membership-switch notification.
    pub fn reconfigured(&mut self, slot: Slot, membership: Membership) {
        self.inner.push(Effect::Reconfigured { slot, membership });
    }

    /// Appends all effects from `other`.
    pub fn extend(&mut self, other: Effects<V>) {
        self.inner.extend(other.inner);
    }

    /// Consumes the set, yielding the ordered effect list.
    pub fn into_vec(self) -> Vec<Effect<V>> {
        self.inner
    }

    /// Number of queued effects.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// Whether no effects are queued.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }
}

impl<V> Default for Effects<V> {
    fn default() -> Self {
        Effects::new()
    }
}

impl<V> From<Effects<V>> for Vec<Effect<V>> {
    fn from(e: Effects<V>) -> Self {
        e.into_vec()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn broadcast_reaches_all_members_including_self() {
        let mut fx: Effects<u8> = Effects::new();
        // Sparse member ids (post-reconfiguration): the broadcast follows
        // the list exactly, never the dense 0..n range.
        fx.broadcast(
            &[ReplicaId(0), ReplicaId(2), ReplicaId(7)],
            Msg::Alive {
                ballot: Ballot::BOTTOM,
                decided_upto: Slot::ZERO,
            },
        );
        let v = fx.into_vec();
        assert_eq!(v.len(), 3);
        let dests: Vec<u32> = v
            .iter()
            .map(|e| match e {
                Effect::Send { to, .. } => to.0,
                _ => panic!("expected send"),
            })
            .collect();
        assert_eq!(dests, vec![0, 2, 7]);
    }

    #[test]
    fn effects_compose() {
        let mut a: Effects<u8> = Effects::new();
        a.deliver(
            Slot(1),
            ProposalId {
                node: ReplicaId(0),
                epoch: 0,
                seq: 1,
            },
            9,
            0,
        );
        let mut b: Effects<u8> = Effects::new();
        b.persist(Record::Promised(Ballot::BOTTOM), PersistToken(7));
        a.extend(b);
        assert_eq!(a.len(), 2);
        assert!(!a.is_empty());
    }

    #[test]
    fn causal_tags_capture_provenance() {
        let accept: Msg<u8> = Msg::Accept {
            ballot: Ballot::classic(3, ReplicaId(1)),
            slot: Slot(7),
            decree: Decree::Noop,
        };
        assert_eq!(accept.kind(), "accept");
        let tag = CausalTag::for_msg(ReplicaId(1), 42, &accept);
        assert_eq!(
            tag,
            CausalTag {
                origin: 1,
                seq: 42,
                slot: 7,
                round: 3
            }
        );

        let propose: Msg<u8> = Msg::Propose {
            pid: ProposalId {
                node: ReplicaId(0),
                epoch: 0,
                seq: 1,
            },
            value: 9,
        };
        assert_eq!(propose.kind(), "propose");
        let tag = CausalTag::for_msg(ReplicaId(0), 5, &propose);
        assert_eq!(tag.slot, CausalTag::NONE);
        assert_eq!(tag.round, CausalTag::NONE);

        let dflt = CausalTag::default();
        assert_eq!(dflt.slot, CausalTag::NONE);
        assert_eq!(dflt.origin, 0);
    }

    #[test]
    fn empty_effects_default() {
        let fx: Effects<u8> = Effects::default();
        assert!(fx.is_empty());
        assert_eq!(fx.len(), 0);
        assert!(Vec::from(fx).is_empty());
    }
}
