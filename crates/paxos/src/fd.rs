//! Failure detection and the paper's operating-mode rule.
//!
//! Treplica (§2) runs Fast Paxos while at least ⌈3N/4⌉ processes are
//! working, falls back on classic Paxos while at least ⌊N/2⌋+1 are, and
//! blocks below a majority. The detector is the usual heartbeat timeout
//! scheme: every replica broadcasts `Alive` periodically; a peer not
//! heard from within the timeout is suspected.

use crate::types::{Membership, Quorums, ReplicaId};

/// The protocol operating mode derived from the live-replica estimate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// ≥ ⌈3N/4⌉ working: fast rounds enabled.
    Fast,
    /// ≥ ⌊N/2⌋+1 but < ⌈3N/4⌉: classic Paxos.
    Classic,
    /// < ⌊N/2⌋+1: no progress until recoveries.
    Blocked,
}

/// A suspicion edge reported by [`FailureDetector::poll_transitions`]:
/// pure observability output (detection-quality metrics), never fed
/// back into the mode rule or any protocol decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FdTransition {
    /// `peer` crossed the timeout and is now suspected.
    Suspected {
        /// The newly suspected peer.
        peer: ReplicaId,
        /// How long the peer had been silent when suspicion fired (µs).
        silent_us: u64,
    },
    /// A previously suspected `peer` was heard from again.
    Cleared {
        /// The peer whose suspicion is withdrawn.
        peer: ReplicaId,
        /// How long the suspicion lasted (µs).
        suspected_us: u64,
    },
}

/// Heartbeat-based failure detector, tracking the *current epoch's*
/// member set (ids may be sparse after a reconfiguration).
#[derive(Debug)]
pub struct FailureDetector {
    id: ReplicaId,
    quorums: Quorums,
    timeout_us: u64,
    /// The tracked members, sorted ascending.
    members: Vec<ReplicaId>,
    /// Last heartbeat receipt time per member (parallel to `members`,
    /// µs); `u64::MAX` marks "never heard", treated as alive during the
    /// initial grace period.
    last_heard: Vec<u64>,
    /// Suspicion edge state per member (parallel to `members`):
    /// `Some(t)` when the peer is currently suspected, with the time
    /// suspicion fired. Only [`FailureDetector::poll_transitions`]
    /// reads or writes this; `is_alive`/`mode` stay pure functions of
    /// the heartbeat history.
    suspected_at: Vec<Option<u64>>,
    started_at: u64,
}

impl FailureDetector {
    /// Creates a detector for replica `id` in a dense ensemble of
    /// `quorums.n()` replicas, with the given suspicion timeout (µs).
    /// Peers get a grace period of one timeout from `now` before they
    /// can be suspected.
    pub fn new(id: ReplicaId, quorums: Quorums, timeout_us: u64, now: u64) -> Self {
        FailureDetector {
            id,
            quorums,
            timeout_us,
            members: (0..quorums.n() as u32).map(ReplicaId).collect(),
            last_heard: vec![u64::MAX; quorums.n()],
            suspected_at: vec![None; quorums.n()],
            started_at: now,
        }
    }

    /// Switches the detector to a new configuration. Retained members
    /// keep their heartbeat history; joining members count as heard at
    /// `now`, giving them one full timeout of grace before suspicion.
    /// The mode rule's N becomes the new epoch's ensemble size.
    pub fn set_membership(&mut self, membership: &Membership, now: u64) {
        let mut members = Vec::with_capacity(membership.n());
        let mut last_heard = Vec::with_capacity(membership.n());
        let mut suspected_at = Vec::with_capacity(membership.n());
        for &m in membership.members() {
            let idx = self.member_index(m);
            let heard = idx
                .and_then(|i| self.last_heard.get(i).copied())
                .unwrap_or(now);
            // Retained members keep their suspicion edge; joiners start
            // unsuspected (they have heartbeat grace anyway).
            let suspected = idx
                .and_then(|i| self.suspected_at.get(i).copied())
                .flatten();
            members.push(m);
            last_heard.push(heard);
            suspected_at.push(suspected);
        }
        self.members = members;
        self.last_heard = last_heard;
        self.suspected_at = suspected_at;
        self.quorums = membership.quorums();
    }

    fn member_index(&self, id: ReplicaId) -> Option<usize> {
        self.members.binary_search(&id).ok()
    }

    /// Records a heartbeat (or any message treated as liveness evidence)
    /// from `from` at time `now`.
    pub fn heard(&mut self, from: ReplicaId, now: u64) {
        if let Some(t) = self
            .member_index(from)
            .and_then(|i| self.last_heard.get_mut(i))
        {
            *t = now;
        }
    }

    /// Whether `peer` is currently considered alive at time `now`.
    /// Unknown replica ids (outside the current configuration) are
    /// never alive.
    pub fn is_alive(&self, peer: ReplicaId, now: u64) -> bool {
        if peer == self.id {
            return true;
        }
        match self
            .member_index(peer)
            .and_then(|i| self.last_heard.get(i).copied())
        {
            Some(u64::MAX) => now.saturating_sub(self.started_at) < self.timeout_us,
            Some(t) => now.saturating_sub(t) < self.timeout_us,
            None => false,
        }
    }

    /// The replicas currently considered alive.
    pub fn alive(&self, now: u64) -> Vec<ReplicaId> {
        self.members
            .iter()
            .copied()
            .filter(|p| self.is_alive(*p, now))
            .collect()
    }

    /// Count of live replicas (including self).
    pub fn alive_count(&self, now: u64) -> usize {
        self.alive(now).len()
    }

    /// The paper's mode rule applied to the current estimate.
    pub fn mode(&self, now: u64) -> Mode {
        let alive = self.alive_count(now);
        if alive >= self.quorums.fast() {
            Mode::Fast
        } else if alive >= self.quorums.classic() {
            Mode::Classic
        } else {
            Mode::Blocked
        }
    }

    /// The live replica with the lowest id — the election candidate.
    pub fn candidate(&self, now: u64) -> ReplicaId {
        self.alive(now).into_iter().min().unwrap_or(self.id)
    }

    /// Compares the liveness estimate against the recorded suspicion
    /// edges and returns the transitions since the last poll: a peer
    /// newly crossing the timeout yields [`FdTransition::Suspected`]
    /// (with its silence so far), a suspected peer heard from again
    /// yields [`FdTransition::Cleared`] (with the mistake/outage
    /// duration). Observability only — calling or not calling this
    /// never changes `mode()`/`candidate()`.
    pub fn poll_transitions(&mut self, now: u64) -> Vec<FdTransition> {
        let mut out = Vec::new();
        for (i, &peer) in self.members.iter().enumerate() {
            if peer == self.id {
                continue;
            }
            let alive = self.is_alive(peer, now);
            let Some(edge) = self.suspected_at.get_mut(i) else {
                continue;
            };
            match (alive, *edge) {
                (false, None) => {
                    let heard = self.last_heard.get(i).copied().unwrap_or(u64::MAX);
                    let since = if heard == u64::MAX {
                        self.started_at
                    } else {
                        heard
                    };
                    *edge = Some(now);
                    out.push(FdTransition::Suspected {
                        peer,
                        silent_us: now.saturating_sub(since),
                    });
                }
                (true, Some(at)) => {
                    *edge = None;
                    out.push(FdTransition::Cleared {
                        peer,
                        suspected_us: now.saturating_sub(at),
                    });
                }
                _ => {}
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fd() -> FailureDetector {
        FailureDetector::new(ReplicaId(2), Quorums::new(5), 1_000, 0)
    }

    #[test]
    fn all_alive_during_grace_period() {
        let d = fd();
        assert_eq!(d.alive_count(500), 5);
        assert_eq!(d.mode(500), Mode::Fast);
    }

    #[test]
    fn silence_after_grace_suspects_peers() {
        let mut d = fd();
        d.heard(ReplicaId(0), 900);
        // At t=1500: grace expired; only r0 (heard at 900) and self live.
        assert_eq!(d.alive_count(1_500), 2);
        assert_eq!(d.mode(1_500), Mode::Blocked);
    }

    #[test]
    fn mode_transitions_follow_paper_rule() {
        let mut d = fd();
        let now = 10_000;
        for i in [0u32, 1, 3] {
            d.heard(ReplicaId(i), now);
        }
        // 4 alive of 5 → fast quorum ⌈15/4⌉=4 → Fast.
        assert_eq!(d.mode(now), Mode::Fast);
        // Let r3's heartbeat age out: 3 alive ≥ majority 3 → Classic.
        let later = now + 900;
        d.heard(ReplicaId(0), later);
        d.heard(ReplicaId(1), later);
        assert_eq!(d.mode(now + 1_100), Mode::Classic);
        // Only self + r0? age r1 out too.
        d.heard(ReplicaId(0), now + 2_000);
        assert_eq!(d.mode(now + 2_500), Mode::Blocked);
    }

    #[test]
    fn self_always_alive() {
        let d = fd();
        assert!(d.is_alive(ReplicaId(2), u64::MAX - 1));
    }

    #[test]
    fn candidate_is_lowest_alive() {
        let mut d = fd();
        let now = 10_000;
        d.heard(ReplicaId(4), now);
        // grace expired for silent peers.
        assert_eq!(d.candidate(now), ReplicaId(2));
        d.heard(ReplicaId(1), now);
        assert_eq!(d.candidate(now), ReplicaId(1));
    }

    #[test]
    fn out_of_range_replica_ids_are_harmless() {
        // Regression: `heard`/`is_alive` indexed `last_heard` with the
        // raw replica index, so a corrupted or misrouted message naming
        // a replica outside the ensemble panicked the detector. Unknown
        // ids are now ignored and never considered alive.
        let mut d = fd();
        d.heard(ReplicaId(99), 100);
        assert!(!d.is_alive(ReplicaId(99), 100));
        assert_eq!(d.alive_count(100), 5, "grace period unaffected");
    }

    #[test]
    fn heartbeat_refresh_keeps_peer_alive() {
        let mut d = fd();
        for t in (0..10_000).step_by(500) {
            d.heard(ReplicaId(0), t);
        }
        assert!(d.is_alive(ReplicaId(0), 10_300));
    }

    #[test]
    fn poll_transitions_reports_each_edge_once() {
        let mut d = fd();
        let now = 10_000;
        d.heard(ReplicaId(0), now);
        d.heard(ReplicaId(1), now);
        d.heard(ReplicaId(3), now);
        d.heard(ReplicaId(4), now);
        assert!(d.poll_transitions(now).is_empty(), "everyone fresh");
        // r3 and r4 go silent past the timeout.
        let later = now + 1_500;
        d.heard(ReplicaId(0), later);
        d.heard(ReplicaId(1), later);
        let trs = d.poll_transitions(later);
        assert_eq!(
            trs,
            vec![
                FdTransition::Suspected {
                    peer: ReplicaId(3),
                    silent_us: 1_500,
                },
                FdTransition::Suspected {
                    peer: ReplicaId(4),
                    silent_us: 1_500,
                },
            ]
        );
        assert!(d.poll_transitions(later + 10).is_empty(), "edge, not level");
        // r3 comes back: one cleared edge with the suspicion duration.
        // (r0/r1 refreshed so they don't age out in the meantime.)
        d.heard(ReplicaId(0), later + 2_000);
        d.heard(ReplicaId(1), later + 2_000);
        d.heard(ReplicaId(3), later + 2_000);
        let trs = d.poll_transitions(later + 2_000);
        assert_eq!(
            trs,
            vec![FdTransition::Cleared {
                peer: ReplicaId(3),
                suspected_us: 2_000,
            }]
        );
        assert!(d.poll_transitions(later + 2_001).is_empty());
    }

    #[test]
    fn poll_transitions_never_suspects_self() {
        let mut d = fd();
        // All peers age out, far past grace.
        let trs = d.poll_transitions(50_000);
        assert_eq!(trs.len(), 4, "all peers but self: {trs:?}");
        assert!(trs.iter().all(|t| !matches!(
            t,
            FdTransition::Suspected { peer, .. } if *peer == ReplicaId(2)
        )));
    }

    #[test]
    fn poll_transitions_is_observation_only() {
        let mut d = fd();
        let now = 20_000;
        // Identical detector that is never polled.
        let mut undisturbed = fd();
        for i in [0u32, 1] {
            d.heard(ReplicaId(i), now);
            undisturbed.heard(ReplicaId(i), now);
        }
        let _ = d.poll_transitions(now + 100);
        assert_eq!(d.mode(now + 100), undisturbed.mode(now + 100));
        assert_eq!(d.candidate(now + 100), undisturbed.candidate(now + 100));
        assert_eq!(d.alive_count(now + 100), undisturbed.alive_count(now + 100));
    }

    #[test]
    fn set_membership_carries_suspicion_state() {
        use crate::types::{Membership, Reconfig};
        let mut d = fd();
        let now = 10_000;
        for i in [0u32, 1, 3, 4] {
            d.heard(ReplicaId(i), now);
        }
        // r4 goes silent and gets suspected.
        let later = now + 1_500;
        for i in [0u32, 1, 3] {
            d.heard(ReplicaId(i), later);
        }
        let trs = d.poll_transitions(later);
        assert_eq!(trs.len(), 1);
        // Replace r0 with r8: r4's open suspicion must survive so its
        // eventual clear still reports a duration.
        let m = Membership::initial(5)
            .apply(&Reconfig {
                epoch: 1,
                add: vec![ReplicaId(8)],
                remove: vec![ReplicaId(0)],
            })
            .expect("valid");
        d.set_membership(&m, later);
        d.heard(ReplicaId(4), later + 500);
        let trs = d.poll_transitions(later + 500);
        assert_eq!(
            trs,
            vec![FdTransition::Cleared {
                peer: ReplicaId(4),
                suspected_us: 500,
            }]
        );
    }

    #[test]
    fn set_membership_tracks_new_epoch() {
        use crate::types::{Membership, Reconfig};
        let mut d = fd();
        let now = 10_000;
        for i in [0u32, 1, 3, 4] {
            d.heard(ReplicaId(i), now);
        }
        assert_eq!(d.mode(now), Mode::Fast);
        // Replace r0 with r8: N stays 5, ids go sparse.
        let m = Membership::initial(5)
            .apply(&Reconfig {
                epoch: 1,
                add: vec![ReplicaId(8)],
                remove: vec![ReplicaId(0)],
            })
            .expect("valid");
        d.set_membership(&m, now);
        // The removed replica is no longer alive or a candidate; the
        // joiner counts as heard at the switch (grace), so the mode
        // rule still sees 5 of 5.
        assert!(!d.is_alive(ReplicaId(0), now + 1));
        assert!(d.is_alive(ReplicaId(8), now + 1));
        assert_eq!(d.alive_count(now + 1), 5);
        assert_eq!(d.mode(now + 1), Mode::Fast);
        assert_eq!(d.candidate(now + 1), ReplicaId(1));
        // Retained members kept their history: r3 heard at `now` ages
        // out together with the joiner.
        assert_eq!(d.alive_count(now + 1_100), 1, "only self before refresh");
        d.heard(ReplicaId(8), now + 1_200);
        assert!(d.is_alive(ReplicaId(8), now + 1_300));
    }
}
