//! Whole-ensemble protocol tests.
//!
//! A tiny deterministic harness drives N `Replica`s with synchronous
//! message delivery and immediate persistence completion. It checks the
//! two properties the middleware depends on:
//!
//! * **agreement / total order** — delivered sequences at all replicas
//!   are consistent prefixes of one another;
//! * **exactly-once** — no proposal id is delivered twice at a replica.

use std::collections::VecDeque;

use paxos::{Effect, Mode, Msg, PaxosConfig, ProposalId, Record, Replica, ReplicaId, Slot};

type Value = u64;

/// Deterministic in-memory ensemble driver.
struct Ensemble {
    replicas: Vec<Option<Replica<Value>>>,
    /// Durable acceptor log per node (survives crashes).
    logs: Vec<Vec<Record<Value>>>,
    /// Delivered (slot, pid, value) per node, in delivery order.
    delivered: Vec<Vec<(Slot, ProposalId, Value)>>,
    /// Observed `Reconfigured` effects per node: (fence slot, new epoch).
    reconfigs: Vec<Vec<(Slot, u64)>>,
    inboxes: Vec<VecDeque<(ReplicaId, Msg<Value>)>>,
    config: PaxosConfig,
    now: u64,
    epochs: Vec<u64>,
}

impl Ensemble {
    fn new(config: PaxosConfig) -> Self {
        let n = config.n;
        Ensemble {
            replicas: (0..n)
                .map(|i| Some(Replica::new(ReplicaId(i as u32), config.clone(), 0)))
                .collect(),
            logs: vec![Vec::new(); n],
            delivered: vec![Vec::new(); n],
            reconfigs: vec![Vec::new(); n],
            inboxes: (0..n).map(|_| VecDeque::new()).collect(),
            config,
            now: 0,
            epochs: vec![0; n],
        }
    }

    /// Grows the per-node vectors so `idx` is addressable (joining
    /// replicas get ids beyond the seed ensemble).
    fn ensure_node(&mut self, idx: usize) {
        while self.replicas.len() <= idx {
            self.replicas.push(None);
            self.logs.push(Vec::new());
            self.delivered.push(Vec::new());
            self.reconfigs.push(Vec::new());
            self.inboxes.push(VecDeque::new());
            self.epochs.push(0);
        }
    }

    fn apply_effects(&mut self, node: usize, effects: Vec<Effect<Value>>) {
        let mut queue = VecDeque::from(effects);
        while let Some(effect) = queue.pop_front() {
            match effect {
                Effect::Send { to, msg } => {
                    if let Some(Some(_)) = self.replicas.get(to.index()) {
                        self.inboxes[to.index()].push_back((ReplicaId(node as u32), msg));
                    }
                }
                Effect::Persist { record, token } => {
                    // Synchronous "disk": durable immediately.
                    self.logs[node].push(record);
                    if let Some(r) = self.replicas[node].as_mut() {
                        queue.extend(r.on_persisted(token));
                    }
                }
                Effect::Deliver {
                    slot, pid, value, ..
                } => {
                    self.delivered[node].push((slot, pid, value));
                }
                Effect::Reconfigured { slot, membership } => {
                    self.reconfigs[node].push((slot, membership.epoch()));
                }
            }
        }
    }

    /// Drains all inboxes until quiescent.
    fn settle(&mut self) {
        loop {
            let mut progressed = false;
            for i in 0..self.replicas.len() {
                while let Some((from, msg)) = self.inboxes[i].pop_front() {
                    progressed = true;
                    if let Some(r) = self.replicas[i].as_mut() {
                        let fx = r.on_message(from, msg, self.now);
                        self.apply_effects(i, fx);
                    }
                }
            }
            if !progressed {
                break;
            }
        }
    }

    /// Advances time by `dt` µs, ticking every replica and settling.
    fn step(&mut self, dt: u64) {
        self.now += dt;
        for i in 0..self.replicas.len() {
            if let Some(r) = self.replicas[i].as_mut() {
                let fx = r.on_tick(self.now);
                self.apply_effects(i, fx);
            }
        }
        self.settle();
    }

    /// Runs `steps` ticks of `dt` µs each.
    fn run(&mut self, steps: usize, dt: u64) {
        for _ in 0..steps {
            self.step(dt);
        }
    }

    fn propose(&mut self, node: usize, value: Value) -> ProposalId {
        let (pid, fx) = self.replicas[node]
            .as_mut()
            .expect("proposing on a live node")
            .propose(value);
        self.apply_effects(node, fx);
        self.settle();
        pid
    }

    fn crash(&mut self, node: usize) {
        self.replicas[node] = None;
        self.inboxes[node].clear();
    }

    /// Asks `node`'s leader role to reconfigure the ensemble; applies
    /// the resulting effects and settles. Returns whether the leader
    /// took the request.
    fn reconfig(&mut self, node: usize, add: &[u32], remove: &[u32]) -> bool {
        let (ok, fx) = self.replicas[node]
            .as_mut()
            .expect("reconfig on a live node")
            .propose_reconfig(
                add.iter().map(|&i| ReplicaId(i)).collect(),
                remove.iter().map(|&i| ReplicaId(i)).collect(),
            );
        self.apply_effects(node, fx);
        self.settle();
        ok
    }

    /// Boots a brand-new replica `node` with the membership currently
    /// installed at live replica `from` (the driver-level analogue of
    /// provisioning a spare and handing it the cluster config).
    fn join(&mut self, node: usize, from: usize) {
        self.ensure_node(node);
        assert!(self.replicas[node].is_none());
        let membership = self.replicas[from]
            .as_ref()
            .expect("seed member alive")
            .membership()
            .clone();
        let r = Replica::new_with_membership(
            ReplicaId(node as u32),
            self.config.clone(),
            membership,
            self.now,
        );
        self.replicas[node] = Some(r);
    }

    /// Restarts a crashed node from its durable log; `start_slot` is the
    /// application checkpoint watermark (0 = replay everything via
    /// catch-up from peers).
    fn restart(&mut self, node: usize, start_slot: Slot) {
        assert!(self.replicas[node].is_none());
        self.epochs[node] += 1;
        let r = Replica::recover(
            ReplicaId(node as u32),
            self.config.clone(),
            self.logs[node].iter(),
            start_slot,
            self.epochs[node],
            self.now,
        );
        self.replicas[node] = Some(r);
        self.delivered[node].clear(); // fresh incarnation delivers from start_slot
    }

    /// Asserts all live replicas' delivered sequences are consistent
    /// prefixes (same slots in the same order with the same values).
    fn assert_agreement(&self) {
        let seqs: Vec<&Vec<(Slot, ProposalId, Value)>> = self
            .replicas
            .iter()
            .enumerate()
            .filter(|(_, r)| r.is_some())
            .map(|(i, _)| &self.delivered[i])
            .collect();
        for w in seqs.windows(2) {
            let (a, b) = (w[0], w[1]);
            // Align by slot: a checkpoint-recovered replica starts
            // delivering mid-log, so compare the overlapping slot range.
            for (slot, pid, value) in a.iter() {
                if let Some((_, pid2, value2)) = b.iter().find(|(s2, _, _)| s2 == slot) {
                    assert_eq!((pid, value), (pid2, value2), "divergence at {slot:?}");
                }
            }
        }
        // Exactly-once per replica.
        for d in &self.delivered {
            let mut pids: Vec<ProposalId> = d.iter().map(|(_, p, _)| *p).collect();
            pids.sort();
            pids.dedup();
            assert_eq!(pids.len(), d.len(), "duplicate delivery");
        }
    }

    fn max_delivered(&self) -> usize {
        self.delivered.iter().map(Vec::len).max().unwrap_or(0)
    }

    fn live_status(&self, node: usize) -> paxos::ReplicaStatus {
        self.replicas[node].as_ref().unwrap().status()
    }
}

const TICK: u64 = 20_000; // 20 ms

fn stabilized(config: PaxosConfig) -> Ensemble {
    let mut e = Ensemble::new(config);
    e.run(30, TICK); // 600 ms: election + Any propagation
    e
}

#[test]
fn classic_ensemble_decides_and_agrees() {
    let mut e = stabilized(PaxosConfig::lan_classic_only(5));
    for i in 0..20 {
        e.propose((i % 5) as usize, 100 + i);
    }
    e.run(10, TICK);
    e.assert_agreement();
    assert_eq!(e.delivered[0].len(), 20, "all proposals decided");
    for node in 0..5 {
        assert_eq!(e.delivered[node].len(), 20);
    }
}

#[test]
fn fast_mode_engages_with_full_ensemble() {
    let mut e = stabilized(PaxosConfig::lan(5));
    let st = e.live_status(1);
    assert_eq!(st.mode, Mode::Fast);
    e.propose(3, 7);
    e.run(5, TICK);
    assert_eq!(e.delivered[3].len(), 1);
    e.assert_agreement();
}

#[test]
fn fast_mode_handles_concurrent_proposers() {
    let mut e = stabilized(PaxosConfig::lan(5));
    // Interleave proposals from every node before settling fully: the
    // harness settles after each, but retries/collisions still exercise
    // the recovery path across ticks.
    for round in 0..10u64 {
        for node in 0..5usize {
            let (pid, fx) = e.replicas[node]
                .as_mut()
                .unwrap()
                .propose(round * 10 + node as u64);
            let _ = pid;
            e.apply_effects(node, fx);
        }
        e.settle();
    }
    e.run(100, TICK); // let collision recovery + retries finish
    e.assert_agreement();
    assert_eq!(
        e.delivered[0].len(),
        50,
        "every proposal eventually decided"
    );
}

#[test]
fn leader_crash_elects_new_leader_and_continues() {
    let mut e = stabilized(PaxosConfig::lan_classic_only(5));
    let leader0 = (0..5)
        .find(|&i| e.live_status(i).leading)
        .expect("a leader");
    assert_eq!(leader0, 0, "lowest id leads first");
    e.propose(2, 1);
    e.crash(0);
    e.run(40, TICK); // fd timeout + re-election
    let leader1 = (1..5)
        .find(|&i| e.live_status(i).leading)
        .expect("new leader");
    assert_eq!(leader1, 1);
    e.propose(2, 2);
    e.run(10, TICK);
    e.assert_agreement();
    let d = &e.delivered[2];
    assert!(
        d.iter().any(|(_, _, v)| *v == 2),
        "post-failover proposal decided"
    );
}

#[test]
fn fast_falls_back_to_classic_below_fast_quorum() {
    let mut e = stabilized(PaxosConfig::lan(5));
    assert_eq!(e.live_status(0).mode, Mode::Fast);
    // Crash 2 of 5: alive = 3 < fast quorum 4, ≥ majority 3.
    e.crash(3);
    e.crash(4);
    e.run(40, TICK);
    assert_eq!(e.live_status(0).mode, Mode::Classic);
    e.propose(1, 42);
    e.run(20, TICK);
    e.assert_agreement();
    assert!(e.delivered[1].iter().any(|(_, _, v)| *v == 42));
}

#[test]
fn blocked_below_majority_until_recovery() {
    let mut e = stabilized(PaxosConfig::lan(5));
    for i in 0..3 {
        e.propose(0, i);
    }
    e.run(10, TICK);
    let before = e.max_delivered();
    assert_eq!(before, 3);
    e.crash(2);
    e.crash(3);
    e.crash(4);
    e.run(40, TICK);
    assert_eq!(e.live_status(0).mode, Mode::Blocked);
    e.propose(0, 99);
    e.run(50, TICK);
    assert_eq!(
        e.delivered[0].len(),
        before,
        "no progress while below majority"
    );
    // Recover one: majority again.
    e.restart(2, Slot::ZERO);
    e.run(80, TICK);
    assert!(
        e.delivered[0].iter().any(|(_, _, v)| *v == 99),
        "parked proposal decided after recovery"
    );
    e.assert_agreement();
}

#[test]
fn recovered_replica_catches_up_from_peers() {
    let mut e = stabilized(PaxosConfig::lan(5));
    e.crash(4);
    e.run(40, TICK);
    for i in 0..30 {
        e.propose(i as usize % 4, 1000 + i);
    }
    e.run(10, TICK);
    assert_eq!(e.delivered[0].len(), 30);
    e.restart(4, Slot::ZERO);
    e.run(100, TICK); // heartbeat lag detection + LearnRequest loop
    assert_eq!(
        e.delivered[4].len(),
        30,
        "recovered replica must learn the whole backlog"
    );
    e.assert_agreement();
}

#[test]
fn two_simultaneous_crashes_and_recoveries() {
    // The paper's §5.5 faultload shape at the consensus layer.
    let mut e = stabilized(PaxosConfig::lan(5));
    for i in 0..10 {
        e.propose(i as usize % 5, i);
    }
    e.run(10, TICK);
    e.crash(1);
    e.crash(2);
    e.run(40, TICK);
    for i in 10..20 {
        e.propose(i as usize % 2 * 3, i); // nodes 0 and 3
    }
    e.run(20, TICK);
    e.restart(1, Slot::ZERO);
    e.restart(2, Slot::ZERO);
    e.run(120, TICK);
    for i in 20..25 {
        e.propose(1, i);
    }
    e.run(60, TICK);
    e.assert_agreement();
    assert_eq!(e.delivered[0].len(), 25);
    assert_eq!(e.delivered[1].len(), 25, "recovered replica fully synced");
}

#[test]
fn recovering_with_checkpoint_watermark_skips_prefix() {
    let mut e = stabilized(PaxosConfig::lan(5));
    for i in 0..10 {
        e.propose(0, i);
    }
    e.run(10, TICK);
    let watermark = e.replicas[4].as_ref().unwrap().decided_upto();
    e.crash(4);
    e.run(40, TICK);
    for i in 10..15 {
        e.propose(0, i);
    }
    e.run(10, TICK);
    // Recover from a checkpoint at the watermark: only the suffix is
    // re-learned and re-delivered.
    e.restart(4, watermark);
    e.run(100, TICK);
    let d = &e.delivered[4];
    assert_eq!(d.len(), 5, "only post-checkpoint slots re-delivered");
    assert!(d.iter().all(|(s, _, _)| *s >= watermark));
    e.assert_agreement();
}

#[test]
fn classic_only_config_never_uses_fast_ballots() {
    let mut e = stabilized(PaxosConfig::lan_classic_only(5));
    e.propose(0, 1);
    e.run(10, TICK);
    for i in 0..5 {
        let st = e.live_status(i);
        assert!(
            !st.ballot.is_fast(),
            "classic-only must not use fast ballots"
        );
    }
}

#[test]
fn pending_proposals_drain_to_zero() {
    let mut e = stabilized(PaxosConfig::lan(5));
    for i in 0..25 {
        e.propose(i as usize % 5, i);
    }
    e.run(120, TICK);
    for i in 0..5 {
        assert_eq!(
            e.live_status(i).pending_proposals,
            0,
            "replica {i} still has pending proposals"
        );
    }
}

#[test]
fn four_replica_ensemble_matches_paper_minimum() {
    // The paper's baseline deployment is 4 replicas (fast quorum 3).
    let mut e = stabilized(PaxosConfig::lan(4));
    assert_eq!(e.live_status(0).mode, Mode::Fast);
    for i in 0..12 {
        e.propose(i as usize % 4, i);
    }
    e.run(60, TICK);
    e.assert_agreement();
    assert_eq!(e.delivered[0].len(), 12);
    // One crash: 3 alive = fast quorum exactly → still Fast.
    e.crash(3);
    e.run(40, TICK);
    assert_eq!(e.live_status(0).mode, Mode::Fast);
    e.propose(0, 99);
    e.run(60, TICK);
    assert!(e.delivered[0].iter().any(|(_, _, v)| *v == 99));
}

#[test]
fn twelve_replica_ensemble_scales() {
    // Largest deployment in the paper's speedup experiments.
    let mut e = stabilized(PaxosConfig::lan(12));
    for i in 0..24 {
        e.propose(i as usize % 12, i);
    }
    e.run(80, TICK);
    e.assert_agreement();
    assert_eq!(e.delivered[0].len(), 24);
}

#[test]
#[ignore]
fn debug_two_crashes() {
    let mut e = stabilized(PaxosConfig::lan(5));
    for i in 0..10 {
        e.propose(i as usize % 5, i);
    }
    e.run(10, TICK);
    println!(
        "after first 10: {:?}",
        e.delivered.iter().map(Vec::len).collect::<Vec<_>>()
    );
    e.crash(1);
    e.crash(2);
    e.run(40, TICK);
    println!("mode at 0: {:?}", e.live_status(0));
    for i in 10..20 {
        e.propose(i as usize % 2 * 3, i);
    }
    e.run(20, TICK);
    println!(
        "after 20: {:?}",
        e.delivered.iter().map(Vec::len).collect::<Vec<_>>()
    );
    e.restart(1, Slot::ZERO);
    e.restart(2, Slot::ZERO);
    e.run(120, TICK);
    println!(
        "after restart: {:?}",
        e.delivered.iter().map(Vec::len).collect::<Vec<_>>()
    );
    for i in 20..25 {
        e.propose(1, i);
    }
    e.run(60, TICK);
    println!(
        "end: {:?}",
        e.delivered.iter().map(Vec::len).collect::<Vec<_>>()
    );
    for i in 0..5 {
        println!("status {i}: {:?}", e.live_status(i));
    }
}

#[test]
fn survives_heavy_deterministic_message_loss() {
    // Drop every 7th message systematically: retries, re-elections and
    // catch-up must still decide everything exactly once.
    let mut e = stabilized(PaxosConfig::lan(5));
    let mut drop_counter = 0u64;
    for i in 0..30u64 {
        let node = (i % 5) as usize;
        let (_pid, fx) = e.replicas[node].as_mut().unwrap().propose(i);
        // Filter the effects: drop every 7th send.
        let filtered: Vec<_> = fx
            .into_iter()
            .filter(|eff| {
                if matches!(eff, Effect::Send { .. }) {
                    drop_counter += 1;
                    !drop_counter.is_multiple_of(7)
                } else {
                    true
                }
            })
            .collect();
        e.apply_effects(node, filtered);
        e.settle();
        e.step(TICK);
    }
    e.run(400, TICK);
    e.assert_agreement();
    assert_eq!(
        e.delivered[0].len(),
        30,
        "all proposals decided despite loss"
    );
    for i in 0..5 {
        assert_eq!(e.live_status(i).pending_proposals, 0);
    }
}

#[test]
fn nudge_rebroadcasts_pending_proposal() {
    let mut e = stabilized(PaxosConfig::lan(5));
    // Submit but drop every outgoing send: the proposal stays pending.
    let (pid, fx) = e.replicas[0].as_mut().unwrap().propose(7);
    let filtered: Vec<_> = fx
        .into_iter()
        .filter(|eff| !matches!(eff, Effect::Send { .. }))
        .collect();
    e.apply_effects(0, filtered);
    e.settle();
    assert_eq!(e.delivered[0].len(), 0, "suppressed proposal undelivered");
    // Nudge resubmits immediately (no retry-timer wait).
    let fx = e.replicas[0].as_mut().unwrap().nudge(pid);
    assert!(!fx.is_empty(), "nudge must emit sends");
    e.apply_effects(0, fx);
    e.settle();
    e.run(5, TICK);
    assert_eq!(e.delivered[0].len(), 1);
    // Nudging a delivered proposal is a no-op.
    assert!(e.replicas[0].as_mut().unwrap().nudge(pid).is_empty());
}

#[test]
fn reconfig_replaces_member_and_new_node_catches_up() {
    let mut e = stabilized(PaxosConfig::lan_classic_only(5));
    for i in 0..5 {
        e.propose(i as usize % 5, i);
    }
    e.run(5, TICK);
    // The leader swaps r4 for r5 at a fenced slot.
    assert!(e.reconfig(0, &[5], &[4]), "leader accepts the reconfig");
    e.run(5, TICK);
    assert!(
        e.reconfigs[0].iter().any(|(_, ep)| *ep == 1),
        "epoch 1 installed at the leader"
    );
    assert_eq!(e.live_status(0).epoch, 1);
    assert_eq!(e.live_status(0).n, 5);
    // The removed replica also learned the decree and retired.
    assert!(e.reconfigs[4].iter().any(|(_, ep)| *ep == 1));
    // Provision the joiner with the new configuration and let it learn
    // the whole backlog (including across the fence slot).
    e.join(5, 0);
    e.run(120, TICK);
    for i in 10..15 {
        e.propose(i as usize % 4, i); // old survivors propose
    }
    e.run(20, TICK);
    e.assert_agreement();
    assert_eq!(e.delivered[0].len(), 10);
    assert_eq!(e.delivered[5].len(), 10, "joiner fully caught up");
    assert_eq!(
        e.delivered[4].len(),
        5,
        "retired replica sees nothing decided after the fence"
    );
}

#[test]
fn reconfig_remove_shrinks_quorum_rule() {
    let mut e = stabilized(PaxosConfig::lan_classic_only(5));
    e.propose(0, 1);
    assert!(e.reconfig(0, &[], &[4]));
    e.run(5, TICK);
    assert_eq!(e.live_status(0).n, 4, "mode rule tracks the new epoch's N");
    // Majority of 4 is 3: one further crash must not block progress.
    e.crash(3);
    e.run(40, TICK);
    e.propose(1, 42);
    e.run(20, TICK);
    e.assert_agreement();
    assert!(e.delivered[1].iter().any(|(_, _, v)| *v == 42));
}

#[test]
fn fast_mode_reconfig_closes_window_then_switches() {
    let mut e = stabilized(PaxosConfig::lan(5));
    assert_eq!(e.live_status(0).mode, Mode::Fast);
    for i in 0..4 {
        e.propose(i as usize, i);
    }
    e.run(5, TICK);
    // Under a fast ballot the reconfig first re-prepares classically
    // (closing the open fast window) and only then takes its fence slot.
    assert!(e.reconfig(0, &[5], &[4]));
    e.run(10, TICK);
    assert_eq!(e.live_status(0).epoch, 1);
    e.join(5, 0);
    e.run(120, TICK);
    for i in 10..16 {
        e.propose(i as usize % 4, i);
    }
    // Leave time for the class-mismatch election to restore fast mode.
    e.run(100, TICK);
    e.assert_agreement();
    assert_eq!(e.delivered[0].len(), 10);
    assert_eq!(e.delivered[5].len(), 10);
    assert_eq!(
        e.live_status(0).mode,
        Mode::Fast,
        "fast mode restored under the new epoch"
    );
}

#[test]
fn reconfig_refused_by_followers_and_for_empty_result() {
    let mut e = stabilized(PaxosConfig::lan_classic_only(5));
    assert!(!e.reconfig(2, &[5], &[4]), "follower must refuse");
    assert!(
        !e.reconfig(0, &[], &[0, 1, 2, 3, 4]),
        "removing everyone must refuse"
    );
    assert!(e.reconfig(0, &[5], &[4]), "leader accepts a valid one");
}

#[test]
fn gap_left_by_downtime_is_repaired() {
    // Regression (found by the schedule proptest): slots decided while
    // a replica is down leave a delivery gap that ongoing traffic can
    // never fill; small gaps below the catch-up lag threshold must be
    // fetched explicitly or delivery deadlocks behind the hole.
    let mut e = stabilized(PaxosConfig::lan_classic_only(5));
    e.crash(4);
    e.crash(3);
    e.propose(0, 100); // decided while 3 and 4 are down → their gap
    e.restart(3, Slot::ZERO);
    e.propose(3, 101);
    e.restart(4, Slot::ZERO);
    e.run(200, TICK);
    e.assert_agreement();
    assert_eq!(
        e.delivered.iter().map(Vec::len).collect::<Vec<_>>(),
        vec![2, 2, 2, 2, 2],
        "every replica fills the gap and delivers both proposals"
    );
    for i in 0..5 {
        assert_eq!(e.live_status(i).pending_proposals, 0);
    }
}
