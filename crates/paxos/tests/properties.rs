//! Property-based protocol tests: randomized schedules of proposals,
//! crashes and recoveries must never violate agreement or exactly-once
//! delivery, and must reach quiescence (all proposals decided) whenever
//! a majority survives.

use std::collections::VecDeque;

use proptest::prelude::*;

use paxos::{Effect, Msg, PaxosConfig, ProposalId, Record, Replica, ReplicaId, Slot};

type Value = u64;

struct Harness {
    replicas: Vec<Option<Replica<Value>>>,
    logs: Vec<Vec<Record<Value>>>,
    delivered: Vec<Vec<(Slot, ProposalId, Value)>>,
    inboxes: Vec<VecDeque<(ReplicaId, Msg<Value>)>>,
    config: PaxosConfig,
    epochs: Vec<u64>,
    now: u64,
    proposed: Vec<ProposalId>,
}

impl Harness {
    fn new(n: usize, fast: bool) -> Self {
        let config = if fast {
            PaxosConfig::lan(n)
        } else {
            PaxosConfig::lan_classic_only(n)
        };
        Harness {
            replicas: (0..n)
                .map(|i| Some(Replica::new(ReplicaId(i as u32), config.clone(), 0)))
                .collect(),
            logs: vec![Vec::new(); n],
            delivered: vec![Vec::new(); n],
            inboxes: (0..n).map(|_| VecDeque::new()).collect(),
            config,
            epochs: vec![0; n],
            now: 0,
            proposed: Vec::new(),
        }
    }

    fn apply(&mut self, node: usize, effects: Vec<Effect<Value>>) {
        let mut q = VecDeque::from(effects);
        while let Some(e) = q.pop_front() {
            match e {
                Effect::Send { to, msg } => {
                    if self.replicas[to.index()].is_some() {
                        self.inboxes[to.index()].push_back((ReplicaId(node as u32), msg));
                    }
                }
                Effect::Persist { record, token } => {
                    self.logs[node].push(record);
                    if let Some(r) = self.replicas[node].as_mut() {
                        q.extend(r.on_persisted(token));
                    }
                }
                Effect::Deliver {
                    slot, pid, value, ..
                } => self.delivered[node].push((slot, pid, value)),
                // This harness never proposes reconfigurations.
                Effect::Reconfigured { .. } => {}
            }
        }
    }

    fn settle(&mut self) {
        loop {
            let mut moved = false;
            for i in 0..self.replicas.len() {
                while let Some((from, msg)) = self.inboxes[i].pop_front() {
                    moved = true;
                    if let Some(r) = self.replicas[i].as_mut() {
                        let fx = r.on_message(from, msg, self.now);
                        self.apply(i, fx);
                    }
                }
            }
            if !moved {
                break;
            }
        }
    }

    fn step(&mut self) {
        self.now += 20_000;
        for i in 0..self.replicas.len() {
            if let Some(r) = self.replicas[i].as_mut() {
                let fx = r.on_tick(self.now);
                self.apply(i, fx);
            }
        }
        self.settle();
    }

    fn live(&self) -> usize {
        self.replicas.iter().filter(|r| r.is_some()).count()
    }
}

/// One step of a random schedule.
#[derive(Debug, Clone)]
enum Op {
    Propose { node: usize, value: Value },
    Crash { node: usize },
    Recover { node: usize },
    Ticks { count: usize },
}

fn op_strategy(n: usize) -> impl Strategy<Value = Op> {
    prop_oneof![
        5 => (0..n, 0u64..1_000_000).prop_map(|(node, value)| Op::Propose { node, value }),
        1 => (0..n).prop_map(|node| Op::Crash { node }),
        2 => (0..n).prop_map(|node| Op::Recover { node }),
        3 => (1usize..6).prop_map(|count| Op::Ticks { count }),
    ]
}

fn run_schedule(n: usize, fast: bool, ops: Vec<Op>) {
    let mut h = Harness::new(n, fast);
    // Stabilize: initial election.
    for _ in 0..30 {
        h.step();
    }
    let majority = n / 2 + 1;
    for op in ops {
        match op {
            Op::Propose { node, value } => {
                if let Some(r) = h.replicas[node].as_mut() {
                    let (pid, fx) = r.propose(value);
                    h.proposed.push(pid);
                    h.apply(node, fx);
                    h.settle();
                }
            }
            Op::Crash { node } => {
                // Keep a majority alive so the schedule always terminates.
                if h.replicas[node].is_some() && h.live() > majority {
                    h.replicas[node] = None;
                    h.inboxes[node].clear();
                }
            }
            Op::Recover { node } => {
                if h.replicas[node].is_none() {
                    h.epochs[node] += 1;
                    let r = Replica::recover(
                        ReplicaId(node as u32),
                        h.config.clone(),
                        h.logs[node].iter(),
                        Slot::ZERO,
                        h.epochs[node],
                        h.now,
                    );
                    h.replicas[node] = Some(r);
                    h.delivered[node].clear();
                }
            }
            Op::Ticks { count } => {
                for _ in 0..count {
                    h.step();
                }
            }
        }
    }
    // Quiesce: give retries (exponential backoff caps at 8× the 1 s
    // base), elections and catch-up ample time.
    for _ in 0..1_200 {
        h.step();
    }

    // Safety: slot-aligned agreement across live replicas.
    let live: Vec<usize> = (0..n).filter(|&i| h.replicas[i].is_some()).collect();
    for w in live.windows(2) {
        let (a, b) = (&h.delivered[w[0]], &h.delivered[w[1]]);
        for (slot, pid, value) in a {
            if let Some((_, p2, v2)) = b.iter().find(|(s2, _, _)| s2 == slot) {
                assert_eq!((pid, value), (p2, v2), "divergence at {slot:?}");
            }
        }
    }
    // Exactly-once per replica.
    for d in &h.delivered {
        let mut pids: Vec<_> = d.iter().map(|(_, p, _)| *p).collect();
        pids.sort();
        pids.dedup();
        assert_eq!(pids.len(), d.len(), "duplicate delivery");
    }
    // Liveness: every proposal issued at a replica that is alive at the
    // end must be decided (majority always survived).
    for &i in &live {
        let st = h.replicas[i].as_ref().unwrap().status();
        assert_eq!(st.pending_proposals, 0, "replica {i} has stuck proposals");
    }
    // Validity: every delivered value was proposed.
    for d in &h.delivered {
        for (_, pid, _) in d {
            assert!(h.proposed.contains(pid), "delivered unproposed {pid:?}");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn random_schedules_preserve_agreement_fast(
        ops in proptest::collection::vec(op_strategy(5), 1..25)
    ) {
        run_schedule(5, true, ops);
    }

    #[test]
    fn random_schedules_preserve_agreement_classic(
        ops in proptest::collection::vec(op_strategy(5), 1..25)
    ) {
        run_schedule(5, false, ops);
    }

    #[test]
    fn random_schedules_preserve_agreement_four_replicas(
        ops in proptest::collection::vec(op_strategy(4), 1..20)
    ) {
        run_schedule(4, true, ops);
    }
}
