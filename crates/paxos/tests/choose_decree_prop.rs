//! Property tests of the Fast Paxos recovery value-choice rule (O4):
//! if any value *could* have been chosen in the sampled fast round, the
//! coordinator must pick exactly that value.

use proptest::prelude::*;

use paxos::{choose_decree, AcceptedReport, Ballot, Decree, ProposalId, Quorums, ReplicaId, Slot};

fn pid(seq: u64) -> ProposalId {
    ProposalId {
        node: ReplicaId((seq % 3) as u32),
        epoch: 0,
        seq,
    }
}

proptest! {
    /// For every ensemble size and vote split: if some value was
    /// accepted by a full fast quorum among ALL acceptors, then any
    /// classic-quorum sample of those votes must force that value.
    #[test]
    fn chosen_values_always_recovered(
        n in 4usize..=12,
        winner_value in 0u64..3,
        seed in 0u64..1000,
    ) {
        let quorums = Quorums::new(n);
        let fast_ballot = Ballot::fast(1, ReplicaId(0));
        // Build full vote assignment: a fast quorum votes for the
        // winner; the rest vote for other values.
        let fq = quorums.fast();
        let mut votes: Vec<(ReplicaId, u64)> = Vec::new();
        for i in 0..n {
            let value = if i < fq { winner_value } else { (winner_value + 1 + (i as u64 % 2)) % 3 };
            votes.push((ReplicaId(i as u32), value));
        }
        // Sample any classic quorum (rotate by seed).
        let q = quorums.classic();
        let start = (seed as usize) % n;
        let sample: Vec<(ReplicaId, u64)> = (0..q).map(|k| votes[(start + k) % n]).collect();
        let reports: Vec<AcceptedReport<u64>> = sample
            .iter()
            .map(|(_, v)| AcceptedReport {
                slot: Slot(0),
                ballot: fast_ballot,
                decree: Decree::Value(pid(*v), *v),
            })
            .collect();
        let decree = choose_decree(&reports, q, quorums);
        // The winner was chosen by a full fast quorum, so the sample
        // must force it.
        prop_assert_eq!(
            decree,
            Decree::Value(pid(winner_value), winner_value),
            "sample {:?} failed to recover the chosen value", sample
        );
    }

    /// choose_decree never invents values: whatever it returns was in
    /// the reports (or Noop when there were none).
    #[test]
    fn never_invents_values(
        n in 4usize..=12,
        values in proptest::collection::vec(0u64..5, 0..8),
    ) {
        let quorums = Quorums::new(n);
        let fast_ballot = Ballot::fast(1, ReplicaId(0));
        let reports: Vec<AcceptedReport<u64>> = values
            .iter()
            .enumerate()
            .map(|(i, v)| AcceptedReport {
                slot: Slot(0),
                ballot: if i % 3 == 0 { Ballot::classic(0, ReplicaId(1)) } else { fast_ballot },
                decree: Decree::Value(pid(*v), *v),
            })
            .collect();
        let decree = choose_decree(&reports, quorums.classic(), quorums);
        match decree {
            Decree::Noop => prop_assert!(values.is_empty() || !reports.is_empty()),
            Decree::Value(_, v) => prop_assert!(values.contains(&v)),
            Decree::Reconfig(rc) => prop_assert!(false, "invented reconfig {:?}", rc),
        }
    }

    /// Classic reports always dominate older fast reports (higher
    /// ballot wins regardless of counts).
    #[test]
    fn higher_classic_ballot_dominates(count_old in 1usize..6) {
        let quorums = Quorums::new(8);
        let old_fast = Ballot::fast(1, ReplicaId(0));
        let new_classic = Ballot::classic(2, ReplicaId(1));
        let mut reports: Vec<AcceptedReport<u64>> = (0..count_old)
            .map(|_| AcceptedReport {
                slot: Slot(3),
                ballot: old_fast,
                decree: Decree::Value(pid(1), 1),
            })
            .collect();
        reports.push(AcceptedReport {
            slot: Slot(3),
            ballot: new_classic,
            decree: Decree::Value(pid(2), 2),
        });
        let decree = choose_decree(&reports, quorums.classic(), quorums);
        prop_assert_eq!(decree, Decree::Value(pid(2), 2));
    }
}
