//! Faultload specifications.
//!
//! The paper's three faultloads (§5.4–§5.6):
//!
//! 1. one crash at t=270 s, autonomous recovery;
//! 2. two overlapped crashes at t=240 s and t=270 s, autonomous
//!    recoveries;
//! 3. two simultaneous crashes at t=240 s, one autonomous recovery and
//!    one delayed (operator-triggered) at t=390 s.
//!
//! Crash times sit inside the measurement interval so full recovery is
//! observed within it. Replica choice is pseudo-random ("chosen at
//! random", §5.5) but deterministic given the run seed.

/// How a crashed replica comes back.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecoveryKind {
    /// The local watchdog re-instantiates the server as soon as it
    /// detects the crash (no human intervention).
    Autonomous,
    /// An operator restarts the server at the given absolute time (µs)
    /// — counted as a human intervention by the autonomy measure.
    Manual {
        /// Absolute restart time (µs since run start).
        at_us: u64,
    },
}

/// One injected fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultEvent {
    /// Absolute crash time (µs since run start).
    pub at_us: u64,
    /// Which replica to crash: an index into the run's pseudo-random
    /// victim permutation (so "the first victim" and "the second
    /// victim" are distinct replicas without naming fixed ids).
    pub victim: usize,
    /// Recovery policy.
    pub recovery: RecoveryKind,
}

/// A network partition injected for a bounded interval.
///
/// The paper's faultloads crash processes only; partitions extend the
/// benchmark to the other classic failure class (the consensus layer
/// must stay safe and the majority side live).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PartitionEvent {
    /// When the links are cut (µs).
    pub at_us: u64,
    /// When they heal (µs).
    pub heal_at_us: u64,
    /// Victim indices (into the run's victim permutation) isolated from
    /// the rest of the ensemble.
    pub minority: Vec<usize>,
}

/// A faultload: a list of crash events injected during the run.
///
/// ```
/// use faultload::Faultload;
/// // The paper's §5.6 faultload, scaled to a 1/3-length schedule:
/// let f = Faultload::double_crash_delayed().scaled(1, 3);
/// assert_eq!(f.events[0].at_us, 80_000_000);
/// assert_eq!(f.manual_recoveries(), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Faultload {
    /// The injected faults, in time order.
    pub events: Vec<FaultEvent>,
    /// Network partitions, if any.
    pub partitions: Vec<PartitionEvent>,
}

impl Faultload {
    /// The failure-free faultload (speedup/scaleup baselines).
    pub fn none() -> Faultload {
        Faultload::default()
    }

    /// A beyond-the-paper faultload: isolate `minority` replicas for
    /// `[at_us, heal_at_us)` without crashing anyone.
    pub fn partition(at_us: u64, heal_at_us: u64, minority: Vec<usize>) -> Faultload {
        Faultload {
            events: Vec::new(),
            partitions: vec![PartitionEvent { at_us, heal_at_us, minority }],
        }
    }

    /// Paper §5.4: one crash at t=270 s, autonomous recovery.
    pub fn single_crash() -> Faultload {
        Faultload {
            events: vec![FaultEvent {
                at_us: 270_000_000,
                victim: 0,
                recovery: RecoveryKind::Autonomous,
            }],
            partitions: Vec::new(),
        }
    }

    /// Paper §5.5: overlapped crashes at t=240 s and t=270 s, both
    /// autonomous.
    pub fn double_crash() -> Faultload {
        Faultload {
            events: vec![
                FaultEvent {
                    at_us: 240_000_000,
                    victim: 0,
                    recovery: RecoveryKind::Autonomous,
                },
                FaultEvent {
                    at_us: 270_000_000,
                    victim: 1,
                    recovery: RecoveryKind::Autonomous,
                },
            ],
            partitions: Vec::new(),
        }
    }

    /// Paper §5.6: both replicas crash at t=240 s; one recovers
    /// autonomously, the other is restarted manually at t=390 s.
    pub fn double_crash_delayed() -> Faultload {
        Faultload {
            events: vec![
                FaultEvent {
                    at_us: 240_000_000,
                    victim: 0,
                    recovery: RecoveryKind::Autonomous,
                },
                FaultEvent {
                    at_us: 240_000_000,
                    victim: 1,
                    recovery: RecoveryKind::Manual { at_us: 390_000_000 },
                },
            ],
            partitions: Vec::new(),
        }
    }

    /// Rescales all event times by `num/den` (for shortened schedules:
    /// a quick run keeps the faultload's relative position in the
    /// measurement interval).
    pub fn scaled(&self, num: u64, den: u64) -> Faultload {
        Faultload {
            events: self
                .events
                .iter()
                .map(|e| FaultEvent {
                    at_us: e.at_us * num / den,
                    victim: e.victim,
                    recovery: match e.recovery {
                        RecoveryKind::Autonomous => RecoveryKind::Autonomous,
                        RecoveryKind::Manual { at_us } => RecoveryKind::Manual {
                            at_us: at_us * num / den,
                        },
                    },
                })
                .collect(),
            partitions: self
                .partitions
                .iter()
                .map(|p| PartitionEvent {
                    at_us: p.at_us * num / den,
                    heal_at_us: p.heal_at_us * num / den,
                    minority: p.minority.clone(),
                })
                .collect(),
        }
    }

    /// Number of injected faults.
    pub fn fault_count(&self) -> usize {
        self.events.len()
    }

    /// Number of recoveries requiring an operator (the autonomy
    /// denominator's numerator: human interventions).
    pub fn manual_recoveries(&self) -> usize {
        self.events
            .iter()
            .filter(|e| matches!(e.recovery, RecoveryKind::Manual { .. }))
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_faultloads_have_paper_times() {
        let one = Faultload::single_crash();
        assert_eq!(one.events[0].at_us, 270_000_000);
        assert_eq!(one.fault_count(), 1);
        assert_eq!(one.manual_recoveries(), 0);

        let two = Faultload::double_crash();
        assert_eq!(two.events[0].at_us, 240_000_000);
        assert_eq!(two.events[1].at_us, 270_000_000);
        assert_ne!(two.events[0].victim, two.events[1].victim);

        let delayed = Faultload::double_crash_delayed();
        assert_eq!(delayed.events[0].at_us, delayed.events[1].at_us);
        assert_eq!(delayed.manual_recoveries(), 1);
        assert!(matches!(
            delayed.events[1].recovery,
            RecoveryKind::Manual { at_us: 390_000_000 }
        ));
    }

    #[test]
    fn scaling_preserves_structure() {
        let f = Faultload::double_crash_delayed().scaled(1, 3);
        assert_eq!(f.events[0].at_us, 80_000_000);
        assert!(matches!(
            f.events[1].recovery,
            RecoveryKind::Manual { at_us: 130_000_000 }
        ));
    }

    #[test]
    fn none_is_empty() {
        assert_eq!(Faultload::none().fault_count(), 0);
    }
}
