//! Faultload specifications.
//!
//! The paper's three faultloads (§5.4–§5.6):
//!
//! 1. one crash at t=270 s, autonomous recovery;
//! 2. two overlapped crashes at t=240 s and t=270 s, autonomous
//!    recoveries;
//! 3. two simultaneous crashes at t=240 s, one autonomous recovery and
//!    one delayed (operator-triggered) at t=390 s.
//!
//! Crash times sit inside the measurement interval so full recovery is
//! observed within it. Replica choice is pseudo-random ("chosen at
//! random", §5.5) but deterministic given the run seed.

/// How a crashed replica comes back.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecoveryKind {
    /// The local watchdog re-instantiates the server as soon as it
    /// detects the crash (no human intervention).
    Autonomous,
    /// An operator restarts the server at the given absolute time (µs)
    /// — counted as a human intervention by the autonomy measure.
    Manual {
        /// Absolute restart time (µs since run start).
        at_us: u64,
    },
    /// The machine is gone for good (hardware loss): the replica never
    /// restarts. Availability is restored only by a
    /// [`ReconfigEvent`] replacing it with a freshly provisioned node.
    Never,
}

/// One injected fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultEvent {
    /// Absolute crash time (µs since run start).
    pub at_us: u64,
    /// Which replica to crash: an index into the run's pseudo-random
    /// victim permutation (so "the first victim" and "the second
    /// victim" are distinct replicas without naming fixed ids).
    pub victim: usize,
    /// Recovery policy.
    pub recovery: RecoveryKind,
}

/// A network partition injected for a bounded interval.
///
/// The paper's faultloads crash processes only; partitions extend the
/// benchmark to the other classic failure class (the consensus layer
/// must stay safe and the majority side live).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PartitionEvent {
    /// When the links are cut (µs).
    pub at_us: u64,
    /// When they heal (µs).
    pub heal_at_us: u64,
    /// Victim indices (into the run's victim permutation) isolated from
    /// the rest of the ensemble.
    pub minority: Vec<usize>,
}

/// Adversarial per-link message faults applied to every server–server
/// link for a bounded interval: probabilistic loss, duplication, and
/// reordering (a message held back so later ones overtake it).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkFaultSpec {
    /// Per-message loss probability in `[0, 1]`.
    pub loss: f64,
    /// Per-message duplication probability in `[0, 1]`.
    pub duplicate: f64,
    /// Per-message reorder probability in `[0, 1]`.
    pub reorder: f64,
    /// Maximum hold-back applied to a reordered message (µs).
    pub reorder_delay_us: u64,
}

/// An interval during which [`LinkFaultSpec`] faults afflict all
/// replica-to-replica links.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NetFaultEvent {
    /// When the faults start (µs since run start).
    pub at_us: u64,
    /// When the links return to nominal behaviour (µs).
    pub until_us: u64,
    /// The fault profile.
    pub fault: LinkFaultSpec,
}

/// An interval during which one replica's disk misbehaves: durable
/// writes may fail (delivered as an fsync error, upon which the server
/// fail-stops and the watchdog restarts it), and a crash tears the
/// in-flight log append, leaving a partial record for recovery to
/// detect and discard.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DiskFaultEvent {
    /// When the disk starts misbehaving (µs since run start).
    pub at_us: u64,
    /// When the disk returns to nominal behaviour (µs).
    pub until_us: u64,
    /// Which replica (an index into the run's victim permutation).
    pub victim: usize,
    /// Per-write failure probability in `[0, 1]`.
    pub write_fail: f64,
    /// Whether crashes tear the in-flight log append.
    pub torn_tail: bool,
}

/// An administrative membership change (configuration epoch bump)
/// submitted to the ensemble at a given time.
///
/// `remove` names victims by index into the run's pseudo-random victim
/// permutation (like [`FaultEvent::victim`]); `add_spares` is a count of
/// brand-new nodes the operator provisions — the driver assigns them the
/// next free node ids and boots them once the change is decided, so
/// they catch up via log shipping or snapshot transfer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReconfigEvent {
    /// When the operator submits the change (µs since run start).
    pub at_us: u64,
    /// Freshly provisioned nodes joining the ensemble.
    pub add_spares: usize,
    /// Victim-permutation indices leaving the ensemble.
    pub remove: Vec<usize>,
}

/// A faultload: a list of crash events injected during the run.
///
/// ```
/// use faultload::Faultload;
/// // The paper's §5.6 faultload, scaled to a 1/3-length schedule:
/// let f = Faultload::double_crash_delayed().scaled(1, 3);
/// assert_eq!(f.events[0].at_us, 80_000_000);
/// assert_eq!(f.manual_recoveries(), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Faultload {
    /// The injected faults, in time order.
    pub events: Vec<FaultEvent>,
    /// Network partitions, if any.
    pub partitions: Vec<PartitionEvent>,
    /// Adversarial link-fault intervals, if any.
    pub net_faults: Vec<NetFaultEvent>,
    /// Disk-fault intervals, if any.
    pub disk_faults: Vec<DiskFaultEvent>,
    /// Administrative membership changes, if any.
    pub reconfigs: Vec<ReconfigEvent>,
}

impl Faultload {
    /// The failure-free faultload (speedup/scaleup baselines).
    pub fn none() -> Faultload {
        Faultload::default()
    }

    /// A beyond-the-paper faultload: isolate `minority` replicas for
    /// `[at_us, heal_at_us)` without crashing anyone.
    pub fn partition(at_us: u64, heal_at_us: u64, minority: Vec<usize>) -> Faultload {
        Faultload {
            partitions: vec![PartitionEvent {
                at_us,
                heal_at_us,
                minority,
            }],
            ..Faultload::default()
        }
    }

    /// Paper §5.4: one crash at t=270 s, autonomous recovery.
    pub fn single_crash() -> Faultload {
        Faultload::single_crash_at(270_000_000)
    }

    /// One autonomous-recovery crash of victim 0 at `at_us` — the §5.4
    /// faultload at an explicit time (comparison baselines that must
    /// align with a scenario's own incident time).
    pub fn single_crash_at(at_us: u64) -> Faultload {
        Faultload {
            events: vec![FaultEvent {
                at_us,
                victim: 0,
                recovery: RecoveryKind::Autonomous,
            }],
            ..Faultload::default()
        }
    }

    /// Paper §5.5: overlapped crashes at t=240 s and t=270 s, both
    /// autonomous.
    pub fn double_crash() -> Faultload {
        Faultload {
            events: vec![
                FaultEvent {
                    at_us: 240_000_000,
                    victim: 0,
                    recovery: RecoveryKind::Autonomous,
                },
                FaultEvent {
                    at_us: 270_000_000,
                    victim: 1,
                    recovery: RecoveryKind::Autonomous,
                },
            ],
            ..Faultload::default()
        }
    }

    /// Paper §5.6: both replicas crash at t=240 s; one recovers
    /// autonomously, the other is restarted manually at t=390 s.
    pub fn double_crash_delayed() -> Faultload {
        Faultload {
            events: vec![
                FaultEvent {
                    at_us: 240_000_000,
                    victim: 0,
                    recovery: RecoveryKind::Autonomous,
                },
                FaultEvent {
                    at_us: 240_000_000,
                    victim: 1,
                    recovery: RecoveryKind::Manual { at_us: 390_000_000 },
                },
            ],
            ..Faultload::default()
        }
    }

    /// An adversarial faultload afflicting every replica link with the
    /// given loss/duplication/reordering profile for `[at_us, until_us)`.
    pub fn lossy_links(at_us: u64, until_us: u64, fault: LinkFaultSpec) -> Faultload {
        Faultload {
            net_faults: vec![NetFaultEvent {
                at_us,
                until_us,
                fault,
            }],
            ..Faultload::default()
        }
    }

    /// A flapping partition: `cycles` rounds of cutting `minority` off
    /// for `cut_us` and then healing for `heal_us`, starting at `at_us`.
    /// Repeated quorum loss and re-formation stresses leader election
    /// and collision recovery far harder than a single long partition.
    pub fn partition_flap(
        at_us: u64,
        cycles: usize,
        cut_us: u64,
        heal_us: u64,
        minority: Vec<usize>,
    ) -> Faultload {
        let mut partitions = Vec::with_capacity(cycles);
        let mut t = at_us;
        for _ in 0..cycles {
            partitions.push(PartitionEvent {
                at_us: t,
                heal_at_us: t + cut_us,
                minority: minority.clone(),
            });
            t += cut_us + heal_us;
        }
        Faultload {
            partitions,
            ..Faultload::default()
        }
    }

    /// A faulty-disk faultload: replica `victim`'s durable writes fail
    /// with probability `write_fail` during `[at_us, until_us)`, and any
    /// crash in that window tears the in-flight log append, leaving a
    /// partial record the recovery path must discard.
    pub fn faulty_disk(at_us: u64, until_us: u64, victim: usize, write_fail: f64) -> Faultload {
        Faultload {
            disk_faults: vec![DiskFaultEvent {
                at_us,
                until_us,
                victim,
                write_fail,
                torn_tail: true,
            }],
            ..Faultload::default()
        }
    }

    /// Everything at once, sized relative to the run length `until_us`:
    /// lossy links throughout, a flapping partition, one faulty disk,
    /// and a crash of the first victim at the two-thirds mark.
    pub fn adversarial_mix(until_us: u64) -> Faultload {
        Faultload {
            events: vec![FaultEvent {
                at_us: until_us * 2 / 3,
                victim: 0,
                recovery: RecoveryKind::Autonomous,
            }],
            partitions: Faultload::partition_flap(
                until_us / 4,
                3,
                until_us / 20,
                until_us / 20,
                vec![2],
            )
            .partitions,
            net_faults: vec![NetFaultEvent {
                at_us: 0,
                until_us,
                fault: LinkFaultSpec {
                    loss: 0.02,
                    duplicate: 0.01,
                    reorder: 0.10,
                    reorder_delay_us: 5_000,
                },
            }],
            disk_faults: vec![DiskFaultEvent {
                at_us: until_us / 3,
                until_us,
                victim: 1,
                write_fail: 0.002,
                torn_tail: true,
            }],
            reconfigs: Vec::new(),
        }
    }

    /// A planned scale-up: provision `count` fresh nodes at `at_us` and
    /// add them to the ensemble (no one crashes).
    pub fn reconfig_add(at_us: u64, count: usize) -> Faultload {
        Faultload {
            reconfigs: vec![ReconfigEvent {
                at_us,
                add_spares: count,
                remove: Vec::new(),
            }],
            ..Faultload::default()
        }
    }

    /// A planned scale-down: remove the given victims from the ensemble
    /// at `at_us`. The removed replicas stay up but retire — the mode
    /// rule thereafter tracks the shrunk N.
    pub fn reconfig_remove(at_us: u64, remove: Vec<usize>) -> Faultload {
        Faultload {
            reconfigs: vec![ReconfigEvent {
                at_us,
                add_spares: 0,
                remove,
            }],
            ..Faultload::default()
        }
    }

    /// A planned replacement: one fresh node joins and victim `victim`
    /// leaves in a single configuration change at `at_us`.
    pub fn reconfig_replace(at_us: u64, victim: usize) -> Faultload {
        Faultload {
            reconfigs: vec![ReconfigEvent {
                at_us,
                add_spares: 1,
                remove: vec![victim],
            }],
            ..Faultload::default()
        }
    }

    /// A rolling restart (software-upgrade drill): `count` distinct
    /// replicas crash and autonomously recover one at a time, `gap_us`
    /// apart, starting at `start_us`. Membership never changes — this is
    /// the availability baseline the reconfiguration scenarios compare
    /// against.
    pub fn rolling_restart(start_us: u64, gap_us: u64, count: usize) -> Faultload {
        Faultload {
            events: (0..count)
                .map(|i| FaultEvent {
                    at_us: start_us + gap_us * i as u64,
                    victim: i,
                    recovery: RecoveryKind::Autonomous,
                })
                .collect(),
            ..Faultload::default()
        }
    }

    /// Permanent machine loss with operator reprovisioning: victim 0's
    /// hardware dies at `at_us` and never comes back; at
    /// `reprovision_at_us` the operator replaces it with a fresh node
    /// via a configuration change.
    pub fn permanent_loss(at_us: u64, reprovision_at_us: u64) -> Faultload {
        Faultload {
            events: vec![FaultEvent {
                at_us,
                victim: 0,
                recovery: RecoveryKind::Never,
            }],
            reconfigs: vec![ReconfigEvent {
                at_us: reprovision_at_us,
                add_spares: 1,
                remove: vec![0],
            }],
            ..Faultload::default()
        }
    }

    /// Rescales all event times by `num/den` (for shortened schedules:
    /// a quick run keeps the faultload's relative position in the
    /// measurement interval).
    pub fn scaled(&self, num: u64, den: u64) -> Faultload {
        Faultload {
            events: self
                .events
                .iter()
                .map(|e| FaultEvent {
                    at_us: e.at_us * num / den,
                    victim: e.victim,
                    recovery: match e.recovery {
                        RecoveryKind::Autonomous => RecoveryKind::Autonomous,
                        RecoveryKind::Manual { at_us } => RecoveryKind::Manual {
                            at_us: at_us * num / den,
                        },
                        RecoveryKind::Never => RecoveryKind::Never,
                    },
                })
                .collect(),
            partitions: self
                .partitions
                .iter()
                .map(|p| PartitionEvent {
                    at_us: p.at_us * num / den,
                    heal_at_us: p.heal_at_us * num / den,
                    minority: p.minority.clone(),
                })
                .collect(),
            net_faults: self
                .net_faults
                .iter()
                .map(|f| NetFaultEvent {
                    at_us: f.at_us * num / den,
                    until_us: f.until_us * num / den,
                    fault: f.fault,
                })
                .collect(),
            disk_faults: self
                .disk_faults
                .iter()
                .map(|d| DiskFaultEvent {
                    at_us: d.at_us * num / den,
                    until_us: d.until_us * num / den,
                    ..*d
                })
                .collect(),
            reconfigs: self
                .reconfigs
                .iter()
                .map(|r| ReconfigEvent {
                    at_us: r.at_us * num / den,
                    add_spares: r.add_spares,
                    remove: r.remove.clone(),
                })
                .collect(),
        }
    }

    /// Fresh nodes the driver must reserve ids for (the sum of
    /// `add_spares` over all reconfiguration events).
    pub fn spares_needed(&self) -> usize {
        self.reconfigs.iter().map(|r| r.add_spares).sum()
    }

    /// Number of injected faults.
    pub fn fault_count(&self) -> usize {
        self.events.len()
    }

    /// Number of recoveries requiring an operator (the autonomy
    /// denominator's numerator: human interventions).
    pub fn manual_recoveries(&self) -> usize {
        self.events
            .iter()
            .filter(|e| matches!(e.recovery, RecoveryKind::Manual { .. }))
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_faultloads_have_paper_times() {
        let one = Faultload::single_crash();
        assert_eq!(one.events[0].at_us, 270_000_000);
        assert_eq!(one.fault_count(), 1);
        assert_eq!(one.manual_recoveries(), 0);

        let two = Faultload::double_crash();
        assert_eq!(two.events[0].at_us, 240_000_000);
        assert_eq!(two.events[1].at_us, 270_000_000);
        assert_ne!(two.events[0].victim, two.events[1].victim);

        let delayed = Faultload::double_crash_delayed();
        assert_eq!(delayed.events[0].at_us, delayed.events[1].at_us);
        assert_eq!(delayed.manual_recoveries(), 1);
        assert!(matches!(
            delayed.events[1].recovery,
            RecoveryKind::Manual { at_us: 390_000_000 }
        ));
    }

    #[test]
    fn scaling_preserves_structure() {
        let f = Faultload::double_crash_delayed().scaled(1, 3);
        assert_eq!(f.events[0].at_us, 80_000_000);
        assert!(matches!(
            f.events[1].recovery,
            RecoveryKind::Manual { at_us: 130_000_000 }
        ));
    }

    #[test]
    fn none_is_empty() {
        assert_eq!(Faultload::none().fault_count(), 0);
        assert_eq!(Faultload::none().spares_needed(), 0);
    }

    #[test]
    fn reconfig_constructors_scale_and_count_spares() {
        let add = Faultload::reconfig_add(90_000_000, 2).scaled(1, 3);
        assert_eq!(add.reconfigs[0].at_us, 30_000_000);
        assert_eq!(add.spares_needed(), 2);

        let replace = Faultload::reconfig_replace(60_000_000, 1);
        assert_eq!(replace.spares_needed(), 1);
        assert_eq!(replace.reconfigs[0].remove, vec![1]);

        let rolling = Faultload::rolling_restart(30_000_000, 20_000_000, 3);
        assert_eq!(rolling.fault_count(), 3);
        assert_eq!(rolling.events[2].at_us, 70_000_000);
        let victims: Vec<usize> = rolling.events.iter().map(|e| e.victim).collect();
        assert_eq!(victims, vec![0, 1, 2], "one replica at a time");
        assert_eq!(rolling.spares_needed(), 0, "upgrade keeps membership");

        let loss = Faultload::permanent_loss(40_000_000, 100_000_000).scaled(1, 2);
        assert!(matches!(loss.events[0].recovery, RecoveryKind::Never));
        assert_eq!(loss.reconfigs[0].at_us, 50_000_000);
        assert_eq!(loss.spares_needed(), 1);
        assert_eq!(loss.manual_recoveries(), 0, "no restart ever happens");
    }

    #[test]
    fn partition_flap_builds_disjoint_cycles() {
        let f = Faultload::partition_flap(100, 3, 10, 20, vec![1, 2]);
        assert_eq!(f.partitions.len(), 3);
        assert_eq!(f.partitions[0].at_us, 100);
        assert_eq!(f.partitions[0].heal_at_us, 110);
        assert_eq!(f.partitions[1].at_us, 130);
        assert_eq!(f.partitions[2].at_us, 160);
        for w in f.partitions.windows(2) {
            assert!(w[0].heal_at_us <= w[1].at_us, "cycles must not overlap");
        }
    }

    #[test]
    fn adversarial_constructors_scale() {
        let spec = LinkFaultSpec {
            loss: 0.1,
            duplicate: 0.05,
            reorder: 0.2,
            reorder_delay_us: 9_000,
        };
        let f = Faultload::lossy_links(30_000_000, 90_000_000, spec).scaled(1, 3);
        assert_eq!(f.net_faults[0].at_us, 10_000_000);
        assert_eq!(f.net_faults[0].until_us, 30_000_000);
        assert_eq!(f.net_faults[0].fault, spec, "profile survives scaling");

        let d = Faultload::faulty_disk(60_000_000, 120_000_000, 1, 0.01).scaled(1, 2);
        assert_eq!(d.disk_faults[0].at_us, 30_000_000);
        assert_eq!(d.disk_faults[0].until_us, 60_000_000);
        assert!(d.disk_faults[0].torn_tail);
        assert_eq!(d.disk_faults[0].victim, 1);
    }

    #[test]
    fn adversarial_mix_covers_all_fault_classes() {
        let f = Faultload::adversarial_mix(60_000_000);
        assert_eq!(f.fault_count(), 1);
        assert!(!f.partitions.is_empty());
        assert!(!f.net_faults.is_empty());
        assert!(!f.disk_faults.is_empty());
        assert!(f.events[0].at_us < 60_000_000);
        // Distinct victims: the crashed replica, the faulty disk, and
        // the partitioned minority do not pile onto one index.
        assert_ne!(f.events[0].victim, f.disk_faults[0].victim);
        assert!(!f.partitions[0].minority.contains(&f.events[0].victim));
    }
}
