//! The dependability measures of the paper (§5.1).
//!
//! * **Availability** — fraction of the run during which the
//!   application delivered service.
//! * **Performability** — failure-free AWIPS (with CV) vs. AWIPS during
//!   recovery windows, and the performance variation PV%.
//! * **Accuracy** — `1 − errors/total` (reported as a percentage;
//!   "three nines" in the paper's worst case).
//! * **Autonomy** — `1 − human interventions / faults`.

/// One replica's recovery window, as observed by the experiment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecoverySpan {
    /// The replica that crashed (server index).
    pub server: usize,
    /// Crash time (µs).
    pub crash_at: u64,
    /// Restart (process re-instantiation) time (µs).
    pub restart_at: u64,
    /// Recovery completion time (µs) — checkpoint loaded, backlog
    /// re-learned, replica serving again. `None` if it never completed
    /// within the run.
    pub recovered_at: Option<u64>,
    /// Whether the restart was operator-triggered. A manual recovery's
    /// performability window starts at the restart (the paper's
    /// "recovery R2" column in Table 5), not at the crash.
    pub manual: bool,
}

impl RecoverySpan {
    /// The recovery duration (restart → operational), if completed.
    pub fn recovery_secs(&self) -> Option<f64> {
        self.recovered_at
            .map(|r| (r.saturating_sub(self.restart_at)) as f64 / 1e6)
    }
}

/// AWIPS/CV over one analysis window.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PerformabilityWindow {
    /// Window start (µs).
    pub from_us: u64,
    /// Window end (µs).
    pub to_us: u64,
    /// Average WIPS over the window.
    pub awips: f64,
    /// Coefficient of variation of per-second WIPS.
    pub cv: f64,
}

/// Computes AWIPS/CV over `[from, to)` of a per-second series.
pub fn performability(series: &[u32], from_us: u64, to_us: u64) -> PerformabilityWindow {
    let b0 = (from_us / 1_000_000) as usize;
    let b1 = ((to_us / 1_000_000) as usize).min(series.len());
    let vals: Vec<f64> = if b1 > b0 {
        series[b0..b1].iter().map(|v| *v as f64).collect()
    } else {
        Vec::new()
    };
    let awips = if vals.is_empty() {
        0.0
    } else {
        vals.iter().sum::<f64>() / vals.len() as f64
    };
    let cv = if awips > 0.0 {
        let var = vals.iter().map(|v| (v - awips).powi(2)).sum::<f64>() / vals.len() as f64;
        var.sqrt() / awips
    } else {
        0.0
    };
    PerformabilityWindow {
        from_us,
        to_us,
        awips,
        cv,
    }
}

/// The full dependability report for one experiment run.
#[derive(Debug, Clone)]
pub struct DependabilityReport {
    /// Failure-free AWIPS/CV (measurement interval minus recovery
    /// windows).
    pub failure_free: PerformabilityWindow,
    /// AWIPS/CV over the recovery periods (crash → recovery complete).
    pub recovery: Vec<PerformabilityWindow>,
    /// PV%: performance variation of each recovery window relative to
    /// the failure-free AWIPS.
    pub pv_percent: Vec<f64>,
    /// Availability: fraction of the measurement interval with service
    /// delivered (≥1 successful interaction per second bucket, or no
    /// demand).
    pub availability: f64,
    /// Accuracy percentage: `100 × (1 − errors/total)`.
    pub accuracy_percent: f64,
    /// Autonomy: `1 − interventions/faults` (1.0 when no faults).
    pub autonomy: f64,
    /// Observed recovery spans.
    pub spans: Vec<RecoverySpan>,
}

impl DependabilityReport {
    /// Builds the report from the run's observables.
    ///
    /// `series` is the per-second successful-interaction histogram;
    /// `measure` the measurement window (µs); `spans` the observed
    /// recoveries; `errors`/`total` the request counts; `faults` and
    /// `interventions` come from the faultload.
    #[allow(clippy::too_many_arguments)]
    pub fn build(
        series: &[u32],
        measure_from_us: u64,
        measure_to_us: u64,
        spans: Vec<RecoverySpan>,
        errors: u64,
        total: u64,
        faults: usize,
        interventions: usize,
    ) -> DependabilityReport {
        // Recovery windows clipped to the measurement interval. An
        // autonomous recovery's window opens at the crash (the failover
        // dip belongs to it); a manual one opens at the operator's
        // restart.
        let windows: Vec<(u64, u64)> = spans
            .iter()
            .map(|s| {
                let start = if s.manual { s.restart_at } else { s.crash_at };
                (
                    start.max(measure_from_us),
                    s.recovered_at.unwrap_or(measure_to_us).min(measure_to_us),
                )
            })
            .filter(|(a, b)| b > a)
            .collect();

        // Failure-free = measurement seconds not inside any recovery.
        let b0 = (measure_from_us / 1_000_000) as usize;
        let b1 = ((measure_to_us / 1_000_000) as usize).min(series.len());
        let mut ff_vals: Vec<f64> = Vec::new();
        let mut up_seconds = 0usize;
        let mut total_seconds = 0usize;
        for (b, value) in series.iter().enumerate().take(b1).skip(b0) {
            let t = b as u64 * 1_000_000;
            total_seconds += 1;
            if *value > 0 {
                up_seconds += 1;
            }
            let in_recovery = windows.iter().any(|(a, z)| t >= *a && t < *z);
            if !in_recovery {
                ff_vals.push(*value as f64);
            }
        }
        let ff_awips = if ff_vals.is_empty() {
            0.0
        } else {
            ff_vals.iter().sum::<f64>() / ff_vals.len() as f64
        };
        let ff_cv = if ff_awips > 0.0 {
            let var =
                ff_vals.iter().map(|v| (v - ff_awips).powi(2)).sum::<f64>() / ff_vals.len() as f64;
            var.sqrt() / ff_awips
        } else {
            0.0
        };
        let failure_free = PerformabilityWindow {
            from_us: measure_from_us,
            to_us: measure_to_us,
            awips: ff_awips,
            cv: ff_cv,
        };

        let recovery: Vec<PerformabilityWindow> = windows
            .iter()
            .map(|(a, z)| performability(series, *a, *z))
            .collect();
        let pv_percent = recovery
            .iter()
            .map(|w| {
                if ff_awips > 0.0 {
                    100.0 * (w.awips - ff_awips) / ff_awips
                } else {
                    0.0
                }
            })
            .collect();

        let availability = if total_seconds == 0 {
            1.0
        } else {
            up_seconds as f64 / total_seconds as f64
        };
        let accuracy_percent = if total == 0 {
            100.0
        } else {
            100.0 * (1.0 - errors as f64 / total as f64)
        };
        let autonomy = if faults == 0 {
            1.0
        } else {
            1.0 - interventions as f64 / faults as f64
        };

        DependabilityReport {
            failure_free,
            recovery,
            pv_percent,
            availability,
            accuracy_percent,
            autonomy,
            spans,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flat_series(len: usize, level: u32) -> Vec<u32> {
        vec![level; len]
    }

    #[test]
    fn performability_of_flat_series() {
        let s = flat_series(100, 50);
        let w = performability(&s, 10_000_000, 60_000_000);
        assert!((w.awips - 50.0).abs() < 1e-9);
        assert!(w.cv < 1e-9);
    }

    #[test]
    fn performability_empty_window() {
        let s = flat_series(10, 5);
        let w = performability(&s, 5_000_000, 5_000_000);
        assert_eq!(w.awips, 0.0);
    }

    #[test]
    fn report_separates_failure_free_from_recovery() {
        // 100 s of 100 WIPS, except a dip to 60 during seconds 40–60.
        let mut s = flat_series(100, 100);
        for b in s.iter_mut().take(60).skip(40) {
            *b = 60;
        }
        let spans = vec![RecoverySpan {
            server: 1,
            crash_at: 40_000_000,
            restart_at: 42_000_000,
            recovered_at: Some(60_000_000),
            manual: false,
        }];
        let r = DependabilityReport::build(&s, 0, 100_000_000, spans, 5, 100_000, 1, 0);
        assert!((r.failure_free.awips - 100.0).abs() < 1e-9);
        assert_eq!(r.recovery.len(), 1);
        assert!((r.recovery[0].awips - 60.0).abs() < 1e-9);
        assert!(
            (r.pv_percent[0] + 40.0).abs() < 1e-9,
            "PV {}",
            r.pv_percent[0]
        );
        assert!((r.accuracy_percent - 99.995).abs() < 1e-9);
        assert_eq!(r.autonomy, 1.0);
        assert_eq!(r.availability, 1.0);
        assert!((r.spans[0].recovery_secs().unwrap() - 18.0).abs() < 1e-9);
    }

    #[test]
    fn availability_counts_dead_seconds() {
        let mut s = flat_series(100, 10);
        for b in s.iter_mut().take(30).skip(20) {
            *b = 0;
        }
        let r = DependabilityReport::build(&s, 0, 100_000_000, vec![], 0, 1_000, 0, 0);
        assert!((r.availability - 0.9).abs() < 1e-9);
    }

    #[test]
    fn autonomy_reflects_interventions() {
        let s = flat_series(10, 1);
        let r = DependabilityReport::build(&s, 0, 10_000_000, vec![], 0, 10, 2, 1);
        assert!((r.autonomy - 0.5).abs() < 1e-9);
        let r = DependabilityReport::build(&s, 0, 10_000_000, vec![], 0, 10, 0, 0);
        assert_eq!(r.autonomy, 1.0);
    }

    #[test]
    fn unfinished_recovery_extends_to_interval_end() {
        let s = flat_series(50, 10);
        let spans = vec![RecoverySpan {
            server: 0,
            crash_at: 30_000_000,
            restart_at: 31_000_000,
            recovered_at: None,
            manual: false,
        }];
        let r = DependabilityReport::build(&s, 0, 50_000_000, spans, 0, 100, 1, 0);
        assert_eq!(r.recovery[0].to_us, 50_000_000);
        assert!(r.spans[0].recovery_secs().is_none());
    }
}
