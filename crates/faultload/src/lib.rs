//! # faultload — dependability benchmarking for TPC-W
//!
//! The paper (§5.1) turns TPC-W into a dependability benchmark by
//! adding a *faultload* and *dependability measures* to its system
//! specification, workload and metric:
//!
//! * [`Faultload`] — environment/operator faults injected at precise
//!   times: abrupt server crashes (process kill) and reboots, either
//!   autonomous (watchdog-triggered) or operator-delayed. The paper's
//!   three faultloads are provided as constructors.
//! * [`DependabilityReport`] — availability, performability (AWIPS, CV,
//!   PV%), accuracy, and autonomy, exactly as defined in §5.1.
//! * [`InjectionLog`] — the ground-truth record of when each fault was
//!   *actually* applied by the driver, the join key for alert-quality
//!   scoring (detection latency = alert fire − injection time).
//!
//! ## Example
//!
//! ```
//! use faultload::Faultload;
//!
//! let f = Faultload::double_crash_delayed();
//! assert_eq!(f.fault_count(), 2);
//! assert_eq!(f.manual_recoveries(), 1);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod injection;
mod measures;
mod spec;

pub use injection::{
    Injection, InjectionLog, INJECT_CLUSTER, INJECT_CRASH, INJECT_DISK_FAULT, INJECT_NET_FAULT,
    INJECT_PARTITION, INJECT_RECONFIG,
};
pub use measures::{performability, DependabilityReport, PerformabilityWindow, RecoverySpan};
pub use spec::{
    DiskFaultEvent, FaultEvent, Faultload, LinkFaultSpec, NetFaultEvent, PartitionEvent,
    ReconfigEvent, RecoveryKind,
};
