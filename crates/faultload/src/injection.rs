//! Ground-truth injection log.
//!
//! A [`Faultload`](crate::Faultload) *specifies* faults; the experiment
//! driver *applies* them, sometimes at a different instant than
//! specified (a disk-fault profile only bites when a write actually
//! fails; a reconfig retries until a leader accepts it). The
//! [`InjectionLog`] records the microsecond each fault really hit the
//! cluster, which is exactly the ground truth an alert-quality scorer
//! needs: detection latency is *alert-fire minus injection time*, and
//! only the driver knows the true injection time.
//!
//! Entries are appended in application order, so the log of a
//! deterministic run is itself deterministic.

/// Injection kind tag: an abrupt process crash (specified, or induced
/// by a disk write failure under the fail-stop rule).
pub const INJECT_CRASH: &str = "crash";
/// Injection kind tag: a network partition was cut.
pub const INJECT_PARTITION: &str = "partition";
/// Injection kind tag: a lossy/duplicating link fault was armed.
pub const INJECT_NET_FAULT: &str = "net_fault";
/// Injection kind tag: a disk-fault profile was armed on a node.
pub const INJECT_DISK_FAULT: &str = "disk_fault";
/// Injection kind tag: a membership change was submitted.
pub const INJECT_RECONFIG: &str = "reconfig";

/// Node field for cluster-scoped injections (partitions, link faults).
pub const INJECT_CLUSTER: u32 = u32::MAX;

/// One applied fault, stamped with the simulated microsecond the
/// driver actually performed it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Injection {
    /// Application time, µs of simulated time.
    pub at_us: u64,
    /// Victim node id, or [`INJECT_CLUSTER`].
    pub node: u32,
    /// Kind tag (one of the `INJECT_*` constants).
    pub kind: &'static str,
    /// When the fault was lifted (restart completed, partition healed,
    /// fault profile cleared, reconfig epoch installed), if it was.
    pub cleared_us: Option<u64>,
}

/// Append-only record of every fault the driver applied, in
/// application order.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct InjectionLog {
    /// The applied injections.
    pub entries: Vec<Injection>,
}

impl InjectionLog {
    /// Records an applied fault; returns its entry index so the caller
    /// can [`clear`](InjectionLog::clear) it later.
    pub fn record(&mut self, at_us: u64, node: u32, kind: &'static str) -> usize {
        self.entries.push(Injection {
            at_us,
            node,
            kind,
            cleared_us: None,
        });
        self.entries.len() - 1
    }

    /// Marks entry `idx` as lifted at `at_us`.
    pub fn clear(&mut self, idx: usize, at_us: u64) {
        if let Some(entry) = self.entries.get_mut(idx) {
            entry.cleared_us = Some(at_us);
        }
    }

    /// Marks the most recent uncleared `(node, kind)` entry as lifted —
    /// for callers that do not track entry indices (restart after
    /// crash, heal after cut).
    pub fn clear_open(&mut self, node: u32, kind: &'static str, at_us: u64) {
        if let Some(entry) = self
            .entries
            .iter_mut()
            .rev()
            .find(|e| e.node == node && e.kind == kind && e.cleared_us.is_none())
        {
            entry.cleared_us = Some(at_us);
        }
    }

    /// The entries that count as operator-visible *incidents* for
    /// alert scoring: everything except disk-fault arming, which is
    /// invisible until a write actually fails (and the induced crash
    /// gets its own [`INJECT_CRASH`] entry at the true failure time).
    pub fn incidents(&self) -> impl Iterator<Item = &Injection> {
        self.entries.iter().filter(|e| e.kind != INJECT_DISK_FAULT)
    }

    /// True when nothing was injected (the fault-free baseline).
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_clear_and_incident_filtering() {
        let mut log = InjectionLog::default();
        let disk = log.record(10, 2, INJECT_DISK_FAULT);
        log.record(45_000_000, 1, INJECT_CRASH);
        log.record(50_000_000, INJECT_CLUSTER, INJECT_PARTITION);
        log.clear(disk, 99);
        log.clear_open(1, INJECT_CRASH, 75_000_000);
        assert_eq!(log.entries.len(), 3);
        assert_eq!(log.entries[0].cleared_us, Some(99));
        assert_eq!(log.entries[1].cleared_us, Some(75_000_000));
        assert_eq!(log.entries[2].cleared_us, None);
        // Disk-fault arming is not an incident; the other two are.
        let incidents: Vec<&Injection> = log.incidents().collect();
        assert_eq!(incidents.len(), 2);
        assert!(incidents.iter().all(|i| i.kind != INJECT_DISK_FAULT));
        assert!(!log.is_empty());
        assert!(InjectionLog::default().is_empty());
    }

    #[test]
    fn clear_open_targets_latest_open_entry() {
        let mut log = InjectionLog::default();
        log.record(10, 0, INJECT_CRASH);
        log.record(20, 0, INJECT_CRASH);
        log.clear_open(0, INJECT_CRASH, 30);
        assert_eq!(log.entries[0].cleared_us, None);
        assert_eq!(log.entries[1].cleared_us, Some(30));
        // No open entry left for node 1: no-op, no panic.
        log.clear_open(1, INJECT_CRASH, 40);
    }
}
