//! Property tests for the dependency-free lexer. Everything simlint
//! reports hangs off this tokenizer, so the properties are the
//! load-bearing ones: it must never panic (rules run on arbitrary,
//! possibly half-edited source), token byte offsets must be strictly
//! monotone and in-bounds (span exemption math relies on it), and the
//! genuinely tricky Rust surface — raw strings containing `"#`,
//! char literals vs lifetimes — must tokenize as single units rather
//! than desynchronizing everything after them.

use proptest::collection;
use proptest::prelude::*;

use simlint::lexer::{lex, test_spans, TokKind};

/// Rust-ish fragments, heavily weighted toward the lexer's hazardous
/// paths: string/char/raw-string openers (including unterminated
/// ones), nested comments, lifetimes, and multi-byte UTF-8.
const FRAGMENTS: &[&str] = &[
    "fn f() {}",
    "let slot = 1;",
    "\"plain string\"",
    "\"escaped \\\" quote\"",
    "r\"raw\"",
    "r#\"raw with \" inside\"#",
    "r##\"raw with \"# inside\"##",
    "b\"bytes\"",
    "'a'",
    "'\\n'",
    "'\\''",
    "'x",
    "'static",
    "&'a str",
    "<'a, 'b>",
    "// line comment\n",
    "/* block */",
    "/* nested /* deeper */ still */",
    "/* unterminated",
    "\"unterminated",
    "r#\"unterminated",
    "#[cfg(test)]",
    "#[cfg(not(test))]",
    "mod t {",
    "}",
    "{ { } }",
    "0xfe_u64",
    "1_000_000",
    "a.b.c()",
    "x=>y",
    "::<u32>",
    "é_ident",
    "\u{1F600}",
    "\\",
    "\r\n",
];

proptest! {
    /// Gluing random fragments together must never panic the lexer or
    /// the span pass, and the tokens must come back in strictly
    /// increasing byte order, each starting inside the source.
    #[test]
    fn lexer_is_total_and_offsets_are_monotone(
        idxs in collection::vec(0usize..FRAGMENTS.len(), 0..40),
        sep in 0usize..3,
    ) {
        let sep = [" ", "", "\n"][sep];
        let src = idxs
            .iter()
            .map(|&i| FRAGMENTS[i])
            .collect::<Vec<_>>()
            .join(sep);
        let lexed = lex(&src);
        let mut prev: Option<u32> = None;
        for t in &lexed.tokens {
            prop_assert!(
                (t.byte as usize) < src.len().max(1),
                "token byte {} out of bounds (len {})", t.byte, src.len()
            );
            if let Some(p) = prev {
                prop_assert!(t.byte > p, "offsets not monotone: {p} then {}", t.byte);
            }
            prev = Some(t.byte);
            prop_assert!(t.line >= 1 && t.col >= 1, "1-based coordinates");
        }
        // The test-span pass runs on every lex result; it must be total
        // too, and every span it produces must be well-formed.
        for (start, end) in test_spans(&lexed.tokens) {
            prop_assert!(start <= end, "inverted span {start}..{end}");
        }
    }

    /// Arbitrary bytes (lossily decoded) — not even Rust-shaped input
    /// may panic the lexer.
    #[test]
    fn lexer_survives_arbitrary_bytes(bytes in collection::vec(any::<u8>(), 0..64)) {
        let src = String::from_utf8_lossy(&bytes);
        let lexed = lex(&src);
        let mut prev: Option<u32> = None;
        for t in &lexed.tokens {
            if let Some(p) = prev {
                prop_assert!(t.byte > p);
            }
            prev = Some(t.byte);
        }
    }
}

#[test]
fn raw_string_with_hash_quote_is_one_token() {
    // `"#` inside an r##-string must not terminate it; the `after`
    // ident must still be seen, at the right line.
    let src = "let s = r##\"has \"# inside\"##;\nafter";
    let lexed = lex(src);
    let idents: Vec<_> = lexed
        .tokens
        .iter()
        .filter_map(|t| match &t.kind {
            TokKind::Ident(id) => Some((id.as_str(), t.line)),
            _ => None,
        })
        .collect();
    assert_eq!(idents, vec![("let", 1), ("s", 1), ("after", 2)]);
    assert_eq!(
        lexed
            .tokens
            .iter()
            .filter(|t| matches!(t.kind, TokKind::Literal))
            .count(),
        1,
        "the raw string lexes as exactly one literal"
    );
}

#[test]
fn char_literals_and_lifetimes_disambiguate() {
    // `'a'` is a char literal; `'a` before an ident boundary is a
    // lifetime; an escaped quote char must not eat the rest.
    let src = "fn f<'a>(x: &'a str) { let c = 'a'; let q = '\\''; }";
    let lexed = lex(src);
    let lifetimes = lexed
        .tokens
        .iter()
        .filter(|t| matches!(t.kind, TokKind::Lifetime))
        .count();
    let literals = lexed
        .tokens
        .iter()
        .filter(|t| matches!(t.kind, TokKind::Literal))
        .count();
    assert_eq!(lifetimes, 2, "<'a> and &'a");
    assert_eq!(literals, 2, "'a' and '\\''");
    // Nothing after the chars was swallowed: the closing brace is the
    // final token.
    assert!(lexed.tokens.last().is_some_and(|t| t.is_punct("}")));
}
