//! Inline-waiver fixture (never compiled): one real violation carrying
//! a justified inline allow. The suite asserts it is waived (not an
//! error) and that the allow is counted as used (not stale).

use std::collections::BTreeMap;

pub fn tally(votes: &BTreeMap<u64, u64>, slot: u64) -> u64 {
    // simlint: allow(unchecked-slot-arith): fixture exercising the inline waiver path
    let next_slot = slot + 1;
    votes.get(&next_slot).copied().unwrap_or(0)
}
