//! Clean-workspace fixture (never compiled): the same handler as the
//! bad fixture written the way the rules demand — ordered containers,
//! checked access, saturating ordinal arithmetic, typed errors.

use std::collections::BTreeMap;

pub fn handle(votes: &BTreeMap<u64, u64>, frame: &[u8], slot: u64) -> Option<u64> {
    let tag = frame.first().copied()?;
    let count = votes.get(&slot).copied()?;
    let next_slot = slot.saturating_add(1);
    if tag == 0xff {
        return None;
    }
    count.checked_add(next_slot)
}
