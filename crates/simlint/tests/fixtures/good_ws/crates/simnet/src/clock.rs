//! Clean-workspace fixture (never compiled): time and randomness come
//! in as parameters (the simnet clock/RNG handles), never from the OS.

pub fn now_us(sim_now_us: u64) -> u64 {
    sim_now_us
}

pub fn entropy(seeded: u8) -> u8 {
    seeded
}
