//! Helper crate for the transitive fixture: the actual violation
//! tokens sit at the far end of cross-crate call chains, so a
//! file-scoped scan of `replica.rs` alone would find nothing.

pub fn persist(v: u64) -> u64 {
    stamp(v)
}

fn stamp(v: u64) -> u64 {
    let _t = std::time::SystemTime::now();
    let arr = [v, 1];
    arr[0]
}

pub fn narrowed(slot: u64) -> u32 {
    narrow(slot)
}

fn narrow(slot: u64) -> u32 {
    slot as u32
}
