//! Transitive-rule fixture (never compiled): a protocol handler whose
//! violations live two crates and several hops away. The integration
//! suite declares `Replica::on_message` as both a sim and a protocol
//! root and pins the multi-hop call chains simlint reports:
//!
//!   on_message → step → persist → stamp    (sim-taint, panic-taint)
//!   on_message → step → narrowed → narrow  (lossy-cast)
//!
//! The struct itself seeds the held-state rules: `log.entries` only
//! ever grows (state-growth) and `load_factor` is an `f64` inside the
//! root-held state (float-state).

pub struct Replica {
    pub log: Log,
    pub load_factor: f64,
}

pub struct Log {
    pub entries: Vec<u64>,
}

impl Replica {
    pub fn on_message(&mut self, slot: u64) {
        self.step(slot);
    }

    fn step(&mut self, slot: u64) {
        self.log.entries.push(slot);
        helpers::persist(slot);
        let _ = helpers::narrowed(slot);
    }
}
