//! Seeded-violation fixture (never compiled): wall-clock time and OS
//! entropy leaking into a sim-reachable crate. The `#[cfg(test)]` block
//! at the bottom must NOT be flagged — test code is exempt.

pub fn now_us() -> u64 {
    let t = std::time::Instant::now();
    t.elapsed().as_micros() as u64
}

pub fn entropy() -> u8 {
    rand::random::<u8>()
}

#[cfg(test)]
mod tests {
    #[test]
    fn wall_clock_in_tests_is_fine() {
        let _ = std::time::Instant::now();
    }
}
