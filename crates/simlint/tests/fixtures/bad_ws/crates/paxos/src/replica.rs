//! Seeded-violation fixture (never compiled): a protocol message
//! handler committing every sin the hash-order, panic-path and
//! unchecked-slot-arith rules exist to catch. The integration suite
//! asserts simlint flags exactly these sites and exits non-zero.

use std::collections::HashMap;

pub fn handle(votes: &HashMap<u64, u64>, frame: &[u8], slot: u64) -> u64 {
    let tag = frame[0];
    let count = votes.get(&slot).copied().unwrap();
    let next_slot = slot + 1;
    if tag == 0xff {
        panic!("bad tag");
    }
    count.wrapping_add(next_slot)
}
