//! Seeded-violation fixture (never compiled): raw stdout/stderr
//! printing from a library crate.

pub fn dump(x: u64) {
    println!("x = {x}");
    eprintln!("warned about {x}");
}
