//! Fixture-corpus integration tests: each rule is exercised against
//! committed mini-workspaces — seeded file-scoped violations
//! (`bad_ws`), a clean twin (`good_ws`), an inline-waiver case
//! (`waived_ws`), and a transitive corpus whose violations sit at the
//! end of multi-hop cross-crate call chains (`taint_ws`). The CLI
//! binary is run end-to-end for exit codes (including the dedicated
//! stale-only exit 3) and the `--json` schema; and the real repository
//! is linted with its committed `simlint.toml` so a new violation or a
//! stale waiver fails `cargo test` as well as CI.

use std::path::{Path, PathBuf};
use std::process::Command;

use simlint::diag::Diagnostic;
use simlint::workspace::analyze;
use simlint::{report_to_json, JSON_VERSION};

fn fixture(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("repo root")
}

fn rule_count(report: &simlint::workspace::Report, rule: &str) -> usize {
    report.errors.iter().filter(|d| d.rule == rule).count()
}

fn only<'a>(report: &'a simlint::workspace::Report, rule: &str) -> &'a Diagnostic {
    let mut it = report.errors.iter().filter(|d| d.rule == rule);
    let first = it.next().unwrap_or_else(|| panic!("no {rule} diagnostic"));
    assert!(it.next().is_none(), "more than one {rule} diagnostic");
    first
}

/// The committed roots for the transitive corpus (also read by the CLI
/// when it is pointed at the fixture directory).
fn taint_roots() -> String {
    std::fs::read_to_string(fixture("taint_ws").join("simlint.toml")).expect("taint_ws roots")
}

#[test]
fn bad_workspace_flags_every_seeded_file_scoped_violation() {
    let report = analyze(&fixture("bad_ws"), "").expect("analyze");
    assert!(report.failed(), "seeded violations must fail the lint");
    // Exact counts pin both the detectors and their span logic: the
    // `#[cfg(test)]` Instant in clock.rs must NOT be in these numbers.
    assert_eq!(rule_count(&report, "hash-order"), 2, "import + signature");
    assert_eq!(rule_count(&report, "io-println"), 2, "println + eprintln");
    assert_eq!(rule_count(&report, "unchecked-slot-arith"), 1, "slot + 1");
    assert_eq!(report.errors.len(), 5);
    assert!(report.waived.is_empty());
    assert!(report.stale.is_empty());
}

#[test]
fn declaring_roots_adds_transitive_findings_to_bad_workspace() {
    // Without roots the wall-clock leak and the panics are invisible;
    // declaring the fixture fns as roots surfaces them transitively.
    let roots = r#"
        [roots]
        sim = ["now_us", "entropy"]
        protocol = ["handle"]
    "#;
    let report = analyze(&fixture("bad_ws"), roots).expect("analyze");
    assert_eq!(
        rule_count(&report, "sim-taint"),
        2,
        "Instant + rand::random"
    );
    assert_eq!(
        rule_count(&report, "panic-taint"),
        3,
        "indexing + unwrap + panic!"
    );
    assert_eq!(report.errors.len(), 10, "5 file-scoped + 5 transitive");
    assert!(report.stale.is_empty(), "all root patterns match");
}

#[test]
fn transitive_corpus_flags_every_rule_with_call_chains() {
    let report = analyze(&fixture("taint_ws"), &taint_roots()).expect("analyze");
    assert_eq!(report.errors.len(), 5, "one finding per transitive rule");
    assert!(report.stale.is_empty());

    // sim-taint: SystemTime four hops from the root, across crates.
    let d = only(&report, "sim-taint");
    assert_eq!(d.path, "crates/core/src/helpers.rs");
    assert_eq!(d.line, 10);
    assert_eq!(
        d.chain.len(),
        4,
        "on_message → step → persist → stamp: {:?}",
        d.chain
    );
    assert!(d.chain[0].starts_with("Replica::on_message (crates/paxos/src/replica.rs:"));
    assert!(d.chain[1].starts_with("Replica::step ("));
    assert!(d.chain[2].starts_with("persist (crates/core/src/helpers.rs:"));
    assert!(d.chain[3].starts_with("stamp ("));

    // panic-taint: the indexing expression in the same leaf fn.
    let d = only(&report, "panic-taint");
    assert_eq!(
        (d.path.as_str(), d.line),
        ("crates/core/src/helpers.rs", 12)
    );
    assert_eq!(d.chain.len(), 4);

    // lossy-cast: `slot as u32` down the other helper chain.
    let d = only(&report, "lossy-cast");
    assert_eq!(
        (d.path.as_str(), d.line),
        ("crates/core/src/helpers.rs", 20)
    );
    assert_eq!(
        d.chain.len(),
        4,
        "on_message → step → narrowed → narrow: {:?}",
        d.chain
    );
    assert!(d.chain[3].starts_with("narrow ("));

    // state-growth: `Log.entries` held via the `Replica.log` field; the
    // chain is the held-type provenance, not a call path.
    let d = only(&report, "state-growth");
    assert_eq!(
        (d.path.as_str(), d.line),
        ("crates/paxos/src/replica.rs", 19)
    );
    assert!(d.message.contains("`Log.entries` (Vec)"));
    assert!(d.chain[0].starts_with("root Replica::on_message ("));
    assert!(d.chain[1].starts_with("Replica.log: Log ("));

    // float-state: the f64 directly inside the root-held struct.
    let d = only(&report, "float-state");
    assert_eq!(
        (d.path.as_str(), d.line),
        ("crates/paxos/src/replica.rs", 15)
    );
    assert!(d.message.contains("`Replica.load_factor` is `f64`"));
    assert!(d.chain[0].starts_with("root Replica::on_message ("));
}

#[test]
fn transitive_corpus_graph_stats_and_dot_export() {
    let report = analyze(&fixture("taint_ws"), &taint_roots()).expect("analyze");
    assert_eq!(report.stats.functions, 6);
    assert_eq!(report.stats.edges, 5);
    assert_eq!(report.stats.sim_roots, 1);
    assert_eq!(report.stats.sim_reachable, 6, "every fn is on a chain");
    assert_eq!(report.stats.protocol_reachable, 6);
    assert!(report.dot.starts_with("digraph simlint {"));
    assert!(report.dot.contains("Replica::step"));
    assert!(report.dot.contains("cluster_core"), "crate clustering");
}

#[test]
fn deleting_a_root_is_caught_as_stale() {
    // Satellite 6: if a declared entry point is renamed or deleted, the
    // reachable set silently shrinks — simlint must refuse to pass.
    let roots = r#"
        [roots]
        sim = ["Replica::on_message", "Replica::vanished_handler"]
        protocol = ["Replica::on_message"]
    "#;
    let report = analyze(&fixture("taint_ws"), roots).expect("analyze");
    assert!(report.failed());
    let stale: Vec<_> = report.stale.iter().filter(|s| s.rule == "roots").collect();
    assert_eq!(stale.len(), 1);
    assert!(stale[0].declared_at.contains("[roots] sim"));
    assert!(stale[0].message.contains("matches no workspace function"));
    assert!(
        stale[0].message.contains("vanished_handler"),
        "names the missing pattern: {}",
        stale[0].message
    );
}

#[test]
fn good_workspace_is_clean() {
    let report = analyze(&fixture("good_ws"), "").expect("analyze");
    assert!(!report.failed());
    assert!(
        report.errors.is_empty(),
        "clean twin must produce no diagnostics"
    );
    assert_eq!(report.files_scanned, 2);
}

#[test]
fn justified_inline_allow_waives_without_going_stale() {
    let report = analyze(&fixture("waived_ws"), "").expect("analyze");
    assert!(
        !report.failed(),
        "waived violation must not fail: {report:?}"
    );
    assert!(report.errors.is_empty());
    assert_eq!(report.waived.len(), 1);
    assert_eq!(report.waived[0].0.rule, "unchecked-slot-arith");
    assert!(report.waived[0].1.contains("inline waiver path"));
    assert!(report.stale.is_empty());
}

#[test]
fn toml_waiver_suppresses_matching_diagnostics() {
    let waivers = r#"
        [[waiver]]
        rule = "io-println"
        path = "crates/tpcw/src/debug.rs"
        reason = "fixture-level exemption used by the waiver test"
    "#;
    let report = analyze(&fixture("bad_ws"), waivers).expect("analyze");
    assert_eq!(rule_count(&report, "io-println"), 0);
    assert_eq!(report.waived.len(), 2);
    assert_eq!(report.errors.len(), 3, "other rules still fire");
    assert!(report.stale.is_empty());
}

#[test]
fn line_scoped_toml_waiver_covers_only_that_line() {
    // debug.rs: println! on line 5, eprintln! on line 6.
    let waivers = r#"
        [[waiver]]
        rule = "io-println"
        path = "crates/tpcw/src/debug.rs"
        line = 5
        reason = "only the first print is exempted here"
    "#;
    let report = analyze(&fixture("bad_ws"), waivers).expect("analyze");
    assert_eq!(rule_count(&report, "io-println"), 1);
    assert_eq!(report.waived.len(), 1);
    assert_eq!(report.waived[0].0.line, 5);
}

#[test]
fn stale_toml_waiver_is_an_error() {
    let waivers = r#"
        [[waiver]]
        rule = "hash-order"
        path = "crates/paxos/src/replica.rs"
        reason = "nothing in the clean tree matches this entry"
    "#;
    let report = analyze(&fixture("good_ws"), waivers).expect("analyze");
    assert!(report.failed(), "a waiver matching nothing must fail");
    assert!(report.stale_only(), "clean code + stale waiver = exit 3");
    assert_eq!(report.stale.len(), 1);
    assert!(report.stale[0].message.contains("stale waiver"));
}

#[test]
fn waiver_for_missing_file_reports_the_path() {
    let waivers = r#"
        [[waiver]]
        rule = "hash-order"
        path = "crates/paxos/src/gone.rs"
        reason = "this file was deleted but the waiver lingered"
    "#;
    let report = analyze(&fixture("good_ws"), waivers).expect("analyze");
    assert!(report.failed());
    assert!(report.stale[0].message.contains("missing file"));
}

#[test]
fn waiver_naming_unknown_rule_is_a_config_error() {
    let waivers = r#"
        [[waiver]]
        rule = "no-such-rule"
        path = "crates/paxos/src/replica.rs"
        reason = "long enough reason, wrong rule name"
    "#;
    let err = analyze(&fixture("bad_ws"), waivers).expect_err("must reject");
    assert!(err.message.contains("unknown rule"));
}

#[test]
fn json_report_matches_schema() {
    let report = analyze(&fixture("taint_ws"), &taint_roots()).expect("analyze");
    let doc = report_to_json(&report);
    // Stable top-level schema the CI job and external tooling key on.
    for key in [
        "\"version\"",
        "\"tool\": \"simlint\"",
        "\"rules\"",
        "\"diagnostics\"",
        "\"waived\"",
        "\"stale_waivers\"",
        "\"graph\"",
        "\"summary\"",
    ] {
        assert!(doc.contains(key), "missing {key} in:\n{doc}");
    }
    assert!(doc.contains(&format!("\"version\": {JSON_VERSION}")));
    assert!(doc.contains("\"errors\": 5"));
    // Every diagnostic row carries the fields a consumer needs to
    // locate it — including the v2 call chain.
    for field in [
        "\"rule\":",
        "\"path\":",
        "\"line\":",
        "\"col\":",
        "\"message\":",
        "\"chain\":[",
    ] {
        assert!(doc.contains(field), "diagnostic rows need {field}");
    }
    assert!(doc.contains("\"functions\": 6"));
    assert!(doc.contains("\"sim_reachable\": 6"));
}

#[test]
fn cli_fails_on_seeded_violations_and_passes_clean_tree() {
    // The negative test the CI job relies on: the binary itself (not
    // just the library) must exit non-zero on the seeded corpus.
    let bad = Command::new(env!("CARGO_BIN_EXE_simlint"))
        .args(["--root"])
        .arg(fixture("bad_ws"))
        .arg("--quiet")
        .output()
        .expect("run simlint");
    assert_eq!(bad.status.code(), Some(1), "bad_ws must exit 1");

    let good = Command::new(env!("CARGO_BIN_EXE_simlint"))
        .args(["--root"])
        .arg(fixture("good_ws"))
        .args(["--json", "-"])
        .output()
        .expect("run simlint");
    assert_eq!(good.status.code(), Some(0), "good_ws must exit 0");
    let stdout = String::from_utf8(good.stdout).expect("utf8 json");
    assert!(stdout.contains("\"errors\": 0"));
    assert!(
        !stdout.contains("simlint: "),
        "--json - must keep stdout pure JSON"
    );
}

#[test]
fn cli_picks_up_fixture_roots_and_exports_the_graph() {
    // `--root taint_ws` reads the committed taint_ws/simlint.toml, so
    // the CLI exercises the same [roots] parsing as the real repo.
    let out = Command::new(env!("CARGO_BIN_EXE_simlint"))
        .args(["--root"])
        .arg(fixture("taint_ws"))
        .args(["--graph-dot", "-"])
        .output()
        .expect("run simlint");
    assert_eq!(out.status.code(), Some(1), "five seeded violations");
    let dot = String::from_utf8(out.stdout).expect("utf8 dot");
    assert!(dot.starts_with("digraph simlint {"));
    assert!(dot.contains("Replica::on_message"));
}

#[test]
fn cli_exits_3_when_only_failure_is_staleness() {
    // Dedicated exit code so CI can tell "code is dirty" (1) apart
    // from "the allowlist or the lint wall rotted" (3).
    let cfg = std::env::temp_dir().join("simlint_stale_roots_test.toml");
    std::fs::write(&cfg, "[roots]\nsim = [\"Replica::vanished_handler\"]\n")
        .expect("write temp config");
    let out = Command::new(env!("CARGO_BIN_EXE_simlint"))
        .args(["--root"])
        .arg(fixture("taint_ws"))
        .args(["--config"])
        .arg(&cfg)
        .arg("--quiet")
        .output()
        .expect("run simlint");
    assert_eq!(
        out.status.code(),
        Some(3),
        "stale-only must exit 3, stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
}

#[test]
fn cli_rejects_unknown_arguments_with_usage_exit() {
    let out = Command::new(env!("CARGO_BIN_EXE_simlint"))
        .arg("--frobnicate")
        .output()
        .expect("run simlint");
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn repository_is_clean_under_its_committed_waivers() {
    // The acceptance criterion as a test: zero unwaived violations and
    // zero stale waivers on the real tree with the real simlint.toml.
    // This makes `cargo test` catch a new violation even before CI runs.
    let root = repo_root();
    let waiver_src = std::fs::read_to_string(root.join("simlint.toml")).unwrap_or_default();
    let report = analyze(&root, &waiver_src).expect("analyze repo");
    assert!(
        report.files_scanned > 50,
        "sanity: expected the real workspace, scanned {}",
        report.files_scanned
    );
    assert!(
        report.errors.is_empty(),
        "unwaived simlint violations:\n{}",
        report
            .errors
            .iter()
            .map(|d| format!("  {}:{} {} — {}", d.path, d.line, d.rule, d.message))
            .collect::<Vec<_>>()
            .join("\n")
    );
    assert!(report.stale.is_empty(), "stale waivers: {:?}", report.stale);
    assert!(
        report.stats.sim_reachable > 100 && report.stats.protocol_reachable > 100,
        "sanity: the lint walls actually cover the workspace ({:?})",
        report.stats
    );
}
