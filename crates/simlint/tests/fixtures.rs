//! Fixture-corpus integration tests: each rule is exercised against a
//! committed mini-workspace with seeded violations (`bad_ws`), a clean
//! twin (`good_ws`), and an inline-waiver case (`waived_ws`); the CLI
//! binary is run end-to-end for exit codes and the `--json` schema; and
//! the real repository is linted with its committed `simlint.toml` so a
//! new violation or a stale waiver fails `cargo test` as well as CI.

use std::path::{Path, PathBuf};
use std::process::Command;

use simlint::workspace::analyze;
use simlint::{report_to_json, JSON_VERSION};

fn fixture(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("repo root")
}

fn rule_count(report: &simlint::workspace::Report, rule: &str) -> usize {
    report.errors.iter().filter(|d| d.rule == rule).count()
}

#[test]
fn bad_workspace_flags_every_seeded_violation() {
    let report = analyze(&fixture("bad_ws"), "").expect("analyze");
    assert!(report.failed(), "seeded violations must fail the lint");
    // Exact counts pin both the detectors and their span logic: the
    // `#[cfg(test)]` Instant in clock.rs must NOT be in these numbers.
    assert_eq!(rule_count(&report, "hash-order"), 2, "import + signature");
    assert_eq!(
        rule_count(&report, "wall-clock"),
        2,
        "Instant + rand::random"
    );
    assert_eq!(
        rule_count(&report, "panic-path"),
        3,
        "indexing + unwrap + panic!"
    );
    assert_eq!(rule_count(&report, "io-println"), 2, "println + eprintln");
    assert_eq!(rule_count(&report, "unchecked-slot-arith"), 1, "slot + 1");
    assert_eq!(report.errors.len(), 10);
    assert!(report.waived.is_empty());
    assert!(report.stale.is_empty());
}

#[test]
fn good_workspace_is_clean() {
    let report = analyze(&fixture("good_ws"), "").expect("analyze");
    assert!(!report.failed());
    assert!(
        report.errors.is_empty(),
        "clean twin must produce no diagnostics"
    );
    assert_eq!(report.files_scanned, 2);
}

#[test]
fn justified_inline_allow_waives_without_going_stale() {
    let report = analyze(&fixture("waived_ws"), "").expect("analyze");
    assert!(
        !report.failed(),
        "waived violation must not fail: {report:?}"
    );
    assert!(report.errors.is_empty());
    assert_eq!(report.waived.len(), 1);
    assert_eq!(report.waived[0].0.rule, "unchecked-slot-arith");
    assert!(report.waived[0].1.contains("inline waiver path"));
    assert!(report.stale.is_empty());
}

#[test]
fn toml_waiver_suppresses_matching_diagnostics() {
    let waivers = r#"
        [[waiver]]
        rule = "io-println"
        path = "crates/tpcw/src/debug.rs"
        reason = "fixture-level exemption used by the waiver test"
    "#;
    let report = analyze(&fixture("bad_ws"), waivers).expect("analyze");
    assert_eq!(rule_count(&report, "io-println"), 0);
    assert_eq!(report.waived.len(), 2);
    assert_eq!(report.errors.len(), 8, "other rules still fire");
    assert!(report.stale.is_empty());
}

#[test]
fn line_scoped_toml_waiver_covers_only_that_line() {
    // debug.rs: println! on line 5, eprintln! on line 6.
    let waivers = r#"
        [[waiver]]
        rule = "io-println"
        path = "crates/tpcw/src/debug.rs"
        line = 5
        reason = "only the first print is exempted here"
    "#;
    let report = analyze(&fixture("bad_ws"), waivers).expect("analyze");
    assert_eq!(rule_count(&report, "io-println"), 1);
    assert_eq!(report.waived.len(), 1);
    assert_eq!(report.waived[0].0.line, 5);
}

#[test]
fn stale_toml_waiver_is_an_error() {
    let waivers = r#"
        [[waiver]]
        rule = "hash-order"
        path = "crates/paxos/src/replica.rs"
        reason = "nothing in the clean tree matches this entry"
    "#;
    let report = analyze(&fixture("good_ws"), waivers).expect("analyze");
    assert!(report.failed(), "a waiver matching nothing must fail");
    assert_eq!(report.stale.len(), 1);
    assert!(report.stale[0].message.contains("stale waiver"));
}

#[test]
fn waiver_for_missing_file_reports_the_path() {
    let waivers = r#"
        [[waiver]]
        rule = "hash-order"
        path = "crates/paxos/src/gone.rs"
        reason = "this file was deleted but the waiver lingered"
    "#;
    let report = analyze(&fixture("good_ws"), waivers).expect("analyze");
    assert!(report.failed());
    assert!(report.stale[0].message.contains("missing file"));
}

#[test]
fn waiver_naming_unknown_rule_is_a_config_error() {
    let waivers = r#"
        [[waiver]]
        rule = "no-such-rule"
        path = "crates/paxos/src/replica.rs"
        reason = "long enough reason, wrong rule name"
    "#;
    let err = analyze(&fixture("bad_ws"), waivers).expect_err("must reject");
    assert!(err.message.contains("unknown rule"));
}

#[test]
fn json_report_matches_schema() {
    let report = analyze(&fixture("bad_ws"), "").expect("analyze");
    let doc = report_to_json(&report);
    // Stable top-level schema the CI job and external tooling key on.
    for key in [
        "\"version\"",
        "\"tool\": \"simlint\"",
        "\"rules\"",
        "\"diagnostics\"",
        "\"waived\"",
        "\"stale_waivers\"",
        "\"summary\"",
    ] {
        assert!(doc.contains(key), "missing {key} in:\n{doc}");
    }
    assert!(doc.contains(&format!("\"version\": {JSON_VERSION}")));
    assert!(doc.contains("\"errors\": 10"));
    // Every diagnostic row carries the fields a consumer needs to locate it.
    for field in [
        "\"rule\":",
        "\"path\":",
        "\"line\":",
        "\"col\":",
        "\"message\":",
    ] {
        assert!(doc.contains(field), "diagnostic rows need {field}");
    }
}

#[test]
fn cli_fails_on_seeded_violations_and_passes_clean_tree() {
    // The negative test the CI job relies on: the binary itself (not
    // just the library) must exit non-zero on the seeded corpus.
    let bad = Command::new(env!("CARGO_BIN_EXE_simlint"))
        .args(["--root"])
        .arg(fixture("bad_ws"))
        .arg("--quiet")
        .output()
        .expect("run simlint");
    assert_eq!(bad.status.code(), Some(1), "bad_ws must exit 1");

    let good = Command::new(env!("CARGO_BIN_EXE_simlint"))
        .args(["--root"])
        .arg(fixture("good_ws"))
        .args(["--json", "-"])
        .output()
        .expect("run simlint");
    assert_eq!(good.status.code(), Some(0), "good_ws must exit 0");
    let stdout = String::from_utf8(good.stdout).expect("utf8 json");
    assert!(stdout.contains("\"errors\": 0"));
    assert!(
        !stdout.contains("simlint: "),
        "--json - must keep stdout pure JSON"
    );
}

#[test]
fn cli_rejects_unknown_arguments_with_usage_exit() {
    let out = Command::new(env!("CARGO_BIN_EXE_simlint"))
        .arg("--frobnicate")
        .output()
        .expect("run simlint");
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn repository_is_clean_under_its_committed_waivers() {
    // The acceptance criterion as a test: zero unwaived violations and
    // zero stale waivers on the real tree with the real simlint.toml.
    // This makes `cargo test` catch a new violation even before CI runs.
    let root = repo_root();
    let waiver_src = std::fs::read_to_string(root.join("simlint.toml")).unwrap_or_default();
    let report = analyze(&root, &waiver_src).expect("analyze repo");
    assert!(
        report.files_scanned > 50,
        "sanity: expected the real workspace, scanned {}",
        report.files_scanned
    );
    assert!(
        report.errors.is_empty(),
        "unwaived simlint violations:\n{}",
        report
            .errors
            .iter()
            .map(|d| format!("  {}:{} {} — {}", d.path, d.line, d.rule, d.message))
            .collect::<Vec<_>>()
            .join("\n")
    );
    assert!(report.stale.is_empty(), "stale waivers: {:?}", report.stale);
}
