//! Item extraction: a dependency-free structural pass layered on the
//! lexer.
//!
//! The transitive rules (sim-taint, panic-taint, state-growth,
//! float-state, lossy-cast) need to know *which function* a token
//! belongs to and *which functions it calls* — not just which file.
//! This module extracts `fn`, `impl`, `mod`, `struct`, and `use` items
//! from the token stream with exact body token ranges, plus the call
//! sites inside each body, so [`crate::graph`] can assemble a workspace
//! call graph.
//!
//! The parser is deliberately heuristic: no type checking, no macro
//! expansion. Ambiguity is resolved *conservatively over-approximating*
//! at the graph layer (a method call links to every workspace function
//! of that name when the receiver type is unknown). Function bodies
//! found inside `macro_rules!` templates are parsed like ordinary code:
//! the template *is* the code of every expansion, so scanning it keeps
//! macro-generated protocol paths (e.g. the wire codec impls) inside
//! the lint wall.

use crate::lexer::{in_spans, match_brace, Token};

/// One function item (free function, inherent/trait method, or default
/// trait method).
#[derive(Debug, Clone)]
pub struct FnItem {
    pub name: String,
    /// The `impl`/`trait` target type name, when inside one.
    pub self_ty: Option<String>,
    /// Nested in-file module path (`mod a { mod b { … } }` → `["a","b"]`).
    pub module: Vec<String>,
    /// Line of the `fn` keyword.
    pub line: u32,
    /// Token index range `(open, close)` of the body braces, inclusive
    /// of both brace tokens; `None` for brace-less trait declarations.
    pub body: Option<(usize, usize)>,
    /// Whether the item sits inside a `#[cfg(test)]`/`#[test]` span.
    pub is_test: bool,
}

/// One struct field.
#[derive(Debug, Clone)]
pub struct FieldItem {
    /// Field name (`"0"`, `"1"`, … for tuple structs).
    pub name: String,
    /// All identifiers appearing in the field's type, in order
    /// (`BTreeMap<Slot, Vec<u8>>` → `["BTreeMap","Slot","Vec","u8"]`).
    pub ty_idents: Vec<String>,
    pub line: u32,
}

/// One struct item with its fields.
#[derive(Debug, Clone)]
pub struct StructItem {
    pub name: String,
    pub fields: Vec<FieldItem>,
    pub line: u32,
    pub is_test: bool,
}

/// One `use` declaration leaf: `use a::b::{C, d};` yields leaves `C`
/// and `d` with prefix `["a","b"]`.
#[derive(Debug, Clone)]
pub struct UseItem {
    pub leaf: String,
    pub prefix: Vec<String>,
}

/// Everything extracted from one file.
#[derive(Debug, Default)]
pub struct FileItems {
    pub fns: Vec<FnItem>,
    pub structs: Vec<StructItem>,
    pub uses: Vec<UseItem>,
}

/// The receiver shape of a method call, used for heuristic resolution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Recv {
    /// `self.method(…)` — resolve within the enclosing impl type first.
    SelfDirect,
    /// `self.field.method(…)` — resolve via the field's declared type.
    SelfField(String),
    /// Anything else (`expr.method(…)`) — resolve by name workspace-wide.
    Other,
}

/// One call site inside a function body.
#[derive(Debug, Clone)]
pub enum Call {
    /// `recv.name(…)`
    Method { recv: Recv, name: String, line: u32 },
    /// `qual::name(…)` (`qual` is the last path segment before the
    /// name, `None` for bare `name(…)` calls).
    Path {
        qual: Option<String>,
        name: String,
        line: u32,
    },
}

impl Call {
    /// The callee name.
    pub fn name(&self) -> &str {
        match self {
            Call::Method { name, .. } | Call::Path { name, .. } => name,
        }
    }

    /// The call site line.
    pub fn line(&self) -> u32 {
        match self {
            Call::Method { line, .. } | Call::Path { line, .. } => *line,
        }
    }
}

/// Parses the items of one lexed file. `spans` are the test spans from
/// [`crate::lexer::test_spans`], used to mark test-only items.
pub fn parse_items(tokens: &[Token], spans: &[(u32, u32)]) -> FileItems {
    let mut out = FileItems::default();
    let mut module = Vec::new();
    parse_region(tokens, 0, tokens.len(), &mut module, None, spans, &mut out);
    out
}

fn ident_at(tokens: &[Token], i: usize) -> Option<&str> {
    tokens.get(i).and_then(|t| t.ident())
}

fn is_punct_at(tokens: &[Token], i: usize, p: &str) -> bool {
    tokens.get(i).is_some_and(|t| t.is_punct(p))
}

/// Scans `lo..hi` for items; recurses into `mod`/`impl`/`trait` bodies.
#[allow(clippy::too_many_arguments)]
fn parse_region(
    tokens: &[Token],
    lo: usize,
    hi: usize,
    module: &mut Vec<String>,
    self_ty: Option<&str>,
    spans: &[(u32, u32)],
    out: &mut FileItems,
) {
    let mut i = lo;
    while i < hi {
        let Some(id) = ident_at(tokens, i) else {
            i += 1;
            continue;
        };
        match id {
            "mod" => {
                let Some(name) = ident_at(tokens, i + 1) else {
                    i += 1;
                    continue;
                };
                if is_punct_at(tokens, i + 2, "{") {
                    let end = match_brace(tokens, i + 2).min(hi.saturating_sub(1));
                    module.push(name.to_string());
                    parse_region(tokens, i + 3, end, module, None, spans, out);
                    module.pop();
                    i = end + 1;
                } else {
                    // `mod name;` — out-of-line module, nothing here.
                    i += 2;
                }
            }
            "impl" | "trait" => {
                let is_trait = id == "trait";
                // Scan the header up to `{` (or `;` for `trait X;`-like
                // degenerate input), collecting depth-0 path idents and
                // noting a top-level `for` (trait impls).
                let mut j = i + 1;
                let mut angle: i32 = 0;
                let mut before_for: Vec<&str> = Vec::new();
                let mut after_for: Vec<&str> = Vec::new();
                let mut saw_for = false;
                let mut saw_where = false;
                while j < hi && !is_punct_at(tokens, j, "{") && !is_punct_at(tokens, j, ";") {
                    let t = &tokens[j];
                    if t.is_punct("<") {
                        angle += 1;
                    } else if t.is_punct(">") {
                        angle -= 1;
                    } else if t.is_punct(">>") {
                        angle -= 2;
                    } else if let Some(w) = t.ident() {
                        if angle <= 0 {
                            match w {
                                "for" => saw_for = true,
                                "where" => saw_where = true,
                                _ if !saw_where => {
                                    if saw_for {
                                        after_for.push(w);
                                    } else {
                                        before_for.push(w);
                                    }
                                }
                                _ => {}
                            }
                        }
                    }
                    j += 1;
                }
                let target = if saw_for {
                    after_for.last().copied()
                } else if is_trait {
                    before_for.first().copied()
                } else {
                    before_for.last().copied()
                };
                if j < hi && is_punct_at(tokens, j, "{") {
                    let end = match_brace(tokens, j).min(hi.saturating_sub(1));
                    parse_region(tokens, j + 1, end, module, target, spans, out);
                    i = end + 1;
                } else {
                    i = j + 1;
                }
            }
            "fn" => {
                let Some(name) = ident_at(tokens, i + 1) else {
                    // `fn(u8) -> u8` function-pointer type, not an item.
                    i += 1;
                    continue;
                };
                let line = tokens[i].line;
                // Scan past the signature for the body `{` or a
                // terminating `;`, tracking paren depth so default
                // arguments never confuse the search (none exist in
                // Rust, but `where` bounds with parens do).
                let mut j = i + 2;
                let mut paren: i32 = 0;
                let mut body = None;
                while j < hi {
                    let t = &tokens[j];
                    if t.is_punct("(") {
                        paren += 1;
                    } else if t.is_punct(")") {
                        paren -= 1;
                    } else if paren == 0 && t.is_punct("{") {
                        let end = match_brace(tokens, j).min(hi.saturating_sub(1));
                        body = Some((j, end));
                        break;
                    } else if paren == 0 && t.is_punct(";") {
                        break;
                    }
                    j += 1;
                }
                out.fns.push(FnItem {
                    name: name.to_string(),
                    self_ty: self_ty.map(str::to_string),
                    module: module.clone(),
                    line,
                    body,
                    is_test: in_spans(spans, line),
                });
                i = match body {
                    Some((_, end)) => end + 1,
                    None => j + 1,
                };
            }
            "struct" => {
                let Some(name) = ident_at(tokens, i + 1) else {
                    i += 1;
                    continue;
                };
                let line = tokens[i].line;
                let is_test = in_spans(spans, line);
                // Skip generics / where clause to `{`, `(`, or `;`.
                let mut j = i + 2;
                while j < hi
                    && !is_punct_at(tokens, j, "{")
                    && !is_punct_at(tokens, j, "(")
                    && !is_punct_at(tokens, j, ";")
                {
                    j += 1;
                }
                let mut fields = Vec::new();
                if j < hi && is_punct_at(tokens, j, "{") {
                    let end = match_brace(tokens, j).min(hi.saturating_sub(1));
                    parse_named_fields(tokens, j + 1, end, &mut fields);
                    i = end + 1;
                } else if j < hi && is_punct_at(tokens, j, "(") {
                    let end = match_paren(tokens, j).min(hi.saturating_sub(1));
                    parse_tuple_fields(tokens, j + 1, end, &mut fields);
                    i = end + 1;
                } else {
                    i = j + 1;
                }
                out.structs.push(StructItem {
                    name: name.to_string(),
                    fields,
                    line,
                    is_test,
                });
            }
            "enum" | "union" => {
                // Skip the body; variants hold no tracked state fields.
                let mut j = i + 1;
                while j < hi && !is_punct_at(tokens, j, "{") && !is_punct_at(tokens, j, ";") {
                    j += 1;
                }
                if j < hi && is_punct_at(tokens, j, "{") {
                    i = match_brace(tokens, j).min(hi.saturating_sub(1)) + 1;
                } else {
                    i = j + 1;
                }
            }
            "use" => {
                let mut j = i + 1;
                let mut prefix: Vec<String> = Vec::new();
                let mut group: Vec<String> = Vec::new();
                let mut last: Option<String> = None;
                while j < hi && !is_punct_at(tokens, j, ";") {
                    let t = &tokens[j];
                    if let Some(w) = t.ident() {
                        last = Some(w.to_string());
                    } else if t.is_punct("::") {
                        if let Some(l) = last.take() {
                            prefix.push(l);
                        }
                    } else if t.is_punct("{") || t.is_punct(",") || t.is_punct("}") {
                        if let Some(l) = last.take() {
                            group.push(l);
                        }
                    }
                    j += 1;
                }
                if let Some(l) = last.take() {
                    group.push(l);
                }
                for leaf in group {
                    if leaf != "self" && leaf != "*" {
                        out.uses.push(UseItem {
                            leaf,
                            prefix: prefix.clone(),
                        });
                    }
                }
                i = j + 1;
            }
            _ => i += 1,
        }
    }
}

/// Index of the `)` matching the `(` at `open`.
fn match_paren(tokens: &[Token], open: usize) -> usize {
    let mut d = 0i64;
    for (n, t) in tokens.iter().enumerate().skip(open) {
        if t.is_punct("(") {
            d += 1;
        } else if t.is_punct(")") {
            d -= 1;
            if d == 0 {
                return n;
            }
        }
    }
    tokens.len().saturating_sub(1)
}

/// Parses `name: Type` fields between `lo..hi` (inside struct braces).
fn parse_named_fields(tokens: &[Token], lo: usize, hi: usize, out: &mut Vec<FieldItem>) {
    let mut i = lo;
    while i < hi {
        // Skip attributes.
        if is_punct_at(tokens, i, "#") && is_punct_at(tokens, i + 1, "[") {
            let mut d = 0;
            let mut j = i + 1;
            while j < hi {
                if tokens[j].is_punct("[") {
                    d += 1;
                } else if tokens[j].is_punct("]") {
                    d -= 1;
                    if d == 0 {
                        break;
                    }
                }
                j += 1;
            }
            i = j + 1;
            continue;
        }
        // Skip visibility.
        if ident_at(tokens, i) == Some("pub") {
            i += 1;
            if is_punct_at(tokens, i, "(") {
                i = match_paren(tokens, i).min(hi) + 1;
            }
            continue;
        }
        let (Some(name), true) = (ident_at(tokens, i), is_punct_at(tokens, i + 1, ":")) else {
            i += 1;
            continue;
        };
        let line = tokens[i].line;
        // Collect type idents up to the field-separating `,` at angle
        // depth 0 (generic argument commas sit at depth > 0).
        let mut j = i + 2;
        let mut angle: i32 = 0;
        let mut ty_idents = Vec::new();
        while j < hi {
            let t = &tokens[j];
            if t.is_punct("<") {
                angle += 1;
            } else if t.is_punct(">") {
                angle -= 1;
            } else if t.is_punct(">>") {
                angle -= 2;
            } else if t.is_punct(",") && angle <= 0 {
                break;
            } else if let Some(w) = t.ident() {
                ty_idents.push(w.to_string());
            }
            j += 1;
        }
        out.push(FieldItem {
            name: name.to_string(),
            ty_idents,
            line,
        });
        i = j + 1;
    }
}

/// Parses tuple-struct fields between `lo..hi` (inside parens); fields
/// are named by position (`"0"`, `"1"`, …).
fn parse_tuple_fields(tokens: &[Token], lo: usize, hi: usize, out: &mut Vec<FieldItem>) {
    let mut i = lo;
    let mut idx = 0usize;
    let mut angle: i32 = 0;
    let mut paren: i32 = 0;
    let mut ty_idents: Vec<String> = Vec::new();
    let mut line = tokens.get(lo).map_or(0, |t| t.line);
    while i < hi {
        let t = &tokens[i];
        if t.is_punct("<") {
            angle += 1;
        } else if t.is_punct(">") {
            angle -= 1;
        } else if t.is_punct(">>") {
            angle -= 2;
        } else if t.is_punct("(") {
            paren += 1;
        } else if t.is_punct(")") {
            paren -= 1;
        } else if t.is_punct(",") && angle <= 0 && paren <= 0 {
            out.push(FieldItem {
                name: idx.to_string(),
                ty_idents: std::mem::take(&mut ty_idents),
                line,
            });
            idx += 1;
            line = tokens.get(i + 1).map_or(line, |t| t.line);
        } else if let Some(w) = t.ident() {
            if w != "pub" {
                ty_idents.push(w.to_string());
            }
        }
        i += 1;
    }
    if !ty_idents.is_empty() {
        out.push(FieldItem {
            name: idx.to_string(),
            ty_idents,
            line,
        });
    }
}

/// Extracts every call site in the body token range `(open, close)`.
pub fn extract_calls(tokens: &[Token], body: (usize, usize)) -> Vec<Call> {
    let (open, close) = body;
    let mut out = Vec::new();
    let mut i = open;
    while i <= close && i < tokens.len() {
        let Some(name) = tokens[i].ident() else {
            i += 1;
            continue;
        };
        if is_keywordish(name) {
            i += 1;
            continue;
        }
        // `name(`, or `name::<…>(` (turbofish).
        let mut call_paren = None;
        if is_punct_at(tokens, i + 1, "(") {
            call_paren = Some(i + 1);
        } else if is_punct_at(tokens, i + 1, "::") && is_punct_at(tokens, i + 2, "<") {
            // Find the matching `>` of the turbofish.
            let mut d: i32 = 0;
            let mut j = i + 2;
            while j <= close && j < tokens.len() {
                let t = &tokens[j];
                if t.is_punct("<") {
                    d += 1;
                } else if t.is_punct(">") {
                    d -= 1;
                    if d == 0 {
                        break;
                    }
                } else if t.is_punct(">>") {
                    d -= 2;
                    if d <= 0 {
                        break;
                    }
                }
                j += 1;
            }
            if is_punct_at(tokens, j + 1, "(") {
                call_paren = Some(j + 1);
            }
        }
        let Some(_paren) = call_paren else {
            i += 1;
            continue;
        };
        let line = tokens[i].line;
        let prev = i.checked_sub(1).map(|p| &tokens[p]);
        let call = match prev {
            Some(p) if p.is_punct(".") => {
                // Method call: classify the receiver.
                let recv = if i >= 2 && ident_at(tokens, i - 2) == Some("self") {
                    Recv::SelfDirect
                } else if i >= 4
                    && is_punct_at(tokens, i - 3, ".")
                    && ident_at(tokens, i - 4) == Some("self")
                {
                    match ident_at(tokens, i - 2) {
                        Some(field) => Recv::SelfField(field.to_string()),
                        None => Recv::Other,
                    }
                } else {
                    Recv::Other
                };
                Some(Call::Method {
                    recv,
                    name: name.to_string(),
                    line,
                })
            }
            Some(p) if p.is_punct("::") => {
                let qual = i
                    .checked_sub(2)
                    .and_then(|q| ident_at(tokens, q))
                    .map(str::to_string);
                Some(Call::Path {
                    qual,
                    name: name.to_string(),
                    line,
                })
            }
            Some(p) if p.ident() == Some("fn") => None, // nested fn def
            _ => Some(Call::Path {
                qual: None,
                name: name.to_string(),
                line,
            }),
        };
        if let Some(c) = call {
            out.push(c);
        }
        i += 1;
    }
    out
}

/// Keywords and common builtins that look like calls but are not
/// workspace function calls worth resolving.
fn is_keywordish(id: &str) -> bool {
    matches!(
        id,
        "if" | "else"
            | "match"
            | "return"
            | "let"
            | "mut"
            | "fn"
            | "in"
            | "for"
            | "while"
            | "loop"
            | "break"
            | "continue"
            | "as"
            | "where"
            | "impl"
            | "pub"
            | "use"
            | "mod"
            | "struct"
            | "enum"
            | "trait"
            | "type"
            | "const"
            | "static"
            | "ref"
            | "move"
            | "unsafe"
            | "dyn"
            | "Some"
            | "None"
            | "Ok"
            | "Err"
            | "Box"
            | "Vec"
            | "self"
            | "Self"
            | "super"
            | "crate"
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::{lex, test_spans};

    fn parse(src: &str) -> FileItems {
        let lx = lex(src);
        let spans = test_spans(&lx.tokens);
        parse_items(&lx.tokens, &spans)
    }

    #[test]
    fn finds_free_and_impl_fns() {
        let src = "
pub fn free(x: u8) -> u8 { x }
impl Replica<V> {
    pub fn on_message(&mut self) { self.helper(); }
    fn helper(&mut self) {}
}
impl fmt::Display for Slot {
    fn fmt(&self, f: &mut fmt::Formatter) -> fmt::Result { write(f) }
}
";
        let items = parse(src);
        let names: Vec<(String, Option<String>)> = items
            .fns
            .iter()
            .map(|f| (f.name.clone(), f.self_ty.clone()))
            .collect();
        assert_eq!(
            names,
            vec![
                ("free".into(), None),
                ("on_message".into(), Some("Replica".into())),
                ("helper".into(), Some("Replica".into())),
                ("fmt".into(), Some("Slot".into())),
            ]
        );
    }

    #[test]
    fn nested_modules_give_module_paths() {
        let src = "mod outer { mod inner { fn deep() {} } fn mid() {} } fn top() {}";
        let items = parse(src);
        let by_name = |n: &str| items.fns.iter().find(|f| f.name == n).unwrap();
        assert_eq!(by_name("deep").module, vec!["outer", "inner"]);
        assert_eq!(by_name("mid").module, vec!["outer"]);
        assert!(by_name("top").module.is_empty());
    }

    #[test]
    fn struct_fields_with_generic_types() {
        let src = "
pub struct Learner<V> {
    decided: BTreeMap<Slot, Vec<u8>>,
    pub score: f64,
    count: u64,
}
pub struct Slot(pub u64);
";
        let items = parse(src);
        assert_eq!(items.structs.len(), 2);
        let learner = &items.structs[0];
        assert_eq!(learner.name, "Learner");
        assert_eq!(learner.fields.len(), 3);
        assert_eq!(
            learner.fields[0].ty_idents,
            vec!["BTreeMap", "Slot", "Vec", "u8"]
        );
        assert_eq!(learner.fields[1].ty_idents, vec!["f64"]);
        let slot = &items.structs[1];
        assert_eq!(slot.fields.len(), 1);
        assert_eq!(slot.fields[0].name, "0");
        assert_eq!(slot.fields[0].ty_idents, vec!["u64"]);
    }

    #[test]
    fn test_fns_are_marked() {
        let src = "#[cfg(test)]\nmod tests { fn helper() {} }\nfn real() {}";
        let items = parse(src);
        assert!(
            items
                .fns
                .iter()
                .find(|f| f.name == "helper")
                .unwrap()
                .is_test
        );
        assert!(!items.fns.iter().find(|f| f.name == "real").unwrap().is_test);
    }

    #[test]
    fn call_extraction_classifies_receivers() {
        let src = "
impl Engine {
    fn dispatch(&mut self) {
        self.step();
        self.queue.push(1);
        helper();
        wire::decode_u64(b);
        Slot::next(s);
        items.iter().map(|x| x.apply()).collect::<Vec<_>>();
    }
}
";
        let items = parse(src);
        let lx = lex(src);
        let f = &items.fns[0];
        let calls = extract_calls(&lx.tokens, f.body.unwrap());
        let shapes: Vec<String> = calls
            .iter()
            .map(|c| match c {
                Call::Method { recv, name, .. } => format!("m:{recv:?}:{name}"),
                Call::Path { qual, name, .. } => {
                    format!("p:{}:{name}", qual.clone().unwrap_or_default())
                }
            })
            .collect();
        assert!(shapes.contains(&"m:SelfDirect:step".to_string()));
        assert!(shapes.contains(&"m:SelfField(\"queue\"):push".to_string()));
        assert!(shapes.contains(&"p::helper".to_string()));
        assert!(shapes.contains(&"p:wire:decode_u64".to_string()));
        assert!(shapes.contains(&"p:Slot:next".to_string()));
        assert!(shapes.contains(&"m:Other:apply".to_string()));
        assert!(shapes.contains(&"m:Other:collect".to_string()));
    }

    #[test]
    fn use_items_collect_leaves() {
        let src = "use a::b::{C, d};\nuse x::Y;\n";
        let items = parse(src);
        let leaves: Vec<&str> = items.uses.iter().map(|u| u.leaf.as_str()).collect();
        assert_eq!(leaves, vec!["C", "d", "Y"]);
        assert_eq!(items.uses[0].prefix, vec!["a", "b"]);
    }

    #[test]
    fn macro_rules_templates_are_scanned_as_code() {
        // The template is the code of every expansion: its fns must be
        // visible so macro-generated codec impls stay inside the wall.
        let src = "
macro_rules! impl_wire {
    ($t:ty) => {
        impl Wire for $t {
            fn decode(input: &mut &[u8]) -> Result<Self, WireError> {
                read_u16(input)
            }
        }
    };
}
";
        let items = parse(src);
        assert_eq!(items.fns.len(), 1);
        assert_eq!(items.fns[0].name, "decode");
    }
}
