//! Diagnostics: rustc-style rendering and machine-readable JSON.

use std::fmt::Write as _;

/// One finding from a rule, anchored to a source span.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    /// Rule slug, e.g. `hash-order`.
    pub rule: &'static str,
    /// Repo-relative path.
    pub path: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// Human message (what + where-specific context).
    pub message: String,
    /// The full source line, for the caret snippet.
    pub snippet: String,
    /// Per-rule fix guidance.
    pub help: &'static str,
    /// For transitive rules: the provenance chain from a declared root
    /// down to this finding (`label (path:line)` per hop, root first).
    /// Empty for file-scoped rules.
    pub chain: Vec<String>,
}

/// Renders one diagnostic in rustc style.
pub fn render(d: &Diagnostic) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "error[simlint::{}]: {}", d.rule, d.message);
    let _ = writeln!(s, "  --> {}:{}:{}", d.path, d.line, d.col);
    let gutter = d.line.to_string().len();
    let _ = writeln!(s, "{:g$} |", "", g = gutter);
    let _ = writeln!(s, "{} | {}", d.line, d.snippet.trim_end());
    let caret_pad = d.snippet[..usize::min(d.col.saturating_sub(1) as usize, d.snippet.len())]
        .chars()
        .map(|c| if c == '\t' { '\t' } else { ' ' })
        .collect::<String>();
    let _ = writeln!(s, "{:g$} | {}^", "", caret_pad, g = gutter);
    if !d.chain.is_empty() {
        let _ = writeln!(
            s,
            "{:g$} = note: reachable via {}",
            "",
            d.chain.join(" → "),
            g = gutter
        );
    }
    let _ = writeln!(s, "{:g$} = help: {}", "", d.help, g = gutter);
    s
}

/// Escapes a string for JSON output.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Serializes one diagnostic as a JSON object (schema v2: includes the
/// `chain` provenance array, empty for file-scoped rules).
pub fn to_json(d: &Diagnostic) -> String {
    let chain = d
        .chain
        .iter()
        .map(|c| format!("\"{}\"", json_escape(c)))
        .collect::<Vec<_>>()
        .join(",");
    format!(
        "{{\"rule\":\"{}\",\"path\":\"{}\",\"line\":{},\"col\":{},\"message\":\"{}\",\"snippet\":\"{}\",\"help\":\"{}\",\"chain\":[{}]}}",
        json_escape(d.rule),
        json_escape(&d.path),
        d.line,
        d.col,
        json_escape(&d.message),
        json_escape(d.snippet.trim_end()),
        json_escape(d.help),
        chain,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Diagnostic {
        Diagnostic {
            rule: "hash-order",
            path: "crates/x/src/lib.rs".into(),
            line: 7,
            col: 5,
            message: "std::collections::HashMap in sim-visible crate `x`".into(),
            snippet: "    HashMap::new()".into(),
            help: "use BTreeMap",
            chain: Vec::new(),
        }
    }

    #[test]
    fn render_has_span_and_help() {
        let r = render(&sample());
        assert!(r.contains("error[simlint::hash-order]"));
        assert!(r.contains("--> crates/x/src/lib.rs:7:5"));
        assert!(r.contains("help: use BTreeMap"));
        assert!(!r.contains("reachable via"));
    }

    #[test]
    fn render_and_json_carry_chain() {
        let mut d = sample();
        d.chain = vec![
            "Replica::on_message (crates/paxos/src/replica.rs:470)".into(),
            "Replica::advance (crates/paxos/src/replica.rs:500)".into(),
        ];
        let r = render(&d);
        assert!(r.contains(
            "note: reachable via Replica::on_message (crates/paxos/src/replica.rs:470) \
             → Replica::advance (crates/paxos/src/replica.rs:500)"
        ));
        let j = to_json(&d);
        assert!(j.contains("\"chain\":[\"Replica::on_message"));
    }

    #[test]
    fn json_escapes_specials() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }

    #[test]
    fn json_object_is_parseable_shape() {
        let j = to_json(&sample());
        assert!(j.starts_with('{') && j.ends_with('}'));
        assert!(j.contains("\"rule\":\"hash-order\""));
        assert!(j.contains("\"line\":7"));
    }
}
