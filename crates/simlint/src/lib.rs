//! simlint — workspace determinism-and-safety static analysis.
//!
//! The paper's crash/failover/recovery measurements are reproducible
//! only because every replica run is deterministic; PR 1 chased
//! hash-order nondeterminism by hand and PR 3's byte-identical-trace
//! guarantee turns any future nondeterminism into a silent regression.
//! simlint mechanically forbids the bug classes the runtime invariant
//! auditor keeps rediscovering dynamically:
//!
//! | rule | invariant |
//! |------|-----------|
//! | `hash-order` | no std `HashMap`/`HashSet` in sim-visible crates |
//! | `sim-taint` | nothing reachable from a sim root touches wall-clock/entropy/env/threads |
//! | `panic-taint` | nothing reachable from a protocol root can panic |
//! | `state-growth` | root-held collections have a shrink site somewhere |
//! | `float-state` | no f32/f64 in root-held consensus state |
//! | `lossy-cast` | no `as` narrowing of ordinals on reachable paths |
//! | `io-println` | no raw stdout/stderr printing in library crates |
//! | `unchecked-slot-arith` | slot/watermark ordinals use checked ops |
//!
//! The transitive rules run over a workspace call graph ([`items`] →
//! [`graph`] → [`reach`]) rooted at the `[roots]` declared in
//! `simlint.toml`; their diagnostics carry the full call chain from a
//! root to the finding.
//!
//! Run with `cargo run -p simlint` (human diagnostics),
//! `cargo run -p simlint -- --json -` (machine-readable report, schema
//! v2), or `--graph-dot -` (Graphviz export of the reachable
//! subgraph). Waivers live in `simlint.toml` or inline
//! (`// simlint: allow(rule): why`); stale waivers and stale root
//! patterns are errors, so the allowlist can only shrink.
//!
//! The analyzer is dependency-free by design: the build environment is
//! offline (external crates are vendored shims), so instead of `syn` it
//! uses a self-contained lexer (see [`lexer`]) that understands
//! comments, strings, lifetimes, and `#[cfg(test)]` regions — enough
//! for exact-span token rules and heuristic item/call extraction.

pub mod config;
pub mod diag;
pub mod graph;
pub mod items;
pub mod lexer;
pub mod reach;
pub mod rules;
pub mod workspace;

use std::fmt::Write as _;

use diag::json_escape;
use workspace::Report;

/// JSON schema version of the `--json` report. v2 adds `chain` arrays
/// on diagnostics and the `graph` summary block.
pub const JSON_VERSION: u32 = 2;

/// Serializes a [`Report`] as the stable `--json` document.
pub fn report_to_json(report: &Report) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    let _ = writeln!(s, "  \"version\": {JSON_VERSION},");
    let _ = writeln!(s, "  \"tool\": \"simlint\",");
    let _ = writeln!(
        s,
        "  \"rules\": [{}],",
        rules::RULES
            .iter()
            .map(|r| format!("\"{}\"", r.name))
            .collect::<Vec<_>>()
            .join(", ")
    );
    s.push_str("  \"diagnostics\": [\n");
    for (i, d) in report.errors.iter().enumerate() {
        let comma = if i + 1 < report.errors.len() { "," } else { "" };
        let _ = writeln!(s, "    {}{comma}", diag::to_json(d));
    }
    s.push_str("  ],\n  \"waived\": [\n");
    for (i, (d, reason)) in report.waived.iter().enumerate() {
        let comma = if i + 1 < report.waived.len() { "," } else { "" };
        let _ = writeln!(
            s,
            "    {{\"rule\":\"{}\",\"path\":\"{}\",\"line\":{},\"reason\":\"{}\"}}{comma}",
            json_escape(d.rule),
            json_escape(&d.path),
            d.line,
            json_escape(reason),
        );
    }
    s.push_str("  ],\n  \"stale_waivers\": [\n");
    for (i, w) in report.stale.iter().enumerate() {
        let comma = if i + 1 < report.stale.len() { "," } else { "" };
        let _ = writeln!(
            s,
            "    {{\"declared_at\":\"{}\",\"rule\":\"{}\",\"message\":\"{}\"}}{comma}",
            json_escape(&w.declared_at),
            json_escape(&w.rule),
            json_escape(&w.message),
        );
    }
    s.push_str("  ],\n");
    let st = &report.stats;
    let _ = writeln!(
        s,
        "  \"graph\": {{\"functions\": {}, \"edges\": {}, \"sim_roots\": {}, \"sim_reachable\": {}, \
         \"protocol_roots\": {}, \"protocol_reachable\": {}}},",
        st.functions,
        st.edges,
        st.sim_roots,
        st.sim_reachable,
        st.protocol_roots,
        st.protocol_reachable
    );
    let _ = writeln!(
        s,
        "  \"summary\": {{\"errors\": {}, \"waived\": {}, \"stale_waivers\": {}, \"files_scanned\": {}}}",
        report.errors.len(),
        report.waived.len(),
        report.stale.len(),
        report.files_scanned
    );
    s.push_str("}\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use diag::Diagnostic;

    #[test]
    fn json_report_shape() {
        let mut r = Report {
            files_scanned: 3,
            ..Report::default()
        };
        r.errors.push(Diagnostic {
            rule: "sim-taint",
            path: "crates/paxos/src/x.rs".into(),
            line: 5,
            col: 2,
            message: "m".into(),
            snippet: "s".into(),
            help: "h",
            chain: vec!["a (f.rs:1)".into(), "b (g.rs:2)".into()],
        });
        r.stats.functions = 10;
        r.stats.sim_reachable = 4;
        let j = report_to_json(&r);
        assert!(j.contains("\"version\": 2"));
        assert!(j.contains("\"errors\": 1"));
        assert!(j.contains("\"files_scanned\": 3"));
        assert!(j.contains("\"rule\":\"sim-taint\""));
        assert!(j.contains("\"chain\":[\"a (f.rs:1)\",\"b (g.rs:2)\"]"));
        assert!(j.contains("\"graph\": {\"functions\": 10,"));
        assert!(j.contains("\"sim_reachable\": 4"));
    }
}
