//! simlint — workspace determinism-and-safety static analysis.
//!
//! The paper's crash/failover/recovery measurements are reproducible
//! only because every replica run is deterministic; PR 1 chased
//! hash-order nondeterminism by hand and PR 3's byte-identical-trace
//! guarantee turns any future nondeterminism into a silent regression.
//! simlint mechanically forbids the bug classes the runtime invariant
//! auditor keeps rediscovering dynamically:
//!
//! | rule | invariant |
//! |------|-----------|
//! | `hash-order` | no std `HashMap`/`HashSet` in sim-visible crates |
//! | `wall-clock` | no wall-clock time / OS entropy reachable from the sim |
//! | `panic-path` | no unwrap/expect/panic/indexing on protocol paths |
//! | `io-println` | no raw stdout/stderr printing in library crates |
//! | `unchecked-slot-arith` | slot/watermark ordinals use checked ops |
//!
//! Run with `cargo run -p simlint` (human diagnostics) or
//! `cargo run -p simlint -- --json -` (machine-readable report). Waivers
//! live in `simlint.toml` or inline (`// simlint: allow(rule): why`);
//! stale waivers are errors, so the allowlist can only shrink.
//!
//! The analyzer is dependency-free by design: the build environment is
//! offline (external crates are vendored shims), so instead of `syn` it
//! uses a self-contained lexer (see [`lexer`]) that understands
//! comments, strings, lifetimes, and `#[cfg(test)]` regions — enough
//! for exact-span token-level rules.

pub mod config;
pub mod diag;
pub mod lexer;
pub mod rules;
pub mod workspace;

use std::fmt::Write as _;

use diag::json_escape;
use workspace::Report;

/// JSON schema version of the `--json` report.
pub const JSON_VERSION: u32 = 1;

/// Serializes a [`Report`] as the stable `--json` document.
pub fn report_to_json(report: &Report) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    let _ = writeln!(s, "  \"version\": {JSON_VERSION},");
    let _ = writeln!(s, "  \"tool\": \"simlint\",");
    let _ = writeln!(
        s,
        "  \"rules\": [{}],",
        rules::RULES
            .iter()
            .map(|r| format!("\"{}\"", r.name))
            .collect::<Vec<_>>()
            .join(", ")
    );
    s.push_str("  \"diagnostics\": [\n");
    for (i, d) in report.errors.iter().enumerate() {
        let comma = if i + 1 < report.errors.len() { "," } else { "" };
        let _ = writeln!(s, "    {}{comma}", diag::to_json(d));
    }
    s.push_str("  ],\n  \"waived\": [\n");
    for (i, (d, reason)) in report.waived.iter().enumerate() {
        let comma = if i + 1 < report.waived.len() { "," } else { "" };
        let _ = writeln!(
            s,
            "    {{\"rule\":\"{}\",\"path\":\"{}\",\"line\":{},\"reason\":\"{}\"}}{comma}",
            json_escape(d.rule),
            json_escape(&d.path),
            d.line,
            json_escape(reason),
        );
    }
    s.push_str("  ],\n  \"stale_waivers\": [\n");
    for (i, w) in report.stale.iter().enumerate() {
        let comma = if i + 1 < report.stale.len() { "," } else { "" };
        let _ = writeln!(
            s,
            "    {{\"declared_at\":\"{}\",\"rule\":\"{}\",\"message\":\"{}\"}}{comma}",
            json_escape(&w.declared_at),
            json_escape(&w.rule),
            json_escape(&w.message),
        );
    }
    s.push_str("  ],\n");
    let _ = writeln!(
        s,
        "  \"summary\": {{\"errors\": {}, \"waived\": {}, \"stale_waivers\": {}, \"files_scanned\": {}}}",
        report.errors.len(),
        report.waived.len(),
        report.stale.len(),
        report.files_scanned
    );
    s.push_str("}\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use diag::Diagnostic;

    #[test]
    fn json_report_shape() {
        let mut r = Report {
            files_scanned: 3,
            ..Report::default()
        };
        r.errors.push(Diagnostic {
            rule: "hash-order",
            path: "crates/paxos/src/x.rs".into(),
            line: 5,
            col: 2,
            message: "m".into(),
            snippet: "s".into(),
            help: "h",
        });
        let j = report_to_json(&r);
        assert!(j.contains("\"version\": 1"));
        assert!(j.contains("\"errors\": 1"));
        assert!(j.contains("\"files_scanned\": 3"));
        assert!(j.contains("\"rule\":\"hash-order\""));
    }
}
