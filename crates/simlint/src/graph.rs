//! Workspace call graph assembled from per-file [`crate::items`].
//!
//! Resolution is heuristic and name-based — there is no type checker —
//! so the graph *over-approximates*: when a call site is ambiguous we
//! add an edge to every plausible workspace callee rather than none.
//! The precision rules below keep that over-approximation from
//! degenerating into "everything calls everything":
//!
//! * `self.m(…)` resolves inside the enclosing `impl` type when the
//!   method exists there; otherwise it falls back to name-wide.
//! * `self.field.m(…)` resolves through the field's declared type when
//!   a struct definition for the enclosing type is in the workspace.
//! * `Type::m(…)` resolves exactly against the `(type, name)` index; an
//!   unknown capitalized qualifier (e.g. `Vec::new`) produces **no**
//!   edge — foreign code cannot be a workspace callee, and forbidden
//!   foreign APIs are caught token-wise by the taint rules instead.
//! * `module::f(…)` and bare `f(…)` resolve name-wide, preferring
//!   same-file and matching-module candidates.
//! * `#[cfg(test)]` functions are excluded from the graph entirely:
//!   they are neither callees nor roots, so test helpers never taint
//!   production paths.

use std::collections::BTreeMap;

use crate::items::{Call, FileItems, Recv, StructItem};

/// One function node in the workspace graph.
#[derive(Debug, Clone)]
pub struct FnNode {
    /// Index into [`Graph::nodes`].
    pub id: usize,
    /// Index of the owning file in the workspace file list.
    pub file: usize,
    pub name: String,
    pub self_ty: Option<String>,
    pub krate: String,
    /// Workspace-relative path of the defining file.
    pub path: String,
    /// Line of the `fn` keyword.
    pub line: u32,
    /// Token index range of the body braces in the owning file's
    /// token stream (inclusive), `None` for signature-only items.
    pub body: Option<(usize, usize)>,
}

impl FnNode {
    /// Display label: `Type::name` or bare `name`.
    pub fn label(&self) -> String {
        match &self.self_ty {
            Some(t) => format!("{t}::{}", self.name),
            None => self.name.clone(),
        }
    }
}

/// The assembled workspace call graph.
#[derive(Debug, Default)]
pub struct Graph {
    pub nodes: Vec<FnNode>,
    /// `edges[caller] = [(callee, call-site line), …]`, deduplicated.
    pub edges: Vec<Vec<(usize, u32)>>,
    by_name: BTreeMap<String, Vec<usize>>,
    by_ty_name: BTreeMap<(String, String), Vec<usize>>,
    /// `(self_ty, field name) → type idents` from struct definitions.
    field_ty: BTreeMap<(String, String), Vec<String>>,
    /// Struct definitions by name (first definition wins on collision).
    pub structs: BTreeMap<String, (usize, StructItem)>,
}

/// Methods that are overwhelmingly std-library calls; name-wide
/// fallback skips them so `v.push(x)` does not edge into every
/// workspace `fn push`. Exact `(type, name)` resolution still works.
const STD_METHODS: &[&str] = &[
    "all",
    "and_then",
    "any",
    "as_bytes",
    "as_mut",
    "as_ref",
    "as_slice",
    "as_str",
    "chain",
    "clone",
    "cloned",
    "cmp",
    "collect",
    "contains",
    "contains_key",
    "copied",
    "count",
    "drain",
    "entry",
    "enumerate",
    "eq",
    "expect",
    "extend",
    "filter",
    "filter_map",
    "find",
    "first",
    "flat_map",
    "flatten",
    "fmt",
    "fold",
    "get",
    "get_mut",
    "hash",
    "insert",
    "into_iter",
    "is_empty",
    "is_none",
    "is_some",
    "iter",
    "iter_mut",
    "join",
    "keys",
    "last",
    "len",
    "map",
    "map_err",
    "max",
    "min",
    "next",
    "or_default",
    "or_insert",
    "or_insert_with",
    "partial_cmp",
    "pop",
    "pop_front",
    "position",
    "push",
    "push_back",
    "push_str",
    "remove",
    "retain",
    "rev",
    "sort",
    "sort_by",
    "sort_by_key",
    "split",
    "starts_with",
    "sum",
    "take",
    "to_owned",
    "to_string",
    "to_vec",
    "truncate",
    "unwrap",
    "unwrap_or",
    "unwrap_or_default",
    "unwrap_or_else",
    "values",
    "values_mut",
    "windows",
    "zip",
];

/// Per-file input to [`build`].
pub struct FileInput<'a> {
    pub path: &'a str,
    pub krate: &'a str,
    pub items: &'a FileItems,
}

/// Builds the workspace graph. `files[i]` corresponds to file index
/// `i` in the resulting nodes.
pub fn build(files: &[FileInput<'_>]) -> Graph {
    let mut g = Graph::default();
    // Pass 1: nodes + indexes.
    for (fi, f) in files.iter().enumerate() {
        for s in &f.items.structs {
            if s.is_test {
                continue;
            }
            for fld in &s.fields {
                g.field_ty
                    .entry((s.name.clone(), fld.name.clone()))
                    .or_insert_with(|| fld.ty_idents.clone());
            }
            g.structs
                .entry(s.name.clone())
                .or_insert_with(|| (fi, s.clone()));
        }
        for it in &f.items.fns {
            if it.is_test {
                continue;
            }
            let id = g.nodes.len();
            g.by_name.entry(it.name.clone()).or_default().push(id);
            if let Some(ty) = &it.self_ty {
                g.by_ty_name
                    .entry((ty.clone(), it.name.clone()))
                    .or_default()
                    .push(id);
            }
            g.nodes.push(FnNode {
                id,
                file: fi,
                name: it.name.clone(),
                self_ty: it.self_ty.clone(),
                krate: f.krate.to_string(),
                path: f.path.to_string(),
                line: it.line,
                body: it.body,
            });
        }
    }
    g.edges = vec![Vec::new(); g.nodes.len()];
    g
}

impl Graph {
    /// Resolves one call site from `caller` and records the edges.
    /// `calls` must come from the caller's body token range.
    pub fn add_calls(&mut self, caller: usize, calls: &[Call]) {
        let mut resolved: Vec<(usize, u32)> = Vec::new();
        for call in calls {
            self.resolve(caller, call, &mut resolved);
        }
        resolved.sort_unstable();
        resolved.dedup_by_key(|(id, _)| *id);
        self.edges[caller] = resolved;
    }

    fn resolve(&self, caller: usize, call: &Call, out: &mut Vec<(usize, u32)>) {
        let node = &self.nodes[caller];
        match call {
            Call::Method { recv, name, line } => match recv {
                Recv::SelfDirect => {
                    if let Some(ty) = &node.self_ty {
                        if let Some(ids) = self.by_ty_name.get(&(ty.clone(), name.clone())) {
                            out.extend(ids.iter().map(|&id| (id, *line)));
                            return;
                        }
                    }
                    self.name_wide_method(name, *line, out);
                }
                Recv::SelfField(field) => {
                    if let Some(ty) = &node.self_ty {
                        if let Some(tys) = self.field_ty.get(&(ty.clone(), field.clone())) {
                            // First type ident that owns a matching
                            // method wins (skips wrappers like Vec<…>).
                            for t in tys {
                                if let Some(ids) = self.by_ty_name.get(&(t.clone(), name.clone())) {
                                    out.extend(ids.iter().map(|&id| (id, *line)));
                                    return;
                                }
                            }
                        }
                    }
                    self.name_wide_method(name, *line, out);
                }
                Recv::Other => self.name_wide_method(name, *line, out),
            },
            Call::Path { qual, name, line } => {
                if let Some(q) = qual {
                    if let Some(ids) = self.by_ty_name.get(&(q.clone(), name.clone())) {
                        out.extend(ids.iter().map(|&id| (id, *line)));
                        return;
                    }
                    if q.starts_with(char::is_uppercase) {
                        // Foreign type (`Vec::new`, `Instant::now`):
                        // no workspace callee; taint rules scan the
                        // call site token-wise instead.
                        return;
                    }
                    // Module-qualified: prefer candidates whose crate
                    // or file stem matches the qualifier.
                    if let Some(ids) = self.by_name.get(name) {
                        let near: Vec<usize> = ids
                            .iter()
                            .copied()
                            .filter(|&id| {
                                let n = &self.nodes[id];
                                n.krate == *q
                                    || n.path.ends_with(&format!("/{q}.rs"))
                                    || n.path.ends_with(&format!("/{q}/mod.rs"))
                            })
                            .collect();
                        let pick = if near.is_empty() { ids.clone() } else { near };
                        out.extend(pick.into_iter().map(|id| (id, *line)));
                    }
                }
                // Bare call: prefer same-file free functions.
                else if let Some(ids) = self.by_name.get(name) {
                    let same_file: Vec<usize> = ids
                        .iter()
                        .copied()
                        .filter(|&id| self.nodes[id].file == node.file)
                        .collect();
                    let free: Vec<usize> = ids
                        .iter()
                        .copied()
                        .filter(|&id| self.nodes[id].self_ty.is_none())
                        .collect();
                    let pick = if !same_file.is_empty() {
                        same_file
                    } else if !free.is_empty() {
                        free
                    } else {
                        ids.clone()
                    };
                    out.extend(pick.into_iter().map(|id| (id, *line)));
                }
            }
        }
    }

    /// Name-wide method fallback: every workspace method of that name,
    /// unless the name is overwhelmingly a std method.
    fn name_wide_method(&self, name: &str, line: u32, out: &mut Vec<(usize, u32)>) {
        if STD_METHODS.binary_search(&name).is_ok() {
            return;
        }
        if let Some(ids) = self.by_name.get(name) {
            out.extend(
                ids.iter()
                    .filter(|&&id| self.nodes[id].self_ty.is_some())
                    .map(|&id| (id, line)),
            );
        }
    }

    /// All node ids whose `(self_ty, name)` matches `ty::name`.
    pub fn ids_for(&self, ty: &str, name: &str) -> Option<&[usize]> {
        self.by_ty_name
            .get(&(ty.to_string(), name.to_string()))
            .map(Vec::as_slice)
    }

    /// All node ids with the given bare name.
    pub fn ids_named(&self, name: &str) -> Option<&[usize]> {
        self.by_name.get(name).map(Vec::as_slice)
    }

    /// Renders the subgraph induced by `keep` (node ids) as Graphviz
    /// DOT, clustered by crate. Used by `--graph-dot`.
    pub fn to_dot(&self, keep: &[bool]) -> String {
        use std::fmt::Write as _;
        let mut s =
            String::from("digraph simlint {\n  rankdir=LR;\n  node [shape=box, fontsize=10];\n");
        let mut by_crate: Vec<(String, Vec<usize>)> = Vec::new();
        for n in &self.nodes {
            if !keep.get(n.id).copied().unwrap_or(false) {
                continue;
            }
            match by_crate.iter_mut().find(|(k, _)| *k == n.krate) {
                Some((_, v)) => v.push(n.id),
                None => by_crate.push((n.krate.clone(), vec![n.id])),
            }
        }
        by_crate.sort_by(|a, b| a.0.cmp(&b.0));
        for (krate, ids) in &by_crate {
            let _ = writeln!(s, "  subgraph \"cluster_{krate}\" {{");
            let _ = writeln!(s, "    label=\"{krate}\";");
            for &id in ids {
                let _ = writeln!(s, "    n{id} [label=\"{}\"];", self.nodes[id].label());
            }
            s.push_str("  }\n");
        }
        for (from, outs) in self.edges.iter().enumerate() {
            if !keep.get(from).copied().unwrap_or(false) {
                continue;
            }
            for &(to, _) in outs {
                if keep.get(to).copied().unwrap_or(false) {
                    let _ = writeln!(s, "  n{from} -> n{to};");
                }
            }
        }
        s.push_str("}\n");
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::items::{extract_calls, parse_items};
    use crate::lexer::{lex, test_spans};

    fn build_ws(srcs: &[(&str, &str, &str)]) -> (Graph, Vec<crate::lexer::Lexed>) {
        let lexed: Vec<_> = srcs.iter().map(|(_, _, s)| lex(s)).collect();
        let items: Vec<_> = lexed
            .iter()
            .map(|lx| parse_items(&lx.tokens, &test_spans(&lx.tokens)))
            .collect();
        let inputs: Vec<FileInput<'_>> = srcs
            .iter()
            .zip(&items)
            .map(|((path, krate, _), it)| FileInput {
                path,
                krate,
                items: it,
            })
            .collect();
        let mut g = build(&inputs);
        for id in 0..g.nodes.len() {
            let n = &g.nodes[id];
            let (file, body) = (n.file, n.body);
            if let Some(body) = body {
                let calls = extract_calls(&lexed[file].tokens, body);
                g.add_calls(id, &calls);
            }
        }
        (g, lexed)
    }

    fn edge(g: &Graph, from: &str, to: &str) -> bool {
        let f = g.nodes.iter().find(|n| n.label() == from).unwrap();
        let t = g.nodes.iter().find(|n| n.label() == to).unwrap();
        g.edges[f.id].iter().any(|&(id, _)| id == t.id)
    }

    #[test]
    fn self_calls_resolve_to_own_impl_only() {
        let (g, _) = build_ws(&[
            (
                "crates/a/src/lib.rs",
                "a",
                "impl A { fn go(&self) { self.step(); } fn step(&self) {} }",
            ),
            (
                "crates/b/src/lib.rs",
                "b",
                "impl B { fn step(&self) { wall(); } } fn wall() {}",
            ),
        ]);
        assert!(edge(&g, "A::go", "A::step"));
        assert!(!edge(&g, "A::go", "B::step"));
    }

    #[test]
    fn field_typed_calls_resolve_through_struct_def() {
        let (g, _) = build_ws(&[(
            "crates/a/src/lib.rs",
            "a",
            "struct Eng { clock: Clock }\n\
             impl Eng { fn tick(&self) { self.clock.now(); } }\n\
             impl Clock { fn now(&self) {} }\n\
             impl Other { fn now(&self) {} }",
        )]);
        assert!(edge(&g, "Eng::tick", "Clock::now"));
        assert!(!edge(&g, "Eng::tick", "Other::now"));
    }

    #[test]
    fn foreign_uppercase_qualifier_yields_no_edge() {
        let (g, _) = build_ws(&[(
            "crates/a/src/lib.rs",
            "a",
            "fn new() {} fn go() { let v = Vec::new(); Inner::new(); }\n\
             impl Inner { fn new() {} }",
        )]);
        // `Vec::new` must not edge to the workspace free `fn new`,
        // but `Inner::new` resolves exactly.
        let go = g.nodes.iter().find(|n| n.label() == "go").unwrap();
        let callees: Vec<String> = g.edges[go.id]
            .iter()
            .map(|&(id, _)| g.nodes[id].label())
            .collect();
        assert_eq!(callees, vec!["Inner::new"]);
    }

    #[test]
    fn std_method_names_do_not_resolve_name_wide() {
        let (g, _) = build_ws(&[(
            "crates/a/src/lib.rs",
            "a",
            "impl Log { fn push(&mut self, b: u8) {} }\n\
             impl Eng { fn go(&mut self, v: &mut Vec<u8>) { v.push(1); } }",
        )]);
        assert!(!edge(&g, "Eng::go", "Log::push"));
    }

    #[test]
    fn module_qualified_prefers_matching_file() {
        let (g, _) = build_ws(&[
            ("crates/core/src/wire.rs", "core", "pub fn decode_u64() {}"),
            ("crates/b/src/other.rs", "b", "pub fn decode_u64() {}"),
            (
                "crates/core/src/mw.rs",
                "core",
                "fn handle() { wire::decode_u64(); }",
            ),
        ]);
        let h = g.nodes.iter().find(|n| n.label() == "handle").unwrap();
        let callees: Vec<&str> = g.edges[h.id]
            .iter()
            .map(|&(id, _)| g.nodes[id].path.as_str())
            .collect();
        assert_eq!(callees, vec!["crates/core/src/wire.rs"]);
    }

    #[test]
    fn test_functions_are_excluded() {
        let (g, _) = build_ws(&[(
            "crates/a/src/lib.rs",
            "a",
            "fn real() {}\n#[cfg(test)]\nmod tests { fn helper() { super::real(); } }",
        )]);
        assert_eq!(g.nodes.len(), 1);
        assert_eq!(g.nodes[0].name, "real");
    }
}
