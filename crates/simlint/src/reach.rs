//! Root declarations and BFS reachability with provenance.
//!
//! `simlint.toml` declares entry points under `[roots]`; patterns come
//! in three shapes:
//!
//! * `Type::name` — an exact method (e.g. `Replica::on_message`);
//! * `name` — a bare function name, matched workspace-wide;
//! * a trailing `*` glob on the final segment — `decode_*` matches any
//!   function whose name starts with `decode_`, `Engine::*` matches
//!   every `Engine` method.
//!
//! A pattern that matches no workspace function is reported as a
//! *stale root* — exactly like a stale waiver — so deleting or
//! renaming an entry point cannot silently shrink the lint wall.

use std::collections::VecDeque;

use crate::graph::Graph;

/// The outcome of matching a root pattern set against the graph.
#[derive(Debug, Default)]
pub struct Roots {
    /// Matched node ids, deduplicated.
    pub ids: Vec<usize>,
    /// Patterns that matched nothing (stale roots).
    pub unmatched: Vec<String>,
}

/// Matches `patterns` against the graph.
pub fn match_roots(graph: &Graph, patterns: &[String]) -> Roots {
    let mut out = Roots::default();
    for pat in patterns {
        let before = out.ids.len();
        let (ty, name) = match pat.split_once("::") {
            Some((t, n)) => (Some(t), n),
            None => (None, pat.as_str()),
        };
        let glob = name.strip_suffix('*');
        for node in &graph.nodes {
            let name_ok = match glob {
                Some(prefix) => node.name.starts_with(prefix),
                None => node.name == name,
            };
            let ty_ok = match ty {
                Some(t) => node.self_ty.as_deref() == Some(t),
                None => true,
            };
            if name_ok && ty_ok {
                out.ids.push(node.id);
            }
        }
        if out.ids.len() == before {
            out.unmatched.push(pat.clone());
        }
    }
    out.ids.sort_unstable();
    out.ids.dedup();
    out
}

/// BFS parent pointers: `parents[n] = Some((caller, call line))` for
/// every reachable non-root `n`; roots get `Some((n, 0))`.
pub type Parents = Vec<Option<(usize, u32)>>;

/// Computes the set reachable from `roots` over `graph.edges`.
pub fn reachable(graph: &Graph, roots: &[usize]) -> Parents {
    let mut parents: Parents = vec![None; graph.nodes.len()];
    let mut q = VecDeque::new();
    for &r in roots {
        if parents[r].is_none() {
            parents[r] = Some((r, 0));
            q.push_back(r);
        }
    }
    while let Some(n) = q.pop_front() {
        for &(callee, line) in &graph.edges[n] {
            if parents[callee].is_none() {
                parents[callee] = Some((n, line));
                q.push_back(callee);
            }
        }
    }
    parents
}

/// The call chain from a root down to `node`, rendered as
/// `label (path:line)` strings, root first. Empty if unreachable.
pub fn chain(graph: &Graph, parents: &Parents, node: usize) -> Vec<String> {
    let mut rev = Vec::new();
    let mut cur = node;
    loop {
        let Some((parent, _)) = parents[cur] else {
            return Vec::new();
        };
        let n = &graph.nodes[cur];
        rev.push(format!("{} ({}:{})", n.label(), n.path, n.line));
        if parent == cur {
            break;
        }
        cur = parent;
        if rev.len() > graph.nodes.len() {
            break; // defensive: malformed parent pointers
        }
    }
    rev.reverse();
    rev
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{build, FileInput};
    use crate::items::{extract_calls, parse_items};
    use crate::lexer::{lex, test_spans};

    fn graph_of(src: &str) -> Graph {
        let lx = lex(src);
        let items = parse_items(&lx.tokens, &test_spans(&lx.tokens));
        let mut g = build(&[FileInput {
            path: "crates/a/src/lib.rs",
            krate: "a",
            items: &items,
        }]);
        for id in 0..g.nodes.len() {
            if let Some(body) = g.nodes[id].body {
                let calls = extract_calls(&lx.tokens, body);
                g.add_calls(id, &calls);
            }
        }
        g
    }

    const SRC: &str = "
impl Replica {
    fn on_message(&mut self) { self.advance(); }
    fn advance(&mut self) { leak_time(); }
}
fn leak_time() {}
fn unrelated() {}
fn decode_u64() {}
fn decode_frame() { decode_u64(); }
";

    #[test]
    fn exact_bare_and_glob_patterns() {
        let g = graph_of(SRC);
        let r = match_roots(
            &g,
            &[
                "Replica::on_message".into(),
                "decode_*".into(),
                "Ghost::gone".into(),
            ],
        );
        let names: Vec<String> = r.ids.iter().map(|&i| g.nodes[i].label()).collect();
        assert_eq!(
            names,
            vec!["Replica::on_message", "decode_u64", "decode_frame"]
        );
        assert_eq!(r.unmatched, vec!["Ghost::gone"]);
    }

    #[test]
    fn reachability_and_chain() {
        let g = graph_of(SRC);
        let roots = match_roots(&g, &["Replica::on_message".into()]);
        let parents = reachable(&g, &roots.ids);
        let leak = g.nodes.iter().find(|n| n.name == "leak_time").unwrap().id;
        let unrel = g.nodes.iter().find(|n| n.name == "unrelated").unwrap().id;
        assert!(parents[leak].is_some());
        assert!(parents[unrel].is_none());
        let c = chain(&g, &parents, leak);
        assert_eq!(c.len(), 3);
        assert!(c[0].starts_with("Replica::on_message"));
        assert!(c[1].starts_with("Replica::advance"));
        assert!(c[2].starts_with("leak_time"));
        assert!(chain(&g, &parents, unrel).is_empty());
    }

    #[test]
    fn glob_on_methods() {
        let g = graph_of(SRC);
        let r = match_roots(&g, &["Replica::*".into()]);
        assert_eq!(r.ids.len(), 2);
        assert!(r.unmatched.is_empty());
    }
}
