//! A self-contained Rust lexer for token-level static analysis.
//!
//! Produces a token stream with exact (line, column) spans plus a side
//! list of comments (for inline waiver detection). Strings, raw strings,
//! byte strings, char literals, and lifetimes are recognized so that
//! rule patterns never fire inside literals or doc comments. The lexer
//! does not build an AST — rules in [`crate::rules`] work over token
//! windows, which is sufficient for the invariants simlint enforces and
//! keeps the analyzer dependency-free (the build environment is offline,
//! so `syn` is not available).

/// Kind of a lexed token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`HashMap`, `fn`, `self`, …).
    Ident(String),
    /// Numeric literal (value text preserved, suffix included).
    Number(String),
    /// String/char/byte literal (contents dropped; only the span matters).
    Literal,
    /// Lifetime such as `'a`.
    Lifetime,
    /// Operator or punctuation, possibly multi-character (`::`, `+=`, `->`).
    Punct(&'static str),
    /// Single punctuation character not in the multi-char table.
    Char(char),
}

/// One token with its source position (1-based line and column) and
/// the byte offset of its first character in the source.
#[derive(Debug, Clone)]
pub struct Token {
    pub kind: TokKind,
    pub line: u32,
    pub col: u32,
    pub byte: u32,
}

impl Token {
    /// The identifier text, if this token is an identifier.
    pub fn ident(&self) -> Option<&str> {
        match &self.kind {
            TokKind::Ident(s) => Some(s),
            _ => None,
        }
    }

    /// Whether this token is the exact punctuation `p`.
    pub fn is_punct(&self, p: &str) -> bool {
        match &self.kind {
            TokKind::Punct(s) => *s == p,
            TokKind::Char(c) => p.len() == 1 && p.starts_with(*c),
            _ => false,
        }
    }
}

/// A comment with its starting line (text excludes the `//` / `/*` markers).
#[derive(Debug, Clone)]
pub struct Comment {
    pub line: u32,
    pub text: String,
}

/// Lexer output: the token stream plus all comments.
#[derive(Debug, Default)]
pub struct Lexed {
    pub tokens: Vec<Token>,
    pub comments: Vec<Comment>,
}

const MULTI_PUNCT: &[&str] = &[
    "..=", "<<=", ">>=", "::", "->", "=>", "..", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=",
    "<<", ">>", "&&", "||", "==", "!=", "<=", ">=",
];

/// Lexes `src` into tokens and comments. Never fails: unterminated
/// constructs are consumed to end-of-file (good enough for analysis —
/// such files will not compile anyway).
pub fn lex(src: &str) -> Lexed {
    let bytes: Vec<char> = src.chars().collect();
    let mut out = Lexed::default();
    let mut i = 0usize;
    let mut line: u32 = 1;
    let mut col: u32 = 1;
    let mut byte: u32 = 0;

    // Advances over one char, tracking line/col/byte.
    macro_rules! bump {
        () => {{
            byte += bytes[i].len_utf8() as u32;
            if bytes[i] == '\n' {
                line += 1;
                col = 1;
            } else {
                col += 1;
            }
            i += 1;
        }};
    }

    while i < bytes.len() {
        let c = bytes[i];
        let (tline, tcol, tbyte) = (line, col, byte);

        // Whitespace.
        if c.is_whitespace() {
            bump!();
            continue;
        }

        // Line comment.
        if c == '/' && bytes.get(i + 1) == Some(&'/') {
            let start = i + 2;
            let mut j = start;
            while j < bytes.len() && bytes[j] != '\n' {
                j += 1;
            }
            out.comments.push(Comment {
                line: tline,
                text: bytes[start..j].iter().collect(),
            });
            while i < j {
                bump!();
            }
            continue;
        }

        // Block comment (nested).
        if c == '/' && bytes.get(i + 1) == Some(&'*') {
            let start = i + 2;
            let mut depth = 1;
            let mut j = start;
            while j < bytes.len() && depth > 0 {
                if bytes[j] == '/' && bytes.get(j + 1) == Some(&'*') {
                    depth += 1;
                    j += 2;
                } else if bytes[j] == '*' && bytes.get(j + 1) == Some(&'/') {
                    depth -= 1;
                    j += 2;
                } else {
                    j += 1;
                }
            }
            let end_text = j.saturating_sub(2).max(start);
            out.comments.push(Comment {
                line: tline,
                text: bytes[start..end_text].iter().collect(),
            });
            while i < j.min(bytes.len()) {
                bump!();
            }
            continue;
        }

        // Raw strings: r"..." / r#"..."# / br#"..."#, any number of #s.
        if (c == 'r' || c == 'b') && is_raw_string_start(&bytes, i) {
            let mut j = i;
            if bytes[j] == 'b' {
                j += 1;
            }
            j += 1; // past 'r'
            let mut hashes = 0;
            while bytes.get(j) == Some(&'#') {
                hashes += 1;
                j += 1;
            }
            j += 1; // past opening quote
            loop {
                match bytes.get(j) {
                    None => break,
                    Some('"') => {
                        let mut k = j + 1;
                        let mut seen = 0;
                        while seen < hashes && bytes.get(k) == Some(&'#') {
                            seen += 1;
                            k += 1;
                        }
                        if seen == hashes {
                            j = k;
                            break;
                        }
                        j += 1;
                    }
                    Some(_) => j += 1,
                }
            }
            out.tokens.push(Token {
                kind: TokKind::Literal,
                line: tline,
                col: tcol,
                byte: tbyte,
            });
            while i < j.min(bytes.len()) {
                bump!();
            }
            continue;
        }

        // Plain and byte strings.
        if c == '"' || (c == 'b' && bytes.get(i + 1) == Some(&'"')) {
            let mut j = if c == 'b' { i + 2 } else { i + 1 };
            loop {
                match bytes.get(j) {
                    None => break,
                    Some('\\') => j += 2,
                    Some('"') => {
                        j += 1;
                        break;
                    }
                    Some(_) => j += 1,
                }
            }
            out.tokens.push(Token {
                kind: TokKind::Literal,
                line: tline,
                col: tcol,
                byte: tbyte,
            });
            while i < j.min(bytes.len()) {
                bump!();
            }
            continue;
        }

        // Char literal vs lifetime.
        if c == '\'' {
            let next = bytes.get(i + 1).copied();
            let is_char = match next {
                Some('\\') => true,
                // 'x' is a char literal iff a closing quote follows the
                // ident run; otherwise it is a lifetime.
                Some(n) if n != '\'' && (n.is_alphanumeric() || n == '_') => {
                    let mut j = i + 1;
                    while bytes
                        .get(j)
                        .is_some_and(|ch| ch.is_alphanumeric() || *ch == '_')
                    {
                        j += 1;
                    }
                    bytes.get(j) == Some(&'\'')
                }
                // e.g. '(' — only valid as a char literal.
                _ => true,
            };
            if is_char {
                let mut j = i + 1;
                loop {
                    match bytes.get(j) {
                        None => break,
                        Some('\\') => j += 2,
                        Some('\'') => {
                            j += 1;
                            break;
                        }
                        Some(_) => j += 1,
                    }
                }
                out.tokens.push(Token {
                    kind: TokKind::Literal,
                    line: tline,
                    col: tcol,
                    byte: tbyte,
                });
                while i < j.min(bytes.len()) {
                    bump!();
                }
            } else {
                let mut j = i + 1;
                while bytes
                    .get(j)
                    .is_some_and(|ch| ch.is_alphanumeric() || *ch == '_')
                {
                    j += 1;
                }
                out.tokens.push(Token {
                    kind: TokKind::Lifetime,
                    line: tline,
                    col: tcol,
                    byte: tbyte,
                });
                while i < j {
                    bump!();
                }
            }
            continue;
        }

        // Identifier / keyword.
        if c.is_alphabetic() || c == '_' {
            let mut j = i;
            while bytes
                .get(j)
                .is_some_and(|ch| ch.is_alphanumeric() || *ch == '_')
            {
                j += 1;
            }
            out.tokens.push(Token {
                kind: TokKind::Ident(bytes[i..j].iter().collect()),
                line: tline,
                col: tcol,
                byte: tbyte,
            });
            while i < j {
                bump!();
            }
            continue;
        }

        // Number.
        if c.is_ascii_digit() {
            let mut j = i;
            while bytes
                .get(j)
                .is_some_and(|ch| ch.is_alphanumeric() || *ch == '_' || *ch == '.')
            {
                // Stop a trailing `..` range from being eaten into the number.
                if *ch_at(&bytes, j) == '.' && bytes.get(j + 1) == Some(&'.') {
                    break;
                }
                j += 1;
            }
            out.tokens.push(Token {
                kind: TokKind::Number(bytes[i..j].iter().collect()),
                line: tline,
                col: tcol,
                byte: tbyte,
            });
            while i < j {
                bump!();
            }
            continue;
        }

        // Multi-char punctuation.
        let mut matched = None;
        for p in MULTI_PUNCT {
            let pc: Vec<char> = p.chars().collect();
            if bytes[i..].starts_with(&pc) {
                matched = Some(*p);
                break;
            }
        }
        if let Some(p) = matched {
            out.tokens.push(Token {
                kind: TokKind::Punct(p),
                line: tline,
                col: tcol,
                byte: tbyte,
            });
            for _ in 0..p.len() {
                bump!();
            }
            continue;
        }

        out.tokens.push(Token {
            kind: TokKind::Char(c),
            line: tline,
            col: tcol,
            byte: tbyte,
        });
        bump!();
    }

    out
}

fn ch_at(bytes: &[char], j: usize) -> &char {
    &bytes[j]
}

fn is_raw_string_start(bytes: &[char], i: usize) -> bool {
    let mut j = i;
    if bytes[j] == 'b' {
        j += 1;
        if bytes.get(j) != Some(&'r') {
            return false;
        }
    }
    if bytes.get(j) != Some(&'r') {
        return false;
    }
    j += 1;
    while bytes.get(j) == Some(&'#') {
        j += 1;
    }
    bytes.get(j) == Some(&'"')
}

/// Index of the `}` matching the `{` at `open` (or the last token if the
/// stream ends unbalanced). Tracks nested brace depth over the full token
/// stream — strings, chars, and comments are already opaque at this layer,
/// so every brace token is structural.
pub fn match_brace(tokens: &[Token], open: usize) -> usize {
    let mut d = 0i64;
    for (n, t) in tokens.iter().enumerate().skip(open) {
        if t.is_punct("{") {
            d += 1;
        } else if t.is_punct("}") {
            d -= 1;
            if d == 0 {
                return n;
            }
        }
    }
    tokens.len().saturating_sub(1)
}

/// Whether the attribute body tokens `start..end` (between `#[` and the
/// matching `]`) restrict the item to test builds.
///
/// True for `#[test]` and for `#[cfg(...)]` conditions where `test`
/// appears *outside* any `not(...)`. `#[cfg(not(test))]` is the exact
/// opposite of test-only code and must NOT be exempted — the old
/// implementation treated any `test` token under `cfg` as an exemption
/// and silently leaked it onto code that only compiles in non-test
/// builds.
fn attr_is_test(tokens: &[Token], start: usize, end: usize) -> bool {
    let first = tokens.get(start).and_then(|t| t.ident());
    match first {
        Some("test") => true,
        Some("cfg") => {
            // Walk the condition tracking parenthesis depth and the
            // depths at which a `not(` scope opened.
            let mut depth = 0u32;
            let mut not_depths: Vec<u32> = Vec::new();
            let mut k = start + 1;
            while k < end {
                let t = &tokens[k];
                if t.is_punct("(") {
                    depth += 1;
                } else if t.is_punct(")") {
                    if not_depths.last() == Some(&depth) {
                        not_depths.pop();
                    }
                    depth = depth.saturating_sub(1);
                } else if let Some(id) = t.ident() {
                    if id == "not" && tokens.get(k + 1).is_some_and(|n| n.is_punct("(")) {
                        not_depths.push(depth + 1);
                    } else if id == "test" && not_depths.is_empty() {
                        return true;
                    }
                }
                k += 1;
            }
            false
        }
        _ => false,
    }
}

/// Line spans (inclusive) of test-only code: items annotated with
/// `#[cfg(test)]` or `#[test]`, including everything inside their braces
/// (nested modules, closures, and inner items track brace depth exactly).
/// Rules skip diagnostics inside these spans — test code may freely
/// unwrap, print, and use wall-clock time.
pub fn test_spans(tokens: &[Token]) -> Vec<(u32, u32)> {
    let mut spans = Vec::new();
    let mut idx = 0;
    while idx < tokens.len() {
        if tokens[idx].is_punct("#") && tokens.get(idx + 1).is_some_and(|t| t.is_punct("[")) {
            // Collect the attribute's tokens up to the matching `]`.
            let attr_start = idx + 2;
            let mut j = attr_start;
            let mut depth = 1;
            while j < tokens.len() && depth > 0 {
                if tokens[j].is_punct("[") {
                    depth += 1;
                } else if tokens[j].is_punct("]") {
                    depth -= 1;
                }
                j += 1;
            }
            // `j` is now one past the closing `]`; the body is
            // `attr_start..j-1`.
            if attr_is_test(tokens, attr_start, j.saturating_sub(1)) {
                // Skip any further attributes, then span the next item.
                let mut k = j;
                while k < tokens.len()
                    && tokens[k].is_punct("#")
                    && tokens.get(k + 1).is_some_and(|t| t.is_punct("["))
                {
                    let mut d = 0;
                    k += 1;
                    loop {
                        if k >= tokens.len() {
                            break;
                        }
                        if tokens[k].is_punct("[") {
                            d += 1;
                        } else if tokens[k].is_punct("]") {
                            d -= 1;
                            if d == 0 {
                                k += 1;
                                break;
                            }
                        }
                        k += 1;
                    }
                }
                // Find the item's opening brace (or a terminating `;` for
                // brace-less items like `mod tests;`).
                let mut open = None;
                while k < tokens.len() {
                    if tokens[k].is_punct("{") {
                        open = Some(k);
                        break;
                    }
                    if tokens[k].is_punct(";") {
                        break;
                    }
                    k += 1;
                }
                if let Some(open_idx) = open {
                    let end = match_brace(tokens, open_idx);
                    spans.push((tokens[idx].line, tokens[end].line));
                    idx = end + 1;
                    continue;
                }
            }
            idx = j;
            continue;
        }
        idx += 1;
    }
    spans
}

/// Whether `line` falls inside any of `spans`.
pub fn in_spans(spans: &[(u32, u32)], line: u32) -> bool {
    spans.iter().any(|(a, b)| line >= *a && line <= *b)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strings_and_comments_are_opaque() {
        let lx = lex(r##"let s = "HashMap"; // HashMap in comment
let r = r#"Instant::now()"#; /* SystemTime */ let x = 1;"##);
        let idents: Vec<_> = lx.tokens.iter().filter_map(|t| t.ident()).collect();
        assert!(!idents.contains(&"HashMap"));
        assert!(!idents.contains(&"Instant"));
        assert!(!idents.contains(&"SystemTime"));
        assert_eq!(lx.comments.len(), 2);
        assert!(lx.comments[0].text.contains("HashMap"));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let lx = lex("fn f<'a>(x: &'a str) -> char { 'x' }");
        let lifetimes = lx
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Lifetime)
            .count();
        let chars = lx
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Literal)
            .count();
        assert_eq!(lifetimes, 2);
        assert_eq!(chars, 1);
    }

    #[test]
    fn multi_char_punct_and_spans() {
        let lx = lex("a += 1;\nb -> c;");
        assert!(lx.tokens.iter().any(|t| t.is_punct("+=")));
        assert!(lx.tokens.iter().any(|t| t.is_punct("->")));
        let arrow = lx.tokens.iter().find(|t| t.is_punct("->")).unwrap();
        assert_eq!(arrow.line, 2);
    }

    #[test]
    fn cfg_test_spans_cover_module() {
        let src = "fn real() {}\n#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); }\n}\nfn after() {}\n";
        let lx = lex(src);
        let spans = test_spans(&lx.tokens);
        assert_eq!(spans.len(), 1);
        assert!(in_spans(&spans, 4));
        assert!(!in_spans(&spans, 1));
        assert!(!in_spans(&spans, 6));
    }

    #[test]
    fn test_attr_fn_span() {
        let src = "#[test]\nfn t() { a.unwrap(); }\nfn real() {}\n";
        let lx = lex(src);
        let spans = test_spans(&lx.tokens);
        assert!(in_spans(&spans, 2));
        assert!(!in_spans(&spans, 3));
    }

    #[test]
    fn cfg_not_test_is_not_a_test_span() {
        let src = "#[cfg(feature = \"x\")]\nfn real() { a.unwrap(); }\n";
        let lx = lex(src);
        assert!(test_spans(&lx.tokens).is_empty());
    }

    #[test]
    fn cfg_not_test_is_never_exempt() {
        // Regression: the old span logic treated any `test` ident under
        // `#[cfg(...)]` as an exemption, so `#[cfg(not(test))]` items —
        // code that only compiles OUTSIDE tests — were silently skipped.
        let src = "#[cfg(not(test))]\nfn real() { a.unwrap(); }\n";
        let lx = lex(src);
        assert!(test_spans(&lx.tokens).is_empty());
    }

    #[test]
    fn cfg_any_with_not_still_sees_bare_test() {
        let src = "#[cfg(any(not(feature_x), test))]\nmod tests { fn t() {} }\n";
        let lx = lex(src);
        assert_eq!(test_spans(&lx.tokens).len(), 1);
    }

    #[test]
    fn nested_modules_and_closures_end_exactly_at_block_close() {
        // Regression: the exemption must stop at the `mod tests` closing
        // brace even when the block nests modules, closures, and match
        // arms; the item after it is NOT exempt.
        let src = "\
#[cfg(test)]
mod tests {
    mod inner {
        fn t() {
            let f = |x: u64| { x + 1 };
            match f(1) { 2 => {} _ => {} }
        }
    }
    fn u() { let g = || { () }; g() }
}
fn after() {}
";
        let lx = lex(src);
        let spans = test_spans(&lx.tokens);
        assert_eq!(spans, vec![(1, 10)]);
        assert!(in_spans(&spans, 6));
        assert!(!in_spans(&spans, 11));
    }

    #[test]
    fn byte_offsets_are_strictly_monotone() {
        let src = "fn f() { let s = \"αβγ\"; s.len() + 1 }";
        let lx = lex(src);
        for w in lx.tokens.windows(2) {
            assert!(w[0].byte < w[1].byte);
        }
        assert_eq!(lx.tokens[0].byte, 0);
    }

    #[test]
    fn raw_string_with_hashes() {
        let lx = lex(r###"let x = r##"quote " inside"##; let y = 2;"###);
        let nums = lx
            .tokens
            .iter()
            .filter(|t| matches!(t.kind, TokKind::Number(_)))
            .count();
        assert_eq!(nums, 1);
    }
}
