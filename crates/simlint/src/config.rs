//! Configuration: root declarations, `simlint.toml` waivers, and inline
//! allow comments.
//!
//! The `[roots]` table declares the workspace entry points the
//! transitive rules traverse from (see [`crate::reach`] for pattern
//! syntax):
//!
//! ```toml
//! [roots]
//! sim      = ["Engine::dispatch", "Middleware::on_tick"]
//! protocol = ["Replica::on_message", "decode_*"]
//! ```
//!
//! Two waiver channels, both requiring a written justification:
//!
//! 1. Inline, next to the code: `// simlint: allow(rule): reason` on the
//!    flagged line or the line directly above it.
//! 2. Central, in `simlint.toml` at the workspace root:
//!
//!    ```toml
//!    [[waiver]]
//!    rule = "sim-taint"
//!    path = "crates/core/src/runtime.rs"   # whole file …
//!    line = 295                            # … or one line (optional)
//!    reason = "LocalCluster is the real-thread runtime, not sim-reachable"
//!    ```
//!
//! Waivers that no longer match any diagnostic are *stale* and are
//! themselves reported as errors, so the allowlist can only shrink as
//! code is fixed — it cannot silently rot. Root patterns that match no
//! workspace function are reported the same way.

use crate::lexer::Comment;

/// One `[[waiver]]` entry from `simlint.toml`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Waiver {
    pub rule: String,
    pub path: String,
    /// When `Some`, the waiver covers only this line; otherwise the file.
    pub line: Option<u32>,
    pub reason: String,
    /// Line in `simlint.toml` where this entry starts (for stale reports).
    pub decl_line: u32,
}

/// Parse failure for `simlint.toml`.
#[derive(Debug)]
pub struct ConfigError {
    pub line: u32,
    pub message: String,
}

/// Full parsed `simlint.toml`.
#[derive(Debug, Default)]
pub struct Config {
    pub waivers: Vec<Waiver>,
    /// `[roots] sim = […]`: entry points of simulated execution
    /// (determinism wall — `sim-taint`).
    pub sim_roots: Vec<String>,
    /// `[roots] protocol = […]`: protocol step / codec entry points
    /// (panic wall — `panic-taint`).
    pub protocol_roots: Vec<String>,
}

/// Parses the minimal TOML subset used by `simlint.toml`: a `[roots]`
/// table with string-array values (multi-line arrays supported) and
/// `[[waiver]]` tables with `key = "string"` / `key = integer` pairs;
/// `#` comments anywhere.
pub fn parse_config(src: &str) -> Result<Config, ConfigError> {
    enum Section {
        None,
        Waiver,
        Roots,
    }
    let mut cfg = Config::default();
    let mut section = Section::None;
    let mut current: Option<Waiver> = None;
    // Multi-line array accumulation for [roots] keys.
    let mut pending: Option<(String, String, u32)> = None; // (key, text, line)

    for (idx, raw) in src.lines().enumerate() {
        let lineno = idx as u32 + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if let Some((key, text, decl)) = pending.as_mut() {
            let chunk = strip_comment(line);
            text.push_str(&chunk);
            if chunk.contains(']') {
                let (key, text, decl) = (key.clone(), text.clone(), *decl);
                pending = None;
                set_root_key(&mut cfg, &key, &text, decl)?;
            }
            continue;
        }
        if line == "[[waiver]]" {
            if let Some(w) = current.take() {
                finish(w, &mut cfg.waivers)?;
            }
            section = Section::Waiver;
            current = Some(Waiver {
                rule: String::new(),
                path: String::new(),
                line: None,
                reason: String::new(),
                decl_line: lineno,
            });
            continue;
        }
        if line == "[roots]" {
            if let Some(w) = current.take() {
                finish(w, &mut cfg.waivers)?;
            }
            section = Section::Roots;
            continue;
        }
        if line.starts_with('[') {
            return Err(ConfigError {
                line: lineno,
                message: format!("unknown table {line}; only [roots] and [[waiver]] are supported"),
            });
        }
        let Some((key, value)) = line.split_once('=') else {
            return Err(ConfigError {
                line: lineno,
                message: format!("expected `key = value`, got {line:?}"),
            });
        };
        let key = key.trim();
        // Strip trailing same-line comments outside strings.
        let value = strip_comment(value.trim());
        match section {
            Section::Roots => {
                if !value.starts_with('[') {
                    return Err(ConfigError {
                        line: lineno,
                        message: format!("[roots] {key} must be a string array, got {value:?}"),
                    });
                }
                if value.contains(']') {
                    set_root_key(&mut cfg, key, &value, lineno)?;
                } else {
                    pending = Some((key.to_string(), value, lineno));
                }
            }
            Section::Waiver => {
                let w = current.as_mut().expect("waiver section implies a table");
                match key {
                    "rule" => w.rule = unquote(&value, lineno)?,
                    "path" => w.path = unquote(&value, lineno)?,
                    "reason" => w.reason = unquote(&value, lineno)?,
                    "line" => {
                        w.line = Some(value.parse().map_err(|_| ConfigError {
                            line: lineno,
                            message: format!("line must be an integer, got {value:?}"),
                        })?)
                    }
                    other => {
                        return Err(ConfigError {
                            line: lineno,
                            message: format!("unknown waiver key {other:?}"),
                        })
                    }
                }
            }
            Section::None => {
                return Err(ConfigError {
                    line: lineno,
                    message: "key outside a [roots] or [[waiver]] table".into(),
                });
            }
        }
    }
    if let Some((key, _, decl)) = pending {
        return Err(ConfigError {
            line: decl,
            message: format!("unterminated array for [roots] {key}"),
        });
    }
    if let Some(w) = current.take() {
        finish(w, &mut cfg.waivers)?;
    }
    Ok(cfg)
}

/// Splits an accumulated `[ "a", "b" ]` array body into unquoted
/// strings and stores it under the `[roots]` key.
fn set_root_key(cfg: &mut Config, key: &str, text: &str, lineno: u32) -> Result<(), ConfigError> {
    let inner = text
        .trim()
        .strip_prefix('[')
        .and_then(|t| t.strip_suffix(']'))
        .ok_or_else(|| ConfigError {
            line: lineno,
            message: format!("[roots] {key} must be a `[ … ]` array"),
        })?;
    let mut items = Vec::new();
    for part in inner.split(',') {
        let part = part.trim();
        if part.is_empty() {
            continue;
        }
        items.push(unquote(part, lineno)?);
    }
    match key {
        "sim" => cfg.sim_roots = items,
        "protocol" => cfg.protocol_roots = items,
        other => {
            return Err(ConfigError {
                line: lineno,
                message: format!("unknown [roots] key {other:?} (expected `sim` or `protocol`)"),
            })
        }
    }
    Ok(())
}

/// Back-compat helper: parses just the waivers.
pub fn parse_waivers(src: &str) -> Result<Vec<Waiver>, ConfigError> {
    parse_config(src).map(|c| c.waivers)
}

fn finish(w: Waiver, out: &mut Vec<Waiver>) -> Result<(), ConfigError> {
    if w.rule.is_empty() || w.path.is_empty() {
        return Err(ConfigError {
            line: w.decl_line,
            message: "waiver requires both `rule` and `path`".into(),
        });
    }
    if w.reason.trim().len() < 8 {
        return Err(ConfigError {
            line: w.decl_line,
            message: format!(
                "waiver for {} at {} needs a written justification (reason >= 8 chars)",
                w.rule, w.path
            ),
        });
    }
    out.push(w);
    Ok(())
}

fn strip_comment(v: &str) -> String {
    let mut in_str = false;
    let mut out = String::new();
    let mut chars = v.chars().peekable();
    while let Some(c) = chars.next() {
        match c {
            '"' => {
                in_str = !in_str;
                out.push(c);
            }
            '\\' if in_str => {
                out.push(c);
                if let Some(n) = chars.next() {
                    out.push(n);
                }
            }
            '#' if !in_str => break,
            c => out.push(c),
        }
    }
    out.trim().to_string()
}

fn unquote(v: &str, lineno: u32) -> Result<String, ConfigError> {
    let v = v.trim();
    if v.len() >= 2 && v.starts_with('"') && v.ends_with('"') {
        Ok(v[1..v.len() - 1]
            .replace("\\\"", "\"")
            .replace("\\\\", "\\"))
    } else {
        Err(ConfigError {
            line: lineno,
            message: format!("expected a quoted string, got {v}"),
        })
    }
}

/// An inline `// simlint: allow(rule, …): reason` comment.
#[derive(Debug, Clone)]
pub struct InlineAllow {
    pub line: u32,
    pub rules: Vec<String>,
    pub reason: String,
}

/// Extracts inline allow directives from a file's comments.
///
/// Grammar: `simlint: allow(rule[, rule…])` followed by `:` or `--` and a
/// justification. Directives missing a justification are returned with an
/// empty `reason`; the driver rejects them.
pub fn inline_allows(comments: &[Comment]) -> Vec<InlineAllow> {
    let mut out = Vec::new();
    for c in comments {
        let text = c.text.trim();
        let Some(pos) = text.find("simlint:") else {
            continue;
        };
        let rest = text[pos + "simlint:".len()..].trim_start();
        let Some(rest) = rest.strip_prefix("allow") else {
            continue;
        };
        let rest = rest.trim_start();
        let Some(rest) = rest.strip_prefix('(') else {
            continue;
        };
        let Some(close) = rest.find(')') else {
            continue;
        };
        let rules: Vec<String> = rest[..close]
            .split(',')
            .map(|r| r.trim().to_string())
            .filter(|r| !r.is_empty())
            .collect();
        let tail = rest[close + 1..].trim_start();
        let reason = tail
            .strip_prefix(':')
            .or_else(|| tail.strip_prefix("--"))
            .map(|r| r.trim().to_string())
            .unwrap_or_default();
        out.push(InlineAllow {
            line: c.line,
            rules,
            reason,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    #[test]
    fn parses_waiver_tables() {
        let src = r#"
# central allowlist
[[waiver]]
rule = "wall-clock"
path = "crates/core/src/runtime.rs"
reason = "threaded runtime is not sim-reachable"

[[waiver]]
rule = "hash-order"
path = "crates/tpcw/src/population.rs"
line = 328  # process-global cache
reason = "cache keyed by params; never iterated"
"#;
        let ws = parse_waivers(src).unwrap();
        assert_eq!(ws.len(), 2);
        assert_eq!(ws[0].rule, "wall-clock");
        assert_eq!(ws[0].line, None);
        assert_eq!(ws[1].line, Some(328));
    }

    #[test]
    fn parses_roots_single_and_multi_line() {
        let src = r#"
[roots]
sim = ["Engine::dispatch", "Middleware::on_tick"]  # inline
protocol = [
    "Replica::on_message",
    "decode_*",  # codec glob
]

[[waiver]]
rule = "state-growth"
path = "crates/core/src/log.rs"
reason = "compacted by snapshot task"
"#;
        let cfg = parse_config(src).unwrap();
        assert_eq!(
            cfg.sim_roots,
            vec!["Engine::dispatch", "Middleware::on_tick"]
        );
        assert_eq!(cfg.protocol_roots, vec!["Replica::on_message", "decode_*"]);
        assert_eq!(cfg.waivers.len(), 1);
    }

    #[test]
    fn rejects_unknown_roots_key_and_unterminated_array() {
        assert!(parse_config("[roots]\nfoo = [\"x\"]\n").is_err());
        assert!(parse_config("[roots]\nsim = [\n\"x\",\n").is_err());
    }

    #[test]
    fn rejects_missing_reason() {
        let src = "[[waiver]]\nrule = \"x\"\npath = \"y\"\nreason = \"no\"\n";
        assert!(parse_waivers(src).is_err());
    }

    #[test]
    fn rejects_unquoted_and_unknown_keys() {
        assert!(parse_waivers("[[waiver]]\nrule = wall-clock\n").is_err());
        assert!(parse_waivers(
            "[[waiver]]\nrule = \"r\"\npath = \"p\"\nreason = \"long enough\"\nfoo = \"bar\"\n"
        )
        .is_err());
    }

    #[test]
    fn inline_allow_with_reason() {
        let lx = lex("let t = now(); // simlint: allow(wall-clock): bench-only timer\n");
        let allows = inline_allows(&lx.comments);
        assert_eq!(allows.len(), 1);
        assert_eq!(allows[0].rules, vec!["wall-clock"]);
        assert_eq!(allows[0].reason, "bench-only timer");
    }

    #[test]
    fn inline_allow_without_reason_is_flagged_empty() {
        let lx = lex("x(); // simlint: allow(panic-path)\n");
        let allows = inline_allows(&lx.comments);
        assert_eq!(allows.len(), 1);
        assert!(allows[0].reason.is_empty());
    }

    #[test]
    fn multi_rule_allow() {
        let lx = lex("// simlint: allow(hash-order, wall-clock) -- fixture exercising both\n");
        let a = inline_allows(&lx.comments);
        assert_eq!(a[0].rules.len(), 2);
    }
}
