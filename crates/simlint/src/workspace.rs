//! Workspace enumeration and the analysis driver: scan files, run rules,
//! apply waivers, detect stale waivers, build the report.

use std::fs;
use std::path::{Path, PathBuf};

use crate::config::{inline_allows, parse_waivers, ConfigError};
use crate::diag::Diagnostic;
use crate::lexer::lex;
use crate::rules::{check_file, is_known_rule, FileCtx};

/// A waiver that matched nothing (or is malformed) — itself an error.
#[derive(Debug, Clone)]
pub struct StaleWaiver {
    /// Where the waiver is declared (`simlint.toml:12` or `file.rs:34`).
    pub declared_at: String,
    pub rule: String,
    pub message: String,
}

/// Full analysis result for one run.
#[derive(Debug, Default)]
pub struct Report {
    /// Unwaived violations (cause a non-zero exit).
    pub errors: Vec<Diagnostic>,
    /// Violations suppressed by a waiver, with the justification.
    pub waived: Vec<(Diagnostic, String)>,
    /// Stale or malformed waivers (also cause a non-zero exit).
    pub stale: Vec<StaleWaiver>,
    pub files_scanned: usize,
}

impl Report {
    /// Whether the run should exit non-zero.
    pub fn failed(&self) -> bool {
        !self.errors.is_empty() || !self.stale.is_empty()
    }
}

/// Collects the `.rs` files simlint analyzes: `src/**` of the root
/// package and every `crates/*` member. Excluded: vendored `shims/`,
/// `target/`, integration `tests/`, `examples/`, fixture corpora.
pub fn collect_files(root: &Path) -> Vec<PathBuf> {
    let mut files = Vec::new();
    let mut roots = vec![root.join("src")];
    if let Ok(entries) = fs::read_dir(root.join("crates")) {
        let mut members: Vec<PathBuf> = entries
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            // simlint's own sources document the waiver syntax and rule
            // patterns in prose; it is a host-side tool, never part of
            // the simulation, so it is not scanned.
            .filter(|p| p.file_name().is_none_or(|n| n != "simlint"))
            .map(|p| p.join("src"))
            .collect();
        members.sort();
        roots.extend(members);
    }
    for r in roots {
        walk(&r, &mut files);
    }
    files.sort();
    files
}

fn walk(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = fs::read_dir(dir) else {
        return;
    };
    let mut entries: Vec<_> = entries.filter_map(|e| e.ok()).map(|e| e.path()).collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            walk(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

/// Derives the crate name from a repo-relative path:
/// `crates/<name>/src/…` → `<name>`, root `src/…` → `"."`.
pub fn crate_of(rel: &str) -> &str {
    if let Some(rest) = rel.strip_prefix("crates/") {
        rest.split('/').next().unwrap_or(".")
    } else {
        "."
    }
}

/// Runs the full analysis over `root`, applying waivers from
/// `waiver_src` (the contents of `simlint.toml`, empty string if absent).
pub fn analyze(root: &Path, waiver_src: &str) -> Result<Report, ConfigError> {
    let waivers = parse_waivers(waiver_src)?;
    for w in &waivers {
        if !is_known_rule(&w.rule) {
            return Err(ConfigError {
                line: w.decl_line,
                message: format!("waiver names unknown rule {:?}", w.rule),
            });
        }
    }
    let files = collect_files(root);
    let mut report = Report::default();
    let mut waiver_hits = vec![0usize; waivers.len()];

    for path in &files {
        let rel = rel_path(root, path);
        let Ok(src) = fs::read_to_string(path) else {
            continue;
        };
        report.files_scanned += 1;
        let lexed = lex(&src);
        let diags = check_file(
            &FileCtx {
                rel_path: &rel,
                crate_name: crate_of(&rel),
                src: &src,
            },
            &lexed,
        );
        let allows = inline_allows(&lexed.comments);

        // Track inline allow usage for stale detection.
        let mut allow_hits = vec![0usize; allows.len()];
        for (ai, a) in allows.iter().enumerate() {
            for r in &a.rules {
                if !is_known_rule(r) {
                    report.stale.push(StaleWaiver {
                        declared_at: format!("{rel}:{}", a.line),
                        rule: r.clone(),
                        message: format!("inline allow names unknown rule {r:?}"),
                    });
                }
            }
            if a.reason.trim().len() < 8 {
                report.stale.push(StaleWaiver {
                    declared_at: format!("{rel}:{}", a.line),
                    rule: a.rules.join(","),
                    message: "inline allow needs a written justification \
                              (`// simlint: allow(rule): why`)"
                        .into(),
                });
                // Do not let an unjustified allow suppress anything.
                allow_hits[ai] = usize::MAX;
            }
        }

        'diag: for d in diags {
            // Inline allows cover the flagged line and the line below the
            // comment (comment-above style).
            for (ai, a) in allows.iter().enumerate() {
                if allow_hits[ai] == usize::MAX {
                    continue;
                }
                if (a.line == d.line || a.line + 1 == d.line) && a.rules.iter().any(|r| r == d.rule)
                {
                    allow_hits[ai] += 1;
                    report.waived.push((d, a.reason.clone()));
                    continue 'diag;
                }
            }
            // Central waivers.
            for (wi, w) in waivers.iter().enumerate() {
                if w.rule == d.rule && w.path == d.path && w.line.is_none_or(|l| l == d.line) {
                    waiver_hits[wi] += 1;
                    report.waived.push((d, w.reason.clone()));
                    continue 'diag;
                }
            }
            report.errors.push(d);
        }

        for (ai, a) in allows.iter().enumerate() {
            if allow_hits[ai] == 0 {
                report.stale.push(StaleWaiver {
                    declared_at: format!("{rel}:{}", a.line),
                    rule: a.rules.join(","),
                    message: "inline allow matches no diagnostic — remove it (stale waiver)".into(),
                });
            }
        }
    }

    for (wi, w) in waivers.iter().enumerate() {
        if waiver_hits[wi] == 0 {
            let exists = root.join(&w.path).exists();
            report.stale.push(StaleWaiver {
                declared_at: format!("simlint.toml:{}", w.decl_line),
                rule: w.rule.clone(),
                message: if exists {
                    format!(
                        "waiver for {} at {} matches no diagnostic — remove it (stale waiver)",
                        w.rule, w.path
                    )
                } else {
                    format!("waiver points at missing file {}", w.path)
                },
            });
        }
    }

    Ok(report)
}

/// Repo-relative path with forward slashes.
pub fn rel_path(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .to_string_lossy()
        .replace('\\', "/")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crate_of_paths() {
        assert_eq!(crate_of("crates/paxos/src/replica.rs"), "paxos");
        assert_eq!(crate_of("src/lib.rs"), ".");
    }
}
