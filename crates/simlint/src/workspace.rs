//! Workspace enumeration and the analysis driver: scan files, build the
//! call graph, run file-scoped and transitive rules, apply waivers,
//! detect stale waivers and stale roots, build the report.

use std::fs;
use std::path::{Path, PathBuf};

use crate::config::{inline_allows, parse_config, Config, ConfigError};
use crate::diag::Diagnostic;
use crate::graph::{build, FileInput};
use crate::items::{extract_calls, parse_items};
use crate::lexer::{lex, test_spans};
use crate::reach::{match_roots, reachable};
use crate::rules::{check_file, check_graph, is_known_rule, FileCtx, FileData, GraphCtx};

/// A waiver or root pattern that matched nothing (or is malformed) —
/// itself an error.
#[derive(Debug, Clone)]
pub struct StaleWaiver {
    /// Where it is declared (`simlint.toml:12` or `file.rs:34`).
    pub declared_at: String,
    pub rule: String,
    pub message: String,
}

/// Call-graph statistics for the report.
#[derive(Debug, Default, Clone, Copy)]
pub struct GraphStats {
    pub functions: usize,
    pub edges: usize,
    pub sim_roots: usize,
    pub sim_reachable: usize,
    pub protocol_roots: usize,
    pub protocol_reachable: usize,
}

/// Full analysis result for one run.
#[derive(Debug, Default)]
pub struct Report {
    /// Unwaived violations (cause a non-zero exit).
    pub errors: Vec<Diagnostic>,
    /// Violations suppressed by a waiver, with the justification.
    pub waived: Vec<(Diagnostic, String)>,
    /// Stale or malformed waivers and stale root patterns (also cause a
    /// non-zero exit — code 3 when they are the *only* failure).
    pub stale: Vec<StaleWaiver>,
    pub files_scanned: usize,
    pub stats: GraphStats,
    /// Graphviz DOT of the root-reachable subgraph (for `--graph-dot`).
    pub dot: String,
}

impl Report {
    /// Whether the run should exit non-zero.
    pub fn failed(&self) -> bool {
        !self.errors.is_empty() || !self.stale.is_empty()
    }

    /// Whether the *only* failure is staleness (dedicated exit code 3,
    /// so CI can distinguish "code is dirty" from "allowlist rotted").
    pub fn stale_only(&self) -> bool {
        self.errors.is_empty() && !self.stale.is_empty()
    }
}

/// Collects the `.rs` files simlint analyzes: `src/**` of the root
/// package and every `crates/*` member. Excluded: vendored `shims/`,
/// `target/`, integration `tests/`, `examples/`, fixture corpora.
pub fn collect_files(root: &Path) -> Vec<PathBuf> {
    let mut files = Vec::new();
    let mut roots = vec![root.join("src")];
    if let Ok(entries) = fs::read_dir(root.join("crates")) {
        let mut members: Vec<PathBuf> = entries
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            // simlint's own sources document the waiver syntax and rule
            // patterns in prose; it is a host-side tool, never part of
            // the simulation, so it is not scanned.
            .filter(|p| p.file_name().is_none_or(|n| n != "simlint"))
            .map(|p| p.join("src"))
            .collect();
        members.sort();
        roots.extend(members);
    }
    for r in roots {
        walk(&r, &mut files);
    }
    files.sort();
    files
}

fn walk(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = fs::read_dir(dir) else {
        return;
    };
    let mut entries: Vec<_> = entries.filter_map(|e| e.ok()).map(|e| e.path()).collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            walk(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

/// Derives the crate name from a repo-relative path:
/// `crates/<name>/src/…` → `<name>`, root `src/…` → `"."`.
pub fn crate_of(rel: &str) -> &str {
    if let Some(rest) = rel.strip_prefix("crates/") {
        rest.split('/').next().unwrap_or(".")
    } else {
        "."
    }
}

/// Runs the full analysis over `root`, applying configuration from
/// `config_src` (the contents of `simlint.toml`, empty string if absent).
pub fn analyze(root: &Path, config_src: &str) -> Result<Report, ConfigError> {
    let cfg = parse_config(config_src)?;
    for w in &cfg.waivers {
        if !is_known_rule(&w.rule) {
            return Err(ConfigError {
                line: w.decl_line,
                message: format!("waiver names unknown rule {:?}", w.rule),
            });
        }
    }

    // Load every file once: lex, test spans, items.
    let mut data: Vec<FileData> = Vec::new();
    for path in collect_files(root) {
        let rel = rel_path(root, &path);
        let Ok(src) = fs::read_to_string(&path) else {
            continue;
        };
        let lexed = lex(&src);
        let spans = test_spans(&lexed.tokens);
        let items = parse_items(&lexed.tokens, &spans);
        data.push(FileData {
            krate: crate_of(&rel).to_string(),
            rel,
            src,
            lexed,
            items,
        });
    }
    Ok(analyze_sources(&data, &cfg))
}

/// Runs the analysis over pre-loaded sources (shared by [`analyze`] and
/// the in-memory fixture tests).
pub fn analyze_sources(data: &[FileData], cfg: &Config) -> Report {
    let mut report = Report {
        files_scanned: data.len(),
        ..Report::default()
    };

    // --- call graph + reachability --------------------------------------
    let inputs: Vec<FileInput<'_>> = data
        .iter()
        .map(|f| FileInput {
            path: &f.rel,
            krate: &f.krate,
            items: &f.items,
        })
        .collect();
    let mut graph = build(&inputs);
    for id in 0..graph.nodes.len() {
        let (file, body) = (graph.nodes[id].file, graph.nodes[id].body);
        if let Some(body) = body {
            let calls = extract_calls(&data[file].lexed.tokens, body);
            graph.add_calls(id, &calls);
        }
    }
    let sim_roots = match_roots(&graph, &cfg.sim_roots);
    let protocol_roots = match_roots(&graph, &cfg.protocol_roots);
    for (set, pat) in sim_roots
        .unmatched
        .iter()
        .map(|p| ("sim", p))
        .chain(protocol_roots.unmatched.iter().map(|p| ("protocol", p)))
    {
        report.stale.push(StaleWaiver {
            declared_at: format!("simlint.toml [roots] {set}"),
            rule: "roots".into(),
            message: format!(
                "root pattern {pat:?} matches no workspace function — the lint wall \
                 silently shrank (fix the pattern or remove it)"
            ),
        });
    }
    let sim = reachable(&graph, &sim_roots.ids);
    let protocol = reachable(&graph, &protocol_roots.ids);
    report.stats = GraphStats {
        functions: graph.nodes.len(),
        edges: graph.edges.iter().map(Vec::len).sum(),
        sim_roots: sim_roots.ids.len(),
        sim_reachable: sim.iter().filter(|p| p.is_some()).count(),
        protocol_roots: protocol_roots.ids.len(),
        protocol_reachable: protocol.iter().filter(|p| p.is_some()).count(),
    };
    let keep: Vec<bool> = (0..graph.nodes.len())
        .map(|i| sim[i].is_some() || protocol[i].is_some())
        .collect();
    report.dot = graph.to_dot(&keep);

    // --- run rules -------------------------------------------------------
    let mut per_file: Vec<Vec<Diagnostic>> = data
        .iter()
        .map(|f| {
            check_file(
                &FileCtx {
                    rel_path: &f.rel,
                    crate_name: &f.krate,
                    src: &f.src,
                },
                &f.lexed,
            )
        })
        .collect();
    let transitive = check_graph(&GraphCtx {
        files: data,
        graph: &graph,
        sim_roots: &sim_roots.ids,
        sim: &sim,
        protocol_roots: &protocol_roots.ids,
        protocol: &protocol,
    });
    for d in transitive {
        if let Some(fi) = data.iter().position(|f| f.rel == d.path) {
            per_file[fi].push(d);
        }
    }
    for diags in &mut per_file {
        diags.sort_by(|a, b| (a.line, a.col, a.rule).cmp(&(b.line, b.col, b.rule)));
    }

    // --- waivers ---------------------------------------------------------
    let mut waiver_hits = vec![0usize; cfg.waivers.len()];
    for (f, diags) in data.iter().zip(per_file) {
        let rel = &f.rel;
        let allows = inline_allows(&f.lexed.comments);

        // Track inline allow usage for stale detection.
        let mut allow_hits = vec![0usize; allows.len()];
        for (ai, a) in allows.iter().enumerate() {
            for r in &a.rules {
                if !is_known_rule(r) {
                    report.stale.push(StaleWaiver {
                        declared_at: format!("{rel}:{}", a.line),
                        rule: r.clone(),
                        message: format!("inline allow names unknown rule {r:?}"),
                    });
                }
            }
            if a.reason.trim().len() < 8 {
                report.stale.push(StaleWaiver {
                    declared_at: format!("{rel}:{}", a.line),
                    rule: a.rules.join(","),
                    message: "inline allow needs a written justification \
                              (`// simlint: allow(rule): why`)"
                        .into(),
                });
                // Do not let an unjustified allow suppress anything.
                allow_hits[ai] = usize::MAX;
            }
        }

        'diag: for d in diags {
            // Inline allows cover the flagged line and the line below the
            // comment (comment-above style).
            for (ai, a) in allows.iter().enumerate() {
                if allow_hits[ai] == usize::MAX {
                    continue;
                }
                if (a.line == d.line || a.line + 1 == d.line) && a.rules.iter().any(|r| r == d.rule)
                {
                    allow_hits[ai] += 1;
                    report.waived.push((d, a.reason.clone()));
                    continue 'diag;
                }
            }
            // Central waivers.
            for (wi, w) in cfg.waivers.iter().enumerate() {
                if w.rule == d.rule && w.path == d.path && w.line.is_none_or(|l| l == d.line) {
                    waiver_hits[wi] += 1;
                    report.waived.push((d, w.reason.clone()));
                    continue 'diag;
                }
            }
            report.errors.push(d);
        }

        for (ai, a) in allows.iter().enumerate() {
            if allow_hits[ai] == 0 {
                report.stale.push(StaleWaiver {
                    declared_at: format!("{rel}:{}", a.line),
                    rule: a.rules.join(","),
                    message: "inline allow matches no diagnostic — remove it (stale waiver)".into(),
                });
            }
        }
    }

    for (wi, w) in cfg.waivers.iter().enumerate() {
        if waiver_hits[wi] == 0 {
            let exists = data.iter().any(|f| f.rel == w.path);
            report.stale.push(StaleWaiver {
                declared_at: format!("simlint.toml:{}", w.decl_line),
                rule: w.rule.clone(),
                message: if exists {
                    format!(
                        "waiver for {} at {} matches no diagnostic — remove it (stale waiver)",
                        w.rule, w.path
                    )
                } else {
                    format!("waiver points at missing file {}", w.path)
                },
            });
        }
    }

    // Keep the report deterministic regardless of rule execution order.
    report
        .errors
        .sort_by(|a, b| (&a.path, a.line, a.col, a.rule).cmp(&(&b.path, b.line, b.col, b.rule)));
    report
}

/// Repo-relative path with forward slashes.
pub fn rel_path(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .to_string_lossy()
        .replace('\\', "/")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crate_of_paths() {
        assert_eq!(crate_of("crates/paxos/src/replica.rs"), "paxos");
        assert_eq!(crate_of("src/lib.rs"), ".");
    }
}
