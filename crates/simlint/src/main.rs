//! CLI driver for simlint.
//!
//! ```text
//! cargo run -p simlint                       # human-readable diagnostics
//! cargo run -p simlint -- --json -           # JSON report to stdout
//! cargo run -p simlint -- --json out.json    # JSON report to a file
//! cargo run -p simlint -- --graph-dot g.dot  # root-reachable call graph
//! cargo run -p simlint -- --root DIR         # analyze another tree
//! cargo run -p simlint -- --list-rules       # enumerate rules
//! ```
//!
//! Exit codes: 0 clean, 1 unwaived violations, 2 usage or
//! configuration error, 3 stale waivers/roots only (the code is clean
//! but the allowlist or `[roots]` section rotted).

use std::path::PathBuf;
use std::process::ExitCode;

use simlint::{diag, report_to_json, rules, workspace};

struct Args {
    root: PathBuf,
    config: Option<PathBuf>,
    json: Option<String>,
    graph_dot: Option<String>,
    quiet: bool,
    list_rules: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        root: PathBuf::from("."),
        config: None,
        json: None,
        graph_dot: None,
        quiet: false,
        list_rules: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--root" => args.root = PathBuf::from(it.next().ok_or("--root needs a path")?),
            "--config" => {
                args.config = Some(PathBuf::from(it.next().ok_or("--config needs a path")?))
            }
            "--json" => args.json = Some(it.next().ok_or("--json needs a path or `-`")?),
            "--graph-dot" => {
                args.graph_dot = Some(it.next().ok_or("--graph-dot needs a path or `-`")?)
            }
            "--quiet" | "-q" => args.quiet = true,
            "--list-rules" => args.list_rules = true,
            "--help" | "-h" => {
                return Err("usage: simlint [--root DIR] [--config simlint.toml] \
                            [--json PATH|-] [--graph-dot PATH|-] [--quiet] [--list-rules]"
                    .into())
            }
            other => return Err(format!("unknown argument {other:?} (try --help)")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("simlint: {e}");
            return ExitCode::from(2);
        }
    };

    if args.list_rules {
        for r in rules::RULES {
            println!("{:<22} {}", r.name, r.summary);
        }
        return ExitCode::SUCCESS;
    }

    let config_path = args
        .config
        .clone()
        .unwrap_or_else(|| args.root.join("simlint.toml"));
    let waiver_src = match std::fs::read_to_string(&config_path) {
        Ok(s) => s,
        Err(_) if args.config.is_none() => String::new(), // optional by default
        Err(e) => {
            eprintln!("simlint: cannot read {}: {e}", config_path.display());
            return ExitCode::from(2);
        }
    };

    let report = match workspace::analyze(&args.root, &waiver_src) {
        Ok(r) => r,
        Err(e) => {
            eprintln!(
                "simlint: {}:{}: {}",
                config_path.display(),
                e.line,
                e.message
            );
            return ExitCode::from(2);
        }
    };

    if let Some(dest) = &args.json {
        let doc = report_to_json(&report);
        if dest == "-" {
            print!("{doc}");
        } else if let Err(e) = std::fs::write(dest, &doc) {
            eprintln!("simlint: cannot write {dest}: {e}");
            return ExitCode::from(2);
        }
    }

    if let Some(dest) = &args.graph_dot {
        if dest == "-" {
            print!("{}", report.dot);
        } else if let Err(e) = std::fs::write(dest, &report.dot) {
            eprintln!("simlint: cannot write {dest}: {e}");
            return ExitCode::from(2);
        }
    }

    let human_allowed =
        !args.quiet && args.json.as_deref() != Some("-") && args.graph_dot.as_deref() != Some("-");
    if human_allowed {
        for d in &report.errors {
            eprint!("{}", diag::render(d));
            eprintln!();
        }
        for w in &report.stale {
            eprintln!(
                "error[simlint::stale-waiver]: {} ({})",
                w.message, w.declared_at
            );
        }
        eprintln!(
            "simlint: {} files scanned, {} fn(s)/{} edge(s), sim wall {} root(s) → {} \
             reachable, protocol wall {} root(s) → {} reachable",
            report.files_scanned,
            report.stats.functions,
            report.stats.edges,
            report.stats.sim_roots,
            report.stats.sim_reachable,
            report.stats.protocol_roots,
            report.stats.protocol_reachable,
        );
        eprintln!(
            "simlint: {} violation(s), {} waived, {} stale waiver(s)/root(s)",
            report.errors.len(),
            report.waived.len(),
            report.stale.len()
        );
    }

    if report.stale_only() {
        ExitCode::from(3)
    } else if report.failed() {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
