//! The rule set: repo-specific determinism and safety invariants that
//! clippy cannot express.
//!
//! Two rule families:
//!
//! * **File-scoped** (`hash-order`, `io-println`,
//!   `unchecked-slot-arith`) — token patterns scoped by crate role,
//!   exactly as in simlint v1.
//! * **Transitive** (`sim-taint`, `panic-taint`, `state-growth`,
//!   `float-state`, `lossy-cast`) — run over the workspace call graph
//!   ([`crate::graph`]) from the `[roots]` declared in `simlint.toml`.
//!   They replace v1's crate-scoped `wall-clock` rule and the
//!   hardcoded `panic-path` file list: the wall now follows the *call
//!   structure*, so a helper in an unscoped file can no longer smuggle
//!   wall-clock or an `unwrap` into a protocol path, and host-side code
//!   (e.g. a real TCP backend) needs no waiver as long as it is not
//!   reachable from a sim root.

use std::collections::BTreeMap;

use crate::diag::Diagnostic;
use crate::graph::Graph;
use crate::items::FileItems;
use crate::lexer::{in_spans, test_spans, Lexed, TokKind, Token};
use crate::reach::{chain, Parents};

/// Crates whose state or iteration order is visible to the simulation:
/// a hash-ordered container here can silently break same-seed replay.
pub const SIM_STATE_CRATES: &[&str] = &["paxos", "core", "cluster", "simnet"];

/// Identifier fragments that mark consensus-ordinal arithmetic.
const ORDINAL_NAMES: &[&str] = &["slot", "watermark", "generation"];

/// Identifier fragments that mark consensus ordinals for `lossy-cast`
/// (wider than [`ORDINAL_NAMES`]: ballots and epochs are compared, not
/// incremented, so arithmetic on them is rare but narrowing is fatal).
const CAST_ORDINAL_NAMES: &[&str] = &["slot", "ballot", "epoch", "watermark", "generation"];

/// Cast targets that can truncate a u64 ordinal.
const NARROW_TARGETS: &[&str] = &["f32", "f64", "i16", "i32", "i8", "u16", "u32", "u8"];

/// Collection type heads whose unbounded growth `state-growth` tracks.
const COLLECTIONS: &[&str] = &[
    "BTreeMap",
    "BTreeSet",
    "BinaryHeap",
    "HashMap",
    "HashSet",
    "String",
    "Vec",
    "VecDeque",
];

/// Smart-pointer / cell wrappers looked through when classifying a
/// field's type (`Option<Vec<…>>` is still a `Vec` field).
const WRAPPERS: &[&str] = &[
    "Arc", "Box", "Cell", "Mutex", "Option", "Rc", "RefCell", "RwLock",
];

/// Methods that add entries to a collection.
const GROW_METHODS: &[&str] = &[
    "append",
    "entry",
    "extend",
    "insert",
    "or_default",
    "or_insert",
    "or_insert_with",
    "push",
    "push_back",
    "push_front",
    "push_str",
    "resize",
];

/// Methods that remove entries (any one of these anywhere in the
/// workspace clears the field from `state-growth`).
const SHRINK_METHODS: &[&str] = &[
    "clear",
    "dedup",
    "drain",
    "pop",
    "pop_back",
    "pop_first",
    "pop_front",
    "pop_last",
    "remove",
    "remove_entry",
    "retain",
    "split_off",
    "swap_remove",
    "take",
    "truncate",
];

/// Metadata for one rule.
pub struct RuleInfo {
    pub name: &'static str,
    pub summary: &'static str,
}

/// All rules, in reporting order.
pub const RULES: &[RuleInfo] = &[
    RuleInfo {
        name: "hash-order",
        summary: "no std HashMap/HashSet in sim-visible crates (paxos, core, cluster, simnet)",
    },
    RuleInfo {
        name: "sim-taint",
        summary:
            "nothing reachable from a [roots] sim entry may touch wall-clock/entropy/env/threads",
    },
    RuleInfo {
        name: "panic-taint",
        summary: "nothing reachable from a [roots] protocol entry may unwrap/expect/panic!/index",
    },
    RuleInfo {
        name: "state-growth",
        summary: "root-held collections need a remove/clear/truncate/drain site somewhere",
    },
    RuleInfo {
        name: "float-state",
        summary: "no f32/f64 fields in root-held consensus state structs",
    },
    RuleInfo {
        name: "lossy-cast",
        summary: "no `as` narrowing of slot/ballot/epoch ordinals on root-reachable paths",
    },
    RuleInfo {
        name: "io-println",
        summary: "no raw println!/eprintln! in library crates (use obs or the bench Console)",
    },
    RuleInfo {
        name: "unchecked-slot-arith",
        summary: "slot/watermark/generation arithmetic must use checked or saturating ops",
    },
];

/// Whether `name` is a known rule slug.
pub fn is_known_rule(name: &str) -> bool {
    RULES.iter().any(|r| r.name == name)
}

const HELP_HASH_ORDER: &str = "use BTreeMap/BTreeSet (or a vendored IndexMap) so iteration order \
     is deterministic across runs; waive with `// simlint: allow(hash-order): <why>` only for \
     state that is provably never iterated";
const HELP_SIM_TAINT: &str = "take time from the simnet clock handle and randomness from the \
     seeded simnet RNG; if this function is genuinely host-side, break the call edge from the \
     sim roots or add a simlint.toml waiver with the reason";
const HELP_PANIC_TAINT: &str = "route the failure through a typed error event so the invariant \
     auditor observes it; use get()/checked access instead of indexing";
const HELP_STATE_GROWTH: &str = "add a compaction/GC path (remove/clear/truncate/drain) or bound \
     the collection; a root-held collection that only grows leaks across million-event runs and \
     skews the paper's recovery-time measurements";
const HELP_FLOAT_STATE: &str = "floats in replicated state break cross-platform determinism and \
     have no total order; store integer fixed-point (e.g. micros as u64) instead";
const HELP_LOSSY_CAST: &str = "use u64 end-to-end or an explicit try_into with error handling; \
     silently truncating an ordinal corrupts consensus ordering after 2^32 slots";
const HELP_IO_PRINTLN: &str = "emit through obs trace/metrics or the bench Console; raw stdout \
     from library code corrupts --json output and bypasses --quiet";
const HELP_SLOT_ARITH: &str = "use checked_add/checked_sub/saturating_sub so ordinal overflow \
     or underflow is an explicit decision, not a silent wrap (or debug panic)";

/// Context for a single file scan.
pub struct FileCtx<'a> {
    /// Repo-relative path with forward slashes.
    pub rel_path: &'a str,
    /// Crate name derived from the path (`core`, `paxos`, …), or the
    /// root package marker `"."`.
    pub crate_name: &'a str,
    /// Raw source, for snippets.
    pub src: &'a str,
}

fn snippet_of(src: &str, line: u32) -> String {
    src.lines()
        .nth(line.saturating_sub(1) as usize)
        .map(|s| s.to_string())
        .unwrap_or_default()
}

/// Runs the file-scoped rules over one lexed file. Test spans
/// (`#[cfg(test)]`, `#[test]`) are exempt from all rules.
pub fn check_file(ctx: &FileCtx<'_>, lexed: &Lexed) -> Vec<Diagnostic> {
    let spans = test_spans(&lexed.tokens);
    let mut out = Vec::new();
    let toks = &lexed.tokens;

    let in_bin = ctx.rel_path.contains("/bin/");
    let hash_scope = SIM_STATE_CRATES.contains(&ctx.crate_name);
    let println_scope = ctx.crate_name != "bench" && ctx.crate_name != "simlint" && !in_bin;
    let arith_scope = SIM_STATE_CRATES.contains(&ctx.crate_name);

    // Spans of `impl … Slot/Watermark …` blocks: inside them, `self`
    // arithmetic counts as ordinal arithmetic even though the receiver
    // is spelled `self.0`.
    let ordinal_impls = ordinal_impl_spans(toks);

    for (i, t) in toks.iter().enumerate() {
        if in_spans(&spans, t.line) {
            continue;
        }

        // --- hash-order ---------------------------------------------------
        if hash_scope {
            if let Some(id) = t.ident() {
                if id == "HashMap" || id == "HashSet" {
                    out.push(Diagnostic {
                        rule: "hash-order",
                        path: ctx.rel_path.to_string(),
                        line: t.line,
                        col: t.col,
                        message: format!(
                            "`{id}` in sim-visible crate `{}`: hash iteration order varies \
                             across runs and breaks same-seed determinism",
                            ctx.crate_name
                        ),
                        snippet: snippet_of(ctx.src, t.line),
                        help: HELP_HASH_ORDER,
                        chain: Vec::new(),
                    });
                }
            }
        }

        // --- io-println ---------------------------------------------------
        if println_scope {
            if let Some(id) = t.ident() {
                if matches!(id, "println" | "eprintln" | "print" | "eprint" | "dbg")
                    && toks.get(i + 1).is_some_and(|n| n.is_punct("!"))
                {
                    out.push(Diagnostic {
                        rule: "io-println",
                        path: ctx.rel_path.to_string(),
                        line: t.line,
                        col: t.col,
                        message: format!("raw `{id}!` in library crate `{}`", ctx.crate_name),
                        snippet: snippet_of(ctx.src, t.line),
                        help: HELP_IO_PRINTLN,
                        chain: Vec::new(),
                    });
                }
            }
        }

        // --- unchecked-slot-arith ----------------------------------------
        if arith_scope {
            let op = match &t.kind {
                TokKind::Punct(p) if matches!(*p, "+=" | "-=" | "*=") => Some(*p),
                TokKind::Char(c) if matches!(c, '+' | '-' | '*') => Some(match c {
                    '+' => "+",
                    '-' => "-",
                    _ => "*",
                }),
                _ => None,
            };
            if let Some(op) = op {
                // `*` is deref/multiply-ambiguous and `-` can be unary:
                // require an expression terminator on the left so only
                // binary uses are considered.
                let left_end = i.checked_sub(1).map(|j| &toks[j]);
                let left_is_expr = left_end.is_some_and(|p| match &p.kind {
                    TokKind::Ident(id) => !is_keyword(id),
                    TokKind::Number(_) => true,
                    TokKind::Punct(p) => *p == "]",
                    TokKind::Char(c) => *c == ')' || *c == ']',
                    _ => false,
                }) || matches!(op, "+=" | "-=" | "*=");
                if left_is_expr && ordinal_operand(toks, i, &ordinal_impls, t.line) {
                    out.push(Diagnostic {
                        rule: "unchecked-slot-arith",
                        path: ctx.rel_path.to_string(),
                        line: t.line,
                        col: t.col,
                        message: format!(
                            "unchecked `{op}` on slot/watermark/generation ordinal: overflow \
                             wraps in release builds and corrupts consensus ordering"
                        ),
                        snippet: snippet_of(ctx.src, t.line),
                        help: HELP_SLOT_ARITH,
                        chain: Vec::new(),
                    });
                }
            }
        }
    }

    out
}

/// One scanned file, as assembled by the workspace driver.
pub struct FileData {
    /// Repo-relative path with forward slashes.
    pub rel: String,
    pub krate: String,
    pub src: String,
    pub lexed: Lexed,
    pub items: FileItems,
}

/// Inputs to the transitive rules.
pub struct GraphCtx<'a> {
    pub files: &'a [FileData],
    pub graph: &'a Graph,
    /// Root node ids and BFS parents for the sim wall.
    pub sim_roots: &'a [usize],
    pub sim: &'a Parents,
    /// Root node ids and BFS parents for the protocol wall.
    pub protocol_roots: &'a [usize],
    pub protocol: &'a Parents,
}

/// Runs the transitive rules over the workspace graph.
pub fn check_graph(ctx: &GraphCtx<'_>) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    sim_taint(ctx, &mut out);
    panic_taint(ctx, &mut out);
    lossy_cast(ctx, &mut out);
    // state-growth covers everything a root holds (sim infrastructure
    // leaks matter too); float-state is about *replicated* state, so it
    // only covers types held from protocol roots — fault-injection
    // probabilities in sim config structs are inputs, not state.
    let held_all = held_types(ctx, ctx.sim_roots.iter().chain(ctx.protocol_roots));
    let held_protocol = held_types(ctx, ctx.protocol_roots.iter());
    state_growth(ctx, &held_all, &mut out);
    float_state(ctx, &held_protocol, &mut out);
    out
}

/// Body token range iterator helper: yields `(index, token)` strictly
/// inside the braces.
fn body_tokens(toks: &[Token], body: (usize, usize)) -> impl Iterator<Item = (usize, &Token)> {
    let (open, close) = body;
    toks.iter().enumerate().take(close).skip(open + 1)
}

/// `sim-taint`: wall-clock / entropy / env / thread APIs in any
/// function reachable from a sim root.
fn sim_taint(ctx: &GraphCtx<'_>, out: &mut Vec<Diagnostic>) {
    for node in &ctx.graph.nodes {
        if ctx.sim[node.id].is_none() {
            continue;
        }
        let Some(body) = node.body else { continue };
        let f = &ctx.files[node.file];
        let toks = &f.lexed.tokens;
        for (i, t) in body_tokens(toks, body) {
            let Some(id) = t.ident() else { continue };
            let flagged: Option<String> = match id {
                "SystemTime" => Some("`std::time::SystemTime`".into()),
                "Instant" => Some("`std::time::Instant`".into()),
                "thread_rng" | "from_entropy" | "OsRng" | "getrandom" => {
                    Some(format!("OS entropy source `{id}`"))
                }
                "random" if prev_is_path(toks, i, "rand") => Some("`rand::random`".into()),
                "var" | "var_os" | "vars" if prev_is_path(toks, i, "env") => {
                    Some(format!("environment read `env::{id}`"))
                }
                "spawn" | "sleep" | "park" | "yield_now" if prev_is_path(toks, i, "thread") => {
                    Some(format!("thread API `thread::{id}`"))
                }
                "available_parallelism" => Some("`thread::available_parallelism`".into()),
                _ => None,
            };
            if let Some(what) = flagged {
                out.push(Diagnostic {
                    rule: "sim-taint",
                    path: node.path.clone(),
                    line: t.line,
                    col: t.col,
                    message: format!(
                        "{what} in `{}`, which is reachable from a sim root: \
                         nondeterministic input inside the simulation wall",
                        node.label()
                    ),
                    snippet: snippet_of(&f.src, t.line),
                    help: HELP_SIM_TAINT,
                    chain: chain(ctx.graph, ctx.sim, node.id),
                });
            }
        }
    }
}

/// `panic-taint`: unwrap/expect/panic-macros/indexing in any function
/// reachable from a protocol root.
fn panic_taint(ctx: &GraphCtx<'_>, out: &mut Vec<Diagnostic>) {
    for node in &ctx.graph.nodes {
        if ctx.protocol[node.id].is_none() {
            continue;
        }
        let Some(body) = node.body else { continue };
        let f = &ctx.files[node.file];
        let toks = &f.lexed.tokens;
        for (i, t) in body_tokens(toks, body) {
            if let Some(id) = t.ident() {
                // `.unwrap()` / `.expect(`
                if (id == "unwrap" || id == "expect")
                    && i >= 1
                    && toks[i - 1].is_punct(".")
                    && toks.get(i + 1).is_some_and(|n| n.is_punct("("))
                {
                    out.push(Diagnostic {
                        rule: "panic-taint",
                        path: node.path.clone(),
                        line: t.line,
                        col: t.col,
                        message: format!(
                            "`.{id}()` in `{}`, which is reachable from a protocol root: \
                             a panic here kills the replica outside the fault model",
                            node.label()
                        ),
                        snippet: snippet_of(&f.src, t.line),
                        help: HELP_PANIC_TAINT,
                        chain: chain(ctx.graph, ctx.protocol, node.id),
                    });
                }
                // panic-family macros
                if matches!(id, "panic" | "unreachable" | "todo" | "unimplemented")
                    && toks.get(i + 1).is_some_and(|n| n.is_punct("!"))
                {
                    out.push(Diagnostic {
                        rule: "panic-taint",
                        path: node.path.clone(),
                        line: t.line,
                        col: t.col,
                        message: format!(
                            "`{id}!` in `{}`, which is reachable from a protocol root",
                            node.label()
                        ),
                        snippet: snippet_of(&f.src, t.line),
                        help: HELP_PANIC_TAINT,
                        chain: chain(ctx.graph, ctx.protocol, node.id),
                    });
                }
            }
            // Indexing / slicing: `expr[...]` can panic on out-of-range.
            if t.is_punct("[") && i >= 1 {
                let prev = &toks[i - 1];
                let prev_is_expr_end = match &prev.kind {
                    TokKind::Ident(id) => !is_keyword(id),
                    TokKind::Punct(p) => *p == "]",
                    TokKind::Char(c) => *c == ')' || *c == ']' || *c == '?',
                    _ => false,
                };
                if prev_is_expr_end {
                    out.push(Diagnostic {
                        rule: "panic-taint",
                        path: node.path.clone(),
                        line: t.line,
                        col: t.col,
                        message: format!(
                            "index/slice expression in `{}`, which is reachable from a \
                             protocol root: can panic on out-of-range input",
                            node.label()
                        ),
                        snippet: snippet_of(&f.src, t.line),
                        help: HELP_PANIC_TAINT,
                        chain: chain(ctx.graph, ctx.protocol, node.id),
                    });
                }
            }
        }
    }
}

/// `lossy-cast`: `<ordinal> as <narrow>` in any function reachable from
/// either root set.
fn lossy_cast(ctx: &GraphCtx<'_>, out: &mut Vec<Diagnostic>) {
    for node in &ctx.graph.nodes {
        let (parents, _root_kind) = if ctx.sim[node.id].is_some() {
            (ctx.sim, "sim")
        } else if ctx.protocol[node.id].is_some() {
            (ctx.protocol, "protocol")
        } else {
            continue;
        };
        let Some(body) = node.body else { continue };
        let f = &ctx.files[node.file];
        let toks = &f.lexed.tokens;
        for (i, t) in body_tokens(toks, body) {
            if t.ident() != Some("as") {
                continue;
            }
            let Some(target) = toks.get(i + 1).and_then(|n| n.ident()) else {
                continue;
            };
            if !NARROW_TARGETS.contains(&target) {
                continue;
            }
            if let Some(ord) = cast_ordinal_on_left(toks, i) {
                out.push(Diagnostic {
                    rule: "lossy-cast",
                    path: node.path.clone(),
                    line: t.line,
                    col: t.col,
                    message: format!(
                        "`{ord} as {target}` narrows a consensus ordinal in `{}`, which is \
                         reachable from a declared root",
                        node.label()
                    ),
                    snippet: snippet_of(&f.src, t.line),
                    help: HELP_LOSSY_CAST,
                    chain: chain(ctx.graph, parents, node.id),
                });
            }
        }
    }
}

/// Scans the postfix chain left of an `as` token for an ordinal-named
/// identifier (`slot as u32`, `self.ballot.0 as u16`).
fn cast_ordinal_on_left(toks: &[Token], as_idx: usize) -> Option<String> {
    let mut j = as_idx;
    let mut steps = 0;
    while j > 0 && steps < 8 {
        j -= 1;
        steps += 1;
        match &toks[j].kind {
            TokKind::Ident(id) => {
                let lower = id.to_ascii_lowercase();
                if CAST_ORDINAL_NAMES.iter().any(|n| lower.contains(n)) {
                    return Some(id.clone());
                }
                if is_keyword(id) {
                    return None;
                }
                if j == 0 || !(toks[j - 1].is_punct(".") || toks[j - 1].is_punct("::")) {
                    return None;
                }
            }
            TokKind::Number(_) => {
                if j == 0 || !toks[j - 1].is_punct(".") {
                    return None;
                }
            }
            TokKind::Punct(p) if *p == "]" || *p == "." || *p == "::" => {}
            TokKind::Char(c) if *c == ')' || *c == ']' || *c == '?' || *c == '.' => {}
            _ => return None,
        }
    }
    None
}

/// A root-held struct and the provenance chain that makes it root-held.
type HeldTypes = BTreeMap<String, Vec<String>>;

/// Computes the set of workspace struct types transitively held by the
/// given root functions' `self` types, with provenance chains for
/// diagnostics.
fn held_types<'a>(ctx: &GraphCtx<'_>, roots: impl Iterator<Item = &'a usize>) -> HeldTypes {
    let mut held: HeldTypes = BTreeMap::new();
    let mut queue: Vec<String> = Vec::new();
    for &r in roots {
        let node = &ctx.graph.nodes[r];
        let Some(ty) = &node.self_ty else { continue };
        if ctx.graph.structs.contains_key(ty) && !held.contains_key(ty) {
            held.insert(
                ty.clone(),
                vec![format!(
                    "root {} ({}:{})",
                    node.label(),
                    node.path,
                    node.line
                )],
            );
            queue.push(ty.clone());
        }
    }
    while let Some(ty) = queue.pop() {
        let prov = held[&ty].clone();
        let Some((file, def)) = ctx.graph.structs.get(&ty) else {
            continue;
        };
        let path = &ctx.files[*file].rel;
        for fld in &def.fields {
            for inner in &fld.ty_idents {
                if ctx.graph.structs.contains_key(inner) && !held.contains_key(inner) {
                    let mut p = prov.clone();
                    p.push(format!("{ty}.{}: {inner} ({path}:{})", fld.name, fld.line));
                    held.insert(inner.clone(), p);
                    queue.push(inner.clone());
                }
            }
        }
    }
    held
}

/// The collection head of a field's type, looking through wrappers.
fn collection_head(ty_idents: &[String]) -> Option<&str> {
    for id in ty_idents {
        if COLLECTIONS.contains(&id.as_str()) {
            return Some(id);
        }
        if !WRAPPERS.contains(&id.as_str()) {
            return None;
        }
    }
    None
}

/// `state-growth`: collection fields of root-held structs with at least
/// one grow site and no shrink site anywhere in the workspace.
fn state_growth(ctx: &GraphCtx<'_>, held: &HeldTypes, out: &mut Vec<Diagnostic>) {
    for (ty, prov) in held {
        let (file, def) = &ctx.graph.structs[ty];
        let f = &ctx.files[*file];
        for fld in &def.fields {
            let Some(head) = collection_head(&fld.ty_idents) else {
                continue;
            };
            let (grows, shrinks) = field_usage(ctx, &fld.name);
            if grows && !shrinks {
                out.push(Diagnostic {
                    rule: "state-growth",
                    path: f.rel.clone(),
                    line: fld.line,
                    col: 1,
                    message: format!(
                        "`{ty}.{}` ({head}) is root-held state that only grows: insert/push \
                         sites exist but no remove/clear/truncate/drain anywhere in the \
                         workspace",
                        fld.name
                    ),
                    snippet: snippet_of(&f.src, fld.line),
                    help: HELP_STATE_GROWTH,
                    chain: prov.clone(),
                });
            }
        }
    }
}

/// Scans the whole workspace for `.field.grow(…)` / `.field.shrink(…)`
/// sites, `.field = …` reassignment, and `mem::take/replace(&mut
/// x.field)` (both count as shrink sites).
fn field_usage(ctx: &GraphCtx<'_>, field: &str) -> (bool, bool) {
    let mut grows = false;
    let mut shrinks = false;
    for f in ctx.files {
        let toks = &f.lexed.tokens;
        for (i, t) in toks.iter().enumerate() {
            let Some(id) = t.ident() else { continue };
            if id == field {
                // Require a field access: `<expr>.field…`.
                if i == 0 || !toks[i - 1].is_punct(".") {
                    continue;
                }
                // `.field.method(`
                if toks.get(i + 1).is_some_and(|n| n.is_punct(".")) {
                    if let Some(m) = toks.get(i + 2).and_then(|n| n.ident()) {
                        if toks.get(i + 3).is_some_and(|n| n.is_punct("(")) {
                            if GROW_METHODS.contains(&m) {
                                grows = true;
                            }
                            if SHRINK_METHODS.contains(&m) {
                                shrinks = true;
                            }
                        }
                    }
                }
                // `.field = …` (reassignment replaces the contents;
                // `==` lexes as one Punct token, so it cannot match).
                if toks.get(i + 1).is_some_and(|n| n.is_punct("=")) {
                    shrinks = true;
                }
            }
            // `mem::take(&mut x.field)` / `mem::replace(&mut x.field, …)`
            if (id == "take" || id == "replace") && prev_is_path(toks, i, "mem") {
                for k in i + 1..(i + 9).min(toks.len()) {
                    if toks[k].ident() == Some(field) && k >= 1 && toks[k - 1].is_punct(".") {
                        shrinks = true;
                        break;
                    }
                }
            }
        }
    }
    (grows, shrinks)
}

/// `float-state`: f32/f64 fields in root-held structs.
fn float_state(ctx: &GraphCtx<'_>, held: &HeldTypes, out: &mut Vec<Diagnostic>) {
    for (ty, prov) in held {
        let (file, def) = &ctx.graph.structs[ty];
        let f = &ctx.files[*file];
        for fld in &def.fields {
            if let Some(fl) = fld.ty_idents.iter().find(|id| *id == "f32" || *id == "f64") {
                out.push(Diagnostic {
                    rule: "float-state",
                    path: f.rel.clone(),
                    line: fld.line,
                    col: 1,
                    message: format!(
                        "`{ty}.{}` is `{fl}` inside root-held consensus state: floats have \
                         platform-dependent rounding and no total order",
                        fld.name
                    ),
                    snippet: snippet_of(&f.src, fld.line),
                    help: HELP_FLOAT_STATE,
                    chain: prov.clone(),
                });
            }
        }
    }
}

/// Whether token `i` is preceded by `prefix ::` (e.g. `rand :: random`).
fn prev_is_path(toks: &[Token], i: usize, prefix: &str) -> bool {
    i >= 2 && toks[i - 1].is_punct("::") && toks[i - 2].ident().is_some_and(|id| id == prefix)
}

fn is_keyword(id: &str) -> bool {
    matches!(
        id,
        "if" | "else"
            | "match"
            | "return"
            | "let"
            | "mut"
            | "fn"
            | "in"
            | "for"
            | "while"
            | "loop"
            | "break"
            | "continue"
            | "as"
            | "where"
            | "impl"
            | "pub"
            | "use"
            | "mod"
            | "struct"
            | "enum"
            | "trait"
            | "type"
            | "const"
            | "static"
            | "ref"
            | "move"
            | "unsafe"
    )
}

fn name_is_ordinal(id: &str) -> bool {
    let lower = id.to_ascii_lowercase();
    ORDINAL_NAMES.iter().any(|n| lower.contains(n))
}

/// Line spans of `impl` blocks whose target type name is ordinal-like
/// (`impl Slot { … }`): `self` arithmetic inside them is ordinal
/// arithmetic even without a named operand.
fn ordinal_impl_spans(toks: &[Token]) -> Vec<(u32, u32)> {
    let mut spans = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        if toks[i].ident() == Some("impl") {
            let mut j = i + 1;
            let mut ordinal = false;
            while j < toks.len() && !toks[j].is_punct("{") && !toks[j].is_punct(";") {
                if let Some(id) = toks[j].ident() {
                    if name_is_ordinal(id) {
                        ordinal = true;
                    }
                }
                j += 1;
            }
            if ordinal && j < toks.len() && toks[j].is_punct("{") {
                let mut d = 0;
                let mut end = j;
                for (n, t) in toks.iter().enumerate().skip(j) {
                    if t.is_punct("{") {
                        d += 1;
                    } else if t.is_punct("}") {
                        d -= 1;
                        if d == 0 {
                            end = n;
                            break;
                        }
                    }
                }
                spans.push((toks[j].line, toks[end].line));
                i = j + 1;
                continue;
            }
            i = j;
            continue;
        }
        i += 1;
    }
    spans
}

/// Whether the ordinal identifier at `k` is only the *receiver* of a
/// method call (`slot.wire_size()`): the call's result has an unknown
/// type, so arithmetic on it is not ordinal arithmetic. Field accesses
/// (`slot.0`, `meta.generation`) still count.
fn is_method_receiver(toks: &[Token], k: usize) -> bool {
    toks.get(k + 1).is_some_and(|t| t.is_punct("."))
        && toks.get(k + 2).is_some_and(|t| t.ident().is_some())
        && toks.get(k + 3).is_some_and(|t| t.is_punct("("))
}

/// Whether the arithmetic at operator index `i` involves an ordinal
/// operand: an identifier containing slot/watermark/generation within
/// the postfix chains on either side, or `self` inside an ordinal impl.
fn ordinal_operand(toks: &[Token], i: usize, ordinal_impls: &[(u32, u32)], line: u32) -> bool {
    let in_ordinal_impl = in_spans(ordinal_impls, line);
    // Scan left over a postfix chain: ident . ident . 0 ) ] ?
    let mut j = i;
    let mut steps = 0;
    while j > 0 && steps < 8 {
        j -= 1;
        steps += 1;
        match &toks[j].kind {
            TokKind::Ident(id) => {
                if name_is_ordinal(id) && !is_method_receiver(toks, j) {
                    return true;
                }
                if id == "self" && in_ordinal_impl {
                    return true;
                }
                if is_keyword(id) {
                    break;
                }
                // continue through `a.b` chains only when preceded by `.`
                if j == 0 || !toks[j - 1].is_punct(".") {
                    break;
                }
            }
            TokKind::Number(_) => {
                if j == 0 || !toks[j - 1].is_punct(".") {
                    break;
                }
            }
            TokKind::Punct(p) if *p == "]" => {}
            TokKind::Char(c) if *c == ')' || *c == ']' || *c == '?' || *c == '.' => {}
            TokKind::Punct(p) if *p == "." => {}
            _ => break,
        }
    }
    // Scan right over the first operand after the operator.
    let mut j = i + 1;
    let mut steps = 0;
    while j < toks.len() && steps < 8 {
        match &toks[j].kind {
            TokKind::Ident(id) => {
                if name_is_ordinal(id) && !is_method_receiver(toks, j) {
                    return true;
                }
                if id == "self" && in_ordinal_impl {
                    // `… + self.0` inside impl Slot
                    return true;
                }
                if is_keyword(id) {
                    return false;
                }
            }
            TokKind::Number(_) => {}
            TokKind::Char(c) if *c == '.' || *c == '(' || *c == '&' => {}
            TokKind::Punct(p) if *p == "::" || *p == "." => {}
            _ => return false,
        }
        j += 1;
        steps += 1;
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{build, FileInput};
    use crate::items::{extract_calls, parse_items};
    use crate::lexer::lex;
    use crate::reach::{match_roots, reachable};

    fn check(crate_name: &str, rel_path: &str, src: &str) -> Vec<Diagnostic> {
        let lexed = lex(src);
        check_file(
            &FileCtx {
                rel_path,
                crate_name,
                src,
            },
            &lexed,
        )
    }

    /// Builds a tiny in-memory workspace and runs the transitive rules.
    fn check_transitive(
        files: &[(&str, &str, &str)],
        sim: &[&str],
        protocol: &[&str],
    ) -> Vec<Diagnostic> {
        let data: Vec<FileData> = files
            .iter()
            .map(|(rel, krate, src)| {
                let lexed = lex(src);
                let spans = test_spans(&lexed.tokens);
                let items = parse_items(&lexed.tokens, &spans);
                FileData {
                    rel: rel.to_string(),
                    krate: krate.to_string(),
                    src: src.to_string(),
                    lexed,
                    items,
                }
            })
            .collect();
        let inputs: Vec<FileInput<'_>> = data
            .iter()
            .map(|f| FileInput {
                path: &f.rel,
                krate: &f.krate,
                items: &f.items,
            })
            .collect();
        let mut graph = build(&inputs);
        for id in 0..graph.nodes.len() {
            let (file, body) = (graph.nodes[id].file, graph.nodes[id].body);
            if let Some(body) = body {
                let calls = extract_calls(&data[file].lexed.tokens, body);
                graph.add_calls(id, &calls);
            }
        }
        let sim_pats: Vec<String> = sim.iter().map(|s| s.to_string()).collect();
        let proto_pats: Vec<String> = protocol.iter().map(|s| s.to_string()).collect();
        let sim_r = match_roots(&graph, &sim_pats);
        let proto_r = match_roots(&graph, &proto_pats);
        let sim_p = reachable(&graph, &sim_r.ids);
        let proto_p = reachable(&graph, &proto_r.ids);
        check_graph(&GraphCtx {
            files: &data,
            graph: &graph,
            sim_roots: &sim_r.ids,
            sim: &sim_p,
            protocol_roots: &proto_r.ids,
            protocol: &proto_p,
        })
    }

    #[test]
    fn hash_order_fires_in_scope_only() {
        let src = "use std::collections::HashMap;\n";
        assert_eq!(check("paxos", "crates/paxos/src/x.rs", src).len(), 1);
        assert_eq!(check("bench", "crates/bench/src/x.rs", src).len(), 0);
    }

    #[test]
    fn println_in_library() {
        let src = "fn f() { println!(\"x\"); }\n";
        assert_eq!(check("cluster", "crates/cluster/src/x.rs", src).len(), 1);
        assert_eq!(check("bench", "crates/bench/src/x.rs", src).len(), 0);
        assert_eq!(
            check("bench", "crates/bench/src/bin/exp_x.rs", src).len(),
            0
        );
    }

    #[test]
    fn slot_arith_flags_bare_ops() {
        let src = "fn f(slot: u64) -> u64 { slot + 1 }\n";
        let d = check("paxos", "crates/paxos/src/x.rs", src);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].rule, "unchecked-slot-arith");
    }

    #[test]
    fn slot_arith_allows_checked() {
        let src = "fn f(slot: u64) -> Option<u64> { slot.checked_add(1) }\n";
        assert_eq!(check("paxos", "crates/paxos/src/x.rs", src).len(), 0);
    }

    #[test]
    fn slot_arith_in_ordinal_impl_self() {
        let src = "impl Slot { fn next(self) -> Slot { Slot(self.0 + 1) } }\n";
        let d = check("paxos", "crates/paxos/src/types.rs", src);
        assert_eq!(d.len(), 1);
    }

    #[test]
    fn plain_counter_arith_not_flagged() {
        let src = "fn f(count: u64) -> u64 { count + 1 }\n";
        assert_eq!(check("paxos", "crates/paxos/src/x.rs", src).len(), 0);
    }

    #[test]
    fn test_code_is_exempt() {
        let src = "#[cfg(test)]\nmod tests {\n    fn t() { let m = std::collections::HashMap::<u8,u8>::new(); m.len(); }\n}\n";
        assert_eq!(check("paxos", "crates/paxos/src/x.rs", src).len(), 0);
    }

    #[test]
    fn sim_taint_follows_calls_across_files() {
        let d = check_transitive(
            &[
                (
                    "crates/simnet/src/engine.rs",
                    "simnet",
                    "impl Engine { pub fn dispatch(&mut self) { helper_tick(); } }",
                ),
                (
                    "crates/obs/src/util.rs",
                    "obs",
                    "pub fn helper_tick() { let _ = std::time::Instant::now(); }",
                ),
                (
                    "crates/bench/src/host.rs",
                    "bench",
                    "pub fn host_only() { let _ = std::time::Instant::now(); }",
                ),
            ],
            &["Engine::dispatch"],
            &[],
        );
        // Only the reachable helper is flagged; host_only is outside the wall.
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].rule, "sim-taint");
        assert_eq!(d[0].path, "crates/obs/src/util.rs");
        assert_eq!(d[0].chain.len(), 2);
        assert!(d[0].chain[0].starts_with("Engine::dispatch"));
        assert!(d[0].chain[1].starts_with("helper_tick"));
    }

    #[test]
    fn panic_taint_multi_hop() {
        let d = check_transitive(
            &[(
                "crates/paxos/src/replica.rs",
                "paxos",
                "impl Replica {
                    pub fn on_message(&mut self) { self.advance(); }
                    fn advance(&mut self) { decode_inner(); }
                }
                fn decode_inner() { let v: Vec<u8> = Vec::new(); let _ = v[0]; }
                fn unrelated(x: Option<u8>) { x.unwrap(); }",
            )],
            &[],
            &["Replica::on_message"],
        );
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].rule, "panic-taint");
        assert_eq!(d[0].chain.len(), 3);
    }

    #[test]
    fn state_growth_flags_grow_only_collections() {
        let d = check_transitive(
            &[(
                "crates/paxos/src/replica.rs",
                "paxos",
                "pub struct Replica { log: Log }
                 pub struct Log { entries: Vec<u8>, acked: Vec<u8> }
                 impl Replica { pub fn on_message(&mut self) { self.log.record(1); } }
                 impl Log {
                     pub fn record(&mut self, b: u8) { self.entries.push(b); self.acked.push(b); }
                     pub fn compact(&mut self) { self.acked.truncate(0); }
                 }",
            )],
            &[],
            &["Replica::on_message"],
        );
        let growth: Vec<&Diagnostic> = d.iter().filter(|d| d.rule == "state-growth").collect();
        assert_eq!(growth.len(), 1);
        assert!(growth[0].message.contains("Log.entries"));
        // Chain: root → Replica.log field hop.
        assert_eq!(growth[0].chain.len(), 2);
        assert!(growth[0].chain[0].starts_with("root Replica::on_message"));
        assert!(growth[0].chain[1].starts_with("Replica.log: Log"));
    }

    #[test]
    fn float_state_flags_transitively_held_fields() {
        let d = check_transitive(
            &[(
                "crates/paxos/src/replica.rs",
                "paxos",
                "pub struct Replica { stats: Stats }
                 pub struct Stats { ewma: f64, count: u64 }
                 impl Replica { pub fn on_message(&mut self) {} }",
            )],
            &[],
            &["Replica::on_message"],
        );
        let floats: Vec<&Diagnostic> = d.iter().filter(|d| d.rule == "float-state").collect();
        assert_eq!(floats.len(), 1);
        assert!(floats[0].message.contains("Stats.ewma"));
        assert_eq!(floats[0].chain.len(), 2);
    }

    #[test]
    fn lossy_cast_on_reachable_paths_only() {
        let d = check_transitive(
            &[(
                "crates/paxos/src/replica.rs",
                "paxos",
                "impl Replica { pub fn on_message(&mut self, slot: u64) { encode(slot); } }
                 fn encode(slot: u64) -> u32 { slot as u32 }
                 fn host_side(slot: u64) -> u32 { slot as u32 }",
            )],
            &[],
            &["Replica::on_message"],
        );
        let casts: Vec<&Diagnostic> = d.iter().filter(|d| d.rule == "lossy-cast").collect();
        assert_eq!(casts.len(), 1);
        assert_eq!(casts[0].chain.len(), 2);
        assert!(casts[0].message.contains("slot as u32"));
    }

    #[test]
    fn widening_cast_is_fine() {
        let d = check_transitive(
            &[(
                "crates/paxos/src/replica.rs",
                "paxos",
                "impl Replica { pub fn on_message(&mut self, slot: u32) { widen(slot); } }
                 fn widen(slot: u32) -> u64 { slot as u64 }",
            )],
            &[],
            &["Replica::on_message"],
        );
        assert!(d.iter().all(|d| d.rule != "lossy-cast"));
    }
}
