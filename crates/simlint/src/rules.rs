//! The rule set: repo-specific determinism and safety invariants that
//! clippy cannot express (scoping by crate role, protocol-path panic
//! freedom, slot/watermark arithmetic discipline).

use crate::diag::Diagnostic;
use crate::lexer::{in_spans, test_spans, Lexed, TokKind, Token};

/// Crates whose state or iteration order is visible to the simulation:
/// a hash-ordered container here can silently break same-seed replay.
pub const SIM_STATE_CRATES: &[&str] = &["paxos", "core", "cluster", "simnet"];

/// Crates reachable from simulated execution: wall-clock time or OS
/// entropy here breaks deterministic replay. Only `simnet` clock/RNG
/// handles may introduce time and randomness.
pub const SIM_REACHABLE_CRATES: &[&str] = &[
    "paxos",
    "core",
    "cluster",
    "simnet",
    "tpcw",
    "robuststore",
    "faultload",
    "obs",
];

/// Protocol message-handling files: a panic here kills a replica outside
/// the fault model, invisible to the invariant auditor. Errors must be
/// routed through typed events instead.
pub const PANIC_PATH_FILES: &[&str] = &[
    "crates/paxos/src/replica.rs",
    "crates/paxos/src/acceptor.rs",
    "crates/paxos/src/leader.rs",
    "crates/paxos/src/learner.rs",
    "crates/paxos/src/proposer.rs",
    "crates/paxos/src/fd.rs",
    "crates/paxos/src/msg.rs",
    "crates/core/src/middleware.rs",
    "crates/core/src/wire.rs",
    "crates/core/src/codec.rs",
    "crates/core/src/queue.rs",
];

/// Identifier fragments that mark consensus-ordinal arithmetic.
const ORDINAL_NAMES: &[&str] = &["slot", "watermark", "generation"];

/// Metadata for one rule.
pub struct RuleInfo {
    pub name: &'static str,
    pub summary: &'static str,
}

/// All rules, in reporting order.
pub const RULES: &[RuleInfo] = &[
    RuleInfo {
        name: "hash-order",
        summary: "no std HashMap/HashSet in sim-visible crates (paxos, core, cluster, simnet)",
    },
    RuleInfo {
        name: "wall-clock",
        summary: "no wall-clock time or OS entropy reachable from the simulation",
    },
    RuleInfo {
        name: "panic-path",
        summary: "no unwrap/expect/panic/indexing in protocol message-handling paths",
    },
    RuleInfo {
        name: "io-println",
        summary: "no raw println!/eprintln! in library crates (use obs or the bench Console)",
    },
    RuleInfo {
        name: "unchecked-slot-arith",
        summary: "slot/watermark/generation arithmetic must use checked or saturating ops",
    },
];

/// Whether `name` is a known rule slug.
pub fn is_known_rule(name: &str) -> bool {
    RULES.iter().any(|r| r.name == name)
}

const HELP_HASH_ORDER: &str = "use BTreeMap/BTreeSet (or a vendored IndexMap) so iteration order \
     is deterministic across runs; waive with `// simlint: allow(hash-order): <why>` only for \
     state that is provably never iterated";
const HELP_WALL_CLOCK: &str = "take time from the simnet clock handle and randomness from the \
     seeded simnet RNG; real-thread runtimes outside the simulation need a simlint.toml waiver";
const HELP_PANIC_PATH: &str = "route the failure through a typed error event so the invariant \
     auditor observes it; use get()/checked access instead of indexing";
const HELP_IO_PRINTLN: &str = "emit through obs trace/metrics or the bench Console; raw stdout \
     from library code corrupts --json output and bypasses --quiet";
const HELP_SLOT_ARITH: &str = "use checked_add/checked_sub/saturating_sub so ordinal overflow \
     or underflow is an explicit decision, not a silent wrap (or debug panic)";

/// Context for a single file scan.
pub struct FileCtx<'a> {
    /// Repo-relative path with forward slashes.
    pub rel_path: &'a str,
    /// Crate name derived from the path (`core`, `paxos`, …), or the
    /// root package marker `"."`.
    pub crate_name: &'a str,
    /// Raw source, for snippets.
    pub src: &'a str,
}

/// Runs every rule over one lexed file. Test spans (`#[cfg(test)]`,
/// `#[test]`) are exempt from all rules.
pub fn check_file(ctx: &FileCtx<'_>, lexed: &Lexed) -> Vec<Diagnostic> {
    let spans = test_spans(&lexed.tokens);
    let lines: Vec<&str> = ctx.src.lines().collect();
    let snippet = |line: u32| -> String {
        lines
            .get(line.saturating_sub(1) as usize)
            .map(|s| s.to_string())
            .unwrap_or_default()
    };
    let mut out = Vec::new();
    let toks = &lexed.tokens;

    let in_bin = ctx.rel_path.contains("/bin/");
    let hash_scope = SIM_STATE_CRATES.contains(&ctx.crate_name);
    let clock_scope = SIM_REACHABLE_CRATES.contains(&ctx.crate_name) || ctx.crate_name == ".";
    let panic_scope = PANIC_PATH_FILES.contains(&ctx.rel_path);
    let println_scope = ctx.crate_name != "bench" && ctx.crate_name != "simlint" && !in_bin;
    let arith_scope = SIM_STATE_CRATES.contains(&ctx.crate_name);

    // Spans of `impl … Slot/Watermark …` blocks: inside them, `self`
    // arithmetic counts as ordinal arithmetic even though the receiver
    // is spelled `self.0`.
    let ordinal_impls = ordinal_impl_spans(toks);

    for (i, t) in toks.iter().enumerate() {
        if in_spans(&spans, t.line) {
            continue;
        }

        // --- hash-order ---------------------------------------------------
        if hash_scope {
            if let Some(id) = t.ident() {
                if id == "HashMap" || id == "HashSet" {
                    out.push(Diagnostic {
                        rule: "hash-order",
                        path: ctx.rel_path.to_string(),
                        line: t.line,
                        col: t.col,
                        message: format!(
                            "`{id}` in sim-visible crate `{}`: hash iteration order varies \
                             across runs and breaks same-seed determinism",
                            ctx.crate_name
                        ),
                        snippet: snippet(t.line),
                        help: HELP_HASH_ORDER,
                    });
                }
            }
        }

        // --- wall-clock ---------------------------------------------------
        if clock_scope {
            if let Some(id) = t.ident() {
                let flagged: Option<String> = match id {
                    "SystemTime" => Some("std::time::SystemTime".into()),
                    "Instant" => Some("std::time::Instant".into()),
                    "thread_rng" | "from_entropy" | "OsRng" | "getrandom" => {
                        Some(format!("OS entropy source `{id}`"))
                    }
                    "random" if prev_is_path(toks, i, "rand") => Some("rand::random".into()),
                    "var" | "var_os" | "vars" if prev_is_path(toks, i, "env") => {
                        Some(format!("environment read `env::{id}`"))
                    }
                    _ => None,
                };
                if let Some(what) = flagged {
                    out.push(Diagnostic {
                        rule: "wall-clock",
                        path: ctx.rel_path.to_string(),
                        line: t.line,
                        col: t.col,
                        message: format!(
                            "{what} in sim-reachable crate `{}`: nondeterministic input \
                             outside the simnet clock/RNG",
                            ctx.crate_name
                        ),
                        snippet: snippet(t.line),
                        help: HELP_WALL_CLOCK,
                    });
                }
            }
        }

        // --- panic-path ---------------------------------------------------
        if panic_scope {
            if let Some(id) = t.ident() {
                // `.unwrap()` / `.expect(`
                if (id == "unwrap" || id == "expect")
                    && i >= 1
                    && toks[i - 1].is_punct(".")
                    && toks.get(i + 1).is_some_and(|n| n.is_punct("("))
                {
                    out.push(Diagnostic {
                        rule: "panic-path",
                        path: ctx.rel_path.to_string(),
                        line: t.line,
                        col: t.col,
                        message: format!(
                            "`.{id}()` on a protocol message-handling path: a panic here \
                             kills the replica outside the fault model"
                        ),
                        snippet: snippet(t.line),
                        help: HELP_PANIC_PATH,
                    });
                }
                // panic-family macros
                if matches!(id, "panic" | "unreachable" | "todo" | "unimplemented")
                    && toks.get(i + 1).is_some_and(|n| n.is_punct("!"))
                {
                    out.push(Diagnostic {
                        rule: "panic-path",
                        path: ctx.rel_path.to_string(),
                        line: t.line,
                        col: t.col,
                        message: format!("`{id}!` on a protocol message-handling path"),
                        snippet: snippet(t.line),
                        help: HELP_PANIC_PATH,
                    });
                }
            }
            // Indexing / slicing: `expr[...]` can panic on out-of-range.
            if t.is_punct("[") && i >= 1 {
                let prev = &toks[i - 1];
                let prev_is_expr_end = match &prev.kind {
                    TokKind::Ident(id) => !is_keyword(id),
                    TokKind::Punct(p) => *p == "]",
                    TokKind::Char(c) => *c == ')' || *c == ']' || *c == '?',
                    _ => false,
                };
                if prev_is_expr_end {
                    out.push(Diagnostic {
                        rule: "panic-path",
                        path: ctx.rel_path.to_string(),
                        line: t.line,
                        col: t.col,
                        message: "index/slice expression on a protocol message-handling path \
                                  can panic on out-of-range input"
                            .into(),
                        snippet: snippet(t.line),
                        help: HELP_PANIC_PATH,
                    });
                }
            }
        }

        // --- io-println ---------------------------------------------------
        if println_scope {
            if let Some(id) = t.ident() {
                if matches!(id, "println" | "eprintln" | "print" | "eprint" | "dbg")
                    && toks.get(i + 1).is_some_and(|n| n.is_punct("!"))
                {
                    out.push(Diagnostic {
                        rule: "io-println",
                        path: ctx.rel_path.to_string(),
                        line: t.line,
                        col: t.col,
                        message: format!("raw `{id}!` in library crate `{}`", ctx.crate_name),
                        snippet: snippet(t.line),
                        help: HELP_IO_PRINTLN,
                    });
                }
            }
        }

        // --- unchecked-slot-arith ----------------------------------------
        if arith_scope {
            let op = match &t.kind {
                TokKind::Punct(p) if matches!(*p, "+=" | "-=" | "*=") => Some(*p),
                TokKind::Char(c) if matches!(c, '+' | '-' | '*') => Some(match c {
                    '+' => "+",
                    '-' => "-",
                    _ => "*",
                }),
                _ => None,
            };
            if let Some(op) = op {
                // `*` is deref/multiply-ambiguous and `-` can be unary:
                // require an expression terminator on the left so only
                // binary uses are considered.
                let left_end = i.checked_sub(1).map(|j| &toks[j]);
                let left_is_expr = left_end.is_some_and(|p| match &p.kind {
                    TokKind::Ident(id) => !is_keyword(id),
                    TokKind::Number(_) => true,
                    TokKind::Punct(p) => *p == "]",
                    TokKind::Char(c) => *c == ')' || *c == ']',
                    _ => false,
                }) || matches!(op, "+=" | "-=" | "*=");
                if left_is_expr && ordinal_operand(toks, i, &ordinal_impls, t.line) {
                    out.push(Diagnostic {
                        rule: "unchecked-slot-arith",
                        path: ctx.rel_path.to_string(),
                        line: t.line,
                        col: t.col,
                        message: format!(
                            "unchecked `{op}` on slot/watermark/generation ordinal: overflow \
                             wraps in release builds and corrupts consensus ordering"
                        ),
                        snippet: snippet(t.line),
                        help: HELP_SLOT_ARITH,
                    });
                }
            }
        }
    }

    out
}

/// Whether token `i` is preceded by `prefix ::` (e.g. `rand :: random`).
fn prev_is_path(toks: &[Token], i: usize, prefix: &str) -> bool {
    i >= 2
        && toks[i - 1].is_punct("::")
        && toks[i - 2].ident().is_some_and(|id| {
            id == prefix
                // also match `std::env::var`
                || (prefix == "env" && id == "env")
        })
}

fn is_keyword(id: &str) -> bool {
    matches!(
        id,
        "if" | "else"
            | "match"
            | "return"
            | "let"
            | "mut"
            | "fn"
            | "in"
            | "for"
            | "while"
            | "loop"
            | "break"
            | "continue"
            | "as"
            | "where"
            | "impl"
            | "pub"
            | "use"
            | "mod"
            | "struct"
            | "enum"
            | "trait"
            | "type"
            | "const"
            | "static"
            | "ref"
            | "move"
            | "unsafe"
    )
}

fn name_is_ordinal(id: &str) -> bool {
    let lower = id.to_ascii_lowercase();
    ORDINAL_NAMES.iter().any(|n| lower.contains(n))
}

/// Line spans of `impl` blocks whose target type name is ordinal-like
/// (`impl Slot { … }`): `self` arithmetic inside them is ordinal
/// arithmetic even without a named operand.
fn ordinal_impl_spans(toks: &[Token]) -> Vec<(u32, u32)> {
    let mut spans = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        if toks[i].ident() == Some("impl") {
            let mut j = i + 1;
            let mut ordinal = false;
            while j < toks.len() && !toks[j].is_punct("{") && !toks[j].is_punct(";") {
                if let Some(id) = toks[j].ident() {
                    if name_is_ordinal(id) {
                        ordinal = true;
                    }
                }
                j += 1;
            }
            if ordinal && j < toks.len() && toks[j].is_punct("{") {
                let mut d = 0;
                let mut end = j;
                for (n, t) in toks.iter().enumerate().skip(j) {
                    if t.is_punct("{") {
                        d += 1;
                    } else if t.is_punct("}") {
                        d -= 1;
                        if d == 0 {
                            end = n;
                            break;
                        }
                    }
                }
                spans.push((toks[j].line, toks[end].line));
                i = j + 1;
                continue;
            }
            i = j;
            continue;
        }
        i += 1;
    }
    spans
}

/// Whether the ordinal identifier at `k` is only the *receiver* of a
/// method call (`slot.wire_size()`): the call's result has an unknown
/// type, so arithmetic on it is not ordinal arithmetic. Field accesses
/// (`slot.0`, `meta.generation`) still count.
fn is_method_receiver(toks: &[Token], k: usize) -> bool {
    toks.get(k + 1).is_some_and(|t| t.is_punct("."))
        && toks.get(k + 2).is_some_and(|t| t.ident().is_some())
        && toks.get(k + 3).is_some_and(|t| t.is_punct("("))
}

/// Whether the arithmetic at operator index `i` involves an ordinal
/// operand: an identifier containing slot/watermark/generation within
/// the postfix chains on either side, or `self` inside an ordinal impl.
fn ordinal_operand(toks: &[Token], i: usize, ordinal_impls: &[(u32, u32)], line: u32) -> bool {
    let in_ordinal_impl = in_spans(ordinal_impls, line);
    // Scan left over a postfix chain: ident . ident . 0 ) ] ?
    let mut j = i;
    let mut steps = 0;
    while j > 0 && steps < 8 {
        j -= 1;
        steps += 1;
        match &toks[j].kind {
            TokKind::Ident(id) => {
                if name_is_ordinal(id) && !is_method_receiver(toks, j) {
                    return true;
                }
                if id == "self" && in_ordinal_impl {
                    return true;
                }
                if is_keyword(id) {
                    break;
                }
                // continue through `a.b` chains only when preceded by `.`
                if j == 0 || !toks[j - 1].is_punct(".") {
                    break;
                }
            }
            TokKind::Number(_) => {
                if j == 0 || !toks[j - 1].is_punct(".") {
                    break;
                }
            }
            TokKind::Punct(p) if *p == "]" => {}
            TokKind::Char(c) if *c == ')' || *c == ']' || *c == '?' || *c == '.' => {}
            TokKind::Punct(p) if *p == "." => {}
            _ => break,
        }
    }
    // Scan right over the first operand after the operator.
    let mut j = i + 1;
    let mut steps = 0;
    while j < toks.len() && steps < 8 {
        match &toks[j].kind {
            TokKind::Ident(id) => {
                if name_is_ordinal(id) && !is_method_receiver(toks, j) {
                    return true;
                }
                if id == "self" && in_ordinal_impl {
                    // `… + self.0` inside impl Slot
                    return true;
                }
                if is_keyword(id) {
                    return false;
                }
            }
            TokKind::Number(_) => {}
            TokKind::Char(c) if *c == '.' || *c == '(' || *c == '&' => {}
            TokKind::Punct(p) if *p == "::" || *p == "." => {}
            _ => return false,
        }
        j += 1;
        steps += 1;
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn check(crate_name: &str, rel_path: &str, src: &str) -> Vec<Diagnostic> {
        let lexed = lex(src);
        check_file(
            &FileCtx {
                rel_path,
                crate_name,
                src,
            },
            &lexed,
        )
    }

    #[test]
    fn hash_order_fires_in_scope_only() {
        let src = "use std::collections::HashMap;\n";
        assert_eq!(check("paxos", "crates/paxos/src/x.rs", src).len(), 1);
        assert_eq!(check("bench", "crates/bench/src/x.rs", src).len(), 0);
    }

    #[test]
    fn wall_clock_catches_instant_and_rand() {
        let src = "let t = std::time::Instant::now();\nlet r = rand::random::<u8>();\n";
        let diags = check("core", "crates/core/src/x.rs", src);
        assert_eq!(diags.len(), 2);
        assert!(diags.iter().all(|d| d.rule == "wall-clock"));
    }

    #[test]
    fn panic_path_scoped_to_protocol_files() {
        let src = "fn f(x: Option<u8>) { x.unwrap(); }\n";
        assert_eq!(check("paxos", "crates/paxos/src/replica.rs", src).len(), 1);
        assert_eq!(check("paxos", "crates/paxos/src/config.rs", src).len(), 0);
    }

    #[test]
    fn panic_path_indexing() {
        let src = "fn f(v: &[u8]) -> u8 { v[0] }\n";
        let diags = check("core", "crates/core/src/wire.rs", src);
        assert_eq!(diags.len(), 1);
        assert!(diags[0].message.contains("index"));
    }

    #[test]
    fn indexing_ignores_attributes_types_and_macros() {
        // Attribute `#[…]`, array type `[u8; 4]`, and macro `vec![…]` are
        // not index expressions: the token before `[` is `#`, `:`, `!`.
        let src = "#[derive(Debug)]\nstruct S { buf: [u8; 4] }\nfn f() -> Vec<u8> { vec![1] }\n";
        assert_eq!(check("core", "crates/core/src/wire.rs", src).len(), 0);
    }

    #[test]
    fn println_in_library() {
        let src = "fn f() { println!(\"x\"); }\n";
        assert_eq!(check("cluster", "crates/cluster/src/x.rs", src).len(), 1);
        assert_eq!(check("bench", "crates/bench/src/x.rs", src).len(), 0);
        assert_eq!(
            check("bench", "crates/bench/src/bin/exp_x.rs", src).len(),
            0
        );
    }

    #[test]
    fn slot_arith_flags_bare_ops() {
        let src = "fn f(slot: u64) -> u64 { slot + 1 }\n";
        let d = check("paxos", "crates/paxos/src/x.rs", src);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].rule, "unchecked-slot-arith");
    }

    #[test]
    fn slot_arith_allows_checked() {
        let src = "fn f(slot: u64) -> Option<u64> { slot.checked_add(1) }\n";
        assert_eq!(check("paxos", "crates/paxos/src/x.rs", src).len(), 0);
    }

    #[test]
    fn slot_arith_in_ordinal_impl_self() {
        let src = "impl Slot { fn next(self) -> Slot { Slot(self.0 + 1) } }\n";
        let d = check("paxos", "crates/paxos/src/types.rs", src);
        assert_eq!(d.len(), 1);
    }

    #[test]
    fn plain_counter_arith_not_flagged() {
        let src = "fn f(count: u64) -> u64 { count + 1 }\n";
        assert_eq!(check("paxos", "crates/paxos/src/x.rs", src).len(), 0);
    }

    #[test]
    fn test_code_is_exempt() {
        let src = "#[cfg(test)]\nmod tests {\n    fn t() { let m = std::collections::HashMap::<u8,u8>::new(); m.len(); }\n}\n";
        assert_eq!(check("paxos", "crates/paxos/src/x.rs", src).len(), 0);
    }
}
