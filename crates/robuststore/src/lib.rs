//! # robuststore — the TPC-W bookstore retrofitted with Treplica
//!
//! The paper's RobustStore (§4): the stand-alone TPC-W on-line
//! bookstore turned into a replicated, crash-recoverable application by
//! (I) expressing its critical state as a nine-class object model
//! behind the `treplica` state machine, and (II) removing
//! non-determinism — timestamps, random discounts, payment
//! authorizations are sampled *before* each action is constructed and
//! travel inside it.
//!
//! * [`RobustStore`] — the replicated state machine
//!   (`treplica::Application` over `tpcw::Bookstore`).
//! * [`Action`] / [`Reply`] — the deterministic update vocabulary.
//! * [`TpcwDatabase`] — the facade the web tier calls: classifies each
//!   of the 14 interactions as a local read or a replicated write.
//!
//! ## Example
//!
//! ```
//! use robuststore::{Action, RobustStore, Reply};
//! use tpcw::{ItemId, PopulationParams};
//! use treplica::Application;
//!
//! let mut store = RobustStore::new(PopulationParams { items: 100, ebs: 1, seed: 1 });
//! let reply = store.apply(&Action::DoCart {
//!     cart: None,
//!     add: Some((ItemId(5), 1)),
//!     updates: vec![],
//!     default_item: ItemId(0),
//!     now: 1_000,
//! });
//! assert!(matches!(reply, Reply::Cart(_)));
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod action;
mod app;
mod facade;

pub use action::{Action, Reply};
pub use app::RobustStore;
pub use facade::{PageResult, Prepared, ReadOp, TpcwDatabase};
