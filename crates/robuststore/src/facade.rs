//! The `TpcwDatabase` facade.
//!
//! In the original bookstore the servlets talked to the database
//! through one facade class; RobustStore keeps the structure and swaps
//! the SQL for the replicated state machine (paper §4). The facade's
//! two jobs here:
//!
//! * **classify** an incoming web request as a *local read* (served
//!   from this replica's state, no total order — how the paper gets
//!   95% of browsing traffic for free) or an *update action*;
//! * **remove non-determinism**: server timestamps, the new-customer
//!   discount, and the payment-gateway authorization id are sampled
//!   *before* the action object is built and carried inside it.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use tpcw::{
    Bookstore, Interaction, ItemId, NewCustomer, Payment, RequestBody, SessionUpdate, StoreError,
    WebRequest,
};

use crate::action::{Action, Reply};

/// A read operation servable from local state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReadOp {
    /// Home page.
    Home {
        /// Returning customer.
        customer: Option<tpcw::CustomerId>,
    },
    /// New-products listing.
    NewProducts {
        /// Subject.
        subject: u8,
    },
    /// Best-sellers listing.
    BestSellers {
        /// Subject.
        subject: u8,
    },
    /// Product detail.
    ProductDetail {
        /// Item.
        item: ItemId,
    },
    /// Static search form.
    SearchRequest,
    /// Search results.
    SearchResults {
        /// 0 subject / 1 title / 2 author.
        kind: u8,
        /// Subject for kind 0.
        subject: u8,
        /// Term for kinds 1–2.
        term: String,
    },
    /// Static order-inquiry form.
    OrderInquiry,
    /// Order display.
    OrderDisplay {
        /// Customer user name.
        uname: String,
    },
    /// Admin edit form.
    AdminRequest {
        /// Item.
        item: ItemId,
    },
}

/// A classified request: local read or replicated update.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Prepared {
    /// Serve from local state.
    Read(ReadOp),
    /// Order through the persistent queue.
    Write(Action),
}

/// Result of serving a request at a replica.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PageResult {
    /// Whether the page was produced successfully.
    pub ok: bool,
    /// Session context for the browser.
    pub session: SessionUpdate,
    /// Approximate page size in bytes (network reply sizing).
    pub page_bytes: u64,
}

/// The facade: classification + non-determinism removal + read serving.
#[derive(Debug)]
pub struct TpcwDatabase {
    rng: StdRng,
}

impl TpcwDatabase {
    /// Creates a facade with its own server-local RNG (its draws never
    /// reach the replicated state except inside action parameters).
    pub fn new(seed: u64) -> TpcwDatabase {
        TpcwDatabase {
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Classifies a request; `now_us` is this server's local clock,
    /// read *before* action construction (paper §4, task II).
    pub fn prepare(&mut self, request: &WebRequest, now_us: u64) -> Prepared {
        match &request.body {
            RequestBody::Home { customer } => Prepared::Read(ReadOp::Home {
                customer: *customer,
            }),
            RequestBody::NewProducts { subject } => {
                Prepared::Read(ReadOp::NewProducts { subject: *subject })
            }
            RequestBody::BestSellers { subject } => {
                Prepared::Read(ReadOp::BestSellers { subject: *subject })
            }
            RequestBody::ProductDetail { item } => {
                Prepared::Read(ReadOp::ProductDetail { item: *item })
            }
            RequestBody::SearchRequest => Prepared::Read(ReadOp::SearchRequest),
            RequestBody::SearchResults {
                kind,
                subject,
                term,
            } => Prepared::Read(ReadOp::SearchResults {
                kind: *kind,
                subject: *subject,
                term: term.clone(),
            }),
            RequestBody::OrderInquiry => Prepared::Read(ReadOp::OrderInquiry),
            RequestBody::OrderDisplay { uname } => Prepared::Read(ReadOp::OrderDisplay {
                uname: uname.clone(),
            }),
            RequestBody::AdminRequest { item } => {
                Prepared::Read(ReadOp::AdminRequest { item: *item })
            }
            RequestBody::ShoppingCart {
                cart,
                add,
                updates,
                default_item,
            } => Prepared::Write(Action::DoCart {
                cart: *cart,
                add: *add,
                updates: updates.clone(),
                default_item: *default_item,
                now: now_us,
            }),
            RequestBody::CustomerRegistration {
                returning,
                fname,
                lname,
                phone,
                email,
                birthdate,
                data,
            } => match returning {
                Some(customer) => Prepared::Write(Action::RefreshSession {
                    customer: *customer,
                    now: now_us,
                }),
                None => Prepared::Write(Action::RegisterCustomer {
                    reg: NewCustomer {
                        fname: fname.clone(),
                        lname: lname.clone(),
                        phone: phone.clone(),
                        email: email.clone(),
                        birthdate: *birthdate,
                        data: data.clone(),
                        // The paper's example: the registration discount
                        // is sampled here, before the action exists.
                        discount_bp: self.rng.gen_range(0..5_100),
                        now: now_us,
                    },
                }),
            },
            RequestBody::BuyRequest { customer, cart: _ } => {
                Prepared::Write(Action::RefreshSession {
                    customer: *customer,
                    now: now_us,
                })
            }
            RequestBody::BuyConfirm {
                customer,
                cart,
                cc_type,
                cc_num,
                cc_name,
                cc_expiry,
                country,
                ship_type,
            } => match cart {
                Some(cart) => Prepared::Write(Action::BuyConfirm {
                    cart: *cart,
                    customer: *customer,
                    payment: Payment {
                        cc_type: cc_type.clone(),
                        cc_num: cc_num.clone(),
                        cc_name: cc_name.clone(),
                        cc_expiry: *cc_expiry,
                        // Pre-sampled payment-gateway authorization.
                        auth_id: format!("AUTH{:012x}", self.rng.gen::<u64>() & 0xFFFF_FFFF_FFFF),
                        country: *country,
                    },
                    ship_type: *ship_type,
                    now: now_us,
                }),
                // No cart in session: degrade to a cart view (error page
                // avoided; TPC-W browsers never do this, but be robust).
                None => Prepared::Read(ReadOp::Home {
                    customer: Some(*customer),
                }),
            },
            RequestBody::AdminConfirm {
                item,
                new_cost_cents,
            } => {
                let n: u32 = self.rng.gen_range(0..1_000);
                Prepared::Write(Action::AdminUpdate {
                    item: *item,
                    cost_cents: *new_cost_cents,
                    image: format!("img/full/{}_{n}.gif", item.0),
                    thumbnail: format!("img/thumb/{}_{n}.gif", item.0),
                })
            }
        }
    }

    /// Serves a read against local state.
    pub fn perform_read(store: &Bookstore, op: &ReadOp) -> PageResult {
        let ok_page = |bytes: u64| PageResult {
            ok: true,
            session: SessionUpdate::default(),
            page_bytes: bytes,
        };
        match op {
            ReadOp::Home { customer } => {
                let (_name, promos) = store.get_home(*customer);
                ok_page(4_000 + promos.len() as u64 * 400)
            }
            ReadOp::NewProducts { subject } => {
                let items = store.get_new_products(*subject);
                ok_page(2_000 + items.len() as u64 * 120)
            }
            ReadOp::BestSellers { subject } => {
                let items = store.get_best_sellers(*subject);
                ok_page(2_000 + items.len() as u64 * 120)
            }
            ReadOp::ProductDetail { item } => match store.item(*item) {
                Ok(_) => ok_page(6_000),
                Err(_) => PageResult {
                    ok: false,
                    session: SessionUpdate::default(),
                    page_bytes: 500,
                },
            },
            ReadOp::SearchRequest => ok_page(1_500),
            ReadOp::SearchResults {
                kind,
                subject,
                term,
            } => {
                let items = match kind {
                    0 => store.search_by_subject(*subject),
                    1 => store.search_by_title(term),
                    _ => store.search_by_author(term),
                };
                ok_page(2_000 + items.len() as u64 * 120)
            }
            ReadOp::OrderInquiry => ok_page(1_200),
            ReadOp::OrderDisplay { uname } => match store.most_recent_order(uname) {
                Ok(Some(order)) => {
                    let detail = store.order(order);
                    ok_page(3_000 + detail.map(|(_, l, _)| l.len() as u64 * 150).unwrap_or(0))
                }
                Ok(None) => ok_page(1_200),
                Err(_) => PageResult {
                    ok: false,
                    session: SessionUpdate::default(),
                    page_bytes: 500,
                },
            },
            ReadOp::AdminRequest { item } => match store.item(*item) {
                Ok(_) => ok_page(3_000),
                Err(_) => PageResult {
                    ok: false,
                    session: SessionUpdate::default(),
                    page_bytes: 500,
                },
            },
        }
    }

    /// Builds the page result for a completed write action.
    pub fn write_result(interaction: Interaction, reply: &Reply) -> PageResult {
        let mut session = SessionUpdate::default();
        let (ok, bytes) = match reply {
            Reply::Cart(id) => {
                session.cart = Some(*id);
                (true, 3_500)
            }
            Reply::Customer(id) => {
                session.customer = Some(*id);
                (true, 2_500)
            }
            Reply::SessionRefreshed => (true, 2_500),
            Reply::Order(_) => (true, 4_500),
            Reply::ItemUpdated => (true, 2_000),
            Reply::Failed(e) => (
                // Deterministic business failures render an error page
                // but are *served*; distinguish from infrastructure
                // errors counted against accuracy.
                !matches!(e, StoreError::NoSuchCart | StoreError::NoSuchCustomer),
                800,
            ),
        };
        let _ = interaction;
        PageResult {
            ok,
            session,
            page_bytes: bytes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tpcw::{CustomerId, PopulationParams, Profile, Rbe, RbeConfig};

    fn store() -> Bookstore {
        Bookstore::open(PopulationParams {
            items: 120,
            ebs: 1,
            seed: 5,
        })
    }

    fn facade() -> TpcwDatabase {
        TpcwDatabase::new(1)
    }

    #[test]
    fn reads_classified_as_reads() {
        let mut f = facade();
        let req = WebRequest {
            interaction: Interaction::Home,
            client_id: 1,
            body: RequestBody::Home { customer: None },
        };
        assert!(matches!(f.prepare(&req, 0), Prepared::Read(_)));
    }

    #[test]
    fn updates_carry_presampled_time() {
        let mut f = facade();
        let req = WebRequest {
            interaction: Interaction::ShoppingCart,
            client_id: 1,
            body: RequestBody::ShoppingCart {
                cart: None,
                add: Some((ItemId(1), 1)),
                updates: vec![],
                default_item: ItemId(0),
            },
        };
        match f.prepare(&req, 123_456) {
            Prepared::Write(Action::DoCart { now, .. }) => assert_eq!(now, 123_456),
            other => panic!("expected DoCart, got {other:?}"),
        }
    }

    #[test]
    fn registration_discount_sampled_in_facade() {
        let mut f = facade();
        let req = WebRequest {
            interaction: Interaction::CustomerRegistration,
            client_id: 1,
            body: RequestBody::CustomerRegistration {
                returning: None,
                fname: "A".into(),
                lname: "B".into(),
                phone: "5551234".into(),
                email: "a@b.c".into(),
                birthdate: 5_000,
                data: "d".into(),
            },
        };
        match f.prepare(&req, 9) {
            Prepared::Write(Action::RegisterCustomer { reg }) => {
                assert!(reg.discount_bp < 5_100);
                assert_eq!(reg.now, 9);
            }
            other => panic!("expected RegisterCustomer, got {other:?}"),
        }
        // Returning customers refresh their session instead.
        let req = WebRequest {
            interaction: Interaction::CustomerRegistration,
            client_id: 1,
            body: RequestBody::CustomerRegistration {
                returning: Some(CustomerId(4)),
                fname: String::new(),
                lname: String::new(),
                phone: String::new(),
                email: String::new(),
                birthdate: 0,
                data: String::new(),
            },
        };
        assert!(matches!(
            f.prepare(&req, 9),
            Prepared::Write(Action::RefreshSession { .. })
        ));
    }

    #[test]
    fn auth_id_sampled_in_facade() {
        let mut f = facade();
        let req = WebRequest {
            interaction: Interaction::BuyConfirm,
            client_id: 1,
            body: RequestBody::BuyConfirm {
                customer: CustomerId(1),
                cart: Some(tpcw::CartId(0)),
                cc_type: "VISA".into(),
                cc_num: "4111".into(),
                cc_name: "N".into(),
                cc_expiry: 15_000,
                country: 1,
                ship_type: 2,
            },
        };
        match f.prepare(&req, 1) {
            Prepared::Write(Action::BuyConfirm { payment, .. }) => {
                assert!(payment.auth_id.starts_with("AUTH"));
            }
            other => panic!("expected BuyConfirm, got {other:?}"),
        }
    }

    #[test]
    fn every_rbe_request_classifies() {
        // Fuzz: everything an RBE can emit must classify without panics
        // and read/write per its interaction class.
        let mut f = facade();
        let mut rbe = Rbe::new(
            7,
            RbeConfig {
                profile: Profile::Ordering,
                think_mean_us: 1,
                items: 120,
                customers: 2_880,
            },
            3,
        );
        rbe.on_response(
            Interaction::ShoppingCart,
            SessionUpdate {
                cart: Some(tpcw::CartId(0)),
                customer: None,
            },
        );
        for _ in 0..5_000 {
            let req = rbe.next_request();
            let prepared = f.prepare(&req, 42);
            match (&prepared, req.interaction.is_update()) {
                (Prepared::Read(_), false) | (Prepared::Write(_), true) => {}
                _ => panic!("misclassified {:?} → {prepared:?}", req.interaction),
            }
            if req.interaction == Interaction::BuyConfirm {
                rbe.on_response(Interaction::BuyConfirm, SessionUpdate::default());
                rbe.on_response(
                    Interaction::ShoppingCart,
                    SessionUpdate {
                        cart: Some(tpcw::CartId(0)),
                        customer: None,
                    },
                );
            }
        }
    }

    #[test]
    fn reads_execute_against_local_state() {
        let s = store();
        for op in [
            ReadOp::Home {
                customer: Some(CustomerId(1)),
            },
            ReadOp::NewProducts { subject: 3 },
            ReadOp::BestSellers { subject: 3 },
            ReadOp::ProductDetail { item: ItemId(5) },
            ReadOp::SearchRequest,
            ReadOp::SearchResults {
                kind: 0,
                subject: 1,
                term: String::new(),
            },
            ReadOp::SearchResults {
                kind: 1,
                subject: 0,
                term: "a".into(),
            },
            ReadOp::OrderInquiry,
            ReadOp::OrderDisplay {
                uname: s.customer(CustomerId(2)).unwrap().uname.clone(),
            },
            ReadOp::AdminRequest { item: ItemId(1) },
        ] {
            let page = TpcwDatabase::perform_read(&s, &op);
            assert!(page.ok, "read {op:?} failed");
            assert!(page.page_bytes > 0);
        }
    }

    #[test]
    fn write_results_update_sessions() {
        use crate::action::Reply;
        let r =
            TpcwDatabase::write_result(Interaction::ShoppingCart, &Reply::Cart(tpcw::CartId(9)));
        assert_eq!(r.session.cart, Some(tpcw::CartId(9)));
        let r = TpcwDatabase::write_result(
            Interaction::CustomerRegistration,
            &Reply::Customer(CustomerId(7)),
        );
        assert_eq!(r.session.customer, Some(CustomerId(7)));
        let r = TpcwDatabase::write_result(
            Interaction::BuyConfirm,
            &Reply::Failed(StoreError::EmptyCart),
        );
        assert!(r.ok, "empty-cart is a served business error");
        let r = TpcwDatabase::write_result(
            Interaction::BuyConfirm,
            &Reply::Failed(StoreError::NoSuchCart),
        );
        assert!(!r.ok);
    }
}
