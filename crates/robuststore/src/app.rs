//! RobustStore as a Treplica application.
//!
//! The bookstore's critical state — the nine replicated classes —
//! implements [`Application`]: deterministic `apply`, checkpoint
//! `snapshot`/`restore`. Checkpoints serialize the population
//! parameters plus the mutation overlay; the *modeled* checkpoint size
//! is the full state footprint (the paper's 300–700 MB), which is what
//! recovery pays to reload from disk.

use tpcw::{Bookstore, Overlay, PopulationParams};
use treplica::{Application, Snapshot, Wire, WireError};

use crate::action::{Action, Reply};

/// The replicated bookstore state machine.
#[derive(Debug, Clone, PartialEq)]
pub struct RobustStore {
    store: Bookstore,
}

impl RobustStore {
    /// Opens the store over the (memoized) population for `params`.
    pub fn new(params: PopulationParams) -> RobustStore {
        RobustStore {
            store: Bookstore::open(params),
        }
    }

    /// Read access to the bookstore (the local read path: the paper
    /// serves read-only interactions without total order, §5.2).
    pub fn store(&self) -> &Bookstore {
        &self.store
    }

    /// The modeled in-memory state size.
    pub fn nominal_bytes(&self) -> u64 {
        self.store.nominal_bytes()
    }
}

impl Application for RobustStore {
    type Action = Action;
    type Reply = Reply;

    fn apply(&mut self, action: &Action) -> Reply {
        match action {
            Action::DoCart {
                cart,
                add,
                updates,
                default_item,
                now,
            } => {
                match self
                    .store
                    .do_cart(*cart, *add, updates, *default_item, *now)
                {
                    Ok(id) => Reply::Cart(id),
                    Err(e) => Reply::Failed(e),
                }
            }
            Action::RegisterCustomer { reg } => Reply::Customer(self.store.create_customer(reg)),
            Action::RefreshSession { customer, now } => {
                match self.store.refresh_session(*customer, *now) {
                    Ok(()) => Reply::SessionRefreshed,
                    Err(e) => Reply::Failed(e),
                }
            }
            Action::BuyConfirm {
                cart,
                customer,
                payment,
                ship_type,
                now,
            } => {
                match self
                    .store
                    .buy_confirm(*cart, *customer, payment, *ship_type, *now)
                {
                    Ok(order) => Reply::Order(order),
                    Err(e) => Reply::Failed(e),
                }
            }
            Action::AdminUpdate {
                item,
                cost_cents,
                image,
                thumbnail,
            } => {
                match self
                    .store
                    .admin_update(*item, *cost_cents, image.clone(), thumbnail.clone())
                {
                    Ok(()) => Reply::ItemUpdated,
                    Err(e) => Reply::Failed(e),
                }
            }
        }
    }

    fn snapshot(&self) -> Snapshot {
        let mut data = Vec::new();
        self.store.params().encode(&mut data);
        self.store.overlay().encode(&mut data);
        Snapshot {
            data,
            nominal_bytes: self.store.nominal_bytes(),
        }
    }

    fn restore(data: &[u8]) -> Result<Self, WireError> {
        let mut input = data;
        let params = PopulationParams::decode(&mut input)?;
        let overlay = Overlay::decode(&mut input)?;
        Ok(RobustStore {
            store: Bookstore::from_parts(params, overlay),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tpcw::{CartId, CustomerId, ItemId, Payment};

    fn tiny() -> PopulationParams {
        PopulationParams {
            items: 150,
            ebs: 1,
            seed: 3,
        }
    }

    fn cart_action(now: u64) -> Action {
        Action::DoCart {
            cart: None,
            add: Some((ItemId(4), 2)),
            updates: vec![],
            default_item: ItemId(0),
            now,
        }
    }

    #[test]
    fn apply_is_deterministic_across_replicas() {
        let mut a = RobustStore::new(tiny());
        let mut b = RobustStore::new(tiny());
        let actions = vec![
            cart_action(10),
            Action::BuyConfirm {
                cart: CartId(0),
                customer: CustomerId(7),
                payment: Payment {
                    cc_type: "VISA".into(),
                    cc_num: "4111".into(),
                    cc_name: "N".into(),
                    cc_expiry: 15_000,
                    auth_id: "AUTH1".into(),
                    country: 2,
                },
                ship_type: 1,
                now: 20,
            },
            Action::RefreshSession {
                customer: CustomerId(3),
                now: 30,
            },
        ];
        for act in &actions {
            assert_eq!(a.apply(act), b.apply(act));
        }
        assert_eq!(a, b);
    }

    #[test]
    fn deterministic_failures_replicate() {
        let mut a = RobustStore::new(tiny());
        let reply = a.apply(&Action::BuyConfirm {
            cart: CartId(55),
            customer: CustomerId(1),
            payment: Payment {
                cc_type: "VISA".into(),
                cc_num: "4".into(),
                cc_name: "N".into(),
                cc_expiry: 1,
                auth_id: "A".into(),
                country: 0,
            },
            ship_type: 0,
            now: 1,
        });
        assert_eq!(reply, Reply::Failed(tpcw::StoreError::NoSuchCart));
    }

    #[test]
    fn snapshot_restore_roundtrip_preserves_state() {
        let mut a = RobustStore::new(tiny());
        a.apply(&cart_action(10));
        a.apply(&Action::AdminUpdate {
            item: ItemId(9),
            cost_cents: 777,
            image: "i".into(),
            thumbnail: "t".into(),
        });
        let snap = a.snapshot();
        assert_eq!(snap.nominal_bytes, a.nominal_bytes());
        let b = RobustStore::restore(&snap.data).unwrap();
        assert_eq!(a, b);
        assert_eq!(b.store().item_cost(ItemId(9)).unwrap(), 777);
    }

    #[test]
    fn snapshot_data_is_compact_but_nominal_is_large() {
        // The simulated checkpoint bytes stay small (overlay only) while
        // the modeled size reflects the full state — the key trick that
        // keeps simulating 700 MB states cheap.
        let a = RobustStore::new(tiny());
        let snap = a.snapshot();
        assert!(snap.data.len() < 10_000, "data {} bytes", snap.data.len());
        assert!(
            snap.nominal_bytes > 1_000_000,
            "nominal {}",
            snap.nominal_bytes
        );
    }

    #[test]
    fn restore_rejects_garbage() {
        assert!(RobustStore::restore(&[1, 2, 3]).is_err());
    }
}
