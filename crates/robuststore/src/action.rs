//! The deterministic actions of RobustStore's state machine.
//!
//! Each update interaction of the bookstore becomes one action object
//! (paper §4, task II): every timestamp, random discount and payment
//! authorization is sampled *before* the action is constructed and
//! travels inside it, so all replicas apply identical state changes.

use tpcw::{CartId, CartLine, CustomerId, ItemId, NewCustomer, OrderId, Payment, StoreError};
use treplica::{Wire, WireError};

/// A replicated update to the bookstore.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Action {
    /// Shopping-cart create/update.
    DoCart {
        /// Existing cart, if any.
        cart: Option<CartId>,
        /// Item to add with quantity.
        add: Option<(ItemId, u32)>,
        /// Line-quantity updates.
        updates: Vec<CartLine>,
        /// Item added if the cart ends up empty (pre-sampled).
        default_item: ItemId,
        /// Server timestamp (pre-sampled).
        now: u64,
    },
    /// New-customer registration (discount and timestamp pre-sampled —
    /// the paper's worked examples of removed non-determinism).
    RegisterCustomer {
        /// All registration fields.
        reg: NewCustomer,
    },
    /// Session refresh for a returning customer (Buy Request path).
    RefreshSession {
        /// The customer.
        customer: CustomerId,
        /// Server timestamp (pre-sampled).
        now: u64,
    },
    /// Order placement.
    BuyConfirm {
        /// The cart being purchased.
        cart: CartId,
        /// The purchasing customer.
        customer: CustomerId,
        /// Payment details (authorization id pre-sampled).
        payment: Payment,
        /// Shipping method.
        ship_type: u8,
        /// Server timestamp (pre-sampled) — the paper's order-creation
        /// time example.
        now: u64,
    },
    /// Admin item update.
    AdminUpdate {
        /// Item being updated.
        item: ItemId,
        /// New cost in cents.
        cost_cents: u64,
        /// New image path (pre-sampled).
        image: String,
        /// New thumbnail path (pre-sampled).
        thumbnail: String,
    },
}

impl Wire for Action {
    fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            Action::DoCart {
                cart,
                add,
                updates,
                default_item,
                now,
            } => {
                buf.push(0);
                cart.encode(buf);
                add.encode(buf);
                updates.encode(buf);
                default_item.encode(buf);
                now.encode(buf);
            }
            Action::RegisterCustomer { reg } => {
                buf.push(1);
                reg.encode(buf);
            }
            Action::RefreshSession { customer, now } => {
                buf.push(2);
                customer.encode(buf);
                now.encode(buf);
            }
            Action::BuyConfirm {
                cart,
                customer,
                payment,
                ship_type,
                now,
            } => {
                buf.push(3);
                cart.encode(buf);
                customer.encode(buf);
                payment.encode(buf);
                ship_type.encode(buf);
                now.encode(buf);
            }
            Action::AdminUpdate {
                item,
                cost_cents,
                image,
                thumbnail,
            } => {
                buf.push(4);
                item.encode(buf);
                cost_cents.encode(buf);
                image.encode(buf);
                thumbnail.encode(buf);
            }
        }
    }

    fn decode(input: &mut &[u8]) -> Result<Self, WireError> {
        match u8::decode(input)? {
            0 => Ok(Action::DoCart {
                cart: Option::decode(input)?,
                add: Option::decode(input)?,
                updates: Vec::decode(input)?,
                default_item: ItemId::decode(input)?,
                now: u64::decode(input)?,
            }),
            1 => Ok(Action::RegisterCustomer {
                reg: NewCustomer::decode(input)?,
            }),
            2 => Ok(Action::RefreshSession {
                customer: CustomerId::decode(input)?,
                now: u64::decode(input)?,
            }),
            3 => Ok(Action::BuyConfirm {
                cart: CartId::decode(input)?,
                customer: CustomerId::decode(input)?,
                payment: Payment::decode(input)?,
                ship_type: u8::decode(input)?,
                now: u64::decode(input)?,
            }),
            4 => Ok(Action::AdminUpdate {
                item: ItemId::decode(input)?,
                cost_cents: u64::decode(input)?,
                image: String::decode(input)?,
                thumbnail: String::decode(input)?,
            }),
            t => Err(WireError::BadTag(t)),
        }
    }
}

/// What applying an action produced (identical at every replica).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Reply {
    /// A cart was created/updated.
    Cart(CartId),
    /// A customer was registered.
    Customer(CustomerId),
    /// A session was refreshed.
    SessionRefreshed,
    /// An order was placed.
    Order(OrderId),
    /// An item was updated.
    ItemUpdated,
    /// The operation failed deterministically (bad request); all
    /// replicas compute the same failure.
    Failed(StoreError),
}

impl Reply {
    /// Whether the action succeeded.
    pub fn is_ok(&self) -> bool {
        !matches!(self, Reply::Failed(_))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(a: Action) {
        let bytes = a.to_bytes();
        assert_eq!(Action::from_bytes(&bytes).unwrap(), a);
    }

    #[test]
    fn all_actions_roundtrip() {
        roundtrip(Action::DoCart {
            cart: Some(CartId(3)),
            add: Some((ItemId(5), 2)),
            updates: vec![CartLine {
                item: ItemId(1),
                qty: 0,
            }],
            default_item: ItemId(9),
            now: 123,
        });
        roundtrip(Action::RegisterCustomer {
            reg: NewCustomer {
                fname: "A".into(),
                lname: "B".into(),
                phone: "5551234".into(),
                email: "a@b.c".into(),
                birthdate: 4000,
                data: "d".into(),
                discount_bp: 300,
                now: 777,
            },
        });
        roundtrip(Action::RefreshSession {
            customer: CustomerId(12),
            now: 55,
        });
        roundtrip(Action::BuyConfirm {
            cart: CartId(1),
            customer: CustomerId(2),
            payment: Payment {
                cc_type: "VISA".into(),
                cc_num: "4111".into(),
                cc_name: "N".into(),
                cc_expiry: 15000,
                auth_id: "AUTH".into(),
                country: 3,
            },
            ship_type: 4,
            now: 99,
        });
        roundtrip(Action::AdminUpdate {
            item: ItemId(6),
            cost_cents: 1299,
            image: "i.gif".into(),
            thumbnail: "t.gif".into(),
        });
    }

    #[test]
    fn bad_tag_rejected() {
        assert!(Action::from_bytes(&[77]).is_err());
    }

    #[test]
    fn reply_ok_classification() {
        assert!(Reply::Cart(CartId(1)).is_ok());
        assert!(Reply::Order(OrderId(1)).is_ok());
        assert!(!Reply::Failed(StoreError::NoSuchCart).is_ok());
    }
}
