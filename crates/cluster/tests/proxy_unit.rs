//! Unit tests of the reverse proxy's failover machinery, driven with a
//! bare engine and hand-fed messages.

// Hash containers here only aggregate assertions inside one test run;
// their ordering never reaches replicated state or traces.
#![allow(clippy::disallowed_types)]

use cluster::{ClusterMsg, ProxyConfig, ProxyNode};
use simnet::{Engine, Event, NodeId, SimConfig, SimTime};
use tpcw::{CustomerId, RequestBody, WebRequest};

const SERVERS: usize = 3;

fn engine() -> Engine<ClusterMsg> {
    // 3 servers (0..3), proxy at 3, client at 4.
    Engine::new(5, SimConfig::default(), 1)
}

fn proxy(engine: &mut Engine<ClusterMsg>) -> ProxyNode {
    ProxyNode::new(
        NodeId(SERVERS),
        (0..SERVERS).map(NodeId).collect(),
        ProxyConfig::default(),
        engine,
    )
}

fn request(client_id: u64) -> WebRequest {
    WebRequest {
        interaction: tpcw::Interaction::Home,
        client_id,
        body: RequestBody::Home {
            customer: Some(CustomerId(1)),
        },
    }
}

/// Pumps the engine, returning messages delivered per node.
fn pump(
    engine: &mut Engine<ClusterMsg>,
    proxy: &mut ProxyNode,
    until: SimTime,
) -> Vec<(usize, ClusterMsg)> {
    let mut out = Vec::new();
    while let Some((_, ev)) = engine.next_event_before(until) {
        match ev {
            Event::Message { from, to, payload } => {
                if to.index() == SERVERS {
                    proxy.on_message(engine, from, payload);
                } else {
                    out.push((to.index(), payload));
                }
            }
            Event::Timer { node, token } if node.index() == SERVERS => {
                proxy.on_timer(engine, token);
            }
            _ => {}
        }
    }
    out
}

#[test]
fn probes_mark_silent_server_down_after_fall_threshold() {
    let mut e = engine();
    let mut p = proxy(&mut e);
    assert_eq!(p.healthy_count(), 3);
    // Server 2 never answers probes. After 4 failed rounds (~2s apart,
    // settled one round later) it must be out of rotation.
    let mut t = 0u64;
    while t < 14 {
        t += 1;
        let delivered = pump(&mut e, &mut p, SimTime::from_secs(t));
        // Servers 0 and 1 answer their probes; server 2 stays silent.
        for (node, msg) in delivered {
            if let ClusterMsg::Probe { seq } = msg {
                if node != 2 {
                    e.send(
                        NodeId(node),
                        NodeId(SERVERS),
                        ClusterMsg::ProbeReply {
                            seq,
                            server: node,
                            ready: true,
                        },
                    );
                }
            }
        }
    }
    assert!(!p.is_healthy(2), "silent server must fall out");
    assert!(p.is_healthy(0) && p.is_healthy(1));
    assert_eq!(p.healthy_count(), 2);
}

#[test]
fn not_ready_replies_also_count_as_failures_and_rise_readmits() {
    let mut e = engine();
    let mut p = proxy(&mut e);
    let mut ready = false;
    let mut t = 0u64;
    while t < 30 {
        t += 1;
        if t == 16 {
            // The server finishes recovering: starts answering ready.
            ready = true;
        }
        let delivered = pump(&mut e, &mut p, SimTime::from_secs(t));
        for (node, msg) in delivered {
            if let ClusterMsg::Probe { seq } = msg {
                let is_ready = if node == 2 { ready } else { true };
                e.send(
                    NodeId(node),
                    NodeId(SERVERS),
                    ClusterMsg::ProbeReply {
                        seq,
                        server: node,
                        ready: is_ready,
                    },
                );
            }
        }
        if t == 15 {
            assert!(!p.is_healthy(2), "503s must take the server out");
        }
    }
    assert!(p.is_healthy(2), "two good probes re-admit it");
}

#[test]
fn hash_balancing_is_stable_per_client() {
    let mut e = engine();
    let mut p = proxy(&mut e);
    // Same client twice → same server; different clients spread.
    let mut targets = Vec::new();
    for round in 0..2 {
        for client in 0..12u64 {
            let req_id = round * 100 + client;
            p.on_message(
                &mut e,
                NodeId(4),
                ClusterMsg::Request {
                    req_id,
                    request: request(client),
                },
            );
        }
    }
    let delivered = pump(&mut e, &mut p, SimTime::from_secs(1));
    let mut per_client: std::collections::HashMap<u64, Vec<usize>> = Default::default();
    for (node, msg) in delivered {
        if let ClusterMsg::Request { request, .. } = msg {
            per_client.entry(request.client_id).or_default().push(node);
            targets.push(node);
        }
    }
    for (client, nodes) in &per_client {
        assert!(
            nodes.windows(2).all(|w| w[0] == w[1]),
            "client {client} bounced between {nodes:?}"
        );
    }
    let distinct: std::collections::HashSet<usize> = targets.into_iter().collect();
    assert!(distinct.len() >= 2, "load must spread across servers");
}

#[test]
fn dead_server_requests_redispatch_after_retry_delays() {
    let mut e = engine();
    let mut p = proxy(&mut e);
    e.crash(NodeId(0));
    for client in 0..64u64 {
        p.on_message(
            &mut e,
            NodeId(4),
            ClusterMsg::Request {
                req_id: client,
                request: request(client),
            },
        );
    }
    // After the retry delays (3 × 1 s) everything must have landed on a
    // live server — zero client-visible errors. Live servers keep
    // answering their probes so they stay in rotation.
    let mut reached = 0;
    while let Some((_, ev)) = e.next_event_before(SimTime::from_secs(10)) {
        match ev {
            Event::Message { from, to, payload } if to.index() == SERVERS => {
                p.on_message(&mut e, from, payload);
            }
            Event::Message { to, payload, .. } => match payload {
                ClusterMsg::Probe { seq } => {
                    let node = to.index();
                    e.send(
                        NodeId(node),
                        NodeId(SERVERS),
                        ClusterMsg::ProbeReply {
                            seq,
                            server: node,
                            ready: true,
                        },
                    );
                }
                ClusterMsg::Request { .. } => {
                    assert_ne!(to.index(), 0, "request delivered to a dead server");
                    reached += 1;
                }
                ClusterMsg::ConnError { .. } => {
                    panic!("redispatch must avoid client errors")
                }
                _ => {}
            },
            Event::Timer { node, token } if node.index() == SERVERS => {
                p.on_timer(&mut e, token);
            }
            _ => {}
        }
    }
    assert_eq!(reached, 64);
    assert_eq!(p.errors_emitted(), 0);
}

#[test]
fn all_servers_down_surfaces_an_error() {
    let mut e = engine();
    let mut p = proxy(&mut e);
    for s in 0..SERVERS {
        e.crash(NodeId(s));
    }
    p.on_message(
        &mut e,
        NodeId(4),
        ClusterMsg::Request {
            req_id: 7,
            request: request(1),
        },
    );
    // The retries exhaust against dead machines; the client must get an
    // explicit error rather than silence.
    let mut got_error = false;
    while let Some((_, ev)) = e.next_event_before(SimTime::from_secs(20)) {
        match ev {
            Event::Message { to, payload, .. } if to.index() == 4 => {
                if matches!(payload, ClusterMsg::ConnError { req_id: 7 }) {
                    got_error = true;
                }
            }
            Event::Message { from, to, payload } if to.index() == SERVERS => {
                p.on_message(&mut e, from, payload);
            }
            Event::Timer { node, token } if node.index() == SERVERS => {
                p.on_timer(&mut e, token);
            }
            _ => {}
        }
    }
    assert!(got_error);
    assert!(p.errors_emitted() >= 1);
}

#[test]
fn responses_flow_back_to_the_requesting_client() {
    let mut e = engine();
    let mut p = proxy(&mut e);
    p.on_message(
        &mut e,
        NodeId(4),
        ClusterMsg::Request {
            req_id: 9,
            request: request(5),
        },
    );
    // Deliver to the chosen server, then answer.
    let delivered = pump(&mut e, &mut p, SimTime::from_secs(1));
    let (server, _) = delivered
        .iter()
        .find(|(_, m)| matches!(m, ClusterMsg::Request { .. }))
        .expect("forwarded");
    p.on_message(
        &mut e,
        NodeId(*server),
        ClusterMsg::Response {
            req_id: 9,
            interaction: tpcw::Interaction::Home,
            ok: true,
            session: tpcw::SessionUpdate::default(),
            bytes: 1000,
        },
    );
    let mut client_got = false;
    while let Some((_, ev)) = e.next_event_before(SimTime::from_secs(2)) {
        if let Event::Message { to, payload, .. } = ev {
            if to.index() == 4 && matches!(payload, ClusterMsg::Response { req_id: 9, .. }) {
                client_got = true;
            }
        }
    }
    assert!(client_got);
}
