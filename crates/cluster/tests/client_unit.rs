//! Unit tests of the client node (RBE host): think/issue/response
//! cycles, error handling, and the stale-request sweep.

use cluster::{ClientNode, ClusterMsg};
use simnet::{Engine, Event, NodeId, SimConfig, SimTime};
use tpcw::{Profile, RbeConfig, Recorder, SessionUpdate};

const PROXY: usize = 0;
const CLIENT: usize = 1;

fn setup(count: usize) -> (Engine<ClusterMsg>, ClientNode, Recorder) {
    let mut engine = Engine::new(2, SimConfig::default(), 3);
    let client = ClientNode::new(
        NodeId(CLIENT),
        NodeId(PROXY),
        count,
        0,
        RbeConfig {
            profile: Profile::Shopping,
            think_mean_us: 500_000,
            items: 100,
            customers: 2_880,
        },
        9,
        5_000_000,
        &mut engine,
    );
    (engine, client, Recorder::new(300_000_000))
}

/// Runs the client, answering every request after `reply_after` µs of
/// simulated service (or never, if `None`). Returns requests seen.
fn run(
    engine: &mut Engine<ClusterMsg>,
    client: &mut ClientNode,
    rec: &mut Recorder,
    until: SimTime,
    reply: bool,
) -> usize {
    let mut seen = 0;
    while let Some((_, ev)) = engine.next_event_before(until) {
        match ev {
            Event::Message {
                to,
                payload: ClusterMsg::Request { req_id, request },
                ..
            } if to.index() == PROXY => {
                seen += 1;
                if reply {
                    engine.send(
                        NodeId(PROXY),
                        NodeId(CLIENT),
                        ClusterMsg::Response {
                            req_id,
                            interaction: request.interaction,
                            ok: true,
                            session: SessionUpdate::default(),
                            bytes: 2_000,
                        },
                    );
                }
            }
            Event::Message { to, payload, .. } if to.index() == CLIENT => {
                client.on_message(engine, payload, rec);
            }
            Event::Timer { node, token } if node.index() == CLIENT => {
                client.on_timer(engine, token, rec);
            }
            _ => {}
        }
    }
    seen
}

#[test]
fn closed_loop_throughput_matches_think_time() {
    let (mut engine, mut client, mut rec) = setup(20);
    // 20 RBEs at 0.5 s mean think → ≈40 interactions/s when responses
    // are instant; over 30 s that is ≈1200 completions.
    let seen = run(
        &mut engine,
        &mut client,
        &mut rec,
        SimTime::from_secs(30),
        true,
    );
    assert!(seen > 800, "issued {seen}");
    assert_eq!(rec.total_ok() as usize, seen, "every reply recorded");
    assert_eq!(rec.total_errors(), 0);
    let awips = rec.awips(5_000_000, 30_000_000);
    assert!((25.0..60.0).contains(&awips), "closed-loop AWIPS {awips}");
}

#[test]
fn unanswered_requests_time_out_via_sweep() {
    let (mut engine, mut client, mut rec) = setup(5);
    // Nothing ever answers: the 60 s client timeout + 5 s sweep must
    // reclaim each browser and record an error.
    run(
        &mut engine,
        &mut client,
        &mut rec,
        SimTime::from_secs(80),
        false,
    );
    assert_eq!(rec.total_ok(), 0);
    assert!(
        rec.total_errors() >= 5,
        "each browser times out at least once: {}",
        rec.total_errors()
    );
    assert_eq!(client.in_flight(), 5, "browsers re-issued after timeout");
}

#[test]
fn conn_errors_count_and_browser_continues() {
    let (mut engine, mut client, mut rec) = setup(3);
    let mut errored = 0;
    while let Some((_, ev)) = engine.next_event_before(SimTime::from_secs(20)) {
        match ev {
            Event::Message {
                to,
                payload: ClusterMsg::Request { req_id, .. },
                ..
            } if to.index() == PROXY => {
                errored += 1;
                engine.send(
                    NodeId(PROXY),
                    NodeId(CLIENT),
                    ClusterMsg::ConnError { req_id },
                );
            }
            Event::Message { to, payload, .. } if to.index() == CLIENT => {
                client.on_message(&mut engine, payload, &mut rec);
            }
            Event::Timer { node, token } if node.index() == CLIENT => {
                client.on_timer(&mut engine, token, &mut rec);
            }
            _ => {}
        }
    }
    assert!(
        errored > 30,
        "browsers keep retrying after errors: {errored}"
    );
    assert_eq!(rec.total_errors() as usize, errored);
    assert_eq!(rec.total_ok(), 0);
}

#[test]
fn served_error_pages_recorded_against_accuracy() {
    let (mut engine, mut client, mut rec) = setup(2);
    while let Some((_, ev)) = engine.next_event_before(SimTime::from_secs(10)) {
        match ev {
            Event::Message {
                to,
                payload: ClusterMsg::Request { req_id, request },
                ..
            } if to.index() == PROXY => {
                engine.send(
                    NodeId(PROXY),
                    NodeId(CLIENT),
                    ClusterMsg::Response {
                        req_id,
                        interaction: request.interaction,
                        ok: false, // business error page
                        session: SessionUpdate::default(),
                        bytes: 800,
                    },
                );
            }
            Event::Message { to, payload, .. } if to.index() == CLIENT => {
                client.on_message(&mut engine, payload, &mut rec);
            }
            Event::Timer { node, token } if node.index() == CLIENT => {
                client.on_timer(&mut engine, token, &mut rec);
            }
            _ => {}
        }
    }
    let (conn, served) = rec.error_breakdown();
    assert_eq!(conn, 0);
    assert!(served > 5, "served error pages recorded: {served}");
    assert!(rec.accuracy_percent() < 100.0);
}
