//! Tracing must be a pure observer: bit-deterministic across same-seed
//! runs, and invisible to the simulation it watches.

use cluster::{run_experiment, ExperimentConfig, RunReport};
use faultload::Faultload;
use tpcw::Profile;

fn crash_config(traced: bool) -> ExperimentConfig {
    let mut config = ExperimentConfig::quick(5, Profile::Shopping);
    config.faultload = Faultload::single_crash().scaled(1, 6);
    if traced {
        config.trace = simnet::TraceConfig::on();
    }
    config
}

/// A fingerprint of everything the workload can observe — if tracing
/// perturbed the run, at least one of these diverges.
fn fingerprint(report: &RunReport) -> String {
    format!(
        "awips={:x} wirt={:x} net={}:{} disk={}:{} status={:?} spans={:?}",
        report.awips.to_bits(),
        report.mean_wirt_ms.to_bits(),
        report.net_messages,
        report.net_bytes,
        report.disk_writes,
        report.disk_appends,
        report.server_status,
        report.spans,
    )
}

#[test]
fn same_seed_traces_are_byte_identical() {
    let a = run_experiment(&crash_config(true));
    let b = run_experiment(&crash_config(true));
    assert!(!a.trace.is_empty(), "traced run must produce records");
    let ja = obs::jsonl::encode_all(&a.trace);
    let jb = obs::jsonl::encode_all(&b.trace);
    assert_eq!(ja.len(), jb.len(), "trace sizes diverge");
    assert!(ja == jb, "same-seed traces must be byte-identical");
    // The metrics registries are derived from the same stream.
    assert_eq!(a.metrics, b.metrics);
    // And the trace actually covers the incident end to end.
    let breakdowns = obs::analyze::recovery_breakdowns(&a.trace);
    assert_eq!(breakdowns.len(), 1, "one crash incident expected");
    assert!(breakdowns[0].complete, "recovery must complete in trace");
}

/// The windowed timeline and span profile are pure functions of the
/// trace, so their CSV/JSONL exports must be byte-identical across
/// same-seed runs — and the availability decomposition they derive must
/// describe the injected crash, not an artifact of windowing.
#[test]
fn timeline_exports_are_deterministic_and_bracket_the_crash() {
    let a = run_experiment(&crash_config(true));
    let b = run_experiment(&crash_config(true));
    // Crash at 45 s; with 5 s windows a 12-window lookback would reach
    // into the ramp-up and depress the baseline, so use the post-ramp
    // steady state only.
    let cfg = obs::TimelineConfig {
        baseline_windows: 3,
        ..Default::default()
    };
    let build = |r: &RunReport| {
        let mut tl = obs::Timeline::from_records(&r.trace, cfg.window_us);
        let profile = obs::SpanProfile::from_records(&r.trace);
        tl.dominant_phase = profile.dominant_phases(tl.window_us, tl.windows.len());
        (tl, profile)
    };
    let (tl, profile) = build(&a);
    let (tl_b, _) = build(&b);
    assert_eq!(
        tl.csv_rows("run"),
        tl_b.csv_rows("run"),
        "same-seed timeline CSV must be byte-identical"
    );
    assert_eq!(
        tl.to_jsonl("run"),
        tl_b.to_jsonl("run"),
        "same-seed timeline JSONL must be byte-identical"
    );

    // Exactly one crash incident, with the degraded stretch bracketing
    // the crash and a measured failover, ramp-back and detection.
    let reports = obs::availability_reports(&tl, &cfg);
    assert_eq!(reports.len(), 1, "one crash incident expected");
    let r = &reports[0];
    assert!(r.baseline_wips > 0.0);
    assert!(
        r.brackets_crash(),
        "degraded stretch must bracket the crash: {r:?}"
    );
    assert!(r.degraded_us > 0);
    assert!(r.wips_dip_pct > 0.0);
    assert!(
        r.time_to_failover_us.is_some_and(|us| us > 0),
        "nonzero time to failover: {r:?}"
    );
    assert!(
        r.ramp_to_95pct_us.is_some_and(|us| us > 0),
        "nonzero ramp back to 95% of baseline: {r:?}"
    );
    assert!(
        r.time_to_detect_us.is_some_and(|us| us > 0),
        "the watchdog restart must be visible as detection time"
    );

    // Spans were stitched, and their pipeline phases telescope exactly
    // to the middleware's end-to-end commit latency (the "within 5%"
    // budget is met with zero slack by construction).
    assert!(!profile.spans.is_empty(), "traced run must stitch spans");
    for span in &profile.spans {
        assert_eq!(span.phase_sum_us(), span.total_us, "span {:?}", span);
    }
    // Windows with deliveries name a dominant phase.
    assert!(
        tl.dominant_phase.iter().any(|p| p.is_some()),
        "at least one window must name a dominant critical-path phase"
    );
}

/// The cross-node causal DAG reconstructed from a traced crash run must
/// attribute blame exactly: every decided slot's critical path telescopes
/// to the measured commit latency, the synchronous log write shows up as
/// disk-fsync blame, and the whole profile is a pure function of the
/// trace (byte-identical exports across same-seed runs).
#[test]
fn causal_blame_telescopes_and_exports_deterministically() {
    let a = run_experiment(&crash_config(true));
    let b = run_experiment(&crash_config(true));
    let pa = obs::CausalProfile::from_records(&a.trace);
    let pb = obs::CausalProfile::from_records(&b.trace);
    assert!(
        !pa.paths.is_empty(),
        "traced crash run must yield causal paths"
    );
    for path in &pa.paths {
        assert!(path.telescopes(), "blame must telescope: {path:?}");
    }
    let by_cat = pa.blame_by_category();
    assert!(
        by_cat[obs::BlameCategory::DiskFsync.index()] > 0,
        "synchronous log appends must appear as disk-fsync blame"
    );
    assert_eq!(
        pa.to_jsonl(),
        pb.to_jsonl(),
        "same-seed causal JSONL must be byte-identical"
    );
    assert_eq!(
        pa.blame_csv("run"),
        pb.blame_csv("run"),
        "same-seed blame CSV must be byte-identical"
    );
    // The trace names failure-detector incidents for the injected crash.
    let fd = obs::fd_quality(&a.trace);
    assert_eq!(fd.incidents.len(), 1, "one crash incident expected");
    assert!(
        fd.incidents[0].detection_latency_us.is_some(),
        "some replica must suspect the crashed peer"
    );
}

#[test]
fn tracing_does_not_perturb_the_run() {
    let traced = run_experiment(&crash_config(true));
    let untraced = run_experiment(&crash_config(false));
    assert!(untraced.trace.is_empty(), "default-off must record nothing");
    assert!(untraced
        .metrics
        .iter()
        .all(|m| { m.counters.is_empty() && m.hists.is_empty() }));
    assert_eq!(fingerprint(&traced), fingerprint(&untraced));

    // The flight recorder (on by default) and a fully disabled tracer
    // must agree too: causal tags and transmission ids advance
    // unconditionally, so neither sink can perturb the run.
    let mut dark = crash_config(false);
    dark.trace.flight_records = 0;
    let dark = run_experiment(&dark);
    assert!(dark.trace.is_empty());
    assert_eq!(fingerprint(&traced), fingerprint(&dark));

    // The monitor is the same kind of pure observer: scrapes read
    // counters the workload already maintains and alerts only add trace
    // events, so a monitored run must fingerprint identically to the
    // fully dark one.
    let mut monitored = crash_config(false);
    monitored.trace.flight_records = 0;
    monitored.monitor = obs::MonitorConfig::on();
    let monitored = run_experiment(&monitored);
    assert!(
        !monitored.alerts.entries.is_empty(),
        "a monitored crash run must produce alert transitions"
    );
    assert_eq!(fingerprint(&traced), fingerprint(&monitored));
}

/// Same-seed monitored runs must produce byte-identical alert logs, and
/// the alerts must actually score: the injected crash is detected with
/// a positive latency and no false positives.
#[test]
fn same_seed_alert_logs_are_byte_identical_and_score_the_crash() {
    let monitored = || {
        let mut config = crash_config(false);
        config.monitor = obs::MonitorConfig::on();
        run_experiment(&config)
    };
    let a = monitored();
    let b = monitored();
    let lines = a.alerts.to_lines();
    assert!(!lines.is_empty(), "crash run must log alert transitions");
    assert_eq!(
        lines,
        b.alerts.to_lines(),
        "same-seed alert logs must be byte-identical"
    );
    assert!(
        !a.injections.is_empty(),
        "the faultload's injections must be recorded as ground truth"
    );

    let truth: Vec<obs::GroundTruth> = a
        .injections
        .incidents()
        .map(|i| obs::GroundTruth {
            at_us: i.at_us,
            node: i.node,
            kind: i.kind,
        })
        .collect();
    let score = obs::score_alerts(&a.alerts, &truth, &obs::ScoreConfig::default());
    assert_eq!(score.incidents.len(), 1, "one crash incident expected");
    assert_eq!(score.missed(), 0, "the crash must be detected");
    assert_eq!(score.false_positives, 0, "no spurious firings");
    assert!(
        score.incidents[0]
            .detection_latency_us
            .is_some_and(|us| us > 0),
        "detection latency must be positive"
    );
}

/// A fault-free monitored run must stay silent: no firings, no false
/// positives, at any of the swept sensitivities.
#[test]
fn fault_free_monitored_run_fires_nothing() {
    for (pending, scale) in [(1u32, 50u64), (2, 100)] {
        let mut config = ExperimentConfig::quick(5, Profile::Shopping);
        config.monitor = obs::MonitorConfig::on().with_sensitivity(pending, scale);
        let report = run_experiment(&config);
        assert_eq!(
            report.alerts.firings(),
            0,
            "fault-free run fired an alert at sensitivity ({pending}, {scale}): {:?}",
            report.alerts.entries
        );
        let score = obs::score_alerts(&report.alerts, &[], &obs::ScoreConfig::default());
        assert_eq!(score.false_positives, 0);
    }
}
