//! Tracing must be a pure observer: bit-deterministic across same-seed
//! runs, and invisible to the simulation it watches.

use cluster::{run_experiment, ExperimentConfig, RunReport};
use faultload::Faultload;
use tpcw::Profile;

fn crash_config(traced: bool) -> ExperimentConfig {
    let mut config = ExperimentConfig::quick(5, Profile::Shopping);
    config.faultload = Faultload::single_crash().scaled(1, 6);
    if traced {
        config.trace = simnet::TraceConfig::on();
    }
    config
}

/// A fingerprint of everything the workload can observe — if tracing
/// perturbed the run, at least one of these diverges.
fn fingerprint(report: &RunReport) -> String {
    format!(
        "awips={:x} wirt={:x} net={}:{} disk={}:{} status={:?} spans={:?}",
        report.awips.to_bits(),
        report.mean_wirt_ms.to_bits(),
        report.net_messages,
        report.net_bytes,
        report.disk_writes,
        report.disk_appends,
        report.server_status,
        report.spans,
    )
}

#[test]
fn same_seed_traces_are_byte_identical() {
    let a = run_experiment(&crash_config(true));
    let b = run_experiment(&crash_config(true));
    assert!(!a.trace.is_empty(), "traced run must produce records");
    let ja = obs::jsonl::encode_all(&a.trace);
    let jb = obs::jsonl::encode_all(&b.trace);
    assert_eq!(ja.len(), jb.len(), "trace sizes diverge");
    assert!(ja == jb, "same-seed traces must be byte-identical");
    // The metrics registries are derived from the same stream.
    assert_eq!(a.metrics, b.metrics);
    // And the trace actually covers the incident end to end.
    let breakdowns = obs::analyze::recovery_breakdowns(&a.trace);
    assert_eq!(breakdowns.len(), 1, "one crash incident expected");
    assert!(breakdowns[0].complete, "recovery must complete in trace");
}

#[test]
fn tracing_does_not_perturb_the_run() {
    let traced = run_experiment(&crash_config(true));
    let untraced = run_experiment(&crash_config(false));
    assert!(untraced.trace.is_empty(), "default-off must record nothing");
    assert!(untraced
        .metrics
        .iter()
        .all(|m| { m.counters.is_empty() && m.hists.is_empty() }));
    assert_eq!(fingerprint(&traced), fingerprint(&untraced));
}
