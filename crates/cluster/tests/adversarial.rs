//! Adversarial faultloads under the always-on invariant auditor.
//!
//! Every `run_experiment` call below asserts internally that zero
//! consensus invariants were violated; these tests additionally pin the
//! auditor's coverage (it actually checked things) and the determinism
//! of seeded fault injection.

use cluster::{run_experiment, ExperimentConfig};
use faultload::{Faultload, LinkFaultSpec};
use tpcw::Profile;

fn quick(seed: u64) -> ExperimentConfig {
    let mut config = ExperimentConfig::quick(5, Profile::Shopping);
    config.seed = seed;
    config
}

#[test]
fn lossy_duplicating_reordering_links_across_seeds() {
    for seed in 0..10u64 {
        let mut config = quick(seed);
        let until = config.schedule.total_us();
        config.faultload = Faultload::lossy_links(
            0,
            until,
            LinkFaultSpec {
                loss: 0.03,
                duplicate: 0.02,
                reorder: 0.15,
                reorder_delay_us: 5_000,
            },
        );
        let report = run_experiment(&config);
        assert!(
            report.audit.checks > 1_000,
            "seed {seed}: auditor must be active"
        );
        assert!(report.awips > 50.0, "seed {seed}: AWIPS {}", report.awips);
    }
}

#[test]
fn partition_flaps_across_seeds() {
    for seed in 0..10u64 {
        let mut config = quick(seed);
        let measure = config.schedule.measure_start_us();
        // Three cut/heal cycles of a two-node minority, 4s cut / 6s heal.
        config.faultload = Faultload::partition_flap(measure, 3, 4_000_000, 6_000_000, vec![1, 3]);
        let report = run_experiment(&config);
        assert!(
            report.audit.checks > 1_000,
            "seed {seed}: auditor must be active"
        );
    }
}

#[test]
fn disk_write_failures_and_torn_tails_across_seeds() {
    for seed in 0..10u64 {
        let mut config = quick(seed);
        let (start, end) = (
            config.schedule.measure_start_us(),
            config.schedule.measure_end_us(),
        );
        config.faultload = Faultload::faulty_disk(start, end, 0, 0.001);
        let report = run_experiment(&config);
        assert!(
            report.audit.checks > 1_000,
            "seed {seed}: auditor must be active"
        );
    }
}

#[test]
fn adversarial_mix_survives_and_recovers() {
    let mut config = quick(7);
    config.faultload = Faultload::adversarial_mix(config.schedule.total_us() * 3 / 4);
    let report = run_experiment(&config);
    assert!(report.audit.checks > 1_000, "auditor must be active");
    // The mix crashes one replica (plus any fsync-failure fail-stops);
    // every observed outage must have restarted.
    assert!(
        !report.spans.is_empty(),
        "the mix injects at least one crash"
    );
    for span in &report.spans {
        assert!(
            span.restart_at > span.crash_at,
            "watchdog restarted {span:?}"
        );
    }
}

#[test]
fn same_seed_same_faultload_is_bit_identical() {
    let run = || {
        let mut config = quick(3);
        config.faultload = Faultload::adversarial_mix(config.schedule.total_us() * 3 / 4);
        run_experiment(&config)
    };
    let (a, b) = (run(), run());
    assert_eq!(
        a.recorder.wips_series(),
        b.recorder.wips_series(),
        "WIPS series must be deterministic under injected faults"
    );
    assert_eq!(a.audit, b.audit, "audit report must be deterministic");
    assert_eq!(a.net_messages, b.net_messages);
    assert_eq!(a.disk_writes, b.disk_writes);
}
