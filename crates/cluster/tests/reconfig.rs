//! Planned membership changes (configuration epochs) under the
//! always-on invariant auditor.
//!
//! Every `run_experiment` call asserts internally that zero consensus
//! invariants were violated — including the epoch-aware agreement
//! check: two replicas applying the same slot under different epochs
//! is a violation. These tests drive the operator scenarios end to
//! end: replace, scale-down, permanent loss with reprovisioning, and
//! a rolling restart, plus a property test interleaving a reconfig
//! with crashes and partition flaps.

use cluster::{run_experiment, ExperimentConfig};
use faultload::{FaultEvent, Faultload, RecoveryKind};
use proptest::prelude::*;
use tpcw::Profile;

fn quick(seed: u64) -> ExperimentConfig {
    let mut config = ExperimentConfig::quick(5, Profile::Shopping);
    config.seed = seed;
    config
}

#[test]
fn replace_completes_and_the_joiner_serves() {
    let mut config = quick(11);
    let at = config.schedule.measure_start_us() + 10_000_000;
    config.faultload = Faultload::reconfig_replace(at, 0);
    let report = run_experiment(&config);

    assert_eq!(report.reconfigs.len(), 1);
    let incident = &report.reconfigs[0];
    assert_eq!(incident.target_epoch, 1);
    assert!(
        incident.accepted_at_us.is_some(),
        "a leader took the decree"
    );
    let done = incident
        .completed_at_us
        .expect("the epoch switch must complete");
    assert!(done >= incident.submitted_at_us);
    assert_eq!(incident.add, vec![5], "the joiner takes the spare slot");

    // The joiner was provisioned and finished catch-up.
    let joiner = report.server_status[5]
        .as_ref()
        .expect("spare slot 5 provisioned");
    assert!(!joiner.recovering, "joiner caught up via snapshot shipping");
    assert!(joiner.applied > 0, "joiner applied post-join traffic");
    assert_eq!(joiner.paxos.epoch, 1, "joiner runs in the new epoch");

    assert!(report.audit.checks > 1_000, "auditor must be active");
    assert!(report.awips > 50.0, "AWIPS {}", report.awips);
}

#[test]
fn remove_shrinks_the_ensemble_and_a_later_crash_is_survived() {
    let mut config = quick(12);
    let measure = config.schedule.measure_start_us();
    let mut faultload = Faultload::reconfig_remove(measure + 8_000_000, vec![1]);
    // After the 5 -> 4 shrink, crash another replica: 3 of 4 alive
    // still holds a classic quorum, so the run must stay live.
    faultload.events.push(FaultEvent {
        at_us: measure + 25_000_000,
        victim: 2,
        recovery: RecoveryKind::Autonomous,
    });
    config.faultload = faultload;
    let report = run_experiment(&config);

    let incident = &report.reconfigs[0];
    assert!(incident.completed_at_us.is_some(), "shrink must complete");
    assert!(incident.add.is_empty());
    assert_eq!(incident.remove.len(), 1);

    // Survivors track the shrunk N in the new epoch.
    let survivor = report
        .server_status
        .iter()
        .flatten()
        .find(|s| s.paxos.epoch == 1 && !s.recovering)
        .expect("a survivor reports the new epoch");
    assert_eq!(survivor.paxos.n, 4, "mode rule tracks the shrunk N");

    assert!(report.audit.checks > 1_000, "auditor must be active");
    assert!(report.awips > 40.0, "AWIPS {}", report.awips);
}

#[test]
fn permanent_loss_is_restored_by_reprovisioning() {
    let mut config = quick(13);
    let measure = config.schedule.measure_start_us();
    config.faultload = Faultload::permanent_loss(measure + 5_000_000, measure + 15_000_000);
    let report = run_experiment(&config);

    // The dead machine never restarts; its outage span stays open.
    assert_eq!(report.spans.len(), 1);
    assert!(
        report.spans[0].recovered_at.is_none(),
        "hardware loss never recovers in place"
    );
    // The replacement joins through the configuration change instead.
    let incident = &report.reconfigs[0];
    assert!(
        incident.completed_at_us.is_some(),
        "reprovisioning must complete without the dead machine"
    );
    let joiner = report.server_status[5]
        .as_ref()
        .expect("replacement provisioned");
    assert!(!joiner.recovering);

    assert!(report.audit.checks > 1_000, "auditor must be active");
}

#[test]
fn rolling_restart_keeps_the_service_up() {
    let mut config = quick(14);
    let measure = config.schedule.measure_start_us();
    config.faultload = Faultload::rolling_restart(measure + 5_000_000, 10_000_000, 3);
    let report = run_experiment(&config);

    assert_eq!(report.spans.len(), 3);
    for span in &report.spans {
        assert!(
            span.restart_at > span.crash_at,
            "watchdog restarted {span:?}"
        );
        assert!(
            span.recovered_at.is_some(),
            "each restarted replica re-learns and serves again: {span:?}"
        );
    }
    // One replica down at a time out of five never loses the classic
    // quorum, so membership never changed and throughput stays up.
    assert!(report.reconfigs.is_empty());
    assert!(report.audit.checks > 1_000, "auditor must be active");
    assert!(report.awips > 50.0, "AWIPS {}", report.awips);
}

#[test]
fn same_seed_same_reconfig_is_bit_identical() {
    let run = || {
        let mut config = quick(3);
        let at = config.schedule.measure_start_us() + 10_000_000;
        config.faultload = Faultload::reconfig_replace(at, 1);
        run_experiment(&config)
    };
    let (a, b) = (run(), run());
    assert_eq!(
        a.recorder.wips_series(),
        b.recorder.wips_series(),
        "WIPS series must be deterministic under reconfiguration"
    );
    assert_eq!(a.audit, b.audit, "audit report must be deterministic");
    assert_eq!(
        a.reconfigs[0].completed_at_us,
        b.reconfigs[0].completed_at_us
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// An arbitrary interleaving of one membership change with a crash
    /// and a partition flap never violates per-epoch agreement and
    /// never delivers a decree under the wrong epoch's quorum rule —
    /// `run_experiment` asserts the auditor found zero violations
    /// before returning, and the auditor checks fast-path quorums
    /// against the *sender's* epoch N and flags any slot applied under
    /// two different epochs.
    #[test]
    fn reconfig_interleaved_with_faults_preserves_per_epoch_agreement(
        seed in 0u64..1_000,
        kind in 0u8..3,
        reconfig_off_s in 2u64..30,
        crash_off_s in 2u64..30,
        crash_victim in 0usize..5,
        flap_sel in 0u8..2,
    ) {
        let mut config = quick(seed);
        let measure = config.schedule.measure_start_us();
        let mut faultload = match kind {
            0 => Faultload::reconfig_add(measure + reconfig_off_s * 1_000_000, 1),
            1 => Faultload::reconfig_remove(measure + reconfig_off_s * 1_000_000, vec![1]),
            _ => Faultload::reconfig_replace(measure + reconfig_off_s * 1_000_000, 0),
        };
        faultload.events.push(FaultEvent {
            at_us: measure + crash_off_s * 1_000_000,
            victim: crash_victim,
            recovery: RecoveryKind::Autonomous,
        });
        if flap_sel == 1 {
            // One 3s cut of a single-node minority mid-interval.
            faultload.partitions =
                Faultload::partition_flap(measure + 12_000_000, 1, 3_000_000, 3_000_000, vec![2])
                    .partitions;
        }
        config.faultload = faultload;
        // The oracle: run_experiment panics on any auditor violation
        // (per-epoch agreement, quorum-rule, durability).
        let report = run_experiment(&config);
        prop_assert!(report.audit.checks > 1_000, "auditor must be active");
    }
}
