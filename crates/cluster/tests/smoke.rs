//! End-to-end smoke tests of the full simulated testbed.

use cluster::{run_experiment, ExperimentConfig};
use faultload::Faultload;
use tpcw::Profile;

#[test]
fn failure_free_run_delivers_load() {
    let config = ExperimentConfig::quick(5, Profile::Shopping);
    let report = run_experiment(&config);
    eprintln!(
        "AWIPS={:.1} WIRT={:.1}ms acc={:.3}% err={}",
        report.awips,
        report.mean_wirt_ms,
        report.dependability.accuracy_percent,
        report.recorder.total_errors()
    );
    // 200 RBEs with 1s think → close to 200 WIPS delivered.
    assert!(report.awips > 150.0, "AWIPS {}", report.awips);
    assert!(report.mean_wirt_ms < 500.0, "WIRT {}", report.mean_wirt_ms);
    assert!(report.dependability.accuracy_percent > 99.0);
}

#[test]
fn single_crash_recovers_autonomously() {
    let mut config = ExperimentConfig::quick(5, Profile::Shopping);
    // Crash at half the (shortened) measurement interval.
    config.faultload = Faultload::single_crash().scaled(1, 6); // t=45s
    let report = run_experiment(&config);
    eprintln!(
        "AWIPS={:.1} spans={:?} acc={:.3}%",
        report.awips, report.spans, report.dependability.accuracy_percent
    );
    assert_eq!(report.spans.len(), 1);
    let span = report.spans[0];
    assert!(span.recovered_at.is_some(), "recovery must complete");
    assert!(report.dependability.autonomy == 1.0);
    assert!(report.awips > 100.0);
}
