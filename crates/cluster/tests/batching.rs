//! Group-commit batching at cluster scale: determinism, log-append
//! coalescing, and invariant preservation across crash/recovery.
//!
//! `run_experiment` asserts a zero-violation audit before returning, so
//! every test here implicitly checks that batching never breaks
//! agreement, durability ordering, or intra-batch delivery order.

use cluster::{run_experiment, ExperimentConfig};
use faultload::Faultload;
use tpcw::Profile;

fn batched(profile: Profile, batch: usize) -> ExperimentConfig {
    let mut config = ExperimentConfig::quick(5, profile);
    config.batch_max_updates = batch;
    config.batch_window_us = if batch == 1 { 0 } else { 2_000 };
    config
}

fn committed(report: &cluster::RunReport) -> u64 {
    report
        .server_status
        .iter()
        .flatten()
        .map(|s| s.applied)
        .max()
        .unwrap_or(0)
}

#[test]
fn batched_runs_are_bit_deterministic() {
    let a = run_experiment(&batched(Profile::Shopping, 8));
    let b = run_experiment(&batched(Profile::Shopping, 8));
    assert_eq!(a.awips.to_bits(), b.awips.to_bits(), "AWIPS bit-identical");
    assert_eq!(a.net_messages, b.net_messages);
    assert_eq!(a.net_bytes, b.net_bytes);
    assert_eq!(a.disk_writes, b.disk_writes);
    assert_eq!(a.disk_appends, b.disk_appends);
    assert_eq!(committed(&a), committed(&b));
}

#[test]
fn batching_coalesces_log_appends() {
    // Heavy load plus a window comfortably above the per-node update
    // inter-arrival time, so the group commit actually finds company.
    let saturated = |batch| {
        let mut config = batched(Profile::Ordering, batch);
        config.rbes = 1_500;
        config.think_us = 250_000;
        config.schedule = tpcw::Schedule::quick(30);
        if batch > 1 {
            config.batch_window_us = 20_000;
        }
        config
    };
    let unbatched = run_experiment(&saturated(1));
    let grouped = run_experiment(&saturated(8));
    let (u_committed, g_committed) = (committed(&unbatched), committed(&grouped));
    assert!(u_committed > 100, "baseline commits work: {u_committed}");
    assert!(
        g_committed as f64 >= u_committed as f64 * 0.8,
        "batching must not cost meaningful throughput: {g_committed} vs {u_committed}"
    );
    // The group commit's whole point: fewer consensus-log appends for
    // comparable committed work.
    let u_rate = unbatched.disk_appends as f64 / u_committed as f64;
    let g_rate = grouped.disk_appends as f64 / g_committed as f64;
    assert!(
        g_rate < u_rate * 0.8,
        "appends per committed update must drop: {g_rate:.3} vs {u_rate:.3}"
    );
    assert!(grouped.audit.checks > 1_000, "auditor actually ran");
}

#[test]
fn crash_recovery_with_batching_holds_invariants() {
    let mut config = batched(Profile::Shopping, 8);
    config.faultload = Faultload::single_crash().scaled(1, 9);
    let report = run_experiment(&config);
    assert_eq!(report.spans.len(), 1, "one crash span observed");
    assert!(
        report.spans[0].recovery_secs().is_some(),
        "crashed server recovers with batched records in its log"
    );
    assert!(report.audit.checks > 1_000, "auditor actually ran");
    assert!(committed(&report) > 100, "service continues through crash");
}
