//! A server replica node: Tomcat + RobustStore + Treplica.
//!
//! Each node runs the web tier (a FIFO CPU queue handling interactions
//! per the [`ServiceModel`](crate::ServiceModel)) over the Treplica
//! middleware hosting the replicated bookstore. Reads are answered from
//! local state; updates are submitted to the persistent queue and
//! answered when the action commits and applies locally — the paper's
//! blocking `execute()` semantics, with the client connection standing
//! in for the blocked caller.

use std::collections::{BTreeMap, VecDeque};

use paxos::ProposalId;
use robuststore::{Prepared, Reply, RobustStore, TpcwDatabase};
use simnet::{Engine, NodeId, SimDuration, StableOp};
use tpcw::{Interaction, PopulationParams, WebRequest};
use treplica::{Middleware, MwEffect, RecoveredDisk, TreplicaConfig};

use crate::audit::InvariantAuditor;
use crate::msg::ClusterMsg;
use crate::service::ServiceModel;

/// Timer token: middleware tick.
pub const TOKEN_TICK: u64 = 0;
/// Timer token: CPU work completion.
pub const TOKEN_WORK: u64 = 1;
/// Timer token: group-commit batch window expiry.
pub const TOKEN_BATCH: u64 = 2;

/// Middleware tick cadence.
pub const TICK_US: u64 = 20_000;

#[derive(Debug)]
enum WorkKind {
    Handle {
        req_id: u64,
        from: NodeId,
        request: WebRequest,
    },
    Apply {
        pid: ProposalId,
        reply: Reply,
    },
}

#[derive(Debug)]
struct WorkItem {
    kind: WorkKind,
    cost_us: u64,
}

/// One application-server replica.
#[derive(Debug)]
pub struct ServerNode {
    /// Server index (== consensus ReplicaId == simnet NodeId index).
    pub idx: usize,
    node: NodeId,
    mw: Middleware<RobustStore>,
    facade: TpcwDatabase,
    service: ServiceModel,
    queue: VecDeque<WorkItem>,
    busy: bool,
    outstanding: BTreeMap<ProposalId, (u64, NodeId, Interaction)>,
    ready: bool,
    /// Protocol CPU consumed since the last work item started: Treplica's
    /// threads preempt page rendering (OS time-slicing), so their cost is
    /// charged to the next piece of queued work rather than serialized
    /// behind it.
    cpu_debt_us: u64,
    /// Deadline (µs) the armed `TOKEN_BATCH` timer fires at, so the open
    /// batch's window is armed exactly once.
    batch_timer_armed: Option<u64>,
    /// Last second a `QueueSample` was traced for (one sample per
    /// second keeps the trace small).
    queue_sampled_sec: u64,
}

impl ServerNode {
    /// Boots a fresh replica (first start, empty disk) and arms its
    /// middleware tick.
    pub fn new(
        idx: usize,
        params: PopulationParams,
        config: TreplicaConfig,
        service: ServiceModel,
        engine: &mut Engine<ClusterMsg>,
        auditor: &mut InvariantAuditor,
    ) -> ServerNode {
        let node = NodeId(idx);
        let (mw, boot_fx) = Middleware::bootstrap(
            paxos::ReplicaId(idx as u32),
            RobustStore::new(params),
            config,
            engine.now().as_micros(),
        );
        engine.set_timer(node, SimDuration::from_micros(TICK_US), TOKEN_TICK);
        let mut server = ServerNode {
            idx,
            node,
            mw,
            facade: TpcwDatabase::new(0x00fa_cade ^ idx as u64),
            service,
            queue: VecDeque::new(),
            busy: false,
            outstanding: BTreeMap::new(),
            ready: true,
            cpu_debt_us: 0,
            batch_timer_armed: None,
            queue_sampled_sec: 0,
        };
        server.apply_mw_effects(engine, boot_fx, auditor);
        server
    }

    /// Boots a brand-new replica joining an already-running ensemble
    /// under `membership` (a spare provisioned by a reconfiguration).
    /// The membership must already contain this node's id — it is the
    /// *post*-reconfig configuration. The joiner starts from an empty
    /// disk and catches up via log shipping / snapshot transfer.
    pub fn join(
        idx: usize,
        params: PopulationParams,
        config: TreplicaConfig,
        membership: paxos::Membership,
        service: ServiceModel,
        engine: &mut Engine<ClusterMsg>,
        auditor: &mut InvariantAuditor,
    ) -> ServerNode {
        let node = NodeId(idx);
        let (mw, boot_fx) = Middleware::bootstrap_with_membership(
            paxos::ReplicaId(idx as u32),
            RobustStore::new(params),
            config,
            membership,
            engine.now().as_micros(),
        );
        engine.set_timer(node, SimDuration::from_micros(TICK_US), TOKEN_TICK);
        let mut server = ServerNode {
            idx,
            node,
            mw,
            facade: TpcwDatabase::new(0x00fa_cade ^ idx as u64),
            service,
            queue: VecDeque::new(),
            busy: false,
            outstanding: BTreeMap::new(),
            ready: true,
            cpu_debt_us: 0,
            batch_timer_armed: None,
            queue_sampled_sec: engine.now().as_micros() / 1_000_000,
        };
        server.apply_mw_effects(engine, boot_fx, auditor);
        server
    }

    /// Restarts a crashed replica from its durable disk. The node is
    /// not `ready` (health probes answer 503) until recovery completes.
    pub fn recover(
        idx: usize,
        params: PopulationParams,
        config: TreplicaConfig,
        service: ServiceModel,
        engine: &mut Engine<ClusterMsg>,
        auditor: &mut InvariantAuditor,
    ) -> ServerNode {
        let node = NodeId(idx);
        auditor.on_restart(idx, engine.store(node));
        let disk = RecoveredDisk::from_store(engine.store(node)).unwrap_or(RecoveredDisk {
            meta: None,
            log_entries: Vec::new(),
            log_first_index: 0,
            log_bytes: 0,
        });
        let epoch = engine.node_state(node).incarnation.0;
        let now = engine.now().as_micros();
        let (mut mw, fx) =
            Middleware::recover(paxos::ReplicaId(idx as u32), disk, config, epoch, now);
        mw.install_initial_state(RobustStore::new(params));
        engine.set_timer(node, SimDuration::from_micros(TICK_US), TOKEN_TICK);
        let mut server = ServerNode {
            idx,
            node,
            mw,
            facade: TpcwDatabase::new(0x00fa_cade ^ idx as u64 ^ (epoch << 32)),
            service,
            queue: VecDeque::new(),
            busy: false,
            outstanding: BTreeMap::new(),
            ready: false,
            cpu_debt_us: 0,
            batch_timer_armed: None,
            queue_sampled_sec: engine.now().as_micros() / 1_000_000,
        };
        server.apply_mw_effects(engine, fx, auditor);
        server
    }

    /// Whether the application is serving (post-recovery).
    pub fn is_ready(&self) -> bool {
        self.ready
    }

    /// The configuration this replica currently runs under.
    pub fn membership(&self) -> &paxos::Membership {
        self.mw.membership()
    }

    /// Whether a reconfiguration removed this replica from the ensemble.
    pub fn is_retired(&self) -> bool {
        self.mw.is_retired()
    }

    /// Submits an administrative membership change at this replica.
    /// Returns `false` if it is not the leader (or a reconfiguration is
    /// already pending) — the driver retries at another node.
    pub fn execute_reconfig(
        &mut self,
        engine: &mut Engine<ClusterMsg>,
        add: Vec<paxos::ReplicaId>,
        remove: Vec<paxos::ReplicaId>,
        auditor: &mut InvariantAuditor,
    ) -> bool {
        let now = engine.now().as_micros();
        let (ok, fx) = self.mw.execute_reconfig(add, remove, now);
        self.apply_mw_effects(engine, fx, auditor);
        ok
    }

    /// Middleware introspection.
    pub fn mw_status(&self) -> treplica::MwStatus {
        self.mw.status()
    }

    /// When this incarnation's recovery completed, if it was recovering.
    pub fn recovery_completed_at(&self) -> Option<u64> {
        self.mw.recovery_completed_at()
    }

    /// Stamps the middleware's buffered trace events into the engine's
    /// tracer under this node's id, then appends an `AuditViolation`
    /// event if the auditor flagged anything since the last drain — so a
    /// violation sits in the trace right after the events that caused it.
    fn drain_trace(&mut self, engine: &mut Engine<ClusterMsg>, auditor: &mut InvariantAuditor) {
        if !self.mw.trace_active() {
            return;
        }
        for ev in self.mw.take_trace() {
            engine.trace(self.node, ev);
        }
        let fresh = auditor.take_unreported_violations();
        if fresh > 0 {
            engine.trace(self.node, obs::TraceEvent::AuditViolation { count: fresh });
        }
    }

    fn apply_mw_effects(
        &mut self,
        engine: &mut Engine<ClusterMsg>,
        fx: Vec<MwEffect<RobustStore>>,
        auditor: &mut InvariantAuditor,
    ) {
        for e in fx {
            match e {
                MwEffect::Send { to, msg, bytes } => {
                    let now_us = engine.now().as_micros();
                    auditor.on_send(self.idx, &msg, &self.mw.status().paxos, now_us);
                    // Note the causal tag before the message moves into the
                    // engine; the `MsgTag` record joins the transmission id
                    // with the protocol-level provenance for `obs::causal`.
                    let tag_info = match &msg {
                        treplica::MwMsg::Paxos { tag, msg: m, .. } => Some((m.kind(), *tag)),
                        _ => None,
                    };
                    let xid = engine.send_sized(
                        self.node,
                        NodeId(to.index()),
                        ClusterMsg::Mw(msg),
                        bytes,
                    );
                    if engine.trace_active() {
                        if let Some((kind, tag)) = tag_info {
                            engine.trace(
                                self.node,
                                obs::TraceEvent::MsgTag {
                                    xid,
                                    kind,
                                    origin: tag.origin,
                                    cseq: tag.seq,
                                    slot: tag.slot,
                                    round: tag.round,
                                },
                            );
                        }
                    }
                }
                MwEffect::DiskWrite { op, token, nominal } => {
                    if let (Some(nom), StableOp::Put { key, .. }) = (nominal, &op) {
                        let key = key.clone();
                        engine.set_nominal(self.node, &key, nom);
                    }
                    auditor.on_disk_write(self.idx, &op, token, engine.now().as_micros());
                    engine.disk_write(self.node, op, token);
                }
                MwEffect::DiskRead { key, token } => engine.disk_read(self.node, &key, token),
                MwEffect::DiskReadRaw { bytes, token } => {
                    engine.disk_read_raw(self.node, bytes, token)
                }
                MwEffect::Applied {
                    slot,
                    index,
                    pid,
                    epoch,
                    reply,
                } => {
                    auditor.on_applied(self.idx, slot, index, pid, epoch, engine.now().as_micros());
                    let cost_us = self.service.apply_cost_us();
                    self.enqueue(
                        engine,
                        WorkItem {
                            kind: WorkKind::Apply { pid, reply },
                            cost_us,
                        },
                    );
                }
                MwEffect::Reconfigured { members, .. } => {
                    // A node the new configuration removed stops serving:
                    // health probes answer 503, the proxy routes around
                    // it, and the driver decommissions it.
                    if !members.contains(&paxos::ReplicaId(self.idx as u32)) {
                        self.ready = false;
                    }
                }
                MwEffect::RecoveryComplete => {
                    self.ready = true;
                }
            }
        }
        self.drain_trace(engine, auditor);
        self.sync_batch_timer(engine);
    }

    /// Arms a `TOKEN_BATCH` timer for the middleware's open group-commit
    /// window, if one exists and isn't armed yet. Timers left over from
    /// already-flushed batches fire as harmless no-ops.
    fn sync_batch_timer(&mut self, engine: &mut Engine<ClusterMsg>) {
        if let Some(deadline) = self.mw.batch_deadline() {
            if self.batch_timer_armed != Some(deadline) {
                self.batch_timer_armed = Some(deadline);
                let now = engine.now().as_micros();
                let delay = deadline.saturating_sub(now).max(1);
                engine.set_timer(self.node, SimDuration::from_micros(delay), TOKEN_BATCH);
            }
        } else {
            self.batch_timer_armed = None;
        }
    }

    fn enqueue(&mut self, engine: &mut Engine<ClusterMsg>, item: WorkItem) {
        self.queue.push_back(item);
        if engine.trace_enabled() {
            let depth = self.queue.len() as u64;
            engine
                .tracer_mut()
                .observe(self.idx as u32, "work_queue_depth", depth);
        }
        if !self.busy {
            self.busy = true;
            self.start_head(engine);
        }
    }

    fn start_head(&mut self, engine: &mut Engine<ClusterMsg>) {
        let cost = self.queue.front().expect("head present").cost_us + self.cpu_debt_us;
        self.cpu_debt_us = 0;
        engine.set_timer(self.node, SimDuration::from_micros(cost), TOKEN_WORK);
    }

    fn complete_head(&mut self, engine: &mut Engine<ClusterMsg>, auditor: &mut InvariantAuditor) {
        let item = match self.queue.pop_front() {
            Some(i) => i,
            None => {
                self.busy = false;
                return;
            }
        };
        match item.kind {
            WorkKind::Handle {
                req_id,
                from,
                request,
            } => {
                self.finish_handle(engine, req_id, from, request, auditor);
            }
            WorkKind::Apply { pid, reply } => {
                if let Some((req_id, from, interaction)) = self.outstanding.remove(&pid) {
                    let page = TpcwDatabase::write_result(interaction, &reply);
                    engine.send_sized(
                        self.node,
                        from,
                        ClusterMsg::Response {
                            req_id,
                            interaction,
                            ok: page.ok,
                            session: page.session,
                            bytes: page.page_bytes,
                        },
                        page.page_bytes,
                    );
                    // The blocked client is answered: the end of the
                    // paper's blocking execute() path, and the reply
                    // edge of this update's critical-path span.
                    if engine.trace_enabled() {
                        engine.trace(self.node, obs::TraceEvent::ReplySent { seq: pid.seq });
                    }
                }
            }
        }
        if self.queue.front().is_some() {
            self.start_head(engine);
        } else {
            self.busy = false;
        }
    }

    fn finish_handle(
        &mut self,
        engine: &mut Engine<ClusterMsg>,
        req_id: u64,
        from: NodeId,
        request: WebRequest,
        auditor: &mut InvariantAuditor,
    ) {
        let now = engine.now().as_micros();
        let interaction = request.interaction;
        match self.facade.prepare(&request, now) {
            Prepared::Read(op) => {
                let state = self.mw.state().expect("ready server has state");
                let page = TpcwDatabase::perform_read(state.store(), &op);
                engine.send_sized(
                    self.node,
                    from,
                    ClusterMsg::Response {
                        req_id,
                        interaction,
                        ok: page.ok,
                        session: page.session,
                        bytes: page.page_bytes,
                    },
                    page.page_bytes,
                );
            }
            Prepared::Write(action) => match self.mw.execute(action, now) {
                Ok((pid, fx)) => {
                    self.outstanding.insert(pid, (req_id, from, interaction));
                    self.apply_mw_effects(engine, fx, auditor);
                }
                Err(_) => {
                    engine.send(self.node, from, ClusterMsg::ConnError { req_id });
                }
            },
        }
    }

    /// Handles a message arriving at this server.
    pub fn on_message(
        &mut self,
        engine: &mut Engine<ClusterMsg>,
        from: NodeId,
        msg: ClusterMsg,
        auditor: &mut InvariantAuditor,
    ) {
        match msg {
            ClusterMsg::Mw(m) => {
                // Protocol handling is prompt (Treplica's threads and the
                // network stack preempt page rendering), but its CPU is
                // real: charge it as debt against the queued page work.
                self.cpu_debt_us += self.service.per_msg_us;
                let now = engine.now().as_micros();
                let fx = self
                    .mw
                    .on_message(paxos::ReplicaId(from.index() as u32), m, now);
                self.apply_mw_effects(engine, fx, auditor);
            }
            ClusterMsg::Probe { seq } => {
                engine.send(
                    self.node,
                    from,
                    ClusterMsg::ProbeReply {
                        seq,
                        server: self.idx,
                        ready: self.ready,
                    },
                );
            }
            ClusterMsg::Request { req_id, request } => {
                if !self.ready {
                    engine.send(self.node, from, ClusterMsg::ConnError { req_id });
                    return;
                }
                let cost_us = self.service.handle_cost_us(request.interaction);
                self.enqueue(
                    engine,
                    WorkItem {
                        kind: WorkKind::Handle {
                            req_id,
                            from,
                            request,
                        },
                        cost_us,
                    },
                );
            }
            // Servers receive nothing else.
            _ => {}
        }
    }

    /// Handles a timer.
    pub fn on_timer(
        &mut self,
        engine: &mut Engine<ClusterMsg>,
        token: u64,
        auditor: &mut InvariantAuditor,
    ) {
        match token {
            TOKEN_TICK => {
                engine.set_timer(self.node, SimDuration::from_micros(TICK_US), TOKEN_TICK);
                let now = engine.now().as_micros();
                // Sample the work-queue depth once per second for the
                // timeline's per-node load series (the per-enqueue
                // histogram already captures the distribution).
                if engine.trace_enabled() {
                    let sec = now / 1_000_000;
                    if sec > self.queue_sampled_sec {
                        self.queue_sampled_sec = sec;
                        let depth = self.queue.len() as u64;
                        engine.trace(self.node, obs::TraceEvent::QueueSample { depth });
                    }
                }
                let fx = self.mw.on_tick(now);
                self.apply_mw_effects(engine, fx, auditor);
            }
            TOKEN_WORK => self.complete_head(engine, auditor),
            TOKEN_BATCH => {
                self.batch_timer_armed = None;
                let now = engine.now().as_micros();
                let fx = self.mw.on_batch_timer(now);
                self.apply_mw_effects(engine, fx, auditor);
            }
            _ => {}
        }
    }

    /// A durable write completed. The auditor marks the record durable
    /// *first* — the middleware's reaction releases the sends it gates.
    pub fn on_disk_write_done(
        &mut self,
        engine: &mut Engine<ClusterMsg>,
        token: u64,
        auditor: &mut InvariantAuditor,
    ) {
        auditor.on_disk_write_done(self.idx, token);
        let fx = self.mw.on_disk_write_done(token);
        self.apply_mw_effects(engine, fx, auditor);
    }

    /// A bulk read completed.
    pub fn on_disk_read_done(
        &mut self,
        engine: &mut Engine<ClusterMsg>,
        token: u64,
        value: Option<Vec<u8>>,
        auditor: &mut InvariantAuditor,
    ) {
        let fx = self.mw.on_disk_read_done(token, value);
        self.apply_mw_effects(engine, fx, auditor);
    }
}
