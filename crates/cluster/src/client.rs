//! A client node hosting remote browser emulators.
//!
//! The paper's setup (§5.1) dedicates five nodes to RBEs; each node
//! runs an equal share and logs its performance samples. Here one
//! [`ClientNode`] drives its browsers through think-time timers and
//! records completions/errors into the experiment's [`Recorder`].

use std::collections::BTreeMap;

use simnet::{Engine, NodeId, SimDuration};
use tpcw::{Interaction, Rbe, RbeConfig, Recorder};

use crate::msg::ClusterMsg;

/// Timer token for the stale-request sweep (RBE tokens are their
/// indices, which stay far below this).
const TOKEN_SWEEP: u64 = u64::MAX;

/// Client-side request timeout (backstop behind the proxy's own).
const CLIENT_TIMEOUT_US: u64 = 60_000_000;

#[derive(Debug)]
struct Slot {
    rbe: Rbe,
    waiting: Option<(u64, u64, Interaction)>,
}

/// One client machine running a set of RBEs.
#[derive(Debug)]
pub struct ClientNode {
    node: NodeId,
    proxy: NodeId,
    slots: Vec<Slot>,
    /// Ordered so the timeout sweep visits requests in req-id order —
    /// hash-order sweeps break bit-identical seeded replays.
    outstanding: BTreeMap<u64, usize>,
    next_seq: u64,
    /// The second the open trace sample covers (tracing only).
    sample_sec: u64,
    /// Interactions completed ok in `sample_sec`.
    sample_ok: u64,
    /// Interactions failed in `sample_sec`.
    sample_err: u64,
}

impl ClientNode {
    /// Creates a client node with `count` browsers and staggers their
    /// first requests across the ramp-up.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        node: NodeId,
        proxy: NodeId,
        count: usize,
        first_client_id: u64,
        config: RbeConfig,
        seed: u64,
        ramp_up_us: u64,
        engine: &mut Engine<ClusterMsg>,
    ) -> ClientNode {
        let mut slots = Vec::with_capacity(count);
        for k in 0..count {
            let client_id = first_client_id + k as u64;
            let mut rbe = Rbe::new(client_id, config.clone(), seed);
            // Stagger the first arrival uniformly over the ramp-up plus
            // one think time.
            let stagger = (rbe.think_time_us().wrapping_mul(client_id + 1))
                % ramp_up_us.max(config.think_mean_us);
            engine.set_timer(node, SimDuration::from_micros(stagger), k as u64);
            slots.push(Slot { rbe, waiting: None });
        }
        engine.set_timer(node, SimDuration::from_micros(5_000_000), TOKEN_SWEEP);
        ClientNode {
            node,
            proxy,
            slots,
            outstanding: BTreeMap::new(),
            next_seq: 0,
            sample_sec: 0,
            sample_ok: 0,
            sample_err: 0,
        }
    }

    /// Folds one completion into the per-second trace sample, emitting
    /// the previous second's aggregate when `now` crosses into a new
    /// one. Aggregating per second keeps traced runs from carrying one
    /// record per interaction.
    fn trace_completion(&mut self, engine: &mut Engine<ClusterMsg>, now: u64, ok: bool) {
        if !engine.trace_enabled() {
            return;
        }
        let sec = now / 1_000_000;
        if sec != self.sample_sec {
            self.emit_sample(engine);
            self.sample_sec = sec;
        }
        if ok {
            self.sample_ok += 1;
        } else {
            self.sample_err += 1;
        }
    }

    /// Emits and resets the open sample, if it holds anything.
    fn emit_sample(&mut self, engine: &mut Engine<ClusterMsg>) {
        if self.sample_ok > 0 || self.sample_err > 0 {
            engine.trace(
                self.node,
                obs::TraceEvent::ClientSample {
                    sec: self.sample_sec,
                    ok: self.sample_ok,
                    err: self.sample_err,
                },
            );
            self.sample_ok = 0;
            self.sample_err = 0;
        }
    }

    /// Flushes the trailing partial-second sample at end of run (the
    /// experiment driver calls this before extracting the trace).
    pub fn flush_trace(&mut self, engine: &mut Engine<ClusterMsg>) {
        if engine.trace_enabled() {
            self.emit_sample(engine);
        }
    }

    fn issue(&mut self, engine: &mut Engine<ClusterMsg>, idx: usize) {
        let now = engine.now().as_micros();
        let slot = &mut self.slots[idx];
        if slot.waiting.is_some() {
            return; // already in flight (stale timer)
        }
        let request = slot.rbe.next_request();
        self.next_seq += 1;
        let req_id = (self.node.index() as u64) << 40 | self.next_seq;
        slot.waiting = Some((req_id, now, request.interaction));
        self.outstanding.insert(req_id, idx);
        engine.send_sized(
            self.node,
            self.proxy,
            ClusterMsg::Request { req_id, request },
            500,
        );
    }

    fn think_again(&mut self, engine: &mut Engine<ClusterMsg>, idx: usize) {
        let think = self.slots[idx].rbe.think_time_us();
        engine.set_timer(self.node, SimDuration::from_micros(think), idx as u64);
    }

    /// Handles a timer: an RBE finished thinking, or the sweep fired.
    pub fn on_timer(&mut self, engine: &mut Engine<ClusterMsg>, token: u64, rec: &mut Recorder) {
        if token == TOKEN_SWEEP {
            let now = engine.now().as_micros();
            let stale: Vec<u64> = self
                .outstanding
                .iter()
                .filter(|(_, idx)| {
                    self.slots[**idx]
                        .waiting
                        .map(|(_, sent, _)| now.saturating_sub(sent) > CLIENT_TIMEOUT_US)
                        .unwrap_or(false)
                })
                .map(|(id, _)| *id)
                .collect();
            for req_id in stale {
                if let Some(idx) = self.outstanding.remove(&req_id) {
                    self.slots[idx].waiting = None;
                    rec.record_error(now);
                    self.trace_completion(engine, now, false);
                    self.think_again(engine, idx);
                }
            }
            engine.set_timer(self.node, SimDuration::from_micros(5_000_000), TOKEN_SWEEP);
            return;
        }
        let idx = token as usize;
        if idx < self.slots.len() {
            self.issue(engine, idx);
        }
    }

    /// Handles a response or error from the proxy.
    pub fn on_message(
        &mut self,
        engine: &mut Engine<ClusterMsg>,
        msg: ClusterMsg,
        rec: &mut Recorder,
    ) {
        let now = engine.now().as_micros();
        match msg {
            ClusterMsg::Response {
                req_id,
                interaction,
                ok,
                session,
                ..
            } => {
                if let Some(idx) = self.outstanding.remove(&req_id) {
                    if let Some((_, sent_at, sent_interaction)) = self.slots[idx].waiting.take() {
                        if ok {
                            rec.record_ok_typed(now, now - sent_at, sent_interaction);
                        } else {
                            rec.record_served_error(now);
                        }
                        self.trace_completion(engine, now, ok);
                    }
                    self.slots[idx].rbe.on_response(interaction, session);
                    self.think_again(engine, idx);
                }
            }
            ClusterMsg::ConnError { req_id } => {
                if let Some(idx) = self.outstanding.remove(&req_id) {
                    self.slots[idx].waiting = None;
                    rec.record_error(now);
                    self.trace_completion(engine, now, false);
                    self.think_again(engine, idx);
                }
            }
            _ => {}
        }
    }

    /// Number of requests currently awaiting responses.
    pub fn in_flight(&self) -> usize {
        self.outstanding.len()
    }
}
