//! The reverse proxy (HAProxy stand-in).
//!
//! The paper's failover mechanism (§5.1, Figure 2): the proxy actively
//! probes every server with an HTTP check, removes a server from its
//! list after four unsuccessful tries and re-admits it once probes
//! succeed again; requests are balanced with a hash over a stable
//! client identifier; and a server dying mid-request surfaces as a
//! connection error at the client.

use std::collections::BTreeMap;

use simnet::{Engine, NodeId, SimDuration};

use crate::msg::ClusterMsg;

/// Timer token: probe round + timeout sweep.
pub const TOKEN_PROBE: u64 = 0;
/// Timer-token flag marking a connect-retry for request `token &
/// !TOKEN_RETRY_FLAG`.
pub const TOKEN_RETRY_FLAG: u64 = 1 << 63;

/// Proxy tuning (HAProxy-like defaults: `inter 2s fall 4 rise 2`).
#[derive(Debug, Clone)]
pub struct ProxyConfig {
    /// Probe round period.
    pub probe_interval_us: u64,
    /// Consecutive failed probes before removal (paper: 4).
    pub fall: u32,
    /// Consecutive successful probes before re-admission.
    pub rise: u32,
    /// Per-request timeout before the client sees an error.
    pub request_timeout_us: u64,
    /// Redispatch attempts on refused connections (HAProxy `option
    /// redispatch` + `retries`): a request hitting a dead or
    /// still-booting server is silently retried on another one, so only
    /// genuinely interrupted requests surface as client errors.
    pub redispatch_retries: u32,
    /// Delay between connect retries (HAProxy 1.3 waits ~1 s and retries
    /// the *same* server before redispatching — this stall is what
    /// carves the throughput valley right after a crash, paper §5.4).
    pub retry_delay_us: u64,
}

impl Default for ProxyConfig {
    fn default() -> Self {
        ProxyConfig {
            probe_interval_us: 2_000_000,
            fall: 4,
            rise: 2,
            request_timeout_us: 30_000_000,
            redispatch_retries: 3,
            retry_delay_us: 1_000_000,
        }
    }
}

#[derive(Debug)]
struct ServerHealth {
    node: NodeId,
    healthy: bool,
    fails: u32,
    rises: u32,
    awaiting: Option<u64>,
}

#[derive(Debug)]
struct InFlight {
    client: NodeId,
    server: usize,
    sent_at: u64,
    request: tpcw::WebRequest,
    excluded: Vec<usize>,
    attempts: u32,
}

/// The proxy node.
#[derive(Debug)]
pub struct ProxyNode {
    node: NodeId,
    config: ProxyConfig,
    servers: Vec<ServerHealth>,
    seq: u64,
    /// Ordered so timeout/kill sweeps emit errors in req-id order —
    /// hash-order sweeps break bit-identical seeded replays.
    in_flight: BTreeMap<u64, InFlight>,
    errors_emitted: u64,
}

impl ProxyNode {
    /// Creates the proxy balancing across `servers` and arms its probe
    /// timer.
    pub fn new(
        node: NodeId,
        servers: Vec<NodeId>,
        config: ProxyConfig,
        engine: &mut Engine<ClusterMsg>,
    ) -> ProxyNode {
        engine.set_timer(
            node,
            SimDuration::from_micros(config.probe_interval_us),
            TOKEN_PROBE,
        );
        ProxyNode {
            node,
            config,
            servers: servers
                .into_iter()
                .map(|node| ServerHealth {
                    node,
                    healthy: true,
                    fails: 0,
                    rises: 0,
                    awaiting: None,
                })
                .collect(),
            seq: 0,
            in_flight: BTreeMap::new(),
            errors_emitted: 0,
        }
    }

    /// Registers a freshly provisioned backend (a node joining via
    /// reconfiguration). It starts out of rotation and is admitted once
    /// `rise` consecutive probes succeed — the same admission path a
    /// recovered server takes. Backends must be added in node-id order:
    /// a server's probe slot is indexed by its id.
    pub fn add_server(&mut self, node: NodeId) {
        debug_assert_eq!(
            self.servers.len(),
            node.index(),
            "backends must be registered in node-id order"
        );
        self.servers.push(ServerHealth {
            node,
            healthy: false,
            fails: 0,
            rises: 0,
            awaiting: None,
        });
    }

    /// Takes a backend out of rotation immediately (a node the
    /// configuration removed): its in-flight requests are failed over
    /// like a detected crash, and probes keep it out for good because a
    /// retired replica answers `ready: false`.
    pub fn mark_down(&mut self, engine: &mut Engine<ClusterMsg>, server: usize) {
        if let Some(s) = self.servers.get_mut(server) {
            if s.healthy {
                s.healthy = false;
                s.rises = 0;
                self.kill_in_flight(engine, server);
            }
        }
    }

    /// Servers currently in rotation.
    pub fn healthy_count(&self) -> usize {
        self.servers.iter().filter(|s| s.healthy).count()
    }

    /// Whether `server` is in rotation.
    pub fn is_healthy(&self, server: usize) -> bool {
        self.servers[server].healthy
    }

    /// Connection errors the proxy has surfaced to clients.
    pub fn errors_emitted(&self) -> u64 {
        self.errors_emitted
    }

    fn fail_probe(&mut self, engine: &mut Engine<ClusterMsg>, server: usize) {
        let s = &mut self.servers[server];
        s.rises = 0;
        s.fails += 1;
        if s.healthy && s.fails >= self.config.fall {
            s.healthy = false;
            self.kill_in_flight(engine, server);
        }
    }

    fn kill_in_flight(&mut self, engine: &mut Engine<ClusterMsg>, server: usize) {
        let dead: Vec<u64> = self
            .in_flight
            .iter()
            .filter(|(_, f)| f.server == server)
            .map(|(id, _)| *id)
            .collect();
        for req_id in dead {
            let f = self.in_flight.remove(&req_id).expect("listed");
            self.errors_emitted += 1;
            engine.send(self.node, f.client, ClusterMsg::ConnError { req_id });
        }
    }

    /// Picks a server for `client_id` among healthy servers, excluding
    /// servers this request already gave up on.
    fn pick_server(&self, client_id: u64, excluded: &[usize]) -> Option<usize> {
        let usable: Vec<usize> = (0..self.servers.len())
            .filter(|i| self.servers[*i].healthy && !excluded.contains(i))
            .collect();
        if usable.is_empty() {
            return None;
        }
        // FNV-1a over the stable client id (the paper's hash balancing
        // on unique client identifiers).
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in client_id.to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        Some(usable[(h % usable.len() as u64) as usize])
    }

    /// Attempts to deliver a request to its chosen server, emulating
    /// HAProxy 1.3 connect handling: a dead process refuses instantly
    /// (RST); the proxy waits `retry_delay` and retries the *same*
    /// server up to `retries` times, then redispatches to another.
    fn connect(&mut self, engine: &mut Engine<ClusterMsg>, req_id: u64, mut flight: InFlight) {
        if engine.is_up(self.servers[flight.server].node) {
            let target = self.servers[flight.server].node;
            let request = flight.request.clone();
            self.in_flight.insert(req_id, flight);
            engine.send_sized(
                self.node,
                target,
                ClusterMsg::Request { req_id, request },
                600,
            );
            return;
        }
        // Connection refused.
        flight.attempts += 1;
        if flight.attempts <= self.config.redispatch_retries {
            // Park and retry the same server after the retry delay.
            let delay = self.config.retry_delay_us;
            self.in_flight.insert(req_id, flight);
            engine.set_timer(
                self.node,
                SimDuration::from_micros(delay),
                TOKEN_RETRY_FLAG | req_id,
            );
            return;
        }
        // Retries exhausted: redispatch once to a different server.
        flight.excluded.push(flight.server);
        flight.attempts = 0;
        match self.pick_server(flight.request.client_id, &flight.excluded) {
            Some(server) if flight.excluded.len() <= self.servers.len() => {
                flight.server = server;
                self.connect(engine, req_id, flight);
            }
            _ => {
                self.errors_emitted += 1;
                engine.send(self.node, flight.client, ClusterMsg::ConnError { req_id });
            }
        }
    }

    /// Handles a timer: settle last round's probes, launch a new round,
    /// sweep request timeouts.
    pub fn on_timer(&mut self, engine: &mut Engine<ClusterMsg>, token: u64) {
        if token & TOKEN_RETRY_FLAG != 0 {
            let req_id = token & !TOKEN_RETRY_FLAG;
            if let Some(flight) = self.in_flight.remove(&req_id) {
                self.connect(engine, req_id, flight);
            }
            return;
        }
        if token != TOKEN_PROBE {
            return;
        }
        // The proxy outlives every fault, so it carries the cumulative
        // network counters into the trace; the timeline differences
        // consecutive samples into per-window traffic.
        if engine.trace_enabled() {
            let messages = engine.network().messages_sent();
            let bytes = engine.network().bytes_carried();
            engine.trace(self.node, obs::TraceEvent::NetSample { messages, bytes });
        }
        // Settle: unanswered probes count as failures.
        for i in 0..self.servers.len() {
            if self.servers[i].awaiting.take().is_some() {
                self.fail_probe(engine, i);
            }
        }
        // Launch a new round.
        for i in 0..self.servers.len() {
            self.seq += 1;
            self.servers[i].awaiting = Some(self.seq);
            let target = self.servers[i].node;
            engine.send(self.node, target, ClusterMsg::Probe { seq: self.seq });
        }
        // Request timeouts.
        let now = engine.now().as_micros();
        let timeout = self.config.request_timeout_us;
        let stale: Vec<u64> = self
            .in_flight
            .iter()
            .filter(|(_, f)| now.saturating_sub(f.sent_at) > timeout)
            .map(|(id, _)| *id)
            .collect();
        for req_id in stale {
            let f = self.in_flight.remove(&req_id).expect("listed");
            self.errors_emitted += 1;
            engine.send(self.node, f.client, ClusterMsg::ConnError { req_id });
        }
        engine.set_timer(
            self.node,
            SimDuration::from_micros(self.config.probe_interval_us),
            TOKEN_PROBE,
        );
    }

    /// Handles a message arriving at the proxy.
    pub fn on_message(&mut self, engine: &mut Engine<ClusterMsg>, from: NodeId, msg: ClusterMsg) {
        match msg {
            ClusterMsg::Request { req_id, request } => {
                match self.pick_server(request.client_id, &[]) {
                    Some(server) => {
                        let flight = InFlight {
                            client: from,
                            server,
                            sent_at: engine.now().as_micros(),
                            request,
                            excluded: Vec::new(),
                            attempts: 0,
                        };
                        self.connect(engine, req_id, flight);
                    }
                    None => {
                        self.errors_emitted += 1;
                        engine.send(self.node, from, ClusterMsg::ConnError { req_id });
                    }
                }
            }
            ClusterMsg::Response {
                req_id,
                interaction,
                ok,
                session,
                bytes,
            } => {
                if let Some(f) = self.in_flight.remove(&req_id) {
                    engine.send_sized(
                        self.node,
                        f.client,
                        ClusterMsg::Response {
                            req_id,
                            interaction,
                            ok,
                            session,
                            bytes,
                        },
                        bytes,
                    );
                }
            }
            ClusterMsg::ConnError { req_id } => {
                // The server refused the HTTP request (still booting /
                // recovering): redispatch to another server.
                if let Some(mut f) = self.in_flight.remove(&req_id) {
                    f.excluded.push(f.server);
                    f.attempts = 0;
                    if f.excluded.len() < self.servers.len() {
                        if let Some(server) = self.pick_server(f.request.client_id, &f.excluded) {
                            f.server = server;
                            self.connect(engine, req_id, f);
                            return;
                        }
                    }
                    self.errors_emitted += 1;
                    engine.send(self.node, f.client, ClusterMsg::ConnError { req_id });
                }
            }
            ClusterMsg::ProbeReply { seq, server, ready } => {
                let s = &mut self.servers[server];
                if s.awaiting == Some(seq) {
                    s.awaiting = None;
                    if ready {
                        s.fails = 0;
                        s.rises += 1;
                        if !s.healthy && s.rises >= self.config.rise {
                            s.healthy = true;
                        }
                    } else {
                        self.fail_probe(engine, server);
                    }
                }
            }
            _ => {}
        }
    }
}
