//! # cluster — the simulated experimental setup
//!
//! The paper's testbed (§5.1, Figure 2) on the `simnet` discrete-event
//! engine: 4–12 server replicas running the RobustStore application
//! over Treplica, one reverse proxy with health-probe failover and
//! client-id hash balancing, and client nodes running remote browser
//! emulators. [`run_experiment`] executes a full TPC-W dependability
//! run — ramp-up, measurement interval with faultload injection and
//! watchdog-driven recovery, ramp-down — and returns the WIPS
//! histogram plus the paper's dependability measures.
//!
//! ## Example
//!
//! ```no_run
//! use cluster::{run_experiment, ExperimentConfig};
//! use tpcw::Profile;
//!
//! let mut config = ExperimentConfig::quick(5, Profile::Shopping);
//! config.faultload = faultload::Faultload::single_crash().scaled(1, 4);
//! let report = run_experiment(&config);
//! println!("AWIPS = {:.1}", report.awips);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod audit;
mod client;
mod experiment;
mod msg;
mod proxy;
mod server;
mod service;

pub use audit::{AuditReport, InvariantAuditor};
pub use client::ClientNode;
pub use experiment::{run_experiment, ExperimentConfig, ReconfigIncident, RunReport};
pub use msg::ClusterMsg;
pub use proxy::{ProxyConfig, ProxyNode};
pub use server::ServerNode;
pub use service::ServiceModel;
