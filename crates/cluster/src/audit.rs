//! Always-on consensus invariant auditor.
//!
//! [`run_experiment`](crate::run_experiment) threads an
//! [`InvariantAuditor`] through every server's effect stream and checks,
//! on every send, durable write and delivery, the safety properties the
//! stack claims:
//!
//! * **Agreement** — no two replicas deliver different proposals for the
//!   same slot.
//! * **Durability ordering** — no `Promise` or `Accepted` leaves a
//!   replica before the corresponding [`Record`] is durable on its disk
//!   (the paper's write-ahead rule; [`paxos::Replica`] implements it by
//!   gating sends on persist tokens, and the auditor verifies the whole
//!   lowered pipeline end to end, crashes and torn tails included).
//! * **Monotone delivery** — each incarnation's applied slots strictly
//!   increase.
//! * **Mode rule** — fast-path traffic (`FastPropose`, `Any`) is sent
//!   only while the sender's failure detector counts ≥ ⌈3N/4⌉ replicas
//!   alive (§2's condition for fast rounds).
//!
//! The auditor observes; it never influences the run, so an audited run
//! is bit-identical to an unaudited one. Violations are collected as
//! human-readable strings and the experiment asserts there are none.

use std::collections::{BTreeMap, BTreeSet};

use paxos::{Ballot, Batch, Mode, Msg, ProposalId, Quorums, Record, ReplicaStatus, Slot};
use robuststore::Action;
use simnet::{StableOp, StableStore};
use treplica::{Meta, MwMsg, Wire, LOG_NAME, META_KEY};

/// The consensus value type: a group-commit batch of store actions.
type ActionBatch = Batch<Action>;

/// Cap on recorded violation strings (all violations are still counted).
const MAX_RECORDED: usize = 100;

/// What a replica must have made durable before a given send is legal.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum DurableKey {
    /// A `Record::Promised(ballot)` reached disk.
    Promise(Ballot),
    /// A `Record::Accepted { slot, ballot, decree }` reached disk
    /// (decrees are identified by their proposal id; `None` is a no-op).
    Accept(Slot, Ballot, Option<ProposalId>),
}

/// Outcome of one audited run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AuditReport {
    /// Individual invariant checks performed.
    pub checks: u64,
    /// Violations found (capped at 100 recorded strings).
    pub violations: Vec<String>,
    /// Total violations, including any beyond the recording cap.
    pub total_violations: u64,
}

/// Run-wide safety monitor for the replicated server ensemble.
#[derive(Debug)]
pub struct InvariantAuditor {
    /// First delivered `(proposal, config epoch)` per `(slot,
    /// index-in-batch)` position, with the delivering replica. Recording
    /// the epoch checks agreement *across* a reconfiguration boundary:
    /// two replicas must not only deliver the same decree at a slot,
    /// they must deliver it under the same configuration.
    chosen: BTreeMap<(Slot, u32), (Option<ProposalId>, u64, usize)>,
    /// Per replica: records known durable on its disk.
    durable: Vec<BTreeSet<DurableKey>>,
    /// Per replica: records in flight to disk, keyed by write token.
    pending: Vec<BTreeMap<u64, DurableKey>>,
    /// Per replica: last `(slot, index)` applied by this incarnation.
    last_applied: Vec<Option<(Slot, u32)>>,
    checks: u64,
    violations: Vec<String>,
    total_violations: u64,
    /// Violations already handed out via
    /// [`InvariantAuditor::take_unreported_violations`].
    reported: u64,
}

impl InvariantAuditor {
    /// An auditor for `n` server replicas. Reconfiguration may later
    /// introduce replicas with higher indices (spares); the per-replica
    /// state grows on demand.
    pub fn new(n: usize) -> InvariantAuditor {
        InvariantAuditor {
            chosen: BTreeMap::new(),
            // A fresh acceptor has implicitly promised ⊥ without writing.
            durable: (0..n)
                .map(|_| BTreeSet::from([DurableKey::Promise(Ballot::BOTTOM)]))
                .collect(),
            pending: (0..n).map(|_| BTreeMap::new()).collect(),
            last_applied: vec![None; n],
            checks: 0,
            violations: Vec::new(),
            total_violations: 0,
            reported: 0,
        }
    }

    /// Grows the per-replica state to cover replica `idx` (spares
    /// provisioned by a reconfiguration).
    fn ensure(&mut self, idx: usize) {
        while self.durable.len() <= idx {
            self.durable
                .push(BTreeSet::from([DurableKey::Promise(Ballot::BOTTOM)]));
            self.pending.push(BTreeMap::new());
            self.last_applied.push(None);
        }
    }

    /// Violations found since the last call. The server driver polls
    /// this after each effect batch and traces an `AuditViolation` event
    /// against the node whose effects were being audited, giving every
    /// violation causal context in the trace.
    pub fn take_unreported_violations(&mut self) -> u64 {
        let delta = self.total_violations - self.reported;
        self.reported = self.total_violations;
        delta
    }

    fn violation(&mut self, text: String) {
        self.total_violations += 1;
        if self.violations.len() < MAX_RECORDED {
            self.violations.push(text);
        }
    }

    /// A replica issued a durable write. Decodes consensus records so the
    /// later completion can be matched against sends.
    pub fn on_disk_write(&mut self, idx: usize, op: &StableOp, token: u64, now_us: u64) {
        self.ensure(idx);
        match op {
            StableOp::Append { log, entry } if log == LOG_NAME => {
                self.checks += 1;
                match Record::<ActionBatch>::from_bytes(entry) {
                    Ok(Record::Promised(ballot)) => {
                        self.pending[idx].insert(token, DurableKey::Promise(ballot));
                    }
                    Ok(Record::Accepted {
                        ballot,
                        slot,
                        decree,
                    }) => {
                        self.pending[idx].insert(
                            token,
                            DurableKey::Accept(slot, ballot, decree.proposal_id()),
                        );
                    }
                    Err(_) => self.violation(format!(
                        "[{now_us}us] server {idx}: appended undecodable consensus record \
                         ({} bytes)",
                        entry.len()
                    )),
                }
            }
            StableOp::Put { key, value } if key == META_KEY => {
                self.checks += 1;
                match Meta::from_bytes(value) {
                    // The meta record re-asserts the promised floor; once
                    // durable it also justifies Promise sends.
                    Ok(meta) => {
                        self.pending[idx].insert(token, DurableKey::Promise(meta.promised));
                    }
                    Err(_) => self.violation(format!(
                        "[{now_us}us] server {idx}: wrote undecodable metadata record"
                    )),
                }
            }
            _ => {}
        }
    }

    /// A durable write completed. Must be called *before* the server
    /// reacts (the reaction releases the sends this write gates).
    pub fn on_disk_write_done(&mut self, idx: usize, token: u64) {
        self.ensure(idx);
        if let Some(key) = self.pending[idx].remove(&token) {
            self.durable[idx].insert(key);
        }
    }

    /// A durable write failed; nothing reached disk.
    pub fn on_disk_write_failed(&mut self, idx: usize, token: u64) {
        self.ensure(idx);
        self.pending[idx].remove(&token);
    }

    /// A replica is sending a middleware message.
    pub fn on_send(
        &mut self,
        idx: usize,
        msg: &MwMsg<ActionBatch>,
        status: &ReplicaStatus,
        now_us: u64,
    ) {
        self.ensure(idx);
        let m = match msg {
            MwMsg::Paxos { msg: m, .. } => m,
            _ => return,
        };
        match m {
            Msg::Promise { ballot, .. } => {
                self.checks += 1;
                if !self.durable[idx].contains(&DurableKey::Promise(*ballot)) {
                    self.violation(format!(
                        "[{now_us}us] server {idx}: sent Promise for {ballot:?} before the \
                         promise record was durable"
                    ));
                }
            }
            Msg::Accepted {
                ballot,
                slot,
                decree,
            } => {
                self.checks += 1;
                let key = DurableKey::Accept(*slot, *ballot, decree.proposal_id());
                if !self.durable[idx].contains(&key) {
                    self.violation(format!(
                        "[{now_us}us] server {idx}: sent Accepted for slot {slot:?} under \
                         {ballot:?} before the acceptance record was durable"
                    ));
                }
            }
            Msg::FastPropose { .. } | Msg::Any { .. } => {
                self.checks += 1;
                // The mode rule tracks the sender's *current epoch*: its
                // fast quorum is ⌈3N/4⌉ of that epoch's ensemble size,
                // not of the size the run started with.
                let fast_quorum = Quorums::new(status.n).fast();
                if status.mode != Mode::Fast {
                    self.violation(format!(
                        "[{now_us}us] server {idx}: sent fast-path {} in mode {:?}",
                        fast_name(m),
                        status.mode
                    ));
                } else if status.alive < fast_quorum {
                    self.violation(format!(
                        "[{now_us}us] server {idx}: sent fast-path {} with only {} of {} \
                         replicas alive in epoch {} (fast quorum is {})",
                        fast_name(m),
                        status.alive,
                        status.n,
                        status.epoch,
                        fast_quorum
                    ));
                }
            }
            _ => {}
        }
    }

    /// A replica delivered (applied) one update of a decided batch;
    /// `index` is the update's position inside its slot's batch and
    /// `epoch` is the configuration epoch the slot was decided under.
    pub fn on_applied(
        &mut self,
        idx: usize,
        slot: Slot,
        index: u32,
        pid: ProposalId,
        epoch: u64,
        now_us: u64,
    ) {
        self.ensure(idx);
        self.checks += 1;
        match self.chosen.get(&(slot, index)) {
            Some((chosen_pid, chosen_epoch, first_by)) => {
                if *chosen_pid != Some(pid) {
                    self.violation(format!(
                        "[{now_us}us] AGREEMENT: server {idx} delivered {pid:?} at slot \
                         {slot:?}[{index}] but server {first_by} delivered {chosen_pid:?}"
                    ));
                } else if *chosen_epoch != epoch {
                    self.violation(format!(
                        "[{now_us}us] AGREEMENT: server {idx} delivered slot {slot:?}[{index}] \
                         under epoch {epoch} but server {first_by} delivered it under epoch \
                         {chosen_epoch}"
                    ));
                }
            }
            None => {
                self.chosen.insert((slot, index), (Some(pid), epoch, idx));
            }
        }
        self.checks += 1;
        if let Some(last) = self.last_applied[idx] {
            if (slot, index) <= last {
                self.violation(format!(
                    "[{now_us}us] server {idx}: delivery watermark went backwards \
                     ({slot:?}[{index}] after {last:?})"
                ));
            }
        }
        self.last_applied[idx] = Some((slot, index));
    }

    /// A replica crashed: its in-flight writes are lost and the next
    /// incarnation's delivery watermark restarts.
    pub fn on_crash(&mut self, idx: usize) {
        self.ensure(idx);
        self.pending[idx].clear();
        self.last_applied[idx] = None;
    }

    /// A replica is restarting: rebuild its durable set from what
    /// actually survived on disk (truncations and torn tails included).
    /// Torn entries fail to decode and are skipped — they gate nothing.
    pub fn on_restart(&mut self, idx: usize, store: &StableStore) {
        self.ensure(idx);
        let durable = &mut self.durable[idx];
        durable.clear();
        durable.insert(DurableKey::Promise(Ballot::BOTTOM));
        if let Some(bytes) = store.get(META_KEY) {
            if let Ok(meta) = Meta::from_bytes(bytes) {
                durable.insert(DurableKey::Promise(meta.promised));
            }
        }
        if let Some(log) = store.log(LOG_NAME) {
            for (_, entry) in log.iter() {
                match Record::<ActionBatch>::from_bytes(entry) {
                    Ok(Record::Promised(ballot)) => {
                        durable.insert(DurableKey::Promise(ballot));
                    }
                    Ok(Record::Accepted {
                        ballot,
                        slot,
                        decree,
                    }) => {
                        durable.insert(DurableKey::Accept(slot, ballot, decree.proposal_id()));
                    }
                    Err(_) => {}
                }
            }
        }
    }

    /// The verdict so far.
    pub fn report(&self) -> AuditReport {
        AuditReport {
            checks: self.checks,
            violations: self.violations.clone(),
            total_violations: self.total_violations,
        }
    }
}

fn fast_name(m: &Msg<ActionBatch>) -> &'static str {
    match m {
        Msg::FastPropose { .. } => "FastPropose",
        Msg::Any { .. } => "Any",
        _ => "message",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn status_in(mode: Mode, alive: usize, epoch: u64, n: usize) -> ReplicaStatus {
        ReplicaStatus {
            mode,
            leading: false,
            ballot: Ballot::BOTTOM,
            decided_upto: Slot(0),
            pending_proposals: 0,
            alive,
            epoch,
            n,
        }
    }

    fn status(mode: Mode, alive: usize) -> ReplicaStatus {
        status_in(mode, alive, 0, 4)
    }

    fn promise_msg(ballot: Ballot) -> MwMsg<ActionBatch> {
        MwMsg::Paxos {
            epoch: 0,
            tag: Default::default(),
            msg: Msg::Promise {
                ballot,
                from_slot: Slot(0),
                only_slot: None,
                accepted: Vec::new(),
            },
        }
    }

    #[test]
    fn ungated_promise_is_flagged_and_gated_promise_passes() {
        let mut audit = InvariantAuditor::new(3);
        let ballot = Ballot::classic(1, paxos::ReplicaId(0));
        let st = status(Mode::Classic, 2);
        audit.on_send(0, &promise_msg(ballot), &st, 10);
        assert_eq!(audit.report().total_violations, 1, "send before persist");

        let record = Record::<ActionBatch>::Promised(ballot);
        audit.on_disk_write(
            1,
            &StableOp::Append {
                log: LOG_NAME.to_string(),
                entry: record.to_bytes(),
            },
            7,
            20,
        );
        // Not yet durable: still a violation.
        audit.on_send(1, &promise_msg(ballot), &st, 21);
        assert_eq!(audit.report().total_violations, 2);
        audit.on_disk_write_done(1, 7);
        audit.on_send(1, &promise_msg(ballot), &st, 22);
        assert_eq!(audit.report().total_violations, 2, "durable promise passes");
    }

    #[test]
    fn agreement_and_watermark_violations_are_caught() {
        let mut audit = InvariantAuditor::new(3);
        let pid = |seq| ProposalId {
            node: paxos::ReplicaId(0),
            epoch: 0,
            seq,
        };
        let (a, b) = (pid(1), pid(2));
        audit.on_applied(0, Slot(5), 0, a, 0, 100);
        audit.on_applied(1, Slot(5), 0, a, 0, 110);
        assert_eq!(audit.report().total_violations, 0);
        audit.on_applied(2, Slot(5), 0, b, 0, 120);
        assert_eq!(audit.report().total_violations, 1, "conflicting decree");

        audit.on_applied(0, Slot(4), 0, a, 0, 130);
        assert_eq!(audit.report().total_violations, 2, "watermark regression");
        // A crash resets the incarnation's watermark: replay is legal.
        audit.on_crash(1);
        audit.on_applied(1, Slot(5), 0, a, 0, 140);
        assert_eq!(audit.report().total_violations, 2);
    }

    #[test]
    fn epoch_disagreement_at_a_slot_is_caught() {
        let mut audit = InvariantAuditor::new(3);
        let pid = ProposalId {
            node: paxos::ReplicaId(0),
            epoch: 0,
            seq: 1,
        };
        // Same decree, different configuration epochs: a fence bug.
        audit.on_applied(0, Slot(5), 0, pid, 1, 100);
        audit.on_applied(1, Slot(5), 0, pid, 2, 110);
        assert_eq!(audit.report().total_violations, 1, "epoch mismatch");
        // A spare index beyond the initial n is tracked, not a panic.
        audit.on_applied(6, Slot(5), 0, pid, 1, 120);
        assert_eq!(audit.report().total_violations, 1);
    }

    #[test]
    fn intra_batch_positions_are_ordered_and_agreed() {
        let mut audit = InvariantAuditor::new(3);
        let pid = |seq| ProposalId {
            node: paxos::ReplicaId(0),
            epoch: 0,
            seq,
        };
        // One slot carrying a three-update batch: positions advance.
        audit.on_applied(0, Slot(7), 0, pid(1), 0, 100);
        audit.on_applied(0, Slot(7), 1, pid(2), 0, 101);
        audit.on_applied(0, Slot(7), 2, pid(3), 0, 102);
        assert_eq!(audit.report().total_violations, 0);

        // Another replica must unpack the same batch the same way.
        audit.on_applied(1, Slot(7), 0, pid(1), 0, 110);
        audit.on_applied(1, Slot(7), 1, pid(9), 0, 111);
        assert_eq!(audit.report().total_violations, 1, "batch position differs");

        // Replaying an earlier position of the same slot regresses.
        audit.on_applied(0, Slot(7), 1, pid(2), 0, 120);
        assert_eq!(audit.report().total_violations, 2, "index regression");
    }

    #[test]
    fn fast_path_requires_fast_mode_and_quorum() {
        let mut audit = InvariantAuditor::new(4);
        let any = MwMsg::Paxos {
            epoch: 0,
            tag: Default::default(),
            msg: Msg::Any {
                ballot: Ballot::fast(1, paxos::ReplicaId(0)),
                from_slot: Slot(0),
            },
        };
        audit.on_send(0, &any, &status(Mode::Fast, 4), 10);
        assert_eq!(audit.report().total_violations, 0);
        audit.on_send(0, &any, &status(Mode::Classic, 3), 20);
        assert_eq!(audit.report().total_violations, 1, "classic mode fast send");
        audit.on_send(0, &any, &status(Mode::Fast, 2), 30);
        assert_eq!(audit.report().total_violations, 2, "mode/FD mismatch");
        // The quorum check follows the sender's current epoch: after a
        // remove shrinks the ensemble to 3, ⌈3·3/4⌉ = 3 alive suffices.
        audit.on_send(0, &any, &status_in(Mode::Fast, 3, 1, 3), 40);
        assert_eq!(audit.report().total_violations, 2, "shrunk epoch quorum");
    }
}
