//! CPU service-time model of one application server.
//!
//! The paper's servers are single-CPU 2.4 GHz Xeons running Tomcat +
//! the bookstore. We model each server as a single-server FIFO queue
//! whose work items are (a) handling one web interaction and (b)
//! applying one replicated action delivered by Treplica — the latter
//! includes the per-message protocol processing that grows with the
//! ensemble size (the "message complexity" cost the paper names as the
//! source of sublinear speedup, §5.2).
//!
//! Calibration targets the paper's absolute operating points: a
//! 4-replica browsing deployment saturates near 1100 WIPS and a
//! 5-replica ordering deployment near 840 WIPSo (Figure 3, Table 1).

use tpcw::Interaction;

/// Service-time parameters (µs of CPU per unit of work).
///
/// ```
/// use cluster::ServiceModel;
/// use tpcw::Profile;
/// let m = ServiceModel::default();
/// // Ordering pays for total order at every replica; browsing barely.
/// let b = m.estimated_capacity(Profile::Browsing, 8);
/// let o = m.estimated_capacity(Profile::Ordering, 8);
/// assert!(b > 1.5 * o);
/// ```
#[derive(Debug, Clone)]
pub struct ServiceModel {
    /// CPU to render the page of each read interaction.
    pub read_cpu_us: [u64; 14],
    /// CPU to parse/prepare an update interaction before it is
    /// submitted to the persistent queue.
    pub write_prep_us: u64,
    /// CPU to apply one delivered action to the state machine.
    pub apply_base_us: u64,
    /// CPU to receive and process one consensus message. Protocol
    /// traffic shares the server's single CPU with page rendering, so
    /// each decided action costs every replica ≈ N+1 message receipts
    /// (the proposer's value plus one `Accepted` broadcast from each
    /// acceptor) — the paper's "message complexity" cost of Paxos.
    pub per_msg_us: u64,
}

impl Default for ServiceModel {
    fn default() -> Self {
        ServiceModel {
            // Indexed in ALL_INTERACTIONS order.
            read_cpu_us: [
                3_000, // Home
                4_000, // NewProducts
                6_000, // BestSellers
                3_000, // ProductDetail
                1_500, // SearchRequest
                4_500, // SearchResults
                2_500, // ShoppingCart (prep side below is used)
                2_000, // CustomerRegistration
                2_500, // BuyRequest
                3_500, // BuyConfirm
                1_500, // OrderInquiry
                3_500, // OrderDisplay
                2_500, // AdminRequest
                2_500, // AdminConfirm
            ],
            write_prep_us: 1_000,
            apply_base_us: 100,
            per_msg_us: 130,
        }
    }
}

impl ServiceModel {
    /// CPU to handle (parse + render) `interaction` at the front end.
    pub fn handle_cost_us(&self, interaction: Interaction) -> u64 {
        let idx = tpcw::ALL_INTERACTIONS
            .iter()
            .position(|i| *i == interaction)
            .expect("interaction in table");
        if interaction.is_update() {
            self.read_cpu_us[idx] / 2 + self.write_prep_us
        } else {
            self.read_cpu_us[idx]
        }
    }

    /// CPU to apply one delivered action (protocol message processing
    /// is charged separately per received message).
    pub fn apply_cost_us(&self) -> u64 {
        self.apply_base_us
    }

    /// Total protocol CPU one replica spends per decided action on an
    /// ensemble of `replicas` (N `Accepted` broadcasts + the proposal).
    pub fn protocol_cost_us(&self, replicas: usize) -> u64 {
        (replicas as u64 + 1) * self.per_msg_us
    }

    /// Mean handle cost under a profile (for sizing saturating RBE
    /// populations).
    pub fn mean_handle_us(&self, profile: tpcw::Profile) -> f64 {
        let w = profile.weights();
        let total: u32 = w.iter().sum();
        tpcw::ALL_INTERACTIONS
            .iter()
            .zip(w.iter())
            .map(|(i, weight)| self.handle_cost_us(*i) as f64 * *weight as f64)
            .sum::<f64>()
            / total as f64
    }

    /// Analytic single-server capacity estimate (interactions/s) for a
    /// `replicas`-node deployment under `profile`: per-node CPU spent
    /// per cluster interaction is `handle/k` (balanced front-end work)
    /// plus `update_ratio × apply` (every replica applies every write).
    pub fn estimated_capacity(&self, profile: tpcw::Profile, replicas: usize) -> f64 {
        let handle = self.mean_handle_us(profile);
        let u = profile.update_ratio();
        let per_interaction_us = handle / replicas as f64
            + u * (self.apply_cost_us() + self.protocol_cost_us(replicas)) as f64;
        1e6 / per_interaction_us
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tpcw::Profile;

    #[test]
    fn update_interactions_cost_prep_not_full_page() {
        let m = ServiceModel::default();
        assert!(m.handle_cost_us(Interaction::BuyConfirm) < m.read_cpu_us[9] + m.write_prep_us);
        assert_eq!(m.handle_cost_us(Interaction::Home), 3_000);
    }

    #[test]
    fn protocol_cost_grows_with_ensemble() {
        let m = ServiceModel::default();
        assert!(m.protocol_cost_us(12) > m.protocol_cost_us(4));
        assert_eq!(m.protocol_cost_us(5), 6 * m.per_msg_us);
        assert_eq!(m.apply_cost_us(), m.apply_base_us);
    }

    #[test]
    fn capacity_estimates_match_paper_operating_points() {
        let m = ServiceModel::default();
        // 4-replica browsing saturates near 1100 WIPS (Figure 3).
        let b4 = m.estimated_capacity(Profile::Browsing, 4);
        assert!((900.0..1_300.0).contains(&b4), "browsing/4 {b4}");
        // 5-replica ordering in the paper's 700–900 WIPSo band
        // (Table 1 failure-free AWIPS is 841 with CV 0.20).
        let o5 = m.estimated_capacity(Profile::Ordering, 5);
        assert!((700.0..1_100.0).contains(&o5), "ordering/5 {o5}");
        // Ordering speedup 4→8 is weak-to-flat (paper S8 ≈ 1.29; the
        // qualitative claim is that ordering has "by far crossed the
        // threshold" where total ordering impedes speedup).
        let o4 = m.estimated_capacity(Profile::Ordering, 4);
        let o8 = m.estimated_capacity(Profile::Ordering, 8);
        let s8 = o8 / o4;
        assert!((0.9..1.5).contains(&s8), "ordering S8 {s8}");
        // Browsing speedup is much better.
        let b12 = m.estimated_capacity(Profile::Browsing, 12);
        let s12 = b12 / b4;
        assert!(s12 > 1.8, "browsing S12 {s12}");
    }

    #[test]
    fn mean_handle_reflects_mix() {
        let m = ServiceModel::default();
        let b = m.mean_handle_us(Profile::Browsing);
        let o = m.mean_handle_us(Profile::Ordering);
        // Ordering has more cheap prep-only updates.
        assert!(o < b, "ordering mean {o} vs browsing {b}");
    }
}
