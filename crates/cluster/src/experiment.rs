//! Whole-experiment orchestration.
//!
//! Builds the paper's experimental setup (Figure 2) on the simulated
//! testbed — server replicas, one reverse proxy, client nodes running
//! RBEs — runs the TPC-W schedule (ramp-up / measurement interval /
//! ramp-down), injects the faultload at its prescribed times with the
//! watchdog re-instantiating crashed servers, and returns the per-second
//! WIPS histogram plus the dependability report.

use faultload::{
    DependabilityReport, Faultload, InjectionLog, LinkFaultSpec, RecoveryKind, RecoverySpan,
    INJECT_CLUSTER, INJECT_CRASH, INJECT_DISK_FAULT, INJECT_NET_FAULT, INJECT_PARTITION,
    INJECT_RECONFIG,
};
use obs::monitor::{Monitor, MonitorConfig, NodeHealth, Scrape};
use rand::seq::SliceRandom;
use rand::SeedableRng;
use simnet::{
    DiskFault, Engine, Event, LinkFault, NodeId, SimConfig, SimDuration, SimTime, TickSchedule,
};
use tpcw::{PopulationParams, Profile, RbeConfig, Recorder, Schedule};
use treplica::TreplicaConfig;

use crate::audit::{AuditReport, InvariantAuditor};
use crate::client::ClientNode;
use crate::msg::ClusterMsg;
use crate::proxy::{ProxyConfig, ProxyNode};
use crate::server::ServerNode;
use crate::service::ServiceModel;

/// Full description of one experiment run.
#[derive(Debug, Clone)]
pub struct ExperimentConfig {
    /// Number of server replicas (paper: 4–12).
    pub replicas: usize,
    /// Workload profile.
    pub profile: Profile,
    /// Population scale in emulated browsers (30/50/70 → ≈300/500/700
    /// MB states).
    pub ebs: u32,
    /// Item population (paper: 10 000; tests use less).
    pub population_items: u32,
    /// Number of RBEs generating load.
    pub rbes: usize,
    /// Mean think time (paper: reduced to 1 s).
    pub think_us: u64,
    /// Client machines hosting the RBEs (paper: 5).
    pub client_nodes: usize,
    /// Measurement schedule.
    pub schedule: Schedule,
    /// Injected faults.
    pub faultload: Faultload,
    /// Watchdog detection + process boot delay before a crashed server
    /// is re-instantiated.
    pub watchdog_delay_us: u64,
    /// Run seed (drives all randomness).
    pub seed: u64,
    /// CPU service model.
    pub service: ServiceModel,
    /// Disable Fast Paxos (classic-only baseline).
    pub classic_only: bool,
    /// Actions between checkpoints.
    pub checkpoint_interval: u64,
    /// Group commit: max updates coalesced into one consensus decree
    /// (1 = batching off).
    pub batch_max_updates: usize,
    /// Group commit: max µs the first buffered update waits for company
    /// (0 = flush immediately).
    pub batch_window_us: u64,
    /// Structured tracing. Full record capture defaults off; the bounded
    /// flight ring ([`simnet::TraceConfig::flight_records`]) stays on by
    /// default so audit-violation panics always dump recent context.
    pub trace: simnet::TraceConfig,
    /// Online SLO monitoring. Defaults off with the tracer's
    /// zero-overhead guarantee: a disabled monitor schedules no scrape
    /// ticks, so the engine's event stream is byte-identical to an
    /// unmonitored run.
    pub monitor: MonitorConfig,
}

impl ExperimentConfig {
    /// A paper-like configuration: `replicas` servers, shopping profile,
    /// 30 EB population, 1000 RBEs with 1 s think time, full schedule,
    /// no faults.
    pub fn paper(replicas: usize) -> ExperimentConfig {
        ExperimentConfig {
            replicas,
            profile: Profile::Shopping,
            ebs: 30,
            population_items: 10_000,
            rbes: 1_000,
            think_us: 1_000_000,
            client_nodes: 5,
            schedule: Schedule::paper(),
            faultload: Faultload::none(),
            watchdog_delay_us: 3_000_000,
            seed: 42,
            service: ServiceModel::default(),
            classic_only: false,
            checkpoint_interval: 20_000,
            batch_max_updates: 1,
            batch_window_us: 0,
            trace: simnet::TraceConfig::default(),
            monitor: MonitorConfig::default(),
        }
    }

    /// A scaled-down configuration for tests: small population, short
    /// schedule.
    pub fn quick(replicas: usize, profile: Profile) -> ExperimentConfig {
        ExperimentConfig {
            replicas,
            profile,
            ebs: 1,
            population_items: 1_000,
            rbes: 200,
            think_us: 1_000_000,
            client_nodes: 2,
            schedule: Schedule::quick(60),
            faultload: Faultload::none(),
            watchdog_delay_us: 3_000_000,
            seed: 42,
            service: ServiceModel::default(),
            classic_only: false,
            checkpoint_interval: 500,
            batch_max_updates: 1,
            batch_window_us: 0,
            trace: simnet::TraceConfig::default(),
            monitor: MonitorConfig::default(),
        }
    }
}

/// One administrative membership change as executed during a run.
#[derive(Debug, Clone)]
pub struct ReconfigIncident {
    /// When the operator submitted the change (µs).
    pub submitted_at_us: u64,
    /// When a leader accepted the proposal (µs); `None` if no leader
    /// ever took it.
    pub accepted_at_us: Option<u64>,
    /// When the new configuration first took effect at a replica (µs,
    /// observed at the driver's 200 ms polling granularity); `None` if
    /// the run ended first.
    pub completed_at_us: Option<u64>,
    /// The configuration epoch the change creates.
    pub target_epoch: u64,
    /// Concrete node ids joining the ensemble.
    pub add: Vec<usize>,
    /// Concrete node ids leaving the ensemble.
    pub remove: Vec<usize>,
}

/// The observables of one run.
#[derive(Debug)]
pub struct RunReport {
    /// Per-second completions/errors and WIRT samples.
    pub recorder: Recorder,
    /// Observed crash/recovery spans.
    pub spans: Vec<RecoverySpan>,
    /// Administrative membership changes executed during the run.
    pub reconfigs: Vec<ReconfigIncident>,
    /// The paper's dependability measures.
    pub dependability: DependabilityReport,
    /// AWIPS over the whole measurement interval.
    pub awips: f64,
    /// Mean WIRT (ms) over the measurement interval.
    pub mean_wirt_ms: f64,
    /// Schedule used (for downstream window math).
    pub schedule: Schedule,
    /// Middleware status per surviving server at run end.
    pub server_status: Vec<Option<treplica::MwStatus>>,
    /// Total network messages carried during the run.
    pub net_messages: u64,
    /// Total payload bytes carried.
    pub net_bytes: u64,
    /// Total durable disk writes across the server replicas.
    pub disk_writes: u64,
    /// Consensus-log appends across the server replicas (the group
    /// commit's target: one per decree per acceptor, not per update).
    pub disk_appends: u64,
    /// The invariant auditor's verdict (always empty of violations — the
    /// run asserts so before returning).
    pub audit: AuditReport,
    /// Structured trace of the run (empty unless
    /// [`ExperimentConfig::trace`] enabled it), in the engine's
    /// deterministic dispatch order.
    pub trace: Vec<simnet::TraceRecord>,
    /// Per-node metric registries accumulated by the tracer (index =
    /// node id; empty when tracing is off).
    pub metrics: Vec<obs::NodeMetrics>,
    /// Observable events the engine dispatched during the run — the
    /// denominator for events-per-second throughput reporting.
    pub engine_events: u64,
    /// Ground truth: every fault the driver actually applied, stamped
    /// with its true application time (always recorded; the log is
    /// empty on fault-free runs).
    pub injections: InjectionLog,
    /// The online monitor's alert-lifecycle log (empty unless
    /// [`ExperimentConfig::monitor`] enabled it).
    pub alerts: obs::AlertLog,
}

#[derive(Debug, Clone)]
enum Admin {
    Crash {
        server: usize,
        span: usize,
    },
    Restart {
        server: usize,
        span: usize,
    },
    Cut {
        minority: Vec<usize>,
    },
    Heal,
    /// Degrade (`Some`) or restore (`None`) every server-to-server link.
    NetFault {
        fault: Option<LinkFault>,
    },
    /// Arm (`Some`) or disarm (`None`) one server's disk fault model.
    DiskFault {
        server: usize,
        fault: Option<DiskFault>,
    },
    /// Submit membership change `incident` at some live replica
    /// (retried at the next poll if no leader accepts it).
    Reconfig {
        incident: usize,
    },
    /// Poll for membership change `incident` taking effect, then
    /// provision its joiners and take its removed nodes out of rotation.
    AwaitEpoch {
        incident: usize,
    },
}

fn link_fault(spec: &LinkFaultSpec) -> LinkFault {
    LinkFault {
        loss: spec.loss,
        duplicate: spec.duplicate,
        reorder: spec.reorder,
        reorder_delay: SimDuration::from_micros(spec.reorder_delay_us),
    }
}

/// Runs one experiment to completion (simulated time).
pub fn run_experiment(config: &ExperimentConfig) -> RunReport {
    let params = PopulationParams {
        items: config.population_items,
        ebs: config.ebs,
        seed: 0x7bc0_57a7e,
    };
    let replicas = config.replicas;
    // Spare node ids follow the initial replicas; they stay unprovisioned
    // (no process, empty disk) until a reconfiguration adds them. With no
    // reconfig events the layout is identical to the pre-reconfig one.
    let spares = config.faultload.spares_needed();
    let server_nodes = replicas + spares;
    let proxy_node = NodeId(server_nodes);
    let first_client = server_nodes + 1;
    let total_nodes = server_nodes + 1 + config.client_nodes;

    let mut engine: Engine<ClusterMsg> =
        Engine::new(total_nodes, SimConfig::default(), config.seed);
    engine.enable_tracing(config.trace);
    // Admin actions (fault injections) have no server of their own; their
    // trace events are stamped against the proxy/admin node.
    let admin_node = proxy_node;
    let mut recorder = Recorder::new(config.schedule.total_us());

    let mut treplica_config = TreplicaConfig {
        checkpoint_interval: config.checkpoint_interval,
        batch_max_updates: config.batch_max_updates,
        batch_window_us: config.batch_window_us,
        trace: config.trace,
        ..TreplicaConfig::lan(replicas)
    };
    if config.classic_only {
        treplica_config.paxos.fast_enabled = false;
    }

    let mut auditor = InvariantAuditor::new(replicas);
    let mut servers: Vec<Option<ServerNode>> = (0..server_nodes)
        .map(|i| {
            if i >= replicas {
                return None; // spare: provisioned by a reconfiguration
            }
            Some(ServerNode::new(
                i,
                params,
                treplica_config.clone(),
                config.service.clone(),
                &mut engine,
                &mut auditor,
            ))
        })
        .collect();

    let mut proxy = ProxyNode::new(
        proxy_node,
        (0..replicas).map(NodeId).collect(),
        ProxyConfig::default(),
        &mut engine,
    );

    let rbe_config = RbeConfig {
        profile: config.profile,
        think_mean_us: config.think_us,
        items: params.items,
        customers: params.customers(),
    };
    let mut clients: Vec<ClientNode> = Vec::new();
    let per_node = config.rbes / config.client_nodes.max(1);
    let mut assigned = 0;
    for c in 0..config.client_nodes {
        let count = if c + 1 == config.client_nodes {
            config.rbes - assigned
        } else {
            per_node
        };
        clients.push(ClientNode::new(
            NodeId(first_client + c),
            proxy_node,
            count,
            assigned as u64,
            rbe_config.clone(),
            config.seed ^ 0xc11e,
            config.schedule.ramp_up_us,
            &mut engine,
        ));
        assigned += count;
    }

    // Faultload: pick distinct victims pseudo-randomly (paper §5.5:
    // "replicas to be crashed were chosen at random").
    let mut victim_rng = rand::rngs::StdRng::seed_from_u64(config.seed ^ 0xfau64);
    let mut victims: Vec<usize> = (0..replicas).collect();
    victims.shuffle(&mut victim_rng);

    let mut spans: Vec<RecoverySpan> = Vec::new();
    let mut admin: Vec<(u64, Admin)> = Vec::new();
    for event in &config.faultload.events {
        let server = victims[event.victim % victims.len()];
        let span = spans.len();
        spans.push(RecoverySpan {
            server,
            crash_at: event.at_us,
            restart_at: 0,
            recovered_at: None,
            manual: matches!(event.recovery, RecoveryKind::Manual { .. }),
        });
        admin.push((event.at_us, Admin::Crash { server, span }));
        let restart_at = match event.recovery {
            RecoveryKind::Autonomous => Some(event.at_us + config.watchdog_delay_us),
            RecoveryKind::Manual { at_us } => Some(at_us),
            // Permanent hardware loss: only a reconfiguration replacing
            // the machine restores the ensemble's spare capacity.
            RecoveryKind::Never => None,
        };
        if let Some(restart_at) = restart_at {
            admin.push((restart_at, Admin::Restart { server, span }));
        }
    }
    // Membership changes: assign each event its concrete joiner ids (the
    // next free spare slots, in order) and resolve removals through the
    // victim permutation.
    let mut incidents: Vec<ReconfigIncident> = Vec::new();
    let mut next_spare = replicas;
    for rc in &config.faultload.reconfigs {
        let add: Vec<usize> = (0..rc.add_spares)
            .map(|_| {
                let id = next_spare;
                next_spare += 1;
                id
            })
            .collect();
        let remove: Vec<usize> = rc
            .remove
            .iter()
            .map(|v| victims[*v % victims.len()])
            .collect();
        let incident = incidents.len();
        incidents.push(ReconfigIncident {
            submitted_at_us: rc.at_us,
            accepted_at_us: None,
            completed_at_us: None,
            target_epoch: 0,
            add,
            remove,
        });
        admin.push((rc.at_us, Admin::Reconfig { incident }));
    }
    for nf in &config.faultload.net_faults {
        admin.push((
            nf.at_us,
            Admin::NetFault {
                fault: Some(link_fault(&nf.fault)),
            },
        ));
        admin.push((nf.until_us, Admin::NetFault { fault: None }));
    }
    for df in &config.faultload.disk_faults {
        let server = victims[df.victim % victims.len()];
        let fault = DiskFault {
            write_fail_probability: df.write_fail,
            torn_tail_on_crash: df.torn_tail,
        };
        admin.push((
            df.at_us,
            Admin::DiskFault {
                server,
                fault: Some(fault),
            },
        ));
        admin.push((
            df.until_us,
            Admin::DiskFault {
                server,
                fault: None,
            },
        ));
    }
    for partition in &config.faultload.partitions {
        let minority: Vec<usize> = partition
            .minority
            .iter()
            .map(|v| victims[*v % victims.len()])
            .collect();
        admin.push((partition.at_us, Admin::Cut { minority }));
        admin.push((partition.heal_at_us, Admin::Heal));
    }
    admin.sort_by_key(|(t, _)| *t);
    let mut admin_idx = 0usize;

    // Ground truth for alert scoring: every fault stamped as applied.
    let mut injections = InjectionLog::default();
    let mut reconfig_recorded = vec![false; incidents.len()];

    // Online monitoring. When disabled nothing is constructed and no
    // tick ever bounds the dispatch loop — literally zero overhead.
    // When enabled, the engine is paused at exact scrape instants while
    // the monitor *reads* cluster state, which leaves the event stream
    // untouched; ticks cover only the measurement interval so ramp-up
    // and ramp-down never feed the rule windows.
    let mut monitor = config
        .monitor
        .enabled
        .then(|| Monitor::new(&config.monitor));
    let mut scrape_ticks = config.monitor.enabled.then(|| {
        TickSchedule::new(
            SimTime::from_micros(config.schedule.measure_start_us()),
            SimDuration::from_micros(config.monitor.scrape_interval_us.max(1)),
            SimTime::from_micros(config.schedule.measure_end_us()),
        )
    });

    let end = SimTime::from_micros(config.schedule.total_us());
    loop {
        let mut limit = match admin.get(admin_idx) {
            Some((t, _)) => end.min(SimTime::from_micros(*t)),
            None => end,
        };
        if let Some(due) = scrape_ticks.as_ref().and_then(TickSchedule::next_due) {
            limit = limit.min(due);
        }
        match engine.next_event_before(limit) {
            Some((_, Event::DiskWriteFailed { node, token })) => {
                // A failed fsync is fail-stop: the replica cannot tell
                // which of its write-ahead obligations reached the platter,
                // so it crashes and the watchdog re-instantiates it (its
                // recovery path re-reads whatever actually survived).
                let server = node.index();
                if server < server_nodes && servers[server].is_some() {
                    auditor.on_disk_write_failed(server, token);
                    auditor.on_crash(server);
                    engine.crash(node);
                    servers[server] = None;
                    let now_us = engine.now().as_micros();
                    // Ground truth: the disk fault *bites* here — the
                    // induced fail-stop crash is the operator-visible
                    // incident, stamped at its true time.
                    injections.record(now_us, server as u32, INJECT_CRASH);
                    let span = spans.len();
                    spans.push(RecoverySpan {
                        server,
                        crash_at: now_us,
                        restart_at: 0,
                        recovered_at: None,
                        manual: false,
                    });
                    let restart_at = now_us + config.watchdog_delay_us;
                    let pos =
                        admin[admin_idx..].partition_point(|(at, _)| *at <= restart_at) + admin_idx;
                    admin.insert(pos, (restart_at, Admin::Restart { server, span }));
                }
            }
            Some((_, event)) => {
                dispatch(
                    event,
                    &mut engine,
                    &mut servers,
                    &mut proxy,
                    &mut clients,
                    &mut recorder,
                    server_nodes,
                    first_client,
                    &mut auditor,
                );
            }
            None => {
                // Clock is at `limit`: scrape, apply due admin actions,
                // or finish. The scrape runs first so that when a tick
                // and a fault injection coincide, the monitor samples
                // the pre-fault state — deterministic either way, but
                // this order keeps detection latency honest.
                if let Some(due) = scrape_ticks.as_ref().and_then(TickSchedule::next_due) {
                    if engine.now() >= due {
                        if let Some(ticks) = scrape_ticks.as_mut() {
                            ticks.advance();
                        }
                        if let Some(mon) = monitor.as_mut() {
                            let sample = scrape_sample(&servers, &proxy, &recorder);
                            let now_us = engine.now().as_micros();
                            for tr in mon.on_scrape(now_us, &sample) {
                                let event = match tr.phase {
                                    obs::AlertPhase::Pending => obs::TraceEvent::AlertPending {
                                        rule: tr.rule,
                                        subject: tr.subject,
                                    },
                                    obs::AlertPhase::Firing => obs::TraceEvent::AlertFiring {
                                        rule: tr.rule,
                                        subject: tr.subject,
                                        pending_us: tr.elapsed_us,
                                    },
                                    obs::AlertPhase::Resolved => obs::TraceEvent::AlertResolved {
                                        rule: tr.rule,
                                        subject: tr.subject,
                                        firing_us: tr.elapsed_us,
                                    },
                                };
                                engine.trace(admin_node, event);
                            }
                        }
                        continue;
                    }
                }
                if let Some((t, action)) = admin.get(admin_idx).cloned() {
                    if engine.now() >= SimTime::from_micros(t) {
                        admin_idx += 1;
                        match action {
                            Admin::Crash { server, span } => {
                                if servers[server].is_some() {
                                    auditor.on_crash(server);
                                    engine.crash(NodeId(server));
                                    servers[server] = None;
                                    spans[span].crash_at = engine.now().as_micros();
                                    injections.record(
                                        spans[span].crash_at,
                                        server as u32,
                                        INJECT_CRASH,
                                    );
                                }
                            }
                            Admin::Restart { server, span } => {
                                if servers[server].is_none() {
                                    engine.restart(NodeId(server));
                                    spans[span].restart_at = engine.now().as_micros();
                                    injections.clear_open(
                                        server as u32,
                                        INJECT_CRASH,
                                        spans[span].restart_at,
                                    );
                                    servers[server] = Some(ServerNode::recover(
                                        server,
                                        params,
                                        treplica_config.clone(),
                                        config.service.clone(),
                                        &mut engine,
                                        &mut auditor,
                                    ));
                                }
                            }
                            Admin::NetFault { fault } => match fault {
                                Some(f) => {
                                    injections.record(
                                        engine.now().as_micros(),
                                        INJECT_CLUSTER,
                                        INJECT_NET_FAULT,
                                    );
                                    engine.trace(
                                        admin_node,
                                        obs::TraceEvent::NetFaultSet {
                                            loss_pct: (f.loss * 100.0) as u64,
                                            dup_pct: (f.duplicate * 100.0) as u64,
                                        },
                                    );
                                    for a in 0..replicas {
                                        for b in (a + 1)..replicas {
                                            engine.network_mut().set_link_fault(
                                                NodeId(a),
                                                NodeId(b),
                                                f,
                                            );
                                        }
                                    }
                                }
                                None => {
                                    injections.clear_open(
                                        INJECT_CLUSTER,
                                        INJECT_NET_FAULT,
                                        engine.now().as_micros(),
                                    );
                                    engine.trace(admin_node, obs::TraceEvent::NetFaultCleared);
                                    engine.network_mut().clear_link_faults();
                                }
                            },
                            Admin::DiskFault { server, fault } => {
                                match &fault {
                                    Some(f) => {
                                        injections.record(
                                            engine.now().as_micros(),
                                            server as u32,
                                            INJECT_DISK_FAULT,
                                        );
                                        engine.trace(
                                            NodeId(server),
                                            obs::TraceEvent::DiskFaultSet {
                                                fail_pct: (f.write_fail_probability * 100.0) as u64,
                                                torn: f.torn_tail_on_crash,
                                            },
                                        );
                                    }
                                    None => {
                                        injections.clear_open(
                                            server as u32,
                                            INJECT_DISK_FAULT,
                                            engine.now().as_micros(),
                                        );
                                        engine.trace(
                                            NodeId(server),
                                            obs::TraceEvent::DiskFaultCleared,
                                        );
                                    }
                                }
                                engine.set_disk_fault(NodeId(server), fault);
                            }
                            Admin::Cut { minority } => {
                                injections.record(
                                    engine.now().as_micros(),
                                    INJECT_CLUSTER,
                                    INJECT_PARTITION,
                                );
                                engine.trace(
                                    admin_node,
                                    obs::TraceEvent::PartitionCut {
                                        peers: minority.len() as u64,
                                    },
                                );
                                let majority: Vec<NodeId> = (0..replicas)
                                    .filter(|i| !minority.contains(i))
                                    .map(NodeId)
                                    .collect();
                                let isolated: Vec<NodeId> =
                                    minority.iter().map(|i| NodeId(*i)).collect();
                                engine.network_mut().partition(&majority, &isolated);
                            }
                            Admin::Heal => {
                                injections.clear_open(
                                    INJECT_CLUSTER,
                                    INJECT_PARTITION,
                                    engine.now().as_micros(),
                                );
                                engine.trace(admin_node, obs::TraceEvent::PartitionHealed);
                                engine.network_mut().heal_all();
                            }
                            Admin::Reconfig { incident } => {
                                // Recorded once per incident at the first
                                // submission attempt, not per retry.
                                if !reconfig_recorded[incident] {
                                    reconfig_recorded[incident] = true;
                                    injections.record(
                                        engine.now().as_micros(),
                                        INJECT_CLUSTER,
                                        INJECT_RECONFIG,
                                    );
                                }
                                let add: Vec<paxos::ReplicaId> = incidents[incident]
                                    .add
                                    .iter()
                                    .map(|i| paxos::ReplicaId(*i as u32))
                                    .collect();
                                let remove: Vec<paxos::ReplicaId> = incidents[incident]
                                    .remove
                                    .iter()
                                    .map(|i| paxos::ReplicaId(*i as u32))
                                    .collect();
                                let mut accepted = false;
                                for server in servers.iter_mut().take(server_nodes) {
                                    let Some(server) = server.as_mut() else {
                                        continue;
                                    };
                                    if server.is_retired() {
                                        continue;
                                    }
                                    let target = server.membership().epoch() + 1;
                                    if server.execute_reconfig(
                                        &mut engine,
                                        add.clone(),
                                        remove.clone(),
                                        &mut auditor,
                                    ) {
                                        incidents[incident].accepted_at_us =
                                            Some(engine.now().as_micros());
                                        incidents[incident].target_epoch = target;
                                        accepted = true;
                                        break;
                                    }
                                }
                                // Poll for completion, or retry the
                                // submission until some leader takes it.
                                let (delay, next) = if accepted {
                                    (200_000, Admin::AwaitEpoch { incident })
                                } else {
                                    (500_000, Admin::Reconfig { incident })
                                };
                                let at = engine.now().as_micros() + delay;
                                let pos = admin[admin_idx..].partition_point(|(t, _)| *t <= at)
                                    + admin_idx;
                                admin.insert(pos, (at, next));
                            }
                            Admin::AwaitEpoch { incident } => {
                                let target = incidents[incident].target_epoch;
                                let membership = servers.iter().flatten().find_map(|s| {
                                    (!s.is_retired() && s.membership().epoch() >= target)
                                        .then(|| s.membership().clone())
                                });
                                match membership {
                                    Some(membership) => {
                                        incidents[incident].completed_at_us =
                                            Some(engine.now().as_micros());
                                        injections.clear_open(
                                            INJECT_CLUSTER,
                                            INJECT_RECONFIG,
                                            engine.now().as_micros(),
                                        );
                                        // Provision the joiners under the
                                        // new configuration (it contains
                                        // them) and route around the
                                        // removed nodes right away.
                                        for idx in incidents[incident].add.clone() {
                                            if servers[idx].is_none() {
                                                servers[idx] = Some(ServerNode::join(
                                                    idx,
                                                    params,
                                                    treplica_config.clone(),
                                                    membership.clone(),
                                                    config.service.clone(),
                                                    &mut engine,
                                                    &mut auditor,
                                                ));
                                                proxy.add_server(NodeId(idx));
                                            }
                                        }
                                        for idx in incidents[incident].remove.clone() {
                                            proxy.mark_down(&mut engine, idx);
                                        }
                                    }
                                    None => {
                                        let at = engine.now().as_micros() + 200_000;
                                        let pos = admin[admin_idx..]
                                            .partition_point(|(t, _)| *t <= at)
                                            + admin_idx;
                                        admin.insert(pos, (at, Admin::AwaitEpoch { incident }));
                                    }
                                }
                            }
                        }
                        continue;
                    }
                }
                if engine.now() >= end {
                    break;
                }
            }
        }
    }

    // Collect recovery completion times.
    for span in &mut spans {
        if let Some(server) = servers[span.server].as_ref() {
            span.recovered_at = server.recovery_completed_at();
        }
    }

    // Flush the clients' trailing partial-second trace samples.
    for client in clients.iter_mut() {
        client.flush_trace(&mut engine);
    }

    let dependability = DependabilityReport::build(
        recorder.wips_series(),
        config.schedule.measure_start_us(),
        config.schedule.measure_end_us(),
        spans.clone(),
        recorder.total_errors(),
        recorder.total_ok() + recorder.total_errors(),
        config.faultload.fault_count(),
        config.faultload.manual_recoveries(),
    );
    let awips = recorder.awips(
        config.schedule.measure_start_us(),
        config.schedule.measure_end_us(),
    );
    let mean_wirt_ms = recorder.mean_wirt(
        config.schedule.measure_start_us(),
        config.schedule.measure_end_us(),
    ) / 1_000.0;
    let server_status = servers
        .iter()
        .map(|s| s.as_ref().map(ServerNode::mw_status))
        .collect();
    let net_messages = engine.network().messages_sent();
    let net_bytes = engine.network().bytes_carried();
    let disk_writes = (0..server_nodes)
        .map(|i| engine.disk(NodeId(i)).writes())
        .sum();
    let disk_appends = (0..server_nodes)
        .map(|i| engine.disk(NodeId(i)).log_appends())
        .sum();
    let trace = engine.tracer_mut().take_records();
    let metrics = engine.tracer().metrics().to_vec();
    let audit = auditor.report();
    if !audit.violations.is_empty() {
        // Dump the flight recorder: a bounded ring of the most recent
        // trace records that runs even when full tracing is off, so a
        // violation always comes with its causal context.
        let context = engine.tracer().flight_jsonl();
        let flight = engine.tracer().flight_records().len();
        panic!(
            "consensus invariants violated (seed {}): {} violation(s), first: {}\n\
             flight recorder ({} records):\n{}",
            config.seed,
            audit.total_violations,
            audit.violations.first().map(String::as_str).unwrap_or(""),
            flight,
            if context.is_empty() {
                "(flight recorder empty — re-run with tracing for context)"
            } else {
                &context
            }
        );
    }

    RunReport {
        recorder,
        spans,
        reconfigs: incidents,
        dependability,
        awips,
        mean_wirt_ms,
        schedule: config.schedule,
        server_status,
        net_messages,
        net_bytes,
        disk_writes,
        disk_appends,
        audit,
        trace,
        metrics,
        engine_events: engine.events_dispatched(),
        injections,
        alerts: monitor.map(Monitor::into_log).unwrap_or_default(),
    }
}

/// Assembles the monitor's out-of-band view of the cluster: cumulative
/// client counters, per-slot process/readiness state, and the proxy's
/// rotation size. Pure reads — scraping cannot perturb the run.
fn scrape_sample(servers: &[Option<ServerNode>], proxy: &ProxyNode, recorder: &Recorder) -> Scrape {
    Scrape {
        ok_total: recorder.total_ok(),
        err_total: recorder.total_errors(),
        nodes: servers
            .iter()
            .map(|slot| match slot.as_ref() {
                // Crashed, or a spare that was never provisioned.
                None => NodeHealth::default(),
                Some(server) => NodeHealth {
                    present: true,
                    ready: server.is_ready(),
                    retired: server.is_retired(),
                },
            })
            .collect(),
        healthy_backends: proxy.healthy_count() as u64,
    }
}

#[allow(clippy::too_many_arguments)]
fn dispatch(
    event: Event<ClusterMsg>,
    engine: &mut Engine<ClusterMsg>,
    servers: &mut [Option<ServerNode>],
    proxy: &mut ProxyNode,
    clients: &mut [ClientNode],
    recorder: &mut Recorder,
    server_nodes: usize,
    first_client: usize,
    auditor: &mut InvariantAuditor,
) {
    match event {
        Event::Message { from, to, payload } => {
            let t = to.index();
            if t < server_nodes {
                if let Some(server) = servers[t].as_mut() {
                    server.on_message(engine, from, payload, auditor);
                }
            } else if t == server_nodes {
                proxy.on_message(engine, from, payload);
            } else {
                clients[t - first_client].on_message(engine, payload, recorder);
            }
        }
        Event::Timer { node, token } => {
            let t = node.index();
            if t < server_nodes {
                if let Some(server) = servers[t].as_mut() {
                    server.on_timer(engine, token, auditor);
                }
            } else if t == server_nodes {
                proxy.on_timer(engine, token);
            } else {
                clients[t - first_client].on_timer(engine, token, recorder);
            }
        }
        Event::DiskWriteDone { node, token } => {
            let t = node.index();
            if t < server_nodes {
                if let Some(server) = servers[t].as_mut() {
                    server.on_disk_write_done(engine, token, auditor);
                }
            }
        }
        Event::DiskReadDone { node, token, value } => {
            let t = node.index();
            if t < server_nodes {
                if let Some(server) = servers[t].as_mut() {
                    server.on_disk_read_done(engine, token, value, auditor);
                }
            }
        }
        // Intercepted by the run loop before dispatch.
        Event::DiskWriteFailed { .. } => {}
    }
}
