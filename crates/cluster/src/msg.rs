//! Messages exchanged on the simulated cluster network.

use paxos::Batch;
use robuststore::Action;
use tpcw::{Interaction, SessionUpdate, WebRequest};
use treplica::MwMsg;

/// Everything that travels over the experimental setup's switch
/// (Figure 2): replication traffic among servers, HTTP between clients,
/// proxy and servers, and the proxy's health probes.
#[derive(Debug, Clone)]
pub enum ClusterMsg {
    /// Treplica traffic between server replicas (consensus values are
    /// group-commit batches of updates).
    Mw(MwMsg<Batch<Action>>),
    /// An HTTP request (client → proxy, or proxy → chosen server).
    Request {
        /// Globally unique request id (client-node namespaced).
        req_id: u64,
        /// The web interaction.
        request: WebRequest,
    },
    /// A successful HTTP response (server → proxy → client).
    Response {
        /// Request id being answered.
        req_id: u64,
        /// The interaction that was served.
        interaction: Interaction,
        /// Whether the page was produced (business errors still count
        /// as served pages).
        ok: bool,
        /// Session context for the browser.
        session: SessionUpdate,
        /// Page size (drives reply serialization latency).
        bytes: u64,
    },
    /// Connection error: the server died mid-request or refused (the
    /// client observes an error — paper §5.1).
    ConnError {
        /// The failed request.
        req_id: u64,
    },
    /// HAProxy-style HTTP health probe (proxy → server).
    Probe {
        /// Probe sequence number.
        seq: u64,
    },
    /// Probe response (server → proxy). `ready` is false while the
    /// replica is still recovering (HTTP 503).
    ProbeReply {
        /// Echoed sequence number.
        seq: u64,
        /// Server index echoed back.
        server: usize,
        /// Whether the application is serving.
        ready: bool,
    },
}
