//! Simulator micro-benchmarks: raw event throughput of the engine (the
//! budget every experiment run spends from).
//!
//! The `dispatch_*_1m` pair is the queue-swap acceptance check: the
//! same steady-state pop/push mix against the calendar-queue wheel and
//! against the reference binary heap it replaced, at the pending-event
//! population (1 M) a million-user sweep sustains. The wheel must win
//! by ≥5× events/sec.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use simnet::queue::{EventWheel, HeapQueue};
use simnet::{Engine, NodeId, SimConfig, SimDuration, SimTime};

/// Entries resident in the queue during the steady-state benches: the
/// million-user sweep population (one pending think timer per RBE).
const POPULATION: u64 = 1_000_000;
/// Pop/push cycles per measured routine call.
const CYCLES: u64 = 64;

fn lcg(state: &mut u64) -> u64 {
    *state = state
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    *state >> 33
}

/// Steady-state dispatch: pop the earliest entry, push a replacement a
/// pseudo-random offset (≤ 1 s) later — the shape of a sweep's timer
/// churn, where think-time timers, disk completions and network delays
/// all land within about a second of now. Runs against any queue via
/// the fn-pointer pair.
fn steady_state<Q>(
    b: &mut criterion::Bencher,
    mut queue: Q,
    pop: fn(&mut Q) -> (u64, u64),
    push: fn(&mut Q, u64, u64),
) {
    let mut state = 0x9E3779B97F4A7C15u64;
    let mut seq = POPULATION;
    b.iter(|| {
        let mut last = 0;
        for _ in 0..CYCLES {
            let (at, s) = pop(&mut queue);
            black_box(s);
            let offset = 1 + lcg(&mut state) % 1_000_000;
            push(&mut queue, at + offset, seq);
            seq += 1;
            last = at;
        }
        last
    });
}

fn bench_dispatch(c: &mut Criterion) {
    let mut wheel: EventWheel<u64> = EventWheel::new();
    let mut heap: HeapQueue<u64> = HeapQueue::new();
    // 1 M pending entries spread over ~1 s of simulated time — the
    // density a million-RBE sweep sustains (every RBE keeps a ~1 s
    // think timer pending, so spacing averages ~1 µs).
    let mut state = 0xDEADBEEFu64;
    let mut at = 0u64;
    for seq in 0..POPULATION {
        at += lcg(&mut state) % 2;
        wheel.push(at, seq, seq);
        heap.push(at, seq, seq);
    }
    c.bench_function("dispatch_wheel_1m", |b| {
        steady_state(
            b,
            &mut wheel,
            |q| {
                let (at, seq, _) = q.pop_before(u64::MAX).expect("population constant");
                (at, seq)
            },
            |q, at, seq| q.push(at, seq, seq),
        );
    });
    c.bench_function("dispatch_refheap_1m", |b| {
        steady_state(
            b,
            &mut heap,
            |q| {
                let (at, seq, _) = q.pop_before(u64::MAX).expect("population constant");
                (at, seq)
            },
            |q, at, seq| q.push(at, seq, seq),
        );
    });
}

fn bench_events(c: &mut Criterion) {
    c.bench_function("message_roundtrip_x100", |b| {
        b.iter(|| {
            let mut e: Engine<u64> = Engine::new(4, SimConfig::default(), 1);
            for i in 0..100u64 {
                e.send(NodeId((i % 4) as usize), NodeId(((i + 1) % 4) as usize), i);
            }
            let mut n = 0;
            while e.next_event_before(SimTime::from_secs(1)).is_some() {
                n += 1;
            }
            assert_eq!(n, 100);
        })
    });
    c.bench_function("timer_churn_x100", |b| {
        b.iter(|| {
            let mut e: Engine<u64> = Engine::new(1, SimConfig::default(), 1);
            for i in 0..100u64 {
                e.set_timer(NodeId(0), SimDuration::from_micros(i), i);
            }
            while e.next_event_before(SimTime::from_secs(1)).is_some() {}
        })
    });
}

criterion_group!(benches, bench_dispatch, bench_events);
criterion_main!(benches);
