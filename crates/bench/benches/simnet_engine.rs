//! Simulator micro-benchmarks: raw event throughput of the engine (the
//! budget every experiment run spends from).

use criterion::{criterion_group, criterion_main, Criterion};
use simnet::{Engine, NodeId, SimConfig, SimDuration, SimTime};

fn bench_events(c: &mut Criterion) {
    c.bench_function("message_roundtrip_x100", |b| {
        b.iter(|| {
            let mut e: Engine<u64> = Engine::new(4, SimConfig::default(), 1);
            for i in 0..100u64 {
                e.send(NodeId((i % 4) as usize), NodeId(((i + 1) % 4) as usize), i);
            }
            let mut n = 0;
            while e.next_event_before(SimTime::from_secs(1)).is_some() {
                n += 1;
            }
            assert_eq!(n, 100);
        })
    });
    c.bench_function("timer_churn_x100", |b| {
        b.iter(|| {
            let mut e: Engine<u64> = Engine::new(1, SimConfig::default(), 1);
            for i in 0..100u64 {
                e.set_timer(NodeId(0), SimDuration::from_micros(i), i);
            }
            while e.next_event_before(SimTime::from_secs(1)).is_some() {}
        })
    });
}

criterion_group!(benches, bench_events);
criterion_main!(benches);
