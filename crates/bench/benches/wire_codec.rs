//! Serialization micro-benchmarks: the codec that sizes every message
//! and persists every record.

use criterion::{criterion_group, criterion_main, Criterion};
use paxos::{Ballot, Decree, ProposalId, Record, ReplicaId, Slot};
use robuststore::Action;
use tpcw::{CartId, CartLine, CustomerId, ItemId, Payment};
use treplica::Wire;

fn action() -> Action {
    Action::BuyConfirm {
        cart: CartId(42),
        customer: CustomerId(1234),
        payment: Payment {
            cc_type: "VISA".into(),
            cc_num: "4111111111111111".into(),
            cc_name: "Jane Q Customer".into(),
            cc_expiry: 15_000,
            auth_id: "AUTH0123456789ab".into(),
            country: 17,
        },
        ship_type: 3,
        now: 123_456_789,
    }
}

fn bench_codec(c: &mut Criterion) {
    let a = action();
    let bytes = a.to_bytes();
    c.bench_function("encode_buy_confirm", |b| {
        b.iter(|| std::hint::black_box(a.to_bytes()))
    });
    c.bench_function("decode_buy_confirm", |b| {
        b.iter(|| Action::from_bytes(std::hint::black_box(&bytes)).unwrap())
    });

    let record: Record<Action> = Record::Accepted {
        ballot: Ballot::fast(7, ReplicaId(2)),
        slot: Slot(123_456),
        decree: Decree::Value(
            ProposalId {
                node: ReplicaId(2),
                epoch: 1,
                seq: 999,
            },
            action(),
        ),
    };
    let rbytes = record.to_bytes();
    c.bench_function("encode_log_record", |b| {
        b.iter(|| std::hint::black_box(record.to_bytes()))
    });
    c.bench_function("encode_log_record_scratch", |b| {
        // The middleware's persist path: one reused staging buffer, one
        // exact-size output allocation per record.
        let mut scratch = treplica::EncodeScratch::new();
        b.iter(|| std::hint::black_box(scratch.encode(&record)))
    });
    c.bench_function("decode_log_record", |b| {
        b.iter(|| Record::<Action>::from_bytes(std::hint::black_box(&rbytes)).unwrap())
    });
    c.bench_function("wire_size_cart_update", |b| {
        let a = Action::DoCart {
            cart: Some(CartId(1)),
            add: Some((ItemId(5), 2)),
            updates: vec![CartLine {
                item: ItemId(9),
                qty: 0,
            }],
            default_item: ItemId(0),
            now: 1,
        };
        b.iter(|| std::hint::black_box(a.wire_size()))
    });
}

criterion_group!(benches, bench_codec);
criterion_main!(benches);
