//! Disk-model micro-benchmarks: latency computation for the write and
//! read paths. These sit on the engine's disk completion path, so a
//! regression here taxes every simulated durable operation.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use simnet::{DiskConfig, DiskModel, StableOp};

fn bench_disk(c: &mut Criterion) {
    c.bench_function("disk_write_latency_x100", |b| {
        let mut disk = DiskModel::new(DiskConfig::default());
        let ops: Vec<StableOp> = (0..100u64)
            .map(|i| {
                if i % 2 == 0 {
                    StableOp::Append {
                        log: "wal".to_string(),
                        entry: vec![0u8; 64 + (i as usize % 192)],
                    }
                } else {
                    StableOp::Put {
                        key: format!("k{}", i % 16),
                        value: vec![0u8; 256],
                    }
                }
            })
            .collect();
        b.iter(|| {
            let mut total = 0u64;
            for op in &ops {
                total += disk.write_latency(black_box(op)).as_micros();
            }
            total
        })
    });
    c.bench_function("disk_read_latency_x100", |b| {
        let mut disk = DiskModel::new(DiskConfig::default());
        b.iter(|| {
            let mut total = 0u64;
            for i in 0..100u64 {
                total += disk.read_latency(black_box(1_000 + i * 37)).as_micros();
            }
            total
        })
    });
}

criterion_group!(benches, bench_disk);
criterion_main!(benches);
