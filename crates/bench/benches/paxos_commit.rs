//! Consensus micro-benchmarks: protocol CPU cost of committing values
//! through the in-memory ensemble, classic vs fast, across the paper's
//! ensemble sizes — the mechanism behind Figure 3's speedup limits.

use std::collections::VecDeque;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use paxos::{Effect, Msg, PaxosConfig, ProposalId, Replica, ReplicaId, Slot};

struct Bus {
    replicas: Vec<Replica<u64>>,
    inboxes: Vec<VecDeque<(ReplicaId, Msg<u64>)>>,
    delivered: usize,
    now: u64,
}

impl Bus {
    fn new(n: usize, fast: bool) -> Bus {
        let config = if fast {
            PaxosConfig::lan(n)
        } else {
            PaxosConfig::lan_classic_only(n)
        };
        let mut bus = Bus {
            replicas: (0..n)
                .map(|i| Replica::new(ReplicaId(i as u32), config.clone(), 0))
                .collect(),
            inboxes: (0..n).map(|_| VecDeque::new()).collect(),
            delivered: 0,
            now: 0,
        };
        for _ in 0..30 {
            bus.tick();
        }
        bus
    }

    fn apply(&mut self, node: usize, fx: Vec<Effect<u64>>) {
        let mut q = VecDeque::from(fx);
        while let Some(e) = q.pop_front() {
            match e {
                Effect::Send { to, msg } => {
                    self.inboxes[to.index()].push_back((ReplicaId(node as u32), msg))
                }
                Effect::Persist { token, .. } => {
                    q.extend(self.replicas[node].on_persisted(token));
                }
                Effect::Deliver { .. } => self.delivered += 1,
                // The bench never proposes a Reconfig decree.
                Effect::Reconfigured { .. } => {}
            }
        }
    }

    fn settle(&mut self) {
        loop {
            let mut moved = false;
            for i in 0..self.replicas.len() {
                while let Some((from, msg)) = self.inboxes[i].pop_front() {
                    moved = true;
                    let fx = self.replicas[i].on_message(from, msg, self.now);
                    self.apply(i, fx);
                }
            }
            if !moved {
                break;
            }
        }
    }

    fn tick(&mut self) {
        self.now += 20_000;
        for i in 0..self.replicas.len() {
            let fx = self.replicas[i].on_tick(self.now);
            self.apply(i, fx);
        }
        self.settle();
    }

    fn commit(&mut self, node: usize, value: u64) {
        let (pid, fx) = self.replicas[node].propose(value);
        let _: ProposalId = pid;
        self.apply(node, fx);
        self.settle();
    }
}

fn bench_commit(c: &mut Criterion) {
    let mut group = c.benchmark_group("paxos_commit");
    for &n in &[3usize, 5, 8, 12] {
        for &fast in &[false, true] {
            let label = if fast { "fast" } else { "classic" };
            group.bench_with_input(BenchmarkId::new(label, n), &(n, fast), |b, &(n, fast)| {
                let mut bus = Bus::new(n, fast);
                let mut v = 0u64;
                b.iter(|| {
                    v += 1;
                    bus.commit((v % n as u64) as usize, v);
                });
                assert!(bus.delivered > 0);
            });
        }
    }
    group.finish();
}

fn bench_recovery_replay(c: &mut Criterion) {
    // Cost of rebuilding an acceptor from a durable log of the given
    // length (the CPU side of the paper's log-replay recovery phase).
    let mut group = c.benchmark_group("acceptor_replay");
    for &len in &[1_000usize, 10_000, 50_000] {
        let records: Vec<paxos::Record<u64>> = (0..len as u64)
            .map(|i| paxos::Record::Accepted {
                ballot: paxos::Ballot::fast(1, ReplicaId(0)),
                slot: Slot(i),
                decree: paxos::Decree::Value(
                    ProposalId {
                        node: ReplicaId(0),
                        epoch: 0,
                        seq: i,
                    },
                    i,
                ),
            })
            .collect();
        group.bench_with_input(BenchmarkId::from_parameter(len), &records, |b, records| {
            b.iter(|| {
                let r: Replica<u64> = Replica::recover(
                    ReplicaId(1),
                    PaxosConfig::lan(5),
                    records.iter(),
                    Slot::ZERO,
                    1,
                    0,
                );
                std::hint::black_box(r.decided_upto());
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_commit, bench_recovery_replay);
criterion_main!(benches);
