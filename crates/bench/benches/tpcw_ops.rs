//! Bookstore operation micro-benchmarks: the database functionality
//! behind the 14 interactions (read paths and replicated updates).

use criterion::{criterion_group, criterion_main, Criterion};
use tpcw::{Bookstore, CartLine, CustomerId, ItemId, Payment, PopulationParams};

fn store() -> Bookstore {
    Bookstore::open(PopulationParams {
        items: 10_000,
        ebs: 1,
        seed: 5,
    })
}

fn payment() -> Payment {
    Payment {
        cc_type: "VISA".into(),
        cc_num: "4111111111111111".into(),
        cc_name: "Bench Buyer".into(),
        cc_expiry: 15_000,
        auth_id: "AUTHBENCH".into(),
        country: 3,
    }
}

fn bench_reads(c: &mut Criterion) {
    let s = store();
    c.bench_function("best_sellers", |b| {
        let mut subj = 0u8;
        b.iter(|| {
            subj = (subj + 1) % 24;
            std::hint::black_box(s.get_best_sellers(subj))
        })
    });
    c.bench_function("new_products", |b| {
        let mut subj = 0u8;
        b.iter(|| {
            subj = (subj + 1) % 24;
            std::hint::black_box(s.get_new_products(subj))
        })
    });
    c.bench_function("search_by_title", |b| {
        b.iter(|| std::hint::black_box(s.search_by_title("ab")))
    });
    c.bench_function("item_lookup", |b| {
        let mut i = 0u32;
        b.iter(|| {
            i = (i + 1) % 10_000;
            std::hint::black_box(s.item(ItemId(i)).unwrap())
        })
    });
}

fn bench_updates(c: &mut Criterion) {
    c.bench_function("cart_update", |b| {
        let mut s = store();
        let cart = s
            .do_cart(None, Some((ItemId(1), 1)), &[], ItemId(0), 0)
            .unwrap();
        let mut t = 0u64;
        b.iter(|| {
            t += 1;
            s.do_cart(
                Some(cart),
                Some((ItemId((t % 10_000) as u32), 1)),
                &[CartLine {
                    item: ItemId(((t + 1) % 10_000) as u32),
                    qty: 0,
                }],
                ItemId(0),
                t,
            )
            .unwrap()
        })
    });
    c.bench_function("buy_confirm", |b| {
        let mut s = store();
        let pay = payment();
        let mut t = 0u64;
        b.iter(|| {
            t += 1;
            let cart = s
                .do_cart(
                    None,
                    Some((ItemId((t % 10_000) as u32), 2)),
                    &[],
                    ItemId(0),
                    t,
                )
                .unwrap();
            s.buy_confirm(cart, CustomerId((t % 2_880) as u32), &pay, 1, t)
                .unwrap()
        })
    });
}

fn bench_population(c: &mut Criterion) {
    c.bench_function("generate_population_1eb", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            std::hint::black_box(tpcw::generate(PopulationParams {
                items: 1_000,
                ebs: 1,
                seed,
            }))
        })
    });
}

criterion_group!(benches, bench_reads, bench_updates, bench_population);
criterion_main!(benches);
