//! Checkpoint micro-benchmarks: snapshot/restore of the replicated
//! bookstore at growing overlay sizes (the CPU side of the paper's
//! recovery path; the disk side is simulated).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use robuststore::{Action, RobustStore};
use tpcw::{CustomerId, ItemId, Payment, PopulationParams};
use treplica::Application;

fn grown_store(orders: u64) -> RobustStore {
    let mut s = RobustStore::new(PopulationParams {
        items: 2_000,
        ebs: 1,
        seed: 9,
    });
    for t in 0..orders {
        let reply = s.apply(&Action::DoCart {
            cart: None,
            add: Some((ItemId((t % 2_000) as u32), 1)),
            updates: vec![],
            default_item: ItemId(0),
            now: t,
        });
        let cart = match reply {
            robuststore::Reply::Cart(id) => id,
            other => panic!("unexpected {other:?}"),
        };
        s.apply(&Action::BuyConfirm {
            cart,
            customer: CustomerId((t % 2_880) as u32),
            payment: Payment {
                cc_type: "VISA".into(),
                cc_num: "4111".into(),
                cc_name: "B".into(),
                cc_expiry: 15_000,
                auth_id: "A".into(),
                country: 1,
            },
            ship_type: 0,
            now: t,
        });
    }
    s
}

fn bench_snapshot(c: &mut Criterion) {
    let mut group = c.benchmark_group("snapshot");
    for &orders in &[0u64, 1_000, 5_000] {
        let s = grown_store(orders);
        group.bench_with_input(BenchmarkId::new("take", orders), &s, |b, s| {
            b.iter(|| std::hint::black_box(s.snapshot()))
        });
        let snap = s.snapshot();
        group.bench_with_input(BenchmarkId::new("restore", orders), &snap, |b, snap| {
            b.iter(|| RobustStore::restore(std::hint::black_box(&snap.data)).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_snapshot);
criterion_main!(benches);
