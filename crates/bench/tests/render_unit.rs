//! Tests of the report renderers (they feed EXPERIMENTS.md, so their
//! layout is part of the deliverable).

use bench::render::{render_recovery_times, render_speedup, wips_plot};
use bench::{speedups, RecoveryTimePoint, SweepPoint};
use tpcw::Profile;

#[test]
fn wips_plot_shapes_and_markers() {
    let mut series = vec![100u32; 60];
    for s in series.iter_mut().take(40).skip(30) {
        *s = 20; // a dip
    }
    let plot = wips_plot(&series, &[(30_000_000, 'c'), (40_000_000, 'r')], 60);
    assert!(plot.contains('c') && plot.contains('r'));
    assert!(plot.contains("peak≈100"));
    let lines: Vec<&str> = plot.lines().collect();
    assert_eq!(lines.len(), 3, "header + plot + markers");
    // The dip must render visibly lower than the plateau.
    let plot_line = lines[1];
    let plateau = plot_line.chars().next().unwrap();
    let dip = plot_line.chars().nth(33).unwrap();
    assert_ne!(plateau, dip, "dip must be visible: {plot_line}");
}

#[test]
fn wips_plot_empty_series() {
    assert_eq!(wips_plot(&[], &[], 10), "");
}

#[test]
fn speedup_table_contains_all_rows_and_ratios() {
    let points = vec![
        SweepPoint {
            replicas: 4,
            wips: 1000.0,
            wirt_ms: 100.0,
        },
        SweepPoint {
            replicas: 8,
            wips: 1600.0,
            wirt_ms: 110.0,
        },
        SweepPoint {
            replicas: 12,
            wips: 2000.0,
            wirt_ms: 120.0,
        },
    ];
    let s = render_speedup(Profile::Browsing, &points);
    assert!(s.contains("WIPSb"));
    assert!(s.contains("1.60"));
    assert!(s.contains("2.00"));
    let sp = speedups(&points);
    assert_eq!(sp[2], (12, 2.0));
}

#[test]
fn recovery_grid_has_all_cells() {
    let mut points = Vec::new();
    for replicas in [5usize, 8] {
        for profile in Profile::ALL {
            for (i, ebs) in [30u32, 50, 70].iter().enumerate() {
                points.push(RecoveryTimePoint {
                    replicas,
                    profile,
                    ebs: *ebs,
                    recovery_secs: 40.0 + 10.0 * i as f64,
                });
            }
        }
    }
    let s = render_recovery_times(&points);
    assert!(s.contains("5R browsing"));
    assert!(s.contains("8R ordering"));
    assert!(s.contains("40.0"));
    assert!(s.contains("60.0"));
    assert_eq!(s.lines().count(), 2 + 6, "header rows + six grid rows");
}

#[test]
fn mode_schedules_and_faultload_scaling() {
    use bench::Mode;
    let q = Mode::Quick.schedule();
    assert_eq!(q.interval_us, 180_000_000);
    let f = Mode::Full.schedule();
    assert_eq!(f.interval_us, 540_000_000);
    // Faultload times scale with the schedule in quick mode only.
    let fl = faultload::Faultload::single_crash();
    assert_eq!(
        Mode::Quick.faultload(fl.clone()).events[0].at_us,
        90_000_000
    );
    assert_eq!(Mode::Full.faultload(fl).events[0].at_us, 270_000_000);
    // Sweeps cover the paper's 4..=12 range.
    assert_eq!(Mode::Full.sweep_replicas(), (4..=12).collect::<Vec<_>>());
    assert_eq!(Mode::Quick.sweep_replicas(), vec![4, 6, 8, 10, 12]);
}
