//! Stress tests for the MPMC sweep runner. `loom` is not available in
//! the offline build environment, so instead of model-checking the
//! channel hand-off these tests drive the real stdlib threads hard:
//! many repetitions, oversubscribed task counts, and jittered task
//! durations that force out-of-order completion — the conditions under
//! which a bug in the index-reassembly plumbing would actually show.

use std::collections::BTreeSet;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use bench::run_parallel;

/// Deterministic per-item jitter so completion order is scrambled
/// without OS randomness.
fn jitter_us(x: u64) -> u64 {
    (x.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 56) % 180
}

#[test]
fn results_stay_in_input_order_across_many_contended_rounds() {
    // Repetition is the substitute for loom's schedule exploration:
    // every round re-creates the channels and the scoped threads, so
    // start-up/shutdown races get as many chances to fire as steady
    // state. Task counts deliberately straddle the worker count
    // (fewer, equal, a few more, many more).
    for round in 0u64..40 {
        let n = [1, 2, 3, 7, 8, 64, 257][round as usize % 7];
        let points: Vec<u64> = (0..n).map(|i| i + round * 1_000).collect();
        let expect: Vec<u64> = points.iter().map(|x| x * 3 + 1).collect();
        let out = run_parallel(points, |x| {
            std::thread::sleep(std::time::Duration::from_micros(jitter_us(x)));
            x * 3 + 1
        });
        assert_eq!(out, expect, "round {round}, n={n}");
    }
}

#[test]
fn every_task_runs_exactly_once() {
    // The queue must neither drop nor duplicate work when workers race
    // on the shared receiver. Count invocations and collect the set of
    // observed inputs.
    let calls = AtomicUsize::new(0);
    let seen = Mutex::new(BTreeSet::new());
    let n = 1_024u64;
    let out = run_parallel((0..n).collect(), |x| {
        calls.fetch_add(1, Ordering::Relaxed);
        seen.lock().expect("no poisoned lock").insert(x);
        x
    });
    assert_eq!(calls.load(Ordering::Relaxed), n as usize);
    assert_eq!(seen.lock().expect("no poisoned lock").len(), n as usize);
    assert_eq!(out, (0..n).collect::<Vec<_>>());
}

#[test]
fn work_actually_spreads_across_threads() {
    // Guard against a regression to fully sequential execution hiding
    // behind the order guarantee: with enough slow tasks, more than one
    // OS thread must participate. Skip on single-core machines, where
    // the sequential fallback is the documented behavior.
    let workers = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    if workers <= 1 {
        return;
    }
    let tids = Mutex::new(BTreeSet::new());
    let _ = run_parallel((0..64u64).collect(), |x| {
        tids.lock()
            .expect("no poisoned lock")
            .insert(format!("{:?}", std::thread::current().id()));
        std::thread::sleep(std::time::Duration::from_micros(200));
        x
    });
    let distinct = tids.lock().expect("no poisoned lock").len();
    assert!(
        distinct > 1,
        "expected multiple worker threads, saw {distinct}"
    );
}

#[test]
fn output_is_deterministic_regardless_of_schedule() {
    // The sweep contract the experiments rely on: the result vector is
    // a pure function of the inputs, never of thread interleaving.
    let run = |tag: u64| {
        run_parallel((0..128u64).collect::<Vec<_>>(), move |x| {
            std::thread::sleep(std::time::Duration::from_micros(jitter_us(x ^ tag)));
            x.wrapping_mul(6_364_136_223_846_793_005).rotate_left(17)
        })
    };
    let a = run(1);
    let b = run(2);
    assert_eq!(a, b, "same inputs must give byte-identical results");
}

#[test]
fn large_payloads_survive_the_channel_round_trip() {
    // Results travel through the unbounded result channel as owned
    // values; make each one big enough that a use-after-move or slot
    // mix-up would be visible in content, not just order.
    let out = run_parallel((0..32u64).collect(), |x| vec![x; 4_096]);
    for (i, v) in out.iter().enumerate() {
        assert_eq!(v.len(), 4_096);
        assert!(
            v.iter().all(|&e| e == i as u64),
            "slot {i} holds wrong payload"
        );
    }
}
