//! Beyond the paper — adversarial faultloads under the invariant auditor.
//!
//! The paper's faultload is limited to crashes and reboots (§5.1); this
//! experiment subjects the same testbed to the failure modes a LAN and a
//! commodity disk actually exhibit — message loss, duplication and
//! reordering, partition flaps, failed fsyncs with torn log tails — and
//! reports the dependability measures next to the auditor's verdict.
//! Every run asserts zero consensus-invariant violations before
//! returning, so the numbers below are from runs whose agreement,
//! durability ordering and mode discipline were checked end to end.

use bench::render::render_fd_quality;
use bench::{base_config, Console, FaultRun, JsonReport, Mode, TraceSink};
use cluster::run_experiment;
use faultload::{Faultload, LinkFaultSpec};
use tpcw::Profile;

fn main() {
    let con = Console::from_args();
    let mode = Mode::from_args();
    let mut seeds = vec![42u64];
    if let Mode::Full = mode {
        seeds.extend(43..52);
    }

    let base = base_config(mode, 5, Profile::Shopping);
    let total = base.schedule.total_us();
    let measure = base.schedule.measure_start_us();
    let named: Vec<(&str, Faultload)> = vec![
        (
            "lossy links ",
            Faultload::lossy_links(
                0,
                total,
                LinkFaultSpec {
                    loss: 0.02,
                    duplicate: 0.01,
                    reorder: 0.10,
                    reorder_delay_us: 5_000,
                },
            ),
        ),
        (
            "part. flaps ",
            Faultload::partition_flap(measure, 3, total / 20, total / 20, vec![1, 3]),
        ),
        (
            "faulty disk ",
            Faultload::faulty_disk(measure, total, 0, 0.001),
        ),
        ("adversarial ", Faultload::adversarial_mix(total * 3 / 4)),
    ];

    let mut json = JsonReport::new("exp_adversarial", mode);
    let mut trace = TraceSink::from_args();
    let mut runs: Vec<FaultRun> = Vec::new();
    con.say(format_args!(
        "Adversarial faultloads, 5 replicas, shopping mix ({mode:?} schedule):"
    ));
    for (name, faultload) in named {
        for &seed in &seeds {
            let mut config = base.clone();
            config.seed = seed;
            config.faultload = faultload.clone();
            let report = run_experiment(&config);
            let label = format!("{} seed {seed}", name.trim());
            json.push_with(&label, &report, &[("seed", seed as f64)]);
            trace.record_run(&label, &report);
            let d = &report.dependability;
            con.say(format_args!(
                "{name} seed {seed:3}: AWIPS {:7.1}  avail {:.5}  acc {:6.3}%  \
                 spans {}  audit: {} checks, {} violations",
                report.awips,
                d.availability,
                d.accuracy_percent,
                report.spans.len(),
                report.audit.checks,
                report.audit.total_violations,
            ));
            runs.push(FaultRun {
                replicas: 5,
                profile: Profile::Shopping,
                ebs: config.ebs,
                report,
            });
        }
    }
    con.say(render_fd_quality(
        "Adversarial faultloads: failure-detector quality",
        &runs,
    ));
    json.write_if_requested();
    trace.write_if_requested();
}
