//! Beyond the paper — group-commit batching ablation.
//!
//! The paper's Treplica deployment proposes every client update as its
//! own consensus decree, so a saturated ordering-heavy mix pays one
//! stable-log append (and one Paxos round) per update. This experiment
//! sweeps the middleware's group-commit knob
//! (`ExperimentConfig::batch_max_updates`) across the three TPC-W mixes
//! at a saturating offered load and reports committed-update throughput
//! next to the consensus-log append count — the batching win is real
//! only if both move: more updates per second, proportionally fewer
//! appends, and a zero-violation audit.
//!
//! `--gate` runs the two points the CI perf-regression gate compares
//! (ordering mix, batch 1 and 8); combine with `--json <path>` to emit
//! the machine-readable report `scripts/perf_gate.py` consumes.

use bench::{
    base_config, committed_updates, run_experiment_timed, Console, JsonReport, Mode, TraceSink,
};
use cluster::ServiceModel;
use faultload::{FaultEvent, Faultload, RecoveryKind};
use tpcw::Profile;

fn main() {
    let con = Console::from_args();
    let mode = Mode::from_args();
    let gate = std::env::args().any(|a| a == "--gate");
    let service = ServiceModel::default();
    let replicas = 8;
    let batches: &[usize] = if gate { &[1, 8] } else { &[1, 2, 4, 8, 16, 32] };
    let profiles: &[Profile] = if gate {
        &[Profile::Ordering]
    } else {
        &Profile::ALL
    };

    let mut json = JsonReport::new("exp_batching", mode);
    let mut trace = TraceSink::from_args();
    con.say(format_args!(
        "Group-commit batching, {replicas} replicas, saturating load ({mode:?} schedule):"
    ));
    for &profile in profiles {
        let mut baseline: Option<(f64, u64)> = None;
        for &batch in batches {
            let mut config = base_config(mode, replicas, profile);
            config.ebs = 50;
            if matches!(mode, Mode::Quick) {
                // Half-length schedule keeps the CI gate and the quick
                // sweep under a few minutes; the sim is deterministic,
                // so shorter runs are still exactly reproducible.
                config.schedule = tpcw::Schedule::quick(30);
            }
            // Saturating load: several times the analytic capacity
            // estimate, so the consensus hot path (not client think
            // time) stays the bottleneck even after batching lifts the
            // capacity — the closed loop must pin every batch size at
            // its own saturation point.
            config.rbes = ((service.estimated_capacity(profile, replicas) * 5.0) as usize).max(600);
            config.batch_max_updates = batch;
            // Even at saturation the CPU admits updates one page at a
            // time (~5 ms apart — mean handle cost over the update
            // ratio), so the window must cover `batch` admissions or
            // size-triggered flushes never happen. 10 ms per hoped-for
            // update gives 2× headroom; batch = 1 keeps the
            // pre-batching immediate flush.
            config.batch_window_us = if batch == 1 { 0 } else { batch as u64 * 10_000 };
            let timed = run_experiment_timed(&config);
            let report = &timed.report;
            let committed = committed_updates(report);
            let secs = report.schedule.total_us() as f64 / 1e6;
            let ups = committed as f64 / secs;
            let (base_ups, base_appends) = *baseline.get_or_insert((ups, report.disk_appends));
            let label = format!("{profile:?} batch={batch}");
            con.say(format_args!(
                "{label:<22} {ups:8.1} upd/s ({:5.2}x)  AWIPS {:7.1}  WIRT {:7.2} ms  \
                 log appends {:8} ({:5.2}x)  audit: {} checks, {} violations",
                ups / base_ups.max(1e-9),
                report.awips,
                report.mean_wirt_ms,
                report.disk_appends,
                report.disk_appends as f64 / base_appends.max(1) as f64,
                report.audit.checks,
                report.audit.total_violations,
            ));
            json.push_timed(&label, &timed, &[("batch", batch as f64)]);
            trace.record_run(&label, report);
        }
    }
    if gate {
        // Third gate point: the ordering mix again, batch 8, with one
        // mid-run crash. Its report carries the availability
        // decomposition (time to failover, ramp back to 95 % of
        // baseline), so the committed baseline lets the perf gate catch
        // recovery-path regressions, not just throughput ones. No
        // "batch" field — the speedup check must keep comparing the
        // crash-free points.
        let mut config = base_config(mode, replicas, Profile::Ordering);
        config.ebs = 30;
        config.schedule = tpcw::Schedule::quick(120);
        config.rbes = 1_000;
        config.batch_max_updates = 8;
        config.batch_window_us = 80_000;
        // Crash at 90 s: late enough that the availability baseline's
        // 12-window lookback (60 s at 5 s windows) sits entirely in the
        // post-ramp-up steady state.
        config.faultload = Faultload {
            events: vec![FaultEvent {
                at_us: 90_000_000,
                victim: 0,
                recovery: RecoveryKind::Autonomous,
            }],
            ..Faultload::default()
        };
        let timed = run_experiment_timed(&config);
        let report = &timed.report;
        let label = "Ordering batch=8 crash";
        let ramp = bench::report::availability_from_run(report)
            .first()
            .and_then(|r| r.ramp_to_95pct_us)
            .map(|us| format!("{:.1}s", us as f64 / 1e6))
            .unwrap_or_else(|| "-".to_string());
        con.say(format_args!(
            "{label:<22} AWIPS {:7.1}  availability {:.5}  ramp95 {ramp}",
            report.awips, report.dependability.availability,
        ));
        json.push_timed(label, &timed, &[("crash", 1.0)]);
        trace.record_run(label, report);
    }
    json.write_if_requested();
    trace.write_if_requested();
}
