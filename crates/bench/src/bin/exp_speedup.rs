//! Figure 3 — speedup experiments (saturated WIPS/WIRT vs replicas).
use bench::{fig3_speedup, render::render_speedup, Mode};
use tpcw::Profile;

fn main() {
    let mode = Mode::from_args();
    for profile in Profile::ALL {
        let points = fig3_speedup(mode, profile);
        println!("{}", render_speedup(profile, &points));
    }
}
