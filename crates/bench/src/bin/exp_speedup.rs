//! Figure 3 — speedup experiments (saturated WIPS/WIRT vs replicas).
use bench::{fig3_speedup, render::render_speedup, Console, JsonReport, Mode};
use tpcw::Profile;

fn main() {
    let con = Console::from_args();
    let mode = Mode::from_args();
    let mut json = JsonReport::new("exp_speedup", mode);
    for profile in Profile::ALL {
        let points = fig3_speedup(mode, profile);
        for p in &points {
            json.push_raw(
                &format!("{profile:?} {}r", p.replicas),
                &[
                    ("replicas", p.replicas as f64),
                    ("wips", p.wips),
                    ("wirt_ms", p.wirt_ms),
                ],
            );
        }
        con.say(render_speedup(profile, &points));
    }
    json.write_if_requested();
}
