//! Figure 8 + Tables 5–6 — two crashes, one autonomous and one delayed
//! (operator-triggered) recovery.
use bench::render::{
    render_accuracy, render_autonomy, render_fault_histogram, render_performability_delayed,
};
use bench::{dependability_grid, JsonReport, Mode};
use faultload::Faultload;

fn main() {
    let mode = Mode::from_args();
    let runs = dependability_grid(mode, &Faultload::double_crash_delayed());
    let mut json = JsonReport::new("exp_delayed_recovery", mode);
    for run in &runs {
        json.push(
            &format!("{}r {:?} ebs={}", run.replicas, run.profile, run.ebs),
            &run.report,
        );
    }
    json.write_if_requested();
    for run in runs.iter().filter(|r| r.replicas == 5) {
        println!("{}", render_fault_histogram(run));
    }
    println!(
        "{}",
        render_performability_delayed("Table 5 — delayed recovery: performability", &runs)
    );
    println!(
        "{}",
        render_accuracy("Table 6 — delayed recovery: accuracy (%)", &runs)
    );
    println!(
        "{}",
        render_autonomy("Delayed recovery: availability/autonomy", &runs)
    );
}
