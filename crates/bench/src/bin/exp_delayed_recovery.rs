//! Figure 8 + Tables 5–6 — two crashes, one autonomous and one delayed
//! (operator-triggered) recovery.
use bench::render::{
    render_accuracy, render_autonomy, render_fault_histogram, render_performability_delayed,
};
use bench::{dependability_grid, Mode};
use faultload::Faultload;

fn main() {
    let mode = Mode::from_args();
    let runs = dependability_grid(mode, &Faultload::double_crash_delayed());
    for run in runs.iter().filter(|r| r.replicas == 5) {
        println!("{}", render_fault_histogram(run));
    }
    println!(
        "{}",
        render_performability_delayed("Table 5 — delayed recovery: performability", &runs)
    );
    println!(
        "{}",
        render_accuracy("Table 6 — delayed recovery: accuracy (%)", &runs)
    );
    println!(
        "{}",
        render_autonomy("Delayed recovery: availability/autonomy", &runs)
    );
}
