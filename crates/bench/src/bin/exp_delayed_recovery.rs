//! Figure 8 + Tables 5–6 — two crashes, one autonomous and one delayed
//! (operator-triggered) recovery.
use bench::render::{
    render_accuracy, render_autonomy, render_availability, render_fault_histogram,
    render_fd_quality, render_performability_delayed,
};
use bench::{dependability_grid, Console, JsonReport, Mode, TraceSink};
use faultload::Faultload;

fn main() {
    let con = Console::from_args();
    let mode = Mode::from_args();
    let runs = dependability_grid(mode, &Faultload::double_crash_delayed());
    let mut json = JsonReport::new("exp_delayed_recovery", mode);
    let mut trace = TraceSink::from_args();
    for run in &runs {
        let label = format!("{}r {:?} ebs={}", run.replicas, run.profile, run.ebs);
        json.push(&label, &run.report);
        trace.record_run(&label, &run.report);
    }
    json.write_if_requested();
    trace.write_if_requested();
    for run in runs.iter().filter(|r| r.replicas == 5) {
        con.say(render_fault_histogram(run));
    }
    con.say(render_performability_delayed(
        "Table 5 — delayed recovery: performability",
        &runs,
    ));
    con.say(render_accuracy(
        "Table 6 — delayed recovery: accuracy (%)",
        &runs,
    ));
    con.say(render_autonomy(
        "Delayed recovery: availability/autonomy",
        &runs,
    ));
    con.say(render_availability(
        "Delayed recovery: availability decomposition",
        &runs,
    ));
    con.say(render_fd_quality(
        "Delayed recovery: failure-detector quality",
        &runs,
    ));
}
