//! Beyond the paper — planned membership changes vs. crash recovery.
//!
//! The paper's testbed holds N fixed and studies crashes; this
//! experiment makes N dynamic. Each scenario drives one operator
//! action through the Treplica configuration-epoch machinery —
//! scale-up (`add`), scale-down (`remove`), node replacement
//! (`replace`), a rolling restart (the software-upgrade drill, no
//! membership change), and permanent hardware loss followed by
//! reprovisioning — and reports the availability timeline next to the
//! plain-crash baseline: time to detect, time to failover, WIPS dip
//! depth, and the ramp back to 95 % of the pre-incident baseline.
//!
//! Flags: `--scenarios a,b,…` filters the scenario list; `--gate` runs
//! the two points the CI perf gate compares (replace +
//! rolling-restart); `--json <path>` emits the machine-readable report
//! `scripts/perf_gate.py` consumes; `--csv <path>` exports the
//! windowed availability timelines as one CSV artifact.

use bench::{
    base_config, reconfig_availability, run_experiment_timed, timeline_from_run, Console,
    JsonReport, Mode, TraceSink,
};
use cluster::RunReport;
use faultload::Faultload;

const SCENARIOS: &[&str] = &[
    "crash",
    "add",
    "remove",
    "replace",
    "rolling-restart",
    "permanent-loss",
];

/// The faultload for one scenario, with times placed relative to the
/// measurement interval so the 12-window availability baseline sits
/// entirely in post-ramp-up steady state.
fn scenario_faultload(name: &str, schedule: &tpcw::Schedule) -> Faultload {
    let measure = schedule.measure_start_us();
    let quarter = schedule.interval_us / 4;
    let mid = measure + 2 * quarter;
    match name {
        "crash" => Faultload::single_crash_at(mid),
        "add" => Faultload::reconfig_add(mid, 1),
        "remove" => Faultload::reconfig_remove(mid, vec![1]),
        "replace" => Faultload::reconfig_replace(mid, 0),
        // Three staggered restarts, one replica at a time.
        "rolling-restart" => Faultload::rolling_restart(measure + quarter, quarter / 2, 3),
        "permanent-loss" => Faultload::permanent_loss(measure + quarter, mid),
        other => panic!("unknown scenario {other:?}"),
    }
}

fn scenarios_from_args(gate: bool) -> Vec<String> {
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == "--scenarios" {
            let Some(list) = args.next() else {
                eprintln!("--scenarios requires a comma-separated list");
                std::process::exit(2);
            };
            let picked: Vec<String> = list.split(',').map(|s| s.trim().to_string()).collect();
            for s in &picked {
                if !SCENARIOS.contains(&s.as_str()) {
                    eprintln!("unknown scenario {s:?}; known: {SCENARIOS:?}");
                    std::process::exit(2);
                }
            }
            return picked;
        }
    }
    if gate {
        // The CI gate's two points: the canonical planned change and
        // the upgrade drill.
        vec!["replace".to_string(), "rolling-restart".to_string()]
    } else {
        SCENARIOS.iter().map(|s| s.to_string()).collect()
    }
}

fn opt_secs(v: Option<u64>) -> String {
    v.map(|us| format!("{:6.1}s", us as f64 / 1e6))
        .unwrap_or_else(|| "     -".to_string())
}

/// Prints one incident's availability decomposition.
fn say_breakdown(con: &Console, what: &str, r: &obs::AvailabilityReport) {
    con.say(format_args!(
        "    {what:<24} detect {}  failover {}  dip {:5.1}%  ramp95 {}",
        opt_secs(r.time_to_detect_us),
        opt_secs(r.time_to_failover_us),
        r.wips_dip_pct,
        opt_secs(r.ramp_to_95pct_us),
    ));
}

fn say_incidents(con: &Console, report: &RunReport) {
    for incident in &report.reconfigs {
        let accept = incident
            .accepted_at_us
            .map(|t| t.saturating_sub(incident.submitted_at_us));
        let complete = incident
            .completed_at_us
            .map(|t| t.saturating_sub(incident.submitted_at_us));
        con.say(format_args!(
            "    epoch {} (+{:?} -{:?})        accept {}  complete {}",
            incident.target_epoch,
            incident.add,
            incident.remove,
            opt_secs(accept),
            opt_secs(complete),
        ));
    }
}

fn main() {
    let con = Console::from_args();
    let mode = Mode::from_args();
    let gate = std::env::args().any(|a| a == "--gate");
    let scenarios = scenarios_from_args(gate);
    let csv_path = bench::report::csv_path_from_args();
    let replicas = 8;

    let mut json = JsonReport::new("exp_reconfig", mode);
    let mut trace = TraceSink::from_args();
    let mut csv = String::from(obs::Timeline::csv_header());
    csv.push('\n');
    con.say(format_args!(
        "Membership changes vs. crash recovery, {replicas} replicas ({mode:?} schedule):"
    ));
    for name in &scenarios {
        let mut config = base_config(mode, replicas, tpcw::Profile::Ordering);
        config.ebs = 30;
        config.rbes = 1_000;
        config.batch_max_updates = 8;
        config.batch_window_us = 80_000;
        if matches!(mode, Mode::Quick) {
            // Long enough for a 60 s pre-incident baseline plus the
            // full ramp back; short enough for the CI smoke job.
            config.schedule = tpcw::Schedule::quick(120);
        }
        config.faultload = scenario_faultload(name, &config.schedule);
        let timed = run_experiment_timed(&config);
        let report = &timed.report;
        con.say(format_args!(
            "{name:<16} AWIPS {:7.1}  availability {:.5}  audit: {} checks, {} violations",
            report.awips,
            report.dependability.availability,
            report.audit.checks,
            report.audit.total_violations,
        ));
        say_incidents(&con, report);
        for r in bench::availability_from_run(report) {
            say_breakdown(&con, &format!("crash of node {}", r.node), &r);
        }
        // One report per submission: every incident in these faultloads
        // occupies its own window.
        let reconfig_reports = reconfig_availability(report);
        for r in &reconfig_reports {
            say_breakdown(&con, "reconfig (from submit)", r);
        }
        if !report.trace.is_empty() {
            let fd = obs::fd_quality(&report.trace);
            con.say(format_args!(
                "    fd quality: {}/{} crash(es) detected (p50 {:.1}s), \
                 {} false suspicion(s), mistake p50 {:.1}s",
                fd.detected(),
                fd.incidents.len(),
                fd.detection_latency.quantile(0.5) as f64 / 1e6,
                fd.false_suspicions,
                fd.mistake_duration.quantile(0.5) as f64 / 1e6,
            ));
        }

        let mut extra: Vec<(&str, f64)> = Vec::new();
        if let Some(incident) = report.reconfigs.first() {
            let complete = incident
                .completed_at_us
                .map(|t| t.saturating_sub(incident.submitted_at_us));
            extra.push(("reconfig_completed", complete.is_some() as u8 as f64));
            if let Some(us) = complete {
                extra.push(("reconfig_complete_us", us as f64));
            }
            // 0 = the change never degraded the service below the 95 %
            // threshold (the gate skips zero baselines).
            let ramp = reconfig_reports
                .first()
                .and_then(|r| r.ramp_to_95pct_us)
                .unwrap_or(0);
            extra.push(("reconfig_ramp_to_95pct_us", ramp as f64));
        }
        json.push_timed(name, &timed, &extra);
        trace.record_run(name, report);
        let cfg = obs::TimelineConfig::default();
        csv.push_str(&timeline_from_run(report, &cfg).csv_rows(name));
    }
    json.write_if_requested();
    trace.write_if_requested();
    if let Some(path) = csv_path {
        bench::report::write_file_or_die(&path, &csv);
        con.note(format_args!("wrote {}", path.display()));
    }
}
