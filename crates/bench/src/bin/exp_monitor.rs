//! Beyond the paper — the online SLO monitor's detection frontier.
//!
//! Sweeps the in-sim telemetry pipeline's two operator knobs — scrape
//! interval and rule sensitivity — across the three incident families
//! (crash, flapping partition, planned replacement) plus a fault-free
//! baseline, and scores every fired alert against the faultload's
//! ground-truth injection log. The output is the frontier an operator
//! actually tunes on: detection latency vs. false positives, with the
//! passive failure-detector quality (PR 8's `fd_quality`) printed
//! side-by-side when tracing is on so the alerting pipeline's debounce
//! cost over the raw detector is visible.
//!
//! Flags: `--gate` runs the two points the CI perf gate compares (the
//! monitored crash and the monitored fault-free baseline); `--json
//! <path>` emits the machine-readable report `scripts/perf_gate.py`
//! consumes; `--trace <path>` records structured traces (and enables
//! the fd-quality comparison); `--csv <path>` exports the windowed
//! availability timelines, alert markers included.

use bench::render::render_alert_quality;
use bench::{
    base_config, monitor_fields, run_experiment_timed, timeline_from_run, Console, JsonReport,
    Mode, TraceSink,
};
use cluster::RunReport;
use faultload::Faultload;
use obs::MonitorConfig;

/// One sensitivity setting of the standard rule set.
struct Sensitivity {
    name: &'static str,
    pending_ticks: u32,
    threshold_scale_pct: u64,
}

const EAGER: Sensitivity = Sensitivity {
    name: "eager",
    pending_ticks: 1,
    threshold_scale_pct: 50,
};
const DEFAULT: Sensitivity = Sensitivity {
    name: "default",
    pending_ticks: 2,
    threshold_scale_pct: 100,
};
const PATIENT: Sensitivity = Sensitivity {
    name: "patient",
    pending_ticks: 3,
    threshold_scale_pct: 200,
};

/// The faultload for one incident family, placed mid-interval so the
/// monitor's windows are warm before anything breaks.
fn family_faultload(name: &str, schedule: &tpcw::Schedule) -> Faultload {
    let measure = schedule.measure_start_us();
    let quarter = schedule.interval_us / 4;
    let mid = measure + 2 * quarter;
    match name {
        "fault-free" => Faultload::none(),
        "crash" => Faultload::single_crash_at(mid),
        // Two rounds of cutting a 3-node minority off for 10 s with
        // 20 s healed between — quorum holds, but enough backends
        // degrade for the SLO rules to see it.
        "partition" => Faultload::partition_flap(mid, 2, 10_000_000, 20_000_000, vec![0, 1, 2]),
        "reconfig" => Faultload::reconfig_replace(mid, 0),
        other => panic!("unknown incident family {other:?}"),
    }
}

fn monitored_config(
    mode: Mode,
    replicas: usize,
    family: &str,
    interval_us: u64,
    sens: &Sensitivity,
) -> cluster::ExperimentConfig {
    let mut config = base_config(mode, replicas, tpcw::Profile::Ordering);
    config.ebs = 30;
    config.rbes = 1_000;
    config.batch_max_updates = 8;
    config.batch_window_us = 80_000;
    if matches!(mode, Mode::Quick) {
        // Same compromise as exp_reconfig: long enough for warm rule
        // windows and a full post-incident ramp, short enough for CI.
        config.schedule = tpcw::Schedule::quick(120);
    }
    config.faultload = family_faultload(family, &config.schedule);
    config.monitor =
        MonitorConfig::on().with_sensitivity(sens.pending_ticks, sens.threshold_scale_pct);
    config.monitor.scrape_interval_us = interval_us;
    config
}

fn say_fd_side_by_side(con: &Console, report: &RunReport) {
    if report.trace.is_empty() {
        return;
    }
    let fd = obs::fd_quality(&report.trace);
    let alerts = bench::alert_score_from_run(report);
    let alert_p50: Vec<u64> = alerts
        .incidents
        .iter()
        .filter_map(|i| i.detection_latency_us)
        .collect();
    let alert_mean = if alert_p50.is_empty() {
        f64::NAN
    } else {
        alert_p50.iter().sum::<u64>() as f64 / alert_p50.len() as f64 / 1e6
    };
    con.say(format_args!(
        "    detector vs. alert: fd p50 {:.1}s ({}/{} crashes) | alert mean {:.1}s \
         ({}/{} incidents) — gap is the monitor's scrape + debounce cost",
        fd.detection_latency.quantile(0.5) as f64 / 1e6,
        fd.detected(),
        fd.incidents.len(),
        alert_mean,
        alerts.detected(),
        alerts.incidents.len(),
    ));
}

fn main() {
    let con = Console::from_args();
    let mode = Mode::from_args();
    let gate = std::env::args().any(|a| a == "--gate");
    let csv_path = bench::report::csv_path_from_args();
    let replicas = 8;

    let intervals_us: Vec<u64> = match (gate, mode) {
        (true, _) => vec![1_000_000],
        (false, Mode::Quick) => vec![1_000_000, 5_000_000],
        (false, Mode::Full) => vec![500_000, 1_000_000, 5_000_000],
    };
    let sensitivities: Vec<&Sensitivity> = match (gate, mode) {
        (true, _) => vec![&DEFAULT],
        (false, Mode::Quick) => vec![&EAGER, &DEFAULT],
        (false, Mode::Full) => vec![&EAGER, &DEFAULT, &PATIENT],
    };
    let families: Vec<&str> = if gate {
        vec!["crash", "fault-free"]
    } else {
        vec!["crash", "partition", "reconfig", "fault-free"]
    };

    let mut json = JsonReport::new("exp_monitor", mode);
    let mut trace = TraceSink::from_args();
    let mut csv = String::from(obs::Timeline::csv_header());
    csv.push('\n');
    con.say(format_args!(
        "Online SLO monitor frontier, {replicas} replicas ({mode:?} schedule):"
    ));

    let mut scored: Vec<(String, RunReport)> = Vec::new();
    for family in &families {
        for &interval_us in &intervals_us {
            for sens in &sensitivities {
                let label = if gate {
                    format!("monitored {family}")
                } else {
                    format!(
                        "{family} scrape={}s sens={}",
                        interval_us as f64 / 1e6,
                        sens.name
                    )
                };
                let config = monitored_config(mode, replicas, family, interval_us, sens);
                let timed = run_experiment_timed(&config);
                let report = &timed.report;
                con.say(format_args!(
                    "{label:<34} AWIPS {:7.1}  availability {:.5}  alerts fired {}",
                    report.awips,
                    report.dependability.availability,
                    report.alerts.firings(),
                ));
                say_fd_side_by_side(&con, report);

                let mut extra = monitor_fields(report);
                extra.push(("scrape_interval_us", interval_us as f64));
                json.push_timed(&label, &timed, &extra);
                trace.record_run(&label, report);
                let cfg = obs::TimelineConfig::default();
                csv.push_str(&timeline_from_run(report, &cfg).csv_rows(&label));
                scored.push((label, timed.report));
            }
        }
    }

    let rows: Vec<(String, &RunReport)> = scored
        .iter()
        .map(|(label, report)| (label.clone(), report))
        .collect();
    con.say(render_alert_quality(
        "Detection-latency / false-positive frontier",
        &rows,
    ));

    json.write_if_requested();
    trace.write_if_requested();
    if let Some(path) = csv_path {
        bench::report::write_file_or_die(&path, &csv);
        con.note(format_args!("wrote {}", path.display()));
    }
}
