//! Design-choice ablations (DESIGN.md §3):
//!
//! 1. **Fast Paxos vs classic Paxos** — the paper's middleware switches
//!    to Fast Paxos whenever ⌈3N/4⌉ replicas are up; this ablation runs
//!    the same workloads with fast rounds disabled to isolate what the
//!    fast path buys (one fewer message delay on the write path) and
//!    what it costs (larger quorum, collision recovery).
//! 2. **Checkpoint interval** — more frequent checkpoints shorten the
//!    log suffix a recovering replica replays but cost more disk writes;
//!    this sweep measures both sides.

use bench::{base_config, Console, JsonReport, Mode, TraceSink};
use cluster::run_experiment;
use faultload::Faultload;
use tpcw::Profile;

fn main() {
    let con = Console::from_args();
    let mode = Mode::from_args();
    let mut json = JsonReport::new("exp_ablation", mode);
    let mut trace = TraceSink::from_args();

    con.say("== Ablation 1: Fast Paxos vs classic Paxos ==");
    con.say("  R profile   |  fast AWIPS | fast WIRT | classic AWIPS | classic WIRT");
    for replicas in [5usize, 8] {
        for profile in [Profile::Shopping, Profile::Ordering] {
            let mut results = Vec::new();
            for classic_only in [false, true] {
                let mut config = base_config(mode, replicas, profile);
                config.ebs = 30;
                config.rbes = 1_000;
                config.classic_only = classic_only;
                let report = run_experiment(&config);
                let kind = if classic_only { "classic" } else { "fast" };
                let label = format!("{replicas}r {} {kind}", profile.name());
                json.push(&label, &report);
                trace.record_run(&label, &report);
                results.push((report.awips, report.mean_wirt_ms));
            }
            con.say(format_args!(
                "  {replicas} {:9} | {:11.1} | {:8.1}ms | {:13.1} | {:9.1}ms",
                profile.name(),
                results[0].0,
                results[0].1,
                results[1].0,
                results[1].1
            ));
        }
    }

    con.say("\n== Ablation 2: checkpoint interval (5 replicas, shopping, one crash) ==");
    con.say("  interval | AWIPS | recovery(s) | disk writes at survivor");
    for interval in [2_000u64, 20_000, 100_000] {
        let mut config = base_config(mode, 5, Profile::Shopping);
        config.ebs = 30;
        config.rbes = 1_000;
        config.checkpoint_interval = interval;
        config.faultload = mode.faultload(Faultload::single_crash());
        let report = run_experiment(&config);
        let label = format!("checkpoint interval {interval}");
        json.push_with(&label, &report, &[("checkpoint_interval", interval as f64)]);
        trace.record_run(&label, &report);
        let recovery = report
            .spans
            .first()
            .and_then(|s| s.recovery_secs())
            .unwrap_or(f64::NAN);
        con.say(format_args!(
            "  {interval:8} | {:5.1} | {:11.1} | (see bench output)",
            report.awips, recovery
        ));
    }
    json.write_if_requested();
    trace.write_if_requested();
}
