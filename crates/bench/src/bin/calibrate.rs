//! Quick calibration probe: one paper-scale run per invocation.

// Harness binary: wall-clock timing of the run itself is intentional.
#![allow(clippy::disallowed_methods)]
use cluster::{run_experiment, ExperimentConfig};
use tpcw::Profile;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let replicas: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(5);
    let profile = match args.get(2).map(String::as_str) {
        Some("browsing") => Profile::Browsing,
        Some("ordering") => Profile::Ordering,
        _ => Profile::Shopping,
    };
    let rbes: usize = args.get(3).and_then(|s| s.parse().ok()).unwrap_or(1000);
    let secs: u64 = args.get(4).and_then(|s| s.parse().ok()).unwrap_or(540);
    let mut config = ExperimentConfig::paper(replicas);
    config.profile = profile;
    config.rbes = rbes;
    config.schedule = tpcw::Schedule::quick(secs);
    if std::env::args().any(|a| a == "--crash") {
        config.faultload = faultload::Faultload::single_crash().scaled(1, 3);
    }
    let t0 = std::time::Instant::now();
    let r = run_experiment(&config);
    let (conn, served) = r.recorder.error_breakdown();
    if std::env::args().any(|a| a == "--errsec") {
        for (sec, e) in r.recorder.error_series().iter().enumerate() {
            if *e > 0 {
                eprintln!(
                    "  t={sec}s errors={e} wips={}",
                    r.recorder.wips_series()[sec]
                );
            }
        }
    }
    println!(
        "replicas={replicas} profile={} rbes={rbes} AWIPS={:.1} WIRT={:.1}ms CV={:.3} acc={:.4}% err(conn={conn},served={served}) spans={:?} wall={:.1}s",
        profile.name(),
        r.awips,
        r.mean_wirt_ms,
        r.dependability.failure_free.cv,
        r.dependability.accuracy_percent,
        r.spans.iter().map(|s| s.recovery_secs()).collect::<Vec<_>>(),
        t0.elapsed().as_secs_f64()
    );
}
