//! Trace analyzer — reconstructs the paper's recovery decomposition and
//! a consensus-latency table from a structured trace file.
//!
//! Input is the JSONL a traced experiment writes via `--trace <path>`
//! (e.g. `exp_one_crash --trace one_crash.jsonl`): one record per line,
//! runs separated by `{"run":"label"}` headers. For every crash
//! incident in every run the analyzer prints the phase breakdown the
//! paper measures on real hardware — detection (crash → watchdog
//! restart), re-election, checkpoint load and log replay (which run in
//! parallel), then the backlog re-learn until the replica announces
//! recovery complete. It also aggregates commit latency and group-commit
//! coalescing per run.
//!
//! `--require-breakdown` makes the exit status a CI assertion: nonzero
//! unless at least one *complete* breakdown was reconstructed.

use bench::Console;
use obs::analyze::{latency_summary, recovery_breakdowns, RecoveryBreakdown};

fn main() {
    let con = Console::from_args();
    let args: Vec<String> = std::env::args().skip(1).collect();
    let require = args.iter().any(|a| a == "--require-breakdown");
    let paths: Vec<&String> = args.iter().filter(|a| !a.starts_with("--")).collect();
    let [path] = paths.as_slice() else {
        eprintln!("usage: exp_trace_analyze <trace.jsonl> [--require-breakdown] [--quiet]");
        std::process::exit(2);
    };
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("exp_trace_analyze: cannot read {path}: {e}");
            std::process::exit(1);
        }
    };
    let runs = match obs::jsonl::decode_runs(&text) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("exp_trace_analyze: {path}: {e}");
            std::process::exit(1);
        }
    };

    let mut complete = 0usize;
    let mut incidents = 0usize;
    for (label, records) in &runs {
        let label = if label.is_empty() {
            "(unlabelled)"
        } else {
            label
        };
        con.say(format_args!("== {label} ({} records) ==", records.len()));
        let breakdowns = recovery_breakdowns(records);
        if breakdowns.is_empty() {
            con.say("  no crash incidents");
        }
        for b in &breakdowns {
            incidents += 1;
            complete += b.complete as usize;
            con.say(render_breakdown(b));
        }
        let s = latency_summary(records);
        con.say(format_args!(
            "  consensus: {} updates delivered, {} batches carrying {} updates, \
             {} log appends ({:.2} upd/append)",
            s.updates_delivered,
            s.batches,
            s.batched_updates,
            s.log_appends,
            s.coalescing_ratio(),
        ));
        let h = &s.commit_latency;
        if h.count() > 0 {
            con.say(format_args!(
                "  commit latency (ms): n={} mean {:.2} p50≤{:.2} p90≤{:.2} p99≤{:.2} max {:.2}",
                h.count(),
                h.mean() / 1e3,
                h.quantile(0.5) as f64 / 1e3,
                h.quantile(0.9) as f64 / 1e3,
                h.quantile(0.99) as f64 / 1e3,
                h.max() as f64 / 1e3,
            ));
        }
        con.say("");
    }
    con.say(format_args!(
        "{} run(s), {incidents} crash incident(s), {complete} complete breakdown(s)",
        runs.len()
    ));

    if require && complete == 0 {
        eprintln!("exp_trace_analyze: no complete recovery breakdown in {path}");
        std::process::exit(1);
    }
}

fn render_breakdown(b: &RecoveryBreakdown) -> String {
    let phase = |v: Option<u64>, absent: &str| match v {
        Some(us) => format!("{:10.1} ms", us as f64 / 1e3),
        None => format!("{absent:>13}"),
    };
    let status = if b.complete { "complete" } else { "INCOMPLETE" };
    format!
        (
        "  node {} crashed at {:.1}s [{status}]\n    detection       {}\n    re-election     {}\n    checkpoint load {}  ∥  log replay {}\n    backlog replay  {}\n    total           {}",
        b.node,
        b.crash_at_us as f64 / 1e6,
        phase(b.detection_us, "no restart"),
        phase(b.reelection_us, "none needed"),
        phase(b.checkpoint_load_us, "—"),
        phase(b.log_replay_us, "—"),
        phase(b.backlog_replay_us, "—"),
        phase(b.total_us, "—"),
    )
}
