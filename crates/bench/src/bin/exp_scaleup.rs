//! Figure 4 — scaleup at 1000 WIPS offered (+ regression/correlation).
use bench::{fig4_scaleup, render::render_scaleup, Console, JsonReport, Mode};
use tpcw::Profile;

fn main() {
    let con = Console::from_args();
    let mode = Mode::from_args();
    let mut json = JsonReport::new("exp_scaleup", mode);
    for profile in Profile::ALL {
        let result = fig4_scaleup(mode, profile);
        for p in &result.points {
            json.push_raw(
                &format!("{profile:?} {}r", p.replicas),
                &[
                    ("replicas", p.replicas as f64),
                    ("wips", p.wips),
                    ("wirt_ms", p.wirt_ms),
                    ("fit_intercept", result.fit.0),
                    ("fit_slope", result.fit.1),
                ],
            );
        }
        con.say(render_scaleup(profile, &result));
    }
    json.write_if_requested();
}
