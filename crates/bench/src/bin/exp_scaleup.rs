//! Figure 4 — scaleup at 1000 WIPS offered (+ regression/correlation).
use bench::{fig4_scaleup, render::render_scaleup, Mode};
use tpcw::Profile;

fn main() {
    let mode = Mode::from_args();
    for profile in Profile::ALL {
        let result = fig4_scaleup(mode, profile);
        println!("{}", render_scaleup(profile, &result));
    }
}
