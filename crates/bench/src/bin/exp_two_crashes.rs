//! Figure 7 + Tables 3–4 — two overlapped crashes, autonomous recoveries.
use bench::render::{
    render_accuracy, render_autonomy, render_availability, render_fault_histogram,
    render_fd_quality, render_performability,
};
use bench::{dependability_grid, Console, JsonReport, Mode, TraceSink};
use faultload::Faultload;

fn main() {
    let con = Console::from_args();
    let mode = Mode::from_args();
    let runs = dependability_grid(mode, &Faultload::double_crash());
    let mut json = JsonReport::new("exp_two_crashes", mode);
    let mut trace = TraceSink::from_args();
    for run in &runs {
        let label = format!("{}r {:?} ebs={}", run.replicas, run.profile, run.ebs);
        json.push(&label, &run.report);
        trace.record_run(&label, &run.report);
    }
    json.write_if_requested();
    trace.write_if_requested();
    for run in runs.iter().filter(|r| r.replicas == 5) {
        con.say(render_fault_histogram(run));
    }
    con.say(render_performability(
        "Table 3 — two overlapped crashes: performability",
        &runs,
    ));
    con.say(render_accuracy(
        "Table 4 — two overlapped crashes: accuracy (%)",
        &runs,
    ));
    con.say(render_autonomy("Two crashes: availability/autonomy", &runs));
    con.say(render_availability(
        "Two crashes: availability decomposition",
        &runs,
    ));
    con.say(render_fd_quality(
        "Two crashes: failure-detector quality",
        &runs,
    ));
}
