//! Figure 7 + Tables 3–4 — two overlapped crashes, autonomous recoveries.
use bench::render::{
    render_accuracy, render_autonomy, render_fault_histogram, render_performability,
};
use bench::{dependability_grid, JsonReport, Mode};
use faultload::Faultload;

fn main() {
    let mode = Mode::from_args();
    let runs = dependability_grid(mode, &Faultload::double_crash());
    let mut json = JsonReport::new("exp_two_crashes", mode);
    for run in &runs {
        json.push(
            &format!("{}r {:?} ebs={}", run.replicas, run.profile, run.ebs),
            &run.report,
        );
    }
    json.write_if_requested();
    for run in runs.iter().filter(|r| r.replicas == 5) {
        println!("{}", render_fault_histogram(run));
    }
    println!(
        "{}",
        render_performability("Table 3 — two overlapped crashes: performability", &runs)
    );
    println!(
        "{}",
        render_accuracy("Table 4 — two overlapped crashes: accuracy (%)", &runs)
    );
    println!(
        "{}",
        render_autonomy("Two crashes: availability/autonomy", &runs)
    );
}
