//! Long-horizon availability experiment (the paper's question 1: "how
//! long can RobustStore be expected to run without interruption?").
//!
//! Subjects a five-replica deployment to repeated random crashes (one
//! every ~2 minutes of a 10-minute measurement interval, all recovered
//! autonomously) and reports availability, accuracy and autonomy across
//! the whole horizon — plus the consensus traffic bill.

use bench::render::render_availability;
use bench::{base_config, Console, FaultRun, JsonReport, Mode, TraceSink};
use cluster::run_experiment;
use faultload::{FaultEvent, Faultload, RecoveryKind};
use tpcw::{Profile, Schedule};

fn main() {
    let con = Console::from_args();
    let mode = Mode::from_args();
    let interval_secs = match mode {
        Mode::Quick => 300,
        Mode::Full => 600,
    };
    let mut json = JsonReport::new("exp_availability", mode);
    let mut trace = TraceSink::from_args();
    for profile in [Profile::Browsing, Profile::Shopping] {
        let mut config = base_config(mode, 5, profile);
        config.schedule = Schedule::quick(interval_secs);
        config.ebs = 30;
        config.rbes = 1_000;
        // One crash every ~100 s, round-robin over victims, all
        // autonomous. Recovery (~40 s for 300 MB) completes before the
        // next fault lands.
        let events: Vec<FaultEvent> = (0..(interval_secs / 100))
            .map(|k| FaultEvent {
                at_us: (60 + 100 * k) * 1_000_000,
                victim: k as usize,
                recovery: RecoveryKind::Autonomous,
            })
            .collect();
        let faults = events.len();
        config.faultload = Faultload {
            events,
            ..Faultload::default()
        };
        let report = run_experiment(&config);
        let label = format!("{} {faults} crashes", profile.name());
        json.push(&label, &report);
        trace.record_run(&label, &report);
        let d = &report.dependability;
        con.say(format_args!(
            "{:9}: {faults} crashes over {interval_secs}s → availability {:.5}, accuracy {:.3}%, autonomy {:.2}, AWIPS {:.1}",
            profile.name(),
            d.availability,
            d.accuracy_percent,
            d.autonomy,
            report.awips,
        ));
        for span in &report.spans {
            con.say(format_args!(
                "  server {} crashed {:>3.0}s recovered in {:>5.1}s",
                span.server,
                span.crash_at as f64 / 1e6,
                span.recovery_secs().unwrap_or(f64::NAN)
            ));
        }
        con.say(format_args!(
            "  consensus bill: {:.2}M messages, {:.1} MB on the wire, {:.2}M disk writes",
            report.net_messages as f64 / 1e6,
            report.net_bytes as f64 / 1e6,
            report.disk_writes as f64 / 1e6,
        ));
        let run = FaultRun {
            replicas: 5,
            profile,
            ebs: 30,
            report,
        };
        con.say(render_availability(
            "  per-crash availability decomposition",
            &[run],
        ));
    }
    json.write_if_requested();
    trace.write_if_requested();
}
