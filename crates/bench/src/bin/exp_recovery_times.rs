//! Figure 6 — recovery times vs state size (300/500/700 MB).
use bench::render::render_recovery_times;
use bench::{fig6_recovery_times, Mode};

fn main() {
    let mode = Mode::from_args();
    let points = fig6_recovery_times(mode);
    println!("{}", render_recovery_times(&points));
}
