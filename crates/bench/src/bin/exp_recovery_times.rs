//! Figure 6 — recovery times vs state size (300/500/700 MB).
use bench::render::render_recovery_times;
use bench::{fig6_recovery_times, Console, JsonReport, Mode};

fn main() {
    let con = Console::from_args();
    let mode = Mode::from_args();
    let points = fig6_recovery_times(mode);
    let mut json = JsonReport::new("exp_recovery_times", mode);
    for p in &points {
        json.push_raw(
            &format!("{}r {:?} ebs={}", p.replicas, p.profile, p.ebs),
            &[
                ("replicas", p.replicas as f64),
                ("ebs", p.ebs as f64),
                ("recovery_secs", p.recovery_secs),
            ],
        );
    }
    json.write_if_requested();
    con.say(render_recovery_times(&points));
}
