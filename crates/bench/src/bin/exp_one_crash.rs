//! Figure 5 + Tables 1–2 — one crash, one autonomous recovery.
use bench::render::{
    render_accuracy, render_autonomy, render_availability, render_fault_histogram,
    render_fd_quality, render_performability,
};
use bench::{dependability_grid, Console, JsonReport, Mode, TraceSink};
use faultload::Faultload;

fn main() {
    let con = Console::from_args();
    let mode = Mode::from_args();
    let runs = dependability_grid(mode, &Faultload::single_crash());
    let mut json = JsonReport::new("exp_one_crash", mode);
    let mut trace = TraceSink::from_args();
    for run in &runs {
        let label = format!("{}r {:?} ebs={}", run.replicas, run.profile, run.ebs);
        json.push(&label, &run.report);
        trace.record_run(&label, &run.report);
    }
    json.write_if_requested();
    trace.write_if_requested();
    for run in runs.iter().filter(|r| r.replicas == 5) {
        con.say(render_fault_histogram(run));
    }
    con.say(render_performability(
        "Table 1 — one failure: performability",
        &runs,
    ));
    con.say(render_accuracy(
        "Table 2 — one failure: accuracy (%)",
        &runs,
    ));
    con.say(render_autonomy("One failure: availability/autonomy", &runs));
    con.say(render_availability(
        "One failure: availability decomposition",
        &runs,
    ));
    con.say(render_fd_quality(
        "One failure: failure-detector quality",
        &runs,
    ));
}
