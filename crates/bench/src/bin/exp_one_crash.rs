//! Figure 5 + Tables 1–2 — one crash, one autonomous recovery.
use bench::render::{
    render_accuracy, render_autonomy, render_fault_histogram, render_performability,
};
use bench::{dependability_grid, Mode};
use faultload::Faultload;

fn main() {
    let mode = Mode::from_args();
    let runs = dependability_grid(mode, &Faultload::single_crash());
    for run in runs.iter().filter(|r| r.replicas == 5) {
        println!("{}", render_fault_histogram(run));
    }
    println!(
        "{}",
        render_performability("Table 1 — one failure: performability", &runs)
    );
    println!(
        "{}",
        render_accuracy("Table 2 — one failure: accuracy (%)", &runs)
    );
    println!(
        "{}",
        render_autonomy("One failure: availability/autonomy", &runs)
    );
}
