//! Figure 5 + Tables 1–2 — one crash, one autonomous recovery.
use bench::render::{
    render_accuracy, render_autonomy, render_fault_histogram, render_performability,
};
use bench::{dependability_grid, JsonReport, Mode};
use faultload::Faultload;

fn main() {
    let mode = Mode::from_args();
    let runs = dependability_grid(mode, &Faultload::single_crash());
    let mut json = JsonReport::new("exp_one_crash", mode);
    for run in &runs {
        json.push(
            &format!("{}r {:?} ebs={}", run.replicas, run.profile, run.ebs),
            &run.report,
        );
    }
    json.write_if_requested();
    for run in runs.iter().filter(|r| r.replicas == 5) {
        println!("{}", render_fault_histogram(run));
    }
    println!(
        "{}",
        render_performability("Table 1 — one failure: performability", &runs)
    );
    println!(
        "{}",
        render_accuracy("Table 2 — one failure: accuracy (%)", &runs)
    );
    println!(
        "{}",
        render_autonomy("One failure: availability/autonomy", &runs)
    );
}
