//! Causal blame exporter — reduces a structured trace to the cross-node
//! critical paths of every locally-submitted update, and attributes
//! each microsecond of commit latency to a blame category (queueing,
//! CPU service, net transit, retransmit stalls, disk fsync), per node
//! and per link.
//!
//! Input is the JSONL a traced experiment writes via `--trace <path>`
//! (e.g. `exp_one_crash --trace one_crash.jsonl`). For every run the
//! binary builds an [`obs::CausalProfile`] from the trace's
//! `msg_sent`/`msg_recv`/`msg_tag` transmission records, prints the
//! per-category blame table with shares of total commit latency, the
//! per-node and per-link breakdowns, and exports:
//!
//! * `--csv <path>`   — aggregated blame rows
//!   (`run,category,node,peer,count,total_us`), plot-ready;
//! * `--jsonl <path>` — one line per causal path with its segments;
//! * `--json <path>`  — the per-run summary `scripts/perf_gate.py`
//!   compares (`causal_quorum_decide_mean_us` et al.).
//!
//! All exports are byte-identical across same-seed runs.
//!
//! `--gate` makes the exit status a CI assertion: nonzero unless every
//! run yields causal paths, every path's blame segments telescope
//! exactly to its measured commit latency, and synchronous log appends
//! show up as nonzero disk-fsync blame.

use bench::{Console, JsonReport, Mode};
use obs::{BlameCategory, CausalProfile};

fn main() {
    let con = Console::from_args();
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut input: Option<String> = None;
    let mut csv_path: Option<String> = None;
    let mut jsonl_path: Option<String> = None;
    let mut gate = false;
    let mut window_us: u64 = 5_000_000;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--csv" => csv_path = Some(take_value(&args, &mut i, "--csv")),
            "--jsonl" => jsonl_path = Some(take_value(&args, &mut i, "--jsonl")),
            "--window-us" => {
                let v = take_value(&args, &mut i, "--window-us");
                window_us = v.parse().unwrap_or_else(|_| {
                    eprintln!("exp_causal: --window-us wants an integer, got {v:?}");
                    std::process::exit(2);
                });
            }
            "--gate" => gate = true,
            "--json" => i += 1, // handled by JsonReport::write_if_requested
            "--quiet" => {}
            a if a.starts_with("--") => usage(&format!("unknown flag {a}")),
            a => {
                if input.replace(a.to_string()).is_some() {
                    usage("more than one input path");
                }
            }
        }
        i += 1;
    }
    let Some(path) = input else {
        usage("missing input path");
    };
    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("exp_causal: cannot read {path}: {e}");
            std::process::exit(1);
        }
    };
    let (runs, skipped) = match obs::jsonl::decode_runs_counting(&text) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("exp_causal: {path}: {e}");
            std::process::exit(1);
        }
    };
    if skipped > 0 {
        con.note(format_args!(
            "skipped {skipped} record(s) with unknown event kinds (newer trace schema?)"
        ));
    }

    let mut json = JsonReport::new("exp_causal", Mode::from_args());
    let mut csv = String::from("run,category,node,peer,count,total_us\n");
    let mut jsonl = String::new();
    let mut gate_failures: Vec<String> = Vec::new();
    for (label, records) in &runs {
        let label = if label.is_empty() {
            "(unlabelled)"
        } else {
            label
        };
        let profile = CausalProfile::from_records(records);
        let by_cat = profile.blame_by_category();
        let total: u64 = by_cat.iter().sum();

        con.say(format_args!(
            "== {label} ({} causal paths, quorum decide mean {:.3} ms) ==",
            profile.paths.len(),
            profile.quorum_decide_mean_us() / 1e3,
        ));
        con.say(render_category_table(&by_cat, total));
        con.say(render_node_table(&profile));
        con.say(render_link_table(&profile));
        con.say(render_window_table(&profile, window_us));
        con.say("");

        let mut fields: Vec<(&str, f64)> = vec![
            ("causal_paths", profile.paths.len() as f64),
            (
                "causal_quorum_decide_mean_us",
                profile.quorum_decide_mean_us(),
            ),
            ("blame_total_us", total as f64),
        ];
        let field_names = [
            "blame_queueing_us",
            "blame_cpu_service_us",
            "blame_net_transit_us",
            "blame_retransmit_stall_us",
            "blame_disk_fsync_us",
        ];
        for (name, v) in field_names.iter().zip(by_cat.iter()) {
            fields.push((name, *v as f64));
        }
        json.push_raw(label, &fields);

        // The per-run CSVs share one header: keep only the rows.
        let rows = profile.blame_csv(label);
        csv.push_str(rows.split_once('\n').map(|(_, r)| r).unwrap_or(""));
        jsonl.push_str(&obs::jsonl::encode_run_header(label));
        jsonl.push('\n');
        jsonl.push_str(&profile.to_jsonl());

        if gate {
            if profile.paths.is_empty() {
                gate_failures.push(format!("{label}: no causal paths reconstructed"));
            }
            let broken = profile.paths.iter().filter(|p| !p.telescopes()).count();
            if broken > 0 {
                gate_failures.push(format!(
                    "{label}: {broken}/{} paths violate the telescoping invariant",
                    profile.paths.len()
                ));
            }
            if by_cat[BlameCategory::DiskFsync.index()] == 0 && !profile.paths.is_empty() {
                gate_failures.push(format!(
                    "{label}: zero disk-fsync blame — synchronous log \
                     appends missing from the critical path"
                ));
            }
        }
    }

    json.write_if_requested();
    if let Some(p) = &csv_path {
        write_or_die(p, &csv);
        con.note(format_args!("wrote {p}"));
    }
    if let Some(p) = &jsonl_path {
        write_or_die(p, &jsonl);
        con.note(format_args!("wrote {p}"));
    }
    con.say(format_args!("{} run(s) profiled", runs.len()));

    if gate {
        if runs.is_empty() {
            gate_failures.push(format!("{path}: no runs in trace"));
        }
        if !gate_failures.is_empty() {
            for f in &gate_failures {
                eprintln!("exp_causal: gate: {f}");
            }
            std::process::exit(1);
        }
        con.say("gate: all paths telescope, disk fsync on the critical path");
    }
}

fn render_category_table(by_cat: &[u64; 5], total: u64) -> String {
    let mut out = String::from("  category         | total(ms) | share(%)\n");
    for cat in BlameCategory::ALL {
        let us = by_cat[cat.index()];
        let share = if total > 0 {
            us as f64 * 100.0 / total as f64
        } else {
            0.0
        };
        out.push_str(&format!(
            "  {:16} | {:9.1} | {share:7.1}\n",
            cat.name(),
            us as f64 / 1e3,
        ));
    }
    out
}

fn render_node_table(profile: &CausalProfile) -> String {
    let mut out = String::from("  blame by node:");
    for (node, us) in profile.blame_by_node() {
        out.push_str(&format!(" n{node}={:.1}ms", us as f64 / 1e3));
    }
    out
}

fn render_link_table(profile: &CausalProfile) -> String {
    let mut out = String::from("  net transit by link:");
    let links = profile.blame_by_link();
    if links.is_empty() {
        out.push_str(" (none)");
    }
    for ((from, to), us) in links {
        out.push_str(&format!(" {from}->{to}={:.1}ms", us as f64 / 1e3));
    }
    out
}

fn render_window_table(profile: &CausalProfile, window_us: u64) -> String {
    let mut out = format!(
        "  window({}s) | paths | queueing | cpu | net | retransmit | fsync (ms)\n",
        window_us as f64 / 1e6
    );
    for w in profile.windows(window_us) {
        let ms = |i: usize| w.totals[i] as f64 / 1e3;
        out.push_str(&format!(
            "  {:10.0}s | {:5} | {:8.1} | {:3.0} | {:3.0} | {:10.1} | {:5.1}\n",
            w.start_us as f64 / 1e6,
            w.paths,
            ms(0),
            ms(1),
            ms(2),
            ms(3),
            ms(4),
        ));
    }
    out
}

/// Consumes the value of `flag` at `args[*i + 1]`, advancing `i`.
fn take_value(args: &[String], i: &mut usize, flag: &str) -> String {
    *i += 1;
    match args.get(*i) {
        Some(v) => v.clone(),
        None => {
            eprintln!("{flag} requires an argument");
            std::process::exit(2);
        }
    }
}

fn usage(why: &str) -> ! {
    eprintln!(
        "exp_causal: {why}\nusage: exp_causal <trace.jsonl> [--csv <path>] \
         [--jsonl <path>] [--json <path>] [--window-us <n>] [--gate] [--quiet]"
    );
    std::process::exit(2);
}

fn write_or_die(path: &str, text: &str) {
    if let Err(e) = std::fs::write(path, text) {
        eprintln!("failed to write {path}: {e}");
        std::process::exit(1);
    }
}
