//! Runs the complete evaluation (Figures 3–8, Tables 1–6) and writes a
//! markdown-ready report to `--out <path>` (default: stdout only).
use std::io::Write;

use bench::render::*;
use bench::{
    dependability_grid, fig3_speedup, fig4_scaleup, fig6_recovery_times, Console, JsonReport, Mode,
};
use faultload::Faultload;
use tpcw::Profile;

fn main() {
    let con = Console::from_args();
    let mode = Mode::from_args();
    let mut json = JsonReport::new("exp_all", mode);
    let out_path = {
        let args: Vec<String> = std::env::args().collect();
        args.iter()
            .position(|a| a == "--out")
            .and_then(|i| args.get(i + 1).cloned())
    };
    let mut report = String::new();
    let mut emit = |s: String| {
        con.say(&s);
        report.push_str(&s);
        report.push('\n');
    };

    emit(format!("mode: {mode:?}\n"));
    emit("== Figure 3: speedup ==".into());
    for profile in Profile::ALL {
        let points = fig3_speedup(mode, profile);
        for p in &points {
            json.push_raw(
                &format!("fig3 {profile:?} {}r", p.replicas),
                &[
                    ("replicas", p.replicas as f64),
                    ("wips", p.wips),
                    ("wirt_ms", p.wirt_ms),
                ],
            );
        }
        emit(render_speedup(profile, &points));
    }
    emit("== Figure 4: scaleup ==".into());
    for profile in Profile::ALL {
        let result = fig4_scaleup(mode, profile);
        emit(render_scaleup(profile, &result));
    }
    emit("== One crash (Fig 5, Tables 1-2) ==".into());
    let runs = dependability_grid(mode, &Faultload::single_crash());
    for run in &runs {
        json.push(
            &format!("one-crash {}r {:?}", run.replicas, run.profile),
            &run.report,
        );
    }
    for run in runs.iter().filter(|r| r.replicas == 5) {
        emit(render_fault_histogram(run));
    }
    emit(render_performability(
        "Table 1 — one failure: performability",
        &runs,
    ));
    emit(render_accuracy(
        "Table 2 — one failure: accuracy (%)",
        &runs,
    ));
    emit(render_autonomy("One failure: availability/autonomy", &runs));

    emit("== Recovery times (Fig 6) ==".into());
    emit(render_recovery_times(&fig6_recovery_times(mode)));

    emit("== Two overlapped crashes (Fig 7, Tables 3-4) ==".into());
    let runs = dependability_grid(mode, &Faultload::double_crash());
    for run in &runs {
        json.push(
            &format!("two-crashes {}r {:?}", run.replicas, run.profile),
            &run.report,
        );
    }
    for run in runs.iter().filter(|r| r.replicas == 5) {
        emit(render_fault_histogram(run));
    }
    emit(render_performability(
        "Table 3 — two overlapped crashes: performability",
        &runs,
    ));
    emit(render_accuracy(
        "Table 4 — two overlapped crashes: accuracy (%)",
        &runs,
    ));
    emit(render_autonomy("Two crashes: availability/autonomy", &runs));

    emit("== Delayed recovery (Fig 8, Tables 5-6) ==".into());
    let runs = dependability_grid(mode, &Faultload::double_crash_delayed());
    for run in &runs {
        json.push(
            &format!("delayed-recovery {}r {:?}", run.replicas, run.profile),
            &run.report,
        );
    }
    for run in runs.iter().filter(|r| r.replicas == 5) {
        emit(render_fault_histogram(run));
    }
    emit(render_performability_delayed(
        "Table 5 — delayed recovery: performability",
        &runs,
    ));
    emit(render_accuracy(
        "Table 6 — delayed recovery: accuracy (%)",
        &runs,
    ));
    emit(render_autonomy(
        "Delayed recovery: availability/autonomy",
        &runs,
    ));

    json.write_if_requested();
    if let Some(path) = out_path {
        let mut f = std::fs::File::create(&path).expect("create report file");
        f.write_all(report.as_bytes()).expect("write report");
        con.note(format_args!("report written to {path}"));
    }
}
