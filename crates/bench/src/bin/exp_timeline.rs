//! Timeline exporter — reduces a structured trace to the windowed
//! availability curves behind the paper's figures, plus the per-slot
//! critical-path profile.
//!
//! Input is the JSONL a traced experiment writes via `--trace <path>`
//! (e.g. `exp_one_crash --trace one_crash.jsonl`). For every run the
//! binary builds a [`obs::Timeline`] (per-window WIPS, errors,
//! committed updates, commit-latency quantiles, queue depth, disk and
//! network activity, fault markers), attaches the dominant
//! critical-path phase per window from a [`obs::SpanProfile`], prints
//! the per-crash availability reports and the per-phase latency table,
//! and exports the full series:
//!
//! * `--csv <path>`  — one row per (run, window), plot-ready;
//! * `--jsonl <path>` — the same windows as canonical JSONL.
//!
//! Both exports are byte-identical across same-seed runs.
//!
//! `--require-one-incident` makes the exit status a CI assertion:
//! nonzero unless every run carries exactly one crash incident and at
//! least one of them shows a degraded stretch bracketing the crash
//! with a measured ramp back to 95 % of baseline.

use bench::Console;
use obs::{availability_reports, AvailabilityReport, SpanProfile, Timeline, TimelineConfig};

fn main() {
    let con = Console::from_args();
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut input: Option<String> = None;
    let mut csv_path: Option<String> = None;
    let mut jsonl_path: Option<String> = None;
    let mut cfg = TimelineConfig::default();
    let mut require_one = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--csv" => csv_path = Some(take_value(&args, &mut i, "--csv")),
            "--jsonl" => jsonl_path = Some(take_value(&args, &mut i, "--jsonl")),
            "--window-us" => {
                let v = take_value(&args, &mut i, "--window-us");
                cfg.window_us = v.parse().unwrap_or_else(|_| {
                    eprintln!("exp_timeline: --window-us wants an integer, got {v:?}");
                    std::process::exit(2);
                });
            }
            "--require-one-incident" => require_one = true,
            "--quiet" => {}
            a if a.starts_with("--") => usage(&format!("unknown flag {a}")),
            a => {
                if input.replace(a.to_string()).is_some() {
                    usage("more than one input path");
                }
            }
        }
        i += 1;
    }
    let Some(path) = input else {
        usage("missing input path");
    };
    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("exp_timeline: cannot read {path}: {e}");
            std::process::exit(1);
        }
    };
    let runs = match obs::jsonl::decode_runs(&text) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("exp_timeline: {path}: {e}");
            std::process::exit(1);
        }
    };

    let mut csv = format!("{}\n", Timeline::csv_header());
    let mut jsonl = String::new();
    let mut runs_with_crash = 0usize;
    let mut runs_with_one_incident = 0usize;
    let mut ramped_incidents = 0usize;
    for (label, records) in &runs {
        let label = if label.is_empty() {
            "(unlabelled)"
        } else {
            label
        };
        let mut tl = Timeline::from_records(records, cfg.window_us);
        let profile = SpanProfile::from_records(records);
        tl.dominant_phase = profile.dominant_phases(tl.window_us, tl.windows.len());
        let reports = availability_reports(&tl, &cfg);

        con.say(format_args!(
            "== {label} ({} windows of {}s, {} markers, {} spans) ==",
            tl.windows.len(),
            tl.window_us as f64 / 1e6,
            tl.markers.len(),
            profile.spans.len(),
        ));
        if reports.is_empty() {
            con.say("  no crash incidents");
        } else {
            runs_with_crash += 1;
            runs_with_one_incident += (reports.len() == 1) as usize;
        }
        for r in &reports {
            ramped_incidents += (r.degraded_us > 0
                && r.brackets_crash()
                && r.ramp_to_95pct_us.is_some_and(|us| us > 0))
                as usize;
            con.say(render_report(r));
        }
        con.say(render_phase_table(&profile));
        csv.push_str(&tl.csv_rows(label));
        jsonl.push_str(&tl.to_jsonl(label));
        con.say("");
    }

    if let Some(p) = &csv_path {
        write_or_die(p, &csv);
        con.note(format_args!("wrote {p}"));
    }
    if let Some(p) = &jsonl_path {
        write_or_die(p, &jsonl);
        con.note(format_args!("wrote {p}"));
    }
    con.say(format_args!(
        "{} run(s), {runs_with_crash} with crash incident(s), \
         {ramped_incidents} degraded-and-ramped-back incident(s)",
        runs.len()
    ));

    if require_one {
        if runs_with_crash == 0 || runs_with_one_incident != runs.len() {
            eprintln!(
                "exp_timeline: expected exactly one crash incident per run in {path} \
                 ({runs_with_one_incident}/{} runs qualify)",
                runs.len()
            );
            std::process::exit(1);
        }
        if ramped_incidents == 0 {
            eprintln!(
                "exp_timeline: no incident in {path} shows a degraded stretch \
                 bracketing its crash with a ramp back to 95% of baseline"
            );
            std::process::exit(1);
        }
    }
}

/// Consumes the value of `flag` at `args[*i + 1]`, advancing `i`.
fn take_value(args: &[String], i: &mut usize, flag: &str) -> String {
    *i += 1;
    match args.get(*i) {
        Some(v) => v.clone(),
        None => {
            eprintln!("{flag} requires an argument");
            std::process::exit(2);
        }
    }
}

fn usage(why: &str) -> ! {
    eprintln!(
        "exp_timeline: {why}\nusage: exp_timeline <trace.jsonl> [--csv <path>] \
         [--jsonl <path>] [--window-us <n>] [--require-one-incident] [--quiet]"
    );
    std::process::exit(2);
}

fn write_or_die(path: &str, text: &str) {
    if let Err(e) = std::fs::write(path, text) {
        eprintln!("failed to write {path}: {e}");
        std::process::exit(1);
    }
}

fn render_report(r: &AvailabilityReport) -> String {
    let secs = |v: Option<u64>| match v {
        Some(us) => format!("{:.1}s", us as f64 / 1e6),
        None => "-".to_string(),
    };
    format!(
        "  node {} crashed at {:.1}s (window {}): baseline {:.1} WIPS, \
         detect {}, failover {}, degraded {:.1}s, dip {:.1}%, ramp95 {}",
        r.node,
        r.crash_at_us as f64 / 1e6,
        r.crash_window,
        r.baseline_wips,
        secs(r.time_to_detect_us),
        secs(r.time_to_failover_us),
        r.degraded_us as f64 / 1e6,
        r.wips_dip_pct,
        secs(r.ramp_to_95pct_us),
    )
}

fn render_phase_table(profile: &SpanProfile) -> String {
    let mut out = String::from("  phase          |      n |  p50(ms) |  p99(ms) | mean(ms)\n");
    for name in obs::PHASES {
        let Some(h) = profile.phase(name) else {
            continue;
        };
        out.push_str(&format!(
            "  {name:14} | {:6} | {:8.3} | {:8.3} | {:8.3}\n",
            h.count(),
            h.quantile(0.5) as f64 / 1e3,
            h.quantile(0.99) as f64 / 1e3,
            h.mean() / 1e3,
        ));
    }
    let exact = profile
        .spans
        .iter()
        .filter(|s| s.phase_sum_us() == s.total_us)
        .count();
    out.push_str(&format!(
        "  pipeline phases sum exactly to commit latency for {exact}/{} spans",
        profile.spans.len()
    ));
    out
}
