//! Machine-readable run reports: every `exp_*` binary accepts
//! `--json <path>` and writes its [`RunReport`]s there as a single JSON
//! document (hand-rolled — the repo carries no serialization crates).
//!
//! The document shape is stable so CI jobs (artifact upload, the perf
//! regression gate) can consume it without knowing which experiment
//! produced it:
//!
//! ```json
//! {
//!   "experiment": "exp_batching",
//!   "mode": "quick",
//!   "runs": [
//!     {"label": "ordering batch=8", "batch": 8, "awips": 312.4, ...}
//!   ]
//! }
//! ```

use std::io::Write as _;
use std::path::PathBuf;

use cluster::RunReport;

use crate::render::Console;
use crate::Mode;

/// Parses `--<flag> <path>` from argv. Returns `None` when absent;
/// terminates with an error when the flag is given without a path.
fn path_arg(flag: &str) -> Option<PathBuf> {
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == flag {
            match args.next() {
                Some(p) => return Some(PathBuf::from(p)),
                None => {
                    eprintln!("{flag} requires a path argument");
                    std::process::exit(2);
                }
            }
        }
    }
    None
}

/// Parses `--json <path>` from argv (`-` means stdout).
pub fn json_path_from_args() -> Option<PathBuf> {
    path_arg("--json")
}

/// Parses `--trace <path>` from argv: where the run's structured trace
/// (JSONL) goes. Presence of the flag is also what turns tracing on —
/// see [`crate::trace_config_from_args`].
pub fn trace_path_from_args() -> Option<PathBuf> {
    path_arg("--trace")
}

/// Parses `--csv <path>` from argv: where a binary's windowed-timeline
/// CSV export goes (the CI artifact the reconfig smoke job uploads).
pub fn csv_path_from_args() -> Option<PathBuf> {
    path_arg("--csv")
}

/// True when `--json -` routes the JSON document to stdout, which
/// reroutes all human output to stderr (see [`Console`]).
pub fn json_to_stdout() -> bool {
    json_path_from_args().is_some_and(|p| p.as_os_str() == "-")
}

/// Accumulates labelled runs and writes them as one JSON document.
pub struct JsonReport {
    experiment: String,
    mode: Mode,
    runs: Vec<String>,
}

impl JsonReport {
    /// Starts an empty report for one experiment binary.
    pub fn new(experiment: &str, mode: Mode) -> Self {
        JsonReport {
            experiment: experiment.to_string(),
            mode,
            runs: Vec::new(),
        }
    }

    /// Adds one run under `label`.
    pub fn push(&mut self, label: &str, report: &RunReport) {
        self.push_with(label, report, &[]);
    }

    /// Adds one run with extra numeric fields (e.g. the swept knob).
    pub fn push_with(&mut self, label: &str, report: &RunReport, extra: &[(&str, f64)]) {
        let committed = committed_updates(report);
        let secs = report.schedule.total_us() as f64 / 1e6;
        let mut fields = vec![
            format!("\"label\": {}", json_string(label)),
            format!("\"awips\": {}", json_f64(report.awips)),
            format!("\"mean_wirt_ms\": {}", json_f64(report.mean_wirt_ms)),
            format!("\"committed_updates\": {committed}"),
            format!(
                "\"updates_per_sec\": {}",
                json_f64(committed as f64 / secs.max(1e-9))
            ),
            format!("\"net_messages\": {}", report.net_messages),
            format!("\"net_bytes\": {}", report.net_bytes),
            format!("\"disk_writes\": {}", report.disk_writes),
            format!("\"disk_appends\": {}", report.disk_appends),
            format!(
                "\"availability\": {}",
                json_f64(report.dependability.availability)
            ),
            format!(
                "\"accuracy_percent\": {}",
                json_f64(report.dependability.accuracy_percent)
            ),
            format!("\"audit_checks\": {}", report.audit.checks),
            format!("\"audit_violations\": {}", report.audit.total_violations),
        ];
        fields.extend(availability_fields(report));
        for (k, v) in extra {
            fields.push(format!("{}: {}", json_string(k), json_f64(*v)));
        }
        self.runs.push(format!("    {{{}}}", fields.join(", ")));
    }

    /// Adds one timed run: the usual report fields plus the engine's
    /// event count, events-per-host-second, and host wall-clock time.
    ///
    /// The timing fields are machine-dependent — unlike everything else
    /// in the document they are not bit-for-bit reproducible across
    /// hosts, and the perf gate checks them only against loose
    /// tolerances.
    pub fn push_timed(&mut self, label: &str, run: &crate::TimedRun, extra: &[(&str, f64)]) {
        let mut fields: Vec<(&str, f64)> = vec![
            ("engine_events", run.report.engine_events as f64),
            (
                "events_per_sec",
                run.report.engine_events as f64 / run.wall_secs.max(1e-9),
            ),
            ("wall_clock_s", run.wall_secs),
        ];
        fields.extend_from_slice(extra);
        self.push_with(label, &run.report, &fields);
    }

    /// Adds one row of bare numeric fields (sweep experiments that
    /// aggregate away the underlying [`RunReport`]s).
    pub fn push_raw(&mut self, label: &str, fields: &[(&str, f64)]) {
        let mut parts = vec![format!("\"label\": {}", json_string(label))];
        for (k, v) in fields {
            parts.push(format!("{}: {}", json_string(k), json_f64(*v)));
        }
        self.runs.push(format!("    {{{}}}", parts.join(", ")));
    }

    /// Renders the JSON document.
    pub fn render(&self) -> String {
        let mode = match self.mode {
            Mode::Quick => "quick",
            Mode::Full => "full",
        };
        format!(
            "{{\n  \"experiment\": {},\n  \"mode\": \"{mode}\",\n  \"runs\": [\n{}\n  ]\n}}\n",
            json_string(&self.experiment),
            self.runs.join(",\n"),
        )
    }

    /// Writes the document to the `--json` path, if one was given on the
    /// command line (`-` prints it to stdout). Terminates with an error
    /// if the write fails (a CI gate consuming a half-written file would
    /// be worse than a loud failure).
    pub fn write_if_requested(&self) {
        let Some(path) = json_path_from_args() else {
            return;
        };
        let doc = self.render();
        if path.as_os_str() == "-" {
            print!("{doc}");
            return;
        }
        write_file_or_die(&path, &doc);
        Console::from_args().note(format_args!("wrote {}", path.display()));
    }
}

/// Writes `doc` to `path`, terminating with an error on failure (a CI
/// job consuming a half-written artifact would be worse than a loud
/// failure).
pub fn write_file_or_die(path: &PathBuf, doc: &str) {
    let write = std::fs::File::create(path).and_then(|mut f| f.write_all(doc.as_bytes()));
    if let Err(e) = write {
        eprintln!("failed to write {}: {e}", path.display());
        std::process::exit(1);
    }
}

/// Accumulates per-run trace records and writes them as one JSONL file
/// when `--trace <path>` was given. Each run's records are preceded by
/// a `{"run":"label"}` header line so `exp_trace_analyze` can split a
/// multi-configuration file back into runs. The rendering is the
/// canonical form from [`obs::jsonl`], so two deterministic runs
/// produce byte-identical files.
pub struct TraceSink {
    path: Option<PathBuf>,
    out: String,
}

impl TraceSink {
    /// Builds a sink from argv; inert (all methods no-ops) without
    /// `--trace`.
    pub fn from_args() -> TraceSink {
        TraceSink {
            path: trace_path_from_args(),
            out: String::new(),
        }
    }

    /// Whether `--trace` was given (and so tracing should be on).
    pub fn active(&self) -> bool {
        self.path.is_some()
    }

    /// Appends one run's trace under a header line for `label`.
    pub fn record_run(&mut self, label: &str, report: &RunReport) {
        if !self.active() {
            return;
        }
        self.out.push_str(&obs::jsonl::encode_run_header(label));
        self.out.push('\n');
        self.out.push_str(&obs::jsonl::encode_all(&report.trace));
    }

    /// Writes the accumulated JSONL to the `--trace` path, if any.
    pub fn write_if_requested(&self) {
        let Some(path) = &self.path else {
            return;
        };
        write_file_or_die(path, &self.out);
        Console::from_args().note(format_args!("wrote {}", path.display()));
    }
}

/// The run's committed-update count: the highest `applied` across the
/// surviving replicas (all agree modulo in-flight deliveries).
pub fn committed_updates(report: &RunReport) -> u64 {
    report
        .server_status
        .iter()
        .flatten()
        .map(|s| s.applied)
        .max()
        .unwrap_or(0)
}

fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Fault and reconfiguration markers of a run: one `crash`/`restart`/
/// `recovery_complete` triple per recovery span (a span that never
/// restarted — permanent hardware loss — contributes only its crash),
/// plus a `reconfig_proposed`/`epoch_change` pair per membership
/// change. Marker nodes are the victim, joiner, or removed replica.
pub fn run_markers(report: &RunReport) -> Vec<(u64, u32, &'static str)> {
    let mut markers: Vec<(u64, u32, &'static str)> = Vec::new();
    for span in &report.spans {
        markers.push((span.crash_at, span.server as u32, "crash"));
        if span.restart_at > span.crash_at {
            markers.push((span.restart_at, span.server as u32, "restart"));
        }
        if let Some(t) = span.recovered_at {
            markers.push((t, span.server as u32, "recovery_complete"));
        }
    }
    for incident in &report.reconfigs {
        let node = incident
            .add
            .first()
            .or_else(|| incident.remove.first())
            .copied()
            .unwrap_or(0) as u32;
        markers.push((incident.submitted_at_us, node, "reconfig_proposed"));
        if let Some(t) = incident.completed_at_us {
            markers.push((t, node, "epoch_change"));
        }
    }
    // Operator-visible alert windows from the online monitor (empty
    // unless the run was monitored). Cluster-scoped alerts are pinned
    // to the proxy/admin node so every marker has a plottable lane.
    let admin_node = report.server_status.len() as u32;
    for alert in &report.alerts.entries {
        let node = if alert.subject == obs::SUBJECT_CLUSTER {
            admin_node
        } else {
            alert.subject
        };
        match alert.phase {
            obs::AlertPhase::Firing => markers.push((alert.t_us, node, "alert_firing")),
            obs::AlertPhase::Resolved => markers.push((alert.t_us, node, "alert_resolved")),
            obs::AlertPhase::Pending => {}
        }
    }
    markers.sort_unstable();
    markers
}

/// Scores the run's alert log against its own ground-truth injection
/// log (disk-fault arming excluded — see
/// [`faultload::InjectionLog::incidents`]).
pub fn alert_score_from_run(report: &RunReport) -> obs::AlertScore {
    let truth: Vec<obs::GroundTruth> = report
        .injections
        .incidents()
        .map(|i| obs::GroundTruth {
            at_us: i.at_us,
            node: i.node,
            kind: i.kind,
        })
        .collect();
    obs::score_alerts(&report.alerts, &truth, &obs::ScoreConfig::default())
}

/// The monitor's JSON fields for a monitored run: alert counts, the
/// scorer's verdicts, and the mean/max detection latency over detected
/// incidents (0 when nothing was injected, as on the fault-free
/// baseline).
pub fn monitor_fields(report: &RunReport) -> Vec<(&'static str, f64)> {
    let score = alert_score_from_run(report);
    let detected: Vec<u64> = score
        .incidents
        .iter()
        .filter_map(|i| i.detection_latency_us)
        .collect();
    let det_mean = if detected.is_empty() {
        0.0
    } else {
        detected.iter().sum::<u64>() as f64 / detected.len() as f64
    };
    let det_max = detected.iter().copied().max().unwrap_or(0) as f64;
    vec![
        ("monitor_incidents", score.incidents.len() as f64),
        ("monitor_missed_incidents", score.missed() as f64),
        ("monitor_false_positives", score.false_positives as f64),
        ("monitor_alerts_fired", score.firings as f64),
        ("alert_detection_latency_us", det_mean),
        ("alert_detection_max_us", det_max),
    ]
}

/// The run's WIPS curve as an [`obs::Timeline`], with the markers from
/// [`run_markers`] attached — the untraced path to the paper's
/// availability decomposition (the traced path goes through
/// `exp_timeline` on a full trace).
pub fn timeline_from_run(report: &RunReport, cfg: &obs::TimelineConfig) -> obs::Timeline {
    obs::Timeline::from_series(
        report.recorder.wips_series(),
        report.recorder.error_series(),
        cfg.window_us,
        &run_markers(report),
    )
}

/// Derives per-crash [`obs::AvailabilityReport`]s from a run's
/// recorded per-second WIPS series and recovery spans.
pub fn availability_from_run(report: &RunReport) -> Vec<obs::AvailabilityReport> {
    if report.spans.is_empty() {
        return Vec::new();
    }
    let cfg = obs::TimelineConfig::default();
    let tl = timeline_from_run(report, &cfg);
    obs::availability_reports(&tl, &cfg)
}

/// Derives one [`obs::AvailabilityReport`] per membership change,
/// anchored on the operator's submission (`reconfig_proposed`): the
/// baseline is the pre-submission WIPS, and the dip/ramp measure what
/// the epoch switch cost the service.
pub fn reconfig_availability(report: &RunReport) -> Vec<obs::AvailabilityReport> {
    if report.reconfigs.is_empty() {
        return Vec::new();
    }
    let cfg = obs::TimelineConfig::default();
    let tl = timeline_from_run(report, &cfg);
    obs::availability_reports_for(&tl, &cfg, &["reconfig_proposed"])
}

/// The availability-report JSON fields of a run's first crash incident
/// (empty when the faultload injected none).
fn availability_fields(report: &RunReport) -> Vec<String> {
    let reports = availability_from_run(report);
    let Some(first) = reports.first() else {
        return Vec::new();
    };
    let opt = |v: Option<u64>| v.map_or_else(|| "null".to_string(), |x| x.to_string());
    vec![
        format!("\"incidents\": {}", reports.len()),
        format!("\"baseline_wips\": {}", json_f64(first.baseline_wips)),
        format!("\"time_to_detect_us\": {}", opt(first.time_to_detect_us)),
        format!(
            "\"time_to_failover_us\": {}",
            opt(first.time_to_failover_us)
        ),
        format!("\"degraded_us\": {}", first.degraded_us),
        format!("\"wips_dip_pct\": {}", json_f64(first.wips_dip_pct)),
        format!("\"ramp_to_95pct_us\": {}", opt(first.ramp_to_95pct_us)),
    ]
}

fn json_f64(v: f64) -> String {
    if !v.is_finite() {
        return "null".to_string();
    }
    // Fixed 4-decimal formatting: a committed baseline regenerated on
    // another machine diffs in values, not in 16-digit float noise.
    let s = format!("{v:.4}");
    let s = s.trim_end_matches('0').trim_end_matches('.');
    if s.is_empty() || s == "-" || s == "-0" {
        "0".to_string()
    } else {
        s.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_string_escapes_specials() {
        assert_eq!(json_string("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(json_string("\u{1}"), "\"\\u0001\"");
    }

    #[test]
    fn json_f64_rejects_non_finite() {
        assert_eq!(json_f64(1.5), "1.5");
        assert_eq!(json_f64(f64::NAN), "null");
        assert_eq!(json_f64(f64::INFINITY), "null");
    }

    #[test]
    fn json_f64_uses_fixed_decimals() {
        assert_eq!(json_f64(485.666_666_666_7), "485.6667");
        assert_eq!(json_f64(0.0), "0");
        assert_eq!(json_f64(-0.000_01), "0", "rounds to signless zero");
        assert_eq!(json_f64(99.999_96), "100");
        assert_eq!(json_f64(1.25), "1.25");
    }
}
