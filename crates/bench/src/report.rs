//! Machine-readable run reports: every `exp_*` binary accepts
//! `--json <path>` and writes its [`RunReport`]s there as a single JSON
//! document (hand-rolled — the repo carries no serialization crates).
//!
//! The document shape is stable so CI jobs (artifact upload, the perf
//! regression gate) can consume it without knowing which experiment
//! produced it:
//!
//! ```json
//! {
//!   "experiment": "exp_batching",
//!   "mode": "quick",
//!   "runs": [
//!     {"label": "ordering batch=8", "batch": 8, "awips": 312.4, ...}
//!   ]
//! }
//! ```

use std::io::Write as _;
use std::path::PathBuf;

use cluster::RunReport;

use crate::Mode;

/// Parses `--json <path>` from argv. Returns `None` when absent;
/// terminates with an error when the flag is given without a path.
pub fn json_path_from_args() -> Option<PathBuf> {
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == "--json" {
            match args.next() {
                Some(p) => return Some(PathBuf::from(p)),
                None => {
                    eprintln!("--json requires a path argument");
                    std::process::exit(2);
                }
            }
        }
    }
    None
}

/// Accumulates labelled runs and writes them as one JSON document.
pub struct JsonReport {
    experiment: String,
    mode: Mode,
    runs: Vec<String>,
}

impl JsonReport {
    /// Starts an empty report for one experiment binary.
    pub fn new(experiment: &str, mode: Mode) -> Self {
        JsonReport {
            experiment: experiment.to_string(),
            mode,
            runs: Vec::new(),
        }
    }

    /// Adds one run under `label`.
    pub fn push(&mut self, label: &str, report: &RunReport) {
        self.push_with(label, report, &[]);
    }

    /// Adds one run with extra numeric fields (e.g. the swept knob).
    pub fn push_with(&mut self, label: &str, report: &RunReport, extra: &[(&str, f64)]) {
        let committed = committed_updates(report);
        let secs = report.schedule.total_us() as f64 / 1e6;
        let mut fields = vec![
            format!("\"label\": {}", json_string(label)),
            format!("\"awips\": {}", json_f64(report.awips)),
            format!("\"mean_wirt_ms\": {}", json_f64(report.mean_wirt_ms)),
            format!("\"committed_updates\": {committed}"),
            format!(
                "\"updates_per_sec\": {}",
                json_f64(committed as f64 / secs.max(1e-9))
            ),
            format!("\"net_messages\": {}", report.net_messages),
            format!("\"net_bytes\": {}", report.net_bytes),
            format!("\"disk_writes\": {}", report.disk_writes),
            format!("\"disk_appends\": {}", report.disk_appends),
            format!(
                "\"availability\": {}",
                json_f64(report.dependability.availability)
            ),
            format!(
                "\"accuracy_percent\": {}",
                json_f64(report.dependability.accuracy_percent)
            ),
            format!("\"audit_checks\": {}", report.audit.checks),
            format!("\"audit_violations\": {}", report.audit.total_violations),
        ];
        for (k, v) in extra {
            fields.push(format!("{}: {}", json_string(k), json_f64(*v)));
        }
        self.runs.push(format!("    {{{}}}", fields.join(", ")));
    }

    /// Adds one row of bare numeric fields (sweep experiments that
    /// aggregate away the underlying [`RunReport`]s).
    pub fn push_raw(&mut self, label: &str, fields: &[(&str, f64)]) {
        let mut parts = vec![format!("\"label\": {}", json_string(label))];
        for (k, v) in fields {
            parts.push(format!("{}: {}", json_string(k), json_f64(*v)));
        }
        self.runs.push(format!("    {{{}}}", parts.join(", ")));
    }

    /// Renders the JSON document.
    pub fn render(&self) -> String {
        let mode = match self.mode {
            Mode::Quick => "quick",
            Mode::Full => "full",
        };
        format!(
            "{{\n  \"experiment\": {},\n  \"mode\": \"{mode}\",\n  \"runs\": [\n{}\n  ]\n}}\n",
            json_string(&self.experiment),
            self.runs.join(",\n"),
        )
    }

    /// Writes the document to the `--json` path, if one was given on the
    /// command line. Terminates with an error if the write fails (a CI
    /// gate consuming a half-written file would be worse than a loud
    /// failure).
    pub fn write_if_requested(&self) {
        let Some(path) = json_path_from_args() else {
            return;
        };
        let doc = self.render();
        let write = std::fs::File::create(&path).and_then(|mut f| f.write_all(doc.as_bytes()));
        match write {
            Ok(()) => eprintln!("wrote {}", path.display()),
            Err(e) => {
                eprintln!("failed to write {}: {e}", path.display());
                std::process::exit(1);
            }
        }
    }
}

/// The run's committed-update count: the highest `applied` across the
/// surviving replicas (all agree modulo in-flight deliveries).
pub fn committed_updates(report: &RunReport) -> u64 {
    report
        .server_status
        .iter()
        .flatten()
        .map(|s| s.applied)
        .max()
        .unwrap_or(0)
}

fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_string_escapes_specials() {
        assert_eq!(json_string("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(json_string("\u{1}"), "\"\\u0001\"");
    }

    #[test]
    fn json_f64_rejects_non_finite() {
        assert_eq!(json_f64(1.5), "1.5");
        assert_eq!(json_f64(f64::NAN), "null");
        assert_eq!(json_f64(f64::INFINITY), "null");
    }
}
