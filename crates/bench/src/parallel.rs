//! Parallel sweep runner: farms independent experiment points onto
//! worker threads.
//!
//! Every sweep in this crate is embarrassingly parallel — each point is
//! a self-contained deterministic simulation owning its engine, RNG,
//! and state — so the only coordination needed is handing out work and
//! collecting results. [`run_parallel`] does exactly that with two
//! unbounded crossbeam channels (task queue and result queue) and a
//! scoped thread per core.
//!
//! Determinism is preserved: each point's *result* is a pure function of
//! its config/seed regardless of which thread runs it, and results are
//! reassembled by index, so the output `Vec` is identical to what the
//! sequential loop produced. Only wall-clock time changes.

use crossbeam::channel;

/// Runs `run` over every item of `points` on up to
/// `available_parallelism` worker threads, returning the results in
/// input order.
///
/// Falls back to a plain sequential loop when there is a single item or
/// a single core, so callers need no special casing.
pub fn run_parallel<I, O, F>(points: Vec<I>, run: F) -> Vec<O>
where
    I: Send,
    O: Send,
    F: Fn(I) -> O + Sync,
{
    let workers = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
        .min(points.len());
    if workers <= 1 {
        return points.into_iter().map(run).collect();
    }

    let n = points.len();
    let (task_tx, task_rx) = channel::unbounded::<(usize, I)>();
    let (result_tx, result_rx) = channel::unbounded::<(usize, O)>();
    for task in points.into_iter().enumerate() {
        task_tx.send(task).expect("receivers alive");
    }
    // Drop the main sender so workers see disconnection once the queue
    // drains instead of blocking forever.
    drop(task_tx);

    let mut slots: Vec<Option<O>> = (0..n).map(|_| None).collect();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            let task_rx = task_rx.clone();
            let result_tx = result_tx.clone();
            let run = &run;
            scope.spawn(move || {
                while let Ok((idx, item)) = task_rx.recv() {
                    let out = run(item);
                    if result_tx.send((idx, out)).is_err() {
                        break;
                    }
                }
            });
        }
        drop(task_rx);
        drop(result_tx);
        for _ in 0..n {
            let (idx, out) = result_rx.recv().expect("workers deliver every result");
            slots[idx] = Some(out);
        }
    });
    slots
        .into_iter()
        .map(|slot| slot.expect("every index filled"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_input_order() {
        let points: Vec<u64> = (0..64).collect();
        let out = run_parallel(points, |x| x * x);
        assert_eq!(out, (0..64).map(|x| x * x).collect::<Vec<_>>());
    }

    #[test]
    fn single_item_runs_inline() {
        assert_eq!(run_parallel(vec![21u64], |x| x * 2), vec![42]);
    }

    #[test]
    fn empty_input_yields_empty_output() {
        let out: Vec<u8> = run_parallel(Vec::<u8>::new(), |x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn uneven_work_still_fills_every_slot() {
        // Items that sleep different amounts finish out of order; the
        // index plumbing must still reassemble input order.
        let out = run_parallel((0..16u64).collect(), |x| {
            std::thread::sleep(std::time::Duration::from_millis((16 - x) % 4));
            x + 100
        });
        assert_eq!(out, (100..116).collect::<Vec<_>>());
    }
}
