//! # bench — experiment harness regenerating every table and figure
//!
//! One function per paper artifact (Figures 3–8, Tables 1–6), each
//! returning structured results and rendering the paper's layout. The
//! `exp_*` binaries wrap these; `exp_all` runs the complete evaluation
//! and writes an `EXPERIMENTS.md`-ready report.
//!
//! Two fidelity modes:
//!
//! * **quick** (default) — the measurement interval and faultload times
//!   are scaled to ⅓ of the paper's (180 s interval, crashes at
//!   80/90/130 s) so the whole evaluation runs in minutes;
//! * **full** (`--full`) — the paper's exact schedule (30 s ramp-up,
//!   540 s interval, crashes at 240/270/390 s).
//!
//! State sizes (300/500/700 MB) are never scaled: recovery times are a
//! direct function of them.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod parallel;
pub mod render;
pub mod report;

pub use parallel::run_parallel;
pub use render::Console;
pub use report::{
    alert_score_from_run, availability_from_run, committed_updates, json_path_from_args,
    monitor_fields, reconfig_availability, run_markers, timeline_from_run, trace_path_from_args,
    JsonReport, TraceSink,
};

use cluster::{run_experiment, ExperimentConfig, RunReport, ServiceModel};
use faultload::Faultload;
use tpcw::{linear_fit, r_squared, Profile, Schedule};

/// Harness fidelity mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// ⅓-scale schedule, coarser sweeps.
    Quick,
    /// The paper's exact schedule and sweeps.
    Full,
}

impl Mode {
    /// Parses `--full` from argv.
    pub fn from_args() -> Mode {
        if std::env::args().any(|a| a == "--full") {
            Mode::Full
        } else {
            Mode::Quick
        }
    }

    /// The measurement schedule for this mode.
    pub fn schedule(self) -> Schedule {
        match self {
            Mode::Quick => Schedule::quick(180),
            Mode::Full => Schedule::paper(),
        }
    }

    /// Scales a paper faultload to this mode's schedule.
    pub fn faultload(self, f: Faultload) -> Faultload {
        match self {
            Mode::Quick => f.scaled(1, 3),
            Mode::Full => f,
        }
    }

    /// Replica counts for sweep experiments.
    pub fn sweep_replicas(self) -> Vec<usize> {
        self.sweep_memberships().iter().map(|m| m.n()).collect()
    }

    /// The epoch-0 replica sets sweep experiments run on. Ensemble
    /// sizing flows through the same membership type the cluster's
    /// quorum arithmetic uses, so a future change to how replica sets
    /// are constructed (sparse ids, non-zero epochs) reaches every
    /// experiment from one place.
    pub fn sweep_memberships(self) -> Vec<paxos::Membership> {
        let counts: Vec<usize> = match self {
            Mode::Quick => vec![4, 6, 8, 10, 12],
            Mode::Full => (4..=12).collect(),
        };
        counts.into_iter().map(paxos::Membership::initial).collect()
    }
}

/// The paper's {5, 8}-replica ensembles the dependability grids run on,
/// as epoch-0 memberships (see [`Mode::sweep_memberships`] for why the
/// membership type is the source of truth).
pub fn grid_memberships() -> Vec<paxos::Membership> {
    [5usize, 8]
        .into_iter()
        .map(paxos::Membership::initial)
        .collect()
}

/// Base configuration shared by all experiments in a mode. Tracing is
/// enabled when `--trace <path>` is on the command line, so every
/// binary built on this config records structured traces exactly when
/// there is somewhere to write them.
pub fn base_config(mode: Mode, replicas: usize, profile: Profile) -> ExperimentConfig {
    let mut config = ExperimentConfig::paper(replicas);
    config.profile = profile;
    config.schedule = mode.schedule();
    config.trace = trace_config_from_args();
    config
}

/// The [`simnet::TraceConfig`] implied by argv: on iff `--trace` was
/// given.
pub fn trace_config_from_args() -> simnet::TraceConfig {
    if trace_path_from_args().is_some() {
        simnet::TraceConfig::on()
    } else {
        simnet::TraceConfig::default()
    }
}

/// A run report plus the real time it took to produce — the raw
/// material for the events-per-second and wall-clock points the perf
/// gate tracks. Wall-clock here is host time (this is the harness, not
/// the simulation), so these fields are machine-dependent and gated
/// loosely.
pub struct TimedRun {
    /// The simulation's report.
    pub report: RunReport,
    /// Host seconds spent producing it.
    pub wall_secs: f64,
}

/// Runs one experiment and measures the host wall-clock cost.
pub fn run_experiment_timed(config: &ExperimentConfig) -> TimedRun {
    // Host timing is the point here: this measures the harness, not the
    // simulation, and the fields it feeds are gated loosely for exactly
    // that reason.
    #[allow(clippy::disallowed_methods)]
    let start = std::time::Instant::now();
    let report = run_experiment(config);
    TimedRun {
        report,
        wall_secs: start.elapsed().as_secs_f64(),
    }
}

/// One point of a sweep experiment.
#[derive(Debug, Clone, Copy)]
pub struct SweepPoint {
    /// Replica count.
    pub replicas: usize,
    /// Measured throughput (interactions/s) over the interval.
    pub wips: f64,
    /// Mean response time (ms).
    pub wirt_ms: f64,
}

/// Figure 3 — speedup: saturated WIPS and WIRT vs. replica count for
/// each workload, 500 MB initial state.
pub fn fig3_speedup(mode: Mode, profile: Profile) -> Vec<SweepPoint> {
    let service = ServiceModel::default();
    run_parallel(mode.sweep_replicas(), |replicas| {
        let mut config = base_config(mode, replicas, profile);
        config.ebs = 50;
        // Saturating load: 1.35× the analytic capacity estimate.
        config.rbes = ((service.estimated_capacity(profile, replicas) * 1.35) as usize).max(600);
        let report = run_experiment(&config);
        SweepPoint {
            replicas,
            wips: report.awips,
            wirt_ms: report.mean_wirt_ms,
        }
    })
}

/// Figure 4 scaleup results: points plus the paper's regression and
/// correlation analysis.
pub struct ScaleupResult {
    /// The sweep points.
    pub points: Vec<SweepPoint>,
    /// Linear fit `wips = a + b·replicas`.
    pub fit: (f64, f64),
    /// r² of WIPS ↔ WIRT across the sweep.
    pub wips_wirt_r2: f64,
}

/// Figure 4 — scaleup: WIPS and WIRT at a fixed offered load of 1000
/// WIPS (1000 RBEs at 1 s think time), 300 MB state.
pub fn fig4_scaleup(mode: Mode, profile: Profile) -> ScaleupResult {
    let points: Vec<SweepPoint> = run_parallel(mode.sweep_memberships(), |membership| {
        let replicas = membership.n();
        let mut config = base_config(mode, replicas, profile);
        config.ebs = 30;
        config.rbes = 1_000;
        let report = run_experiment(&config);
        SweepPoint {
            replicas,
            wips: report.awips,
            wirt_ms: report.mean_wirt_ms,
        }
    });
    let xy: Vec<(f64, f64)> = points.iter().map(|p| (p.replicas as f64, p.wips)).collect();
    let fit = linear_fit(&xy);
    let ww: Vec<(f64, f64)> = points.iter().map(|p| (p.wips, p.wirt_ms)).collect();
    ScaleupResult {
        fit,
        wips_wirt_r2: r_squared(&ww),
        points,
    }
}

/// One dependability run (a figure-5/7/8-style experiment).
pub struct FaultRun {
    /// Replica count.
    pub replicas: usize,
    /// Workload profile.
    pub profile: Profile,
    /// Initial state size (EB scale: 30/50/70).
    pub ebs: u32,
    /// The full run report.
    pub report: RunReport,
}

/// Runs one faultload experiment.
pub fn fault_run(
    mode: Mode,
    replicas: usize,
    profile: Profile,
    ebs: u32,
    faultload: Faultload,
) -> FaultRun {
    let mut config = base_config(mode, replicas, profile);
    config.ebs = ebs;
    config.rbes = 1_000;
    config.faultload = mode.faultload(faultload);
    let report = run_experiment(&config);
    FaultRun {
        replicas,
        profile,
        ebs,
        report,
    }
}

/// Figures 5/7/8 + Tables 1–6 — the full dependability grid for one
/// faultload: replicas {5, 8} × the three profiles, 500 MB state.
pub fn dependability_grid(mode: Mode, faultload: &Faultload) -> Vec<FaultRun> {
    let mut points = Vec::new();
    for membership in grid_memberships() {
        for profile in Profile::ALL {
            points.push((membership.n(), profile));
        }
    }
    run_parallel(points, |(replicas, profile)| {
        fault_run(mode, replicas, profile, 50, faultload.clone())
    })
}

/// One cell of the Figure 6 recovery-time grid.
#[derive(Debug, Clone, Copy)]
pub struct RecoveryTimePoint {
    /// Replica count (5 or 8).
    pub replicas: usize,
    /// Profile.
    pub profile: Profile,
    /// State-size scale (30/50/70 EB ≈ 300/500/700 MB).
    pub ebs: u32,
    /// Measured recovery time (s), restart → operational.
    pub recovery_secs: f64,
}

/// Figure 6 — recovery times for the single-crash faultload across
/// state sizes, profiles and replica counts.
pub fn fig6_recovery_times(mode: Mode) -> Vec<RecoveryTimePoint> {
    let mut points = Vec::new();
    for membership in grid_memberships() {
        for profile in Profile::ALL {
            for ebs in [30u32, 50, 70] {
                points.push((membership.n(), profile, ebs));
            }
        }
    }
    run_parallel(points, |(replicas, profile, ebs)| {
        let run = fault_run(mode, replicas, profile, ebs, Faultload::single_crash());
        let recovery_secs = run
            .report
            .spans
            .first()
            .and_then(|s| s.recovery_secs())
            .unwrap_or(f64::NAN);
        RecoveryTimePoint {
            replicas,
            profile,
            ebs,
            recovery_secs,
        }
    })
}

/// Computes relative speedups `S_k = π_k / π_4` from a sweep.
pub fn speedups(points: &[SweepPoint]) -> Vec<(usize, f64)> {
    let base = points
        .iter()
        .find(|p| p.replicas == 4)
        .map(|p| p.wips)
        .unwrap_or(1.0);
    points.iter().map(|p| (p.replicas, p.wips / base)).collect()
}
