//! Rendering helpers: paper-style tables and ASCII WIPS histograms,
//! plus the [`Console`] the `exp_*` binaries route all human-readable
//! output through.

use faultload::DependabilityReport;
use tpcw::Profile;

use crate::{FaultRun, RecoveryTimePoint, ScaleupResult, SweepPoint};

/// Console output shared by the `exp_*` binaries.
///
/// Tables and plots go through [`Console::say`]; `--quiet` suppresses
/// them, and when `--json -` claims stdout for the machine-readable
/// report they are rerouted to stderr, so a JSON consumer reading
/// stdout never sees human text interleaved with the document. Status
/// notes ("wrote …") go through [`Console::note`], which always targets
/// stderr.
#[derive(Debug, Clone, Copy)]
pub struct Console {
    quiet: bool,
    to_stderr: bool,
}

impl Console {
    /// Builds a console from argv (`--quiet`, `--json -`).
    pub fn from_args() -> Console {
        Console {
            quiet: std::env::args().any(|a| a == "--quiet"),
            to_stderr: crate::report::json_to_stdout(),
        }
    }

    /// Prints one human-readable block (suppressed by `--quiet`).
    pub fn say(&self, text: impl std::fmt::Display) {
        if self.quiet {
            return;
        }
        if self.to_stderr {
            eprintln!("{text}");
        } else {
            println!("{text}");
        }
    }

    /// Prints a status note to stderr (suppressed by `--quiet`).
    pub fn note(&self, text: impl std::fmt::Display) {
        if !self.quiet {
            eprintln!("{text}");
        }
    }
}

/// Renders a per-second WIPS series as a compact ASCII plot (the shape
/// of Figures 5/7/8), with crash/recovery markers.
pub fn wips_plot(series: &[u32], markers: &[(u64, char)], width: usize) -> String {
    const LEVELS: &[char] = &[' ', '.', ':', '-', '=', '+', '*', '#', '%', '@'];
    if series.is_empty() {
        return String::new();
    }
    let bucket = series.len().div_ceil(width);
    let cols: Vec<f64> = series
        .chunks(bucket)
        .map(|c| c.iter().map(|v| *v as f64).sum::<f64>() / c.len() as f64)
        .collect();
    let max = cols.iter().cloned().fold(1.0_f64, f64::max);
    let mut plot: String = cols
        .iter()
        .map(|v| {
            let idx = ((v / max) * (LEVELS.len() - 1) as f64).round() as usize;
            LEVELS[idx.min(LEVELS.len() - 1)]
        })
        .collect();
    let mut marker_line = vec![b' '; plot.chars().count()];
    for (t_us, ch) in markers {
        let sec = (*t_us / 1_000_000) as usize;
        let col = sec / bucket;
        if col < marker_line.len() {
            marker_line[col] = *ch as u8;
        }
    }
    plot.push('\n');
    plot.push_str(&String::from_utf8_lossy(&marker_line));
    format!("peak≈{max:.0} WIPS/s, {bucket}s per column\n{plot}")
}

/// Renders a speedup sweep (one Figure 3 panel).
pub fn render_speedup(profile: Profile, points: &[SweepPoint]) -> String {
    let mut out = format!(
        "Figure 3 ({}) — saturated {} and WIRT vs replicas\n",
        profile.name(),
        profile.metric_name()
    );
    out.push_str("  replicas |    WIPS | WIRT(ms) |   S_k\n");
    let base = points
        .iter()
        .find(|p| p.replicas == 4)
        .map(|p| p.wips)
        .unwrap_or(1.0);
    for p in points {
        out.push_str(&format!(
            "  {:8} | {:7.1} | {:8.1} | {:5.2}\n",
            p.replicas,
            p.wips,
            p.wirt_ms,
            p.wips / base
        ));
    }
    out
}

/// Renders a scaleup sweep (one Figure 4 panel).
pub fn render_scaleup(profile: Profile, result: &ScaleupResult) -> String {
    let mut out = format!(
        "Figure 4 ({}) — {} and WIRT at 1000 WIPS offered\n",
        profile.name(),
        profile.metric_name()
    );
    out.push_str("  replicas |    WIPS | WIRT(ms)\n");
    for p in &result.points {
        out.push_str(&format!(
            "  {:8} | {:7.1} | {:8.1}\n",
            p.replicas, p.wips, p.wirt_ms
        ));
    }
    let (a, b) = result.fit;
    out.push_str(&format!(
        "  fit: WIPS ≈ {a:.1} {b:+.2}·replicas   ({:+.2}%/replica)\n",
        100.0 * b / a.max(1.0)
    ));
    out.push_str(&format!("  WIPS↔WIRT r² = {:.4}\n", result.wips_wirt_r2));
    out
}

/// Renders a performability table (Tables 1/3) from a dependability
/// grid.
pub fn render_performability(title: &str, runs: &[FaultRun]) -> String {
    let mut out = format!("{title}\n");
    out.push_str("        |    failure free    |       recovery\n");
    out.push_str("  R/P   |    AWIPS |     CV  |    AWIPS |     CV |  PV(%)\n");
    for run in runs {
        let d = &run.report.dependability;
        let rec = d.recovery.first();
        out.push_str(&format!(
            "  {}/{} | {:8.1} | {:7.2} | {:8.1} | {:6.2} | {:+6.1}\n",
            run.replicas,
            &run.profile.name()[..1],
            d.failure_free.awips,
            d.failure_free.cv,
            rec.map(|w| w.awips).unwrap_or(f64::NAN),
            rec.map(|w| w.cv).unwrap_or(f64::NAN),
            d.pv_percent.first().copied().unwrap_or(f64::NAN),
        ));
    }
    out
}

/// Renders the delayed-recovery performability table (Table 5: separate
/// R1 and R2 windows).
pub fn render_performability_delayed(title: &str, runs: &[FaultRun]) -> String {
    let mut out = format!("{title}\n");
    out.push_str("  R/P   | no-fail AWIPS | R1 AWIPS |  PV(%) | R2 AWIPS |  PV(%)\n");
    for run in runs {
        let d = &run.report.dependability;
        let (r1, r2) = (d.recovery.first(), d.recovery.get(1));
        out.push_str(&format!(
            "  {}/{} | {:13.1} | {:8.1} | {:+6.1} | {:8.1} | {:+6.1}\n",
            run.replicas,
            &run.profile.name()[..1],
            d.failure_free.awips,
            r1.map(|w| w.awips).unwrap_or(f64::NAN),
            d.pv_percent.first().copied().unwrap_or(f64::NAN),
            r2.map(|w| w.awips).unwrap_or(f64::NAN),
            d.pv_percent.get(1).copied().unwrap_or(f64::NAN),
        ));
    }
    out
}

/// Renders an accuracy table (Tables 2/4/6).
pub fn render_accuracy(title: &str, runs: &[FaultRun]) -> String {
    let mut out = format!("{title}\n  replicas | browsing | shopping | ordering\n");
    for replicas in [5usize, 8] {
        let row: Vec<String> = Profile::ALL
            .iter()
            .map(|p| {
                runs.iter()
                    .find(|r| r.replicas == replicas && r.profile == *p)
                    .map(|r| format!("{:8.3}", r.report.dependability.accuracy_percent))
                    .unwrap_or_else(|| "       -".to_string())
            })
            .collect();
        out.push_str(&format!("  {:8} | {}\n", replicas, row.join(" | ")));
    }
    out
}

/// Renders the Figure 6 recovery-time grid.
pub fn render_recovery_times(points: &[RecoveryTimePoint]) -> String {
    let mut out = String::from(
        "Figure 6 — one-failure recovery times (s) by state size\n  R  profile   |  300MB |  500MB |  700MB\n",
    );
    for replicas in [5usize, 8] {
        for profile in Profile::ALL {
            let cells: Vec<String> = [30u32, 50, 70]
                .iter()
                .map(|ebs| {
                    points
                        .iter()
                        .find(|p| p.replicas == replicas && p.profile == profile && p.ebs == *ebs)
                        .map(|p| format!("{:6.1}", p.recovery_secs))
                        .unwrap_or_else(|| "     -".to_string())
                })
                .collect();
            out.push_str(&format!(
                "  {}R {:9} | {}\n",
                replicas,
                profile.name(),
                cells.join(" | ")
            ));
        }
    }
    out
}

/// Renders availability/autonomy summary for a grid.
pub fn render_autonomy(title: &str, runs: &[FaultRun]) -> String {
    let mut out = format!("{title}\n  R/P   | availability | autonomy | recoveries(s)\n");
    for run in runs {
        let d: &DependabilityReport = &run.report.dependability;
        let recs: Vec<String> = run
            .report
            .spans
            .iter()
            .map(|s| {
                s.recovery_secs()
                    .map(|v| format!("{v:.1}"))
                    .unwrap_or_else(|| "incomplete".to_string())
            })
            .collect();
        out.push_str(&format!(
            "  {}/{} | {:12.5} | {:8.2} | {}\n",
            run.replicas,
            &run.profile.name()[..1],
            d.availability,
            d.autonomy,
            recs.join(", ")
        ));
    }
    out
}

/// Renders per-crash availability reports (time to detect/failover,
/// degraded stretch, dip depth, ramp back to 95 % baseline) for a
/// faultload grid — the numbers behind the Figure 4/5 curves.
pub fn render_availability(title: &str, runs: &[FaultRun]) -> String {
    let mut out = format!(
        "{title}\n  R/P   | base WIPS | detect(s) | failover(s) | degraded(s) | dip(%) | ramp95(s)\n"
    );
    let secs = |v: Option<u64>| {
        v.map(|us| format!("{:9.1}", us as f64 / 1e6))
            .unwrap_or_else(|| "        -".to_string())
    };
    for run in runs {
        let reports = crate::report::availability_from_run(&run.report);
        if reports.is_empty() {
            continue;
        }
        for r in &reports {
            out.push_str(&format!(
                "  {}/{} | {:9.1} | {} | {}   | {:11.1} | {:6.1} | {}\n",
                run.replicas,
                &run.profile.name()[..1],
                r.baseline_wips,
                secs(r.time_to_detect_us),
                secs(r.time_to_failover_us),
                r.degraded_us as f64 / 1e6,
                r.wips_dip_pct,
                secs(r.ramp_to_95pct_us),
            ));
        }
    }
    out
}

/// Renders the failure detectors' quality against the trace's ground
/// truth: detection latency per real crash, plus false suspicions of
/// live peers and how long those mistakes lasted. Empty when no run was
/// traced (the metrics are derived from `peer_suspected`/`peer_cleared`
/// records).
pub fn render_fd_quality(title: &str, runs: &[FaultRun]) -> String {
    let mut out = format!(
        "{title}\n  R/P   | crashes | detected | detect p50(s) | detect max(s) | false susp | mistake p50(s)\n"
    );
    let mut any = false;
    for run in runs {
        if run.report.trace.is_empty() {
            continue;
        }
        let fd = obs::fd_quality(&run.report.trace);
        if fd.incidents.is_empty() && fd.false_suspicions == 0 {
            continue;
        }
        any = true;
        let secs = |us: u64| us as f64 / 1e6;
        out.push_str(&format!(
            "  {}/{} | {:7} | {:8} | {:13.1} | {:13.1} | {:10} | {:14.1}\n",
            run.replicas,
            &run.profile.name()[..1],
            fd.incidents.len(),
            fd.detected(),
            secs(fd.detection_latency.quantile(0.5)),
            secs(fd.detection_latency.max()),
            fd.false_suspicions,
            secs(fd.mistake_duration.quantile(0.5)),
        ));
    }
    if !any {
        out.push_str("  (no traced runs — re-run with --trace for detector quality)\n");
    }
    out
}

/// Renders the online monitor's alert quality per run: ground-truth
/// incidents vs detected/missed, mean/max detection latency, false
/// positives, and the mean time-to-resolve. Rows whose runs were not
/// monitored (no alerts, no injections) still render — a fault-free
/// monitored baseline with zero firings is exactly the result the
/// false-positive column is for.
pub fn render_alert_quality(title: &str, runs: &[(String, &cluster::RunReport)]) -> String {
    let mut out = format!(
        "{title}\n  run                            | inc | det | miss |  FP | fired | detect mean(s) | detect max(s) | resolve mean(s)\n"
    );
    for (label, report) in runs {
        let score = crate::report::alert_score_from_run(report);
        let detected: Vec<u64> = score
            .incidents
            .iter()
            .filter_map(|i| i.detection_latency_us)
            .collect();
        let resolved: Vec<u64> = score
            .incidents
            .iter()
            .filter_map(|i| i.resolve_latency_us)
            .collect();
        let mean_s = |v: &[u64]| {
            if v.is_empty() {
                "      -".to_string()
            } else {
                format!(
                    "{:7.1}",
                    v.iter().sum::<u64>() as f64 / v.len() as f64 / 1e6
                )
            }
        };
        let max_s = detected
            .iter()
            .max()
            .map(|us| format!("{:7.1}", *us as f64 / 1e6))
            .unwrap_or_else(|| "      -".to_string());
        out.push_str(&format!(
            "  {:<30} | {:3} | {:3} | {:4} | {:3} | {:5} |        {} |       {} |         {}\n",
            label,
            score.incidents.len(),
            score.detected(),
            score.missed(),
            score.false_positives,
            score.firings,
            mean_s(&detected),
            max_s,
            mean_s(&resolved),
        ));
    }
    out
}

/// Renders one fault run's WIPS histogram with crash (c) and recovery
/// (r) markers — the Figures 5/7/8 panels.
pub fn render_fault_histogram(run: &FaultRun) -> String {
    let mut markers: Vec<(u64, char)> = Vec::new();
    for span in &run.report.spans {
        markers.push((span.crash_at, 'c'));
        if let Some(r) = span.recovered_at {
            markers.push((r, 'r'));
        }
    }
    format!(
        "{}R {} ({}00MB):\n{}",
        run.replicas,
        run.profile.name(),
        run.ebs / 10,
        wips_plot(run.report.recorder.wips_series(), &markers, 90)
    )
}
