//! Per-slot critical-path profiling.
//!
//! Each locally submitted update leaves a causally ordered record
//! trail: `update_submitted` → `batch_flushed` (group commit) →
//! `accepted` (the durable append + local acceptance of the batch's
//! slot) → `decided` (quorum) → `update_delivered` (apply) →
//! `reply_sent` (the web tier unblocks the client). This module
//! stitches those records back into one span per update and aggregates
//! per-phase latency distributions, so "where did the latency go during
//! the degraded window" is answerable from a trace alone — the
//! Dapper-style decomposition applied to our commit path.
//!
//! Because every stamp is the dispatch time of the handler that
//! produced it, the four pipeline phases of a span sum *exactly* to the
//! end-to-end commit latency the middleware measured; nothing is lost
//! between phases.

use std::collections::BTreeMap;

use crate::event::{TraceEvent, TraceRecord};
use crate::metrics::Hist;

/// Critical-path phase names, pipeline order. The first four partition
/// the submit→apply latency; `reply` is the tail from apply to the
/// client's response and is measured separately.
pub const PHASES: [&str; 5] = [
    "batch_wait",
    "persist_accept",
    "quorum_decide",
    "apply",
    "reply",
];

/// One update's stitched critical path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UpdateSpan {
    /// Submitting replica.
    pub node: u32,
    /// Submitter-local sequence number.
    pub seq: u64,
    /// Consensus slot of the containing batch.
    pub slot: u64,
    /// Submit time, µs.
    pub submit_us: u64,
    /// Apply time, µs.
    pub deliver_us: u64,
    /// Submit → batch flush (group-commit queueing).
    pub batch_wait_us: u64,
    /// Flush → local acceptance (serialize, durable append, accept).
    pub persist_accept_us: u64,
    /// Acceptance → quorum decision.
    pub quorum_decide_us: u64,
    /// Decision → application to the local state machine.
    pub apply_us: u64,
    /// Apply → reply to the blocked client, when the reply was traced.
    pub reply_us: Option<u64>,
    /// End-to-end submit→apply latency as measured by the middleware.
    pub total_us: u64,
}

impl UpdateSpan {
    /// Sum of the four pipeline phases; equals [`UpdateSpan::total_us`]
    /// by construction.
    pub fn phase_sum_us(&self) -> u64 {
        self.batch_wait_us + self.persist_accept_us + self.quorum_decide_us + self.apply_us
    }

    /// The phase durations in [`PHASES`] order (reply 0 when untraced).
    pub fn phase_durations(&self) -> [(&'static str, u64); 5] {
        [
            (PHASES[0], self.batch_wait_us),
            (PHASES[1], self.persist_accept_us),
            (PHASES[2], self.quorum_decide_us),
            (PHASES[3], self.apply_us),
            (PHASES[4], self.reply_us.unwrap_or(0)),
        ]
    }
}

/// All stitched spans of one run plus per-phase distributions.
#[derive(Debug, Clone, Default)]
pub struct SpanProfile {
    /// Spans in delivery order.
    pub spans: Vec<UpdateSpan>,
    /// Per-phase latency distributions, keyed by [`PHASES`] name.
    pub phase_hists: BTreeMap<&'static str, Hist>,
}

/// Per-node stitching state; cleared on the node's crash because its
/// volatile pipeline (and its per-epoch sequence space) restarts.
#[derive(Default)]
struct NodeState {
    /// seq → submit time.
    submits: BTreeMap<u64, u64>,
    /// first_seq → (updates, flush time); a range query joins a seq to
    /// its batch.
    flushes: BTreeMap<u64, (u64, u64)>,
    /// slot → first local acceptance time.
    accepts: BTreeMap<u64, u64>,
    /// slot → decision time.
    decides: BTreeMap<u64, u64>,
    /// seq → span index awaiting its `reply_sent`.
    pending_reply: BTreeMap<u64, usize>,
}

impl NodeState {
    /// The flush covering `seq`, if traced: the batch whose
    /// `[first_seq, first_seq + updates)` range contains it. When `seq`
    /// is the batch's last update the entry is dropped (deliveries run
    /// in index order, so nothing still needs it).
    fn flush_for(&mut self, seq: u64) -> Option<u64> {
        let (&first, &(updates, t)) = self.flushes.range(..=seq).next_back()?;
        if seq >= first + updates {
            return None;
        }
        if seq + 1 == first + updates {
            self.flushes.remove(&first);
        }
        Some(t)
    }
}

impl SpanProfile {
    /// Stitches `records` (one run's trace, in engine order) into
    /// per-update spans.
    pub fn from_records(records: &[TraceRecord]) -> SpanProfile {
        let mut nodes: BTreeMap<u32, NodeState> = BTreeMap::new();
        let mut profile = SpanProfile::default();
        for rec in records {
            let state = nodes.entry(rec.node).or_default();
            match rec.event {
                TraceEvent::UpdateSubmitted { seq } => {
                    state.submits.insert(seq, rec.t_us);
                }
                TraceEvent::BatchFlushed {
                    updates, first_seq, ..
                } => {
                    state.flushes.insert(first_seq, (updates, rec.t_us));
                }
                TraceEvent::Accepted { slot, .. } => {
                    state.accepts.entry(slot).or_insert(rec.t_us);
                }
                TraceEvent::Decided { slot, .. } => {
                    state.decides.entry(slot).or_insert(rec.t_us);
                }
                TraceEvent::UpdateDelivered {
                    slot,
                    submitter,
                    seq,
                    latency_us,
                    ..
                } => {
                    // Only the submitter saw the submit, so only its
                    // own delivery closes the span.
                    if submitter != rec.node || latency_us == 0 {
                        continue;
                    }
                    let Some(submit) = state.submits.remove(&seq) else {
                        continue; // submitted before tracing started
                    };
                    let flush = state.flush_for(seq);
                    let accept = state.accepts.get(&slot).copied();
                    let decide = state.decides.get(&slot).copied();
                    // Clamp each stamp to be monotone so a missing edge
                    // collapses its phase to zero instead of skewing
                    // the others; the phases then telescope to exactly
                    // deliver − submit.
                    let s1 = flush.unwrap_or(submit).max(submit);
                    let s2 = accept.unwrap_or(s1).max(s1);
                    let s3 = decide.unwrap_or(s2).max(s2);
                    let s4 = rec.t_us.max(s3);
                    let span = UpdateSpan {
                        node: rec.node,
                        seq,
                        slot,
                        submit_us: submit,
                        deliver_us: rec.t_us,
                        batch_wait_us: s1 - submit,
                        persist_accept_us: s2 - s1,
                        quorum_decide_us: s3 - s2,
                        apply_us: s4 - s3,
                        reply_us: None,
                        total_us: latency_us,
                    };
                    state.pending_reply.insert(seq, profile.spans.len());
                    profile.spans.push(span);
                }
                TraceEvent::ReplySent { seq } => {
                    if let Some(idx) = state.pending_reply.remove(&seq) {
                        let span = &mut profile.spans[idx];
                        span.reply_us = Some(rec.t_us.saturating_sub(span.deliver_us));
                    }
                }
                TraceEvent::Crash => {
                    // Volatile pipeline lost; the next incarnation
                    // reuses its sequence space from zero.
                    *state = NodeState::default();
                }
                _ => {}
            }
        }
        for span in &profile.spans {
            for (phase, dur) in span.phase_durations() {
                if phase == "reply" && span.reply_us.is_none() {
                    continue;
                }
                profile.phase_hists.entry(phase).or_default().observe(dur);
            }
        }
        profile
    }

    /// The distribution of one phase, if any span recorded it.
    pub fn phase(&self, name: &str) -> Option<&Hist> {
        self.phase_hists.get(name)
    }

    /// The dominant (largest total time) pipeline phase per window of
    /// length `window_us`, over `windows` windows, attributing each
    /// span to the window of its delivery. Ties resolve to the earlier
    /// pipeline phase; windows with no deliveries report `None`.
    pub fn dominant_phases(&self, window_us: u64, windows: usize) -> Vec<Option<&'static str>> {
        let window_us = window_us.max(1);
        let mut totals = vec![[0u64; 4]; windows];
        for span in &self.spans {
            let w = (span.deliver_us / window_us) as usize;
            if w >= windows {
                continue;
            }
            totals[w][0] += span.batch_wait_us;
            totals[w][1] += span.persist_accept_us;
            totals[w][2] += span.quorum_decide_us;
            totals[w][3] += span.apply_us;
        }
        totals
            .iter()
            .map(|t| {
                let sum: u64 = t.iter().sum();
                if sum == 0 {
                    return None;
                }
                let (best, _) = t
                    .iter()
                    .enumerate()
                    .max_by(|(ia, a), (ib, b)| {
                        (a, std::cmp::Reverse(ia)).cmp(&(b, std::cmp::Reverse(ib)))
                    })
                    .expect("non-empty");
                Some(PHASES[best])
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(t_us: u64, node: u32, event: TraceEvent) -> TraceRecord {
        TraceRecord { t_us, node, event }
    }

    fn full_path(node: u32) -> Vec<TraceRecord> {
        vec![
            rec(100, node, TraceEvent::UpdateSubmitted { seq: 0 }),
            rec(150, node, TraceEvent::UpdateSubmitted { seq: 1 }),
            rec(
                300,
                node,
                TraceEvent::BatchFlushed {
                    updates: 2,
                    trigger: "window",
                    first_seq: 0,
                },
            ),
            rec(
                450,
                node,
                TraceEvent::Accepted {
                    slot: 5,
                    round: 1,
                    fast: true,
                },
            ),
            rec(
                600,
                node,
                TraceEvent::Decided {
                    slot: 5,
                    noop: false,
                },
            ),
            rec(
                700,
                node,
                TraceEvent::UpdateDelivered {
                    slot: 5,
                    index: 0,
                    submitter: node,
                    seq: 0,
                    latency_us: 600,
                },
            ),
            rec(
                700,
                node,
                TraceEvent::UpdateDelivered {
                    slot: 5,
                    index: 1,
                    submitter: node,
                    seq: 1,
                    latency_us: 550,
                },
            ),
            rec(720, node, TraceEvent::ReplySent { seq: 0 }),
            rec(730, node, TraceEvent::ReplySent { seq: 1 }),
        ]
    }

    #[test]
    fn stitches_full_critical_path() {
        let profile = SpanProfile::from_records(&full_path(0));
        assert_eq!(profile.spans.len(), 2);
        let s = &profile.spans[0];
        assert_eq!(s.slot, 5);
        assert_eq!(s.batch_wait_us, 200);
        assert_eq!(s.persist_accept_us, 150);
        assert_eq!(s.quorum_decide_us, 150);
        assert_eq!(s.apply_us, 100);
        assert_eq!(s.reply_us, Some(20));
        assert_eq!(s.total_us, 600);
        // The second update shares the batch's flush/accept/decide
        // stamps but has its own submit and reply.
        let s = &profile.spans[1];
        assert_eq!(s.batch_wait_us, 150);
        assert_eq!(s.reply_us, Some(30));
    }

    #[test]
    fn phases_sum_exactly_to_commit_latency() {
        let profile = SpanProfile::from_records(&full_path(2));
        for span in &profile.spans {
            assert_eq!(span.phase_sum_us(), span.total_us, "span {}", span.seq);
            assert_eq!(span.phase_sum_us(), span.deliver_us - span.submit_us);
        }
    }

    #[test]
    fn remote_deliveries_do_not_close_spans() {
        let records = vec![
            rec(100, 0, TraceEvent::UpdateSubmitted { seq: 0 }),
            // Node 1 applies node 0's update; no span for node 1.
            rec(
                500,
                1,
                TraceEvent::UpdateDelivered {
                    slot: 1,
                    index: 0,
                    submitter: 0,
                    seq: 0,
                    latency_us: 0,
                },
            ),
        ];
        let profile = SpanProfile::from_records(&records);
        assert!(profile.spans.is_empty());
    }

    #[test]
    fn missing_edges_collapse_to_zero_phases() {
        // No flush/accept/decide traced (e.g. trace started late): the
        // whole latency lands in batch_wait = 0 and apply picks up the
        // rest, but the sum stays exact.
        let records = vec![
            rec(100, 0, TraceEvent::UpdateSubmitted { seq: 3 }),
            rec(
                900,
                0,
                TraceEvent::UpdateDelivered {
                    slot: 2,
                    index: 0,
                    submitter: 0,
                    seq: 3,
                    latency_us: 800,
                },
            ),
        ];
        let profile = SpanProfile::from_records(&records);
        assert_eq!(profile.spans.len(), 1);
        let s = &profile.spans[0];
        assert_eq!(s.batch_wait_us, 0);
        assert_eq!(s.persist_accept_us, 0);
        assert_eq!(s.quorum_decide_us, 0);
        assert_eq!(s.apply_us, 800);
        assert_eq!(s.phase_sum_us(), 800);
    }

    #[test]
    fn crash_clears_pending_pipeline_state() {
        let mut records = vec![
            rec(100, 0, TraceEvent::UpdateSubmitted { seq: 0 }),
            rec(200, 0, TraceEvent::Crash),
            rec(5_000, 0, TraceEvent::Restart { incarnation: 1 }),
            // New incarnation reuses seq 0; its span must use the
            // post-restart submit stamp, not the stale one.
            rec(6_000, 0, TraceEvent::UpdateSubmitted { seq: 0 }),
        ];
        records.extend(vec![
            rec(
                6_100,
                0,
                TraceEvent::BatchFlushed {
                    updates: 1,
                    trigger: "single",
                    first_seq: 0,
                },
            ),
            rec(
                6_500,
                0,
                TraceEvent::UpdateDelivered {
                    slot: 9,
                    index: 0,
                    submitter: 0,
                    seq: 0,
                    latency_us: 500,
                },
            ),
        ]);
        let profile = SpanProfile::from_records(&records);
        assert_eq!(profile.spans.len(), 1);
        assert_eq!(profile.spans[0].submit_us, 6_000);
        assert_eq!(profile.spans[0].batch_wait_us, 100);
    }

    #[test]
    fn phase_hists_and_dominant_phase() {
        let profile = SpanProfile::from_records(&full_path(0));
        assert_eq!(profile.phase("batch_wait").unwrap().count(), 2);
        assert_eq!(profile.phase("reply").unwrap().count(), 2);
        assert_eq!(profile.phase("reply").unwrap().max(), 30);
        // Both deliveries land in window 0; batch_wait (200+150) beats
        // persist_accept (150+150) and quorum (150+150).
        let dom = profile.dominant_phases(1_000, 2);
        assert_eq!(dom, vec![Some("batch_wait"), None]);
    }
}
