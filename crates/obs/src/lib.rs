//! Deterministic structured tracing + metrics for the RobustStore stack.
//!
//! The paper's contribution is *explaining* availability dips, not just
//! measuring them: failover and recovery time decompose into failure
//! detection, consensus re-election, checkpoint load, and backlog
//! replay. This crate is the instrument layer that makes those phases
//! visible in our reproduction:
//!
//! * [`TraceEvent`] / [`TraceRecord`] — the typed event taxonomy, each
//!   record stamped with simulated time and node id;
//! * [`Tracer`] — the run-global sink, owned by the simulation engine so
//!   record order follows the engine's deterministic event order and the
//!   trace of a `(seed, config)` pair is bit-identical across runs;
//! * [`EventBuf`] — a deferred buffer for sans-io actors that cannot see
//!   the engine; drivers drain it into the tracer after each handler;
//! * [`NodeMetrics`] / [`Hist`] — lightweight per-node counters and
//!   log₂ histograms (commit latency, batch sizes, queue depths);
//! * [`jsonl`] — a canonical JSONL codec for traces (stdlib only);
//! * [`analyze`] — offline reconstruction of per-incident recovery
//!   breakdowns and commit-latency tables from a trace alone;
//! * [`timeline`] — windowed WIPS/commit/resource series with fault
//!   markers, plus per-crash [`AvailabilityReport`]s (time to detect /
//!   failover, dip depth, ramp back to 95 % of baseline);
//! * [`spans`] — per-update critical-path spans
//!   (submit→flush→accept→decide→apply→reply) whose phase latencies
//!   sum exactly to the measured commit latency;
//! * [`causal`] — the cross-node layer over [`spans`]: happens-before
//!   reconstruction per decided slot from `msg_sent`/`msg_recv`/
//!   `msg_tag` records, distributed critical paths, and per-node /
//!   per-link *blame* (net transit, retransmit stalls, disk fsync, CPU
//!   service, queueing) telescoping exactly to each commit latency;
//! * [`analyze::fd_quality`] — failure-detector scoring (detection
//!   latency, false suspicions, mistake durations) against the trace's
//!   crash/restart ground truth;
//! * [`monitor`] — the one *online* layer: an in-sim SLO monitor fed
//!   deterministic scrape ticks during the run (rolling windows,
//!   threshold + multi-window burn-rate rules, a pending→firing→
//!   resolved alert lifecycle) plus a scorer that joins fired alerts
//!   against the faultload's ground-truth injection log.
//!
//! Everything is gated on [`TraceConfig`], default off: a disabled
//! tracer costs one branch per would-be event and allocates nothing.
//! This crate deliberately depends on nothing — not even the simulator —
//! so every layer of the stack can emit into it.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analyze;
pub mod causal;
pub mod event;
pub mod jsonl;
pub mod metrics;
pub mod monitor;
pub mod spans;
pub mod timeline;
pub mod tracer;

pub use analyze::{
    fd_quality, latency_summary, recovery_breakdowns, FdIncident, FdQuality, LatencySummary,
    RecoveryBreakdown,
};
pub use causal::{BlameCategory, BlameSegment, CausalPath, CausalProfile, TAG_NONE};
pub use event::{TraceEvent, TraceRecord, MODE_BLOCKED, MODE_CLASSIC, MODE_FAST};
pub use metrics::{Hist, NodeMetrics};
pub use monitor::{
    score_alerts, AlertLog, AlertPhase, AlertScore, AlertTransition, GroundTruth, IncidentScore,
    Monitor, MonitorConfig, NodeHealth, Rule, RuleExpr, ScoreConfig, Scrape, SUBJECT_CLUSTER,
};
pub use spans::{SpanProfile, UpdateSpan, PHASES};
pub use timeline::{
    availability_reports, availability_reports_for, AvailabilityReport, Timeline, TimelineConfig,
};
pub use tracer::{EventBuf, TraceConfig, Tracer};
