//! Canonical JSONL rendering and parsing of traces.
//!
//! One line per record, fields in a fixed order (`t`, `n`, `e`, then
//! the variant's fields in declaration order), no whitespace: the
//! rendering of a record vector is a *canonical form*, so two runs
//! whose traces are equal produce byte-identical files. A trace file
//! may also contain run-header lines (`{"run":"label","v":3}`)
//! separating the runs of a multi-configuration experiment; `v` is the
//! trace schema version ([`SCHEMA_VERSION`]) and is tolerated missing
//! (v1 files carried none).
//!
//! The parser accepts exactly the flat single-object lines the encoder
//! produces (stdlib only — the workspace vendors no JSON crate).
//! [`decode`] is strict; [`decode_runs`] skips records whose event kind
//! it does not know (a newer producer), so older analyzers keep working
//! on newer traces — [`decode_runs_counting`] exposes the skip count
//! for a warning.

/// Trace schema version written into run headers. v2 added the causal
/// vocabulary (msg_sent/msg_recv/msg_tag, xids on drops/dups) and the
/// failure-detector events; v3 added the online-monitor alert
/// lifecycle (alert_pending/alert_firing/alert_resolved).
pub const SCHEMA_VERSION: u64 = 3;

use crate::event::{TraceEvent, TraceRecord};

/// A parsed trace line.
#[derive(Debug, Clone, PartialEq)]
pub enum Line {
    /// A run-header line: everything until the next header belongs to
    /// the named run.
    Run(String),
    /// An event record.
    Record(TraceRecord),
}

/// Renders a run-header line for `label`.
pub fn encode_run_header(label: &str) -> String {
    format!("{{\"run\":{},\"v\":{SCHEMA_VERSION}}}", quote(label))
}

/// Renders one record as a canonical JSONL line (no trailing newline).
pub fn encode(rec: &TraceRecord) -> String {
    use TraceEvent::*;
    let head = format!(
        "{{\"t\":{},\"n\":{},\"e\":\"{}\"",
        rec.t_us,
        rec.node,
        rec.event.kind()
    );
    let fields = match &rec.event {
        ProposalIssued { seq } => format!(",\"seq\":{seq}"),
        Promised { round, by } => format!(",\"round\":{round},\"by\":{by}"),
        Accepted { slot, round, fast } => {
            format!(",\"slot\":{slot},\"round\":{round},\"fast\":{fast}")
        }
        Decided { slot, noop } => format!(",\"slot\":{slot},\"noop\":{noop}"),
        PrepareStarted { round, fast } => format!(",\"round\":{round},\"fast\":{fast}"),
        LeaderElected { round, fast } => format!(",\"round\":{round},\"fast\":{fast}"),
        ModeSwitch { from, to } => format!(",\"from\":\"{from}\",\"to\":\"{to}\""),
        ReconfigProposed {
            epoch,
            adds,
            removes,
        } => format!(",\"epoch\":{epoch},\"adds\":{adds},\"removes\":{removes}"),
        // "replicas", not "n": the envelope already uses "n" for the
        // node id and duplicate keys would corrupt the decode.
        EpochChanged { epoch, n, slot } => {
            format!(",\"epoch\":{epoch},\"replicas\":{n},\"slot\":{slot}")
        }
        StaleEpochRejected {
            from,
            msg_epoch,
            local_epoch,
        } => format!(",\"from\":{from},\"msg_epoch\":{msg_epoch},\"local_epoch\":{local_epoch}"),
        UpdateSubmitted { seq } => format!(",\"seq\":{seq}"),
        BatchFlushed {
            updates,
            trigger,
            first_seq,
        } => {
            format!(",\"updates\":{updates},\"trigger\":\"{trigger}\",\"first_seq\":{first_seq}")
        }
        LogAppend { bytes } => format!(",\"bytes\":{bytes}"),
        AppendDurable => String::new(),
        CheckpointWrite {
            generation,
            slot,
            bytes,
        } => format!(",\"generation\":{generation},\"slot\":{slot},\"bytes\":{bytes}"),
        CheckpointDurable { generation } => format!(",\"generation\":{generation}"),
        CheckpointLoadStart { bytes } => format!(",\"bytes\":{bytes}"),
        CheckpointLoaded { slot } => format!(",\"slot\":{slot}"),
        LogReplayStart { bytes } => format!(",\"bytes\":{bytes}"),
        LogReplayed { records } => format!(",\"records\":{records}"),
        RecoveryComplete { slot } => format!(",\"slot\":{slot}"),
        UpdateDelivered {
            slot,
            index,
            submitter,
            seq,
            latency_us,
        } => format!(
            ",\"slot\":{slot},\"index\":{index},\"submitter\":{submitter},\"seq\":{seq},\"latency_us\":{latency_us}"
        ),
        ReplySent { seq } => format!(",\"seq\":{seq}"),
        ClientSample { sec, ok, err } => format!(",\"sec\":{sec},\"ok\":{ok},\"err\":{err}"),
        NetSample { messages, bytes } => format!(",\"messages\":{messages},\"bytes\":{bytes}"),
        QueueSample { depth } => format!(",\"depth\":{depth}"),
        Crash => String::new(),
        Restart { incarnation } => format!(",\"incarnation\":{incarnation}"),
        TornWrite { bytes_kept } => format!(",\"bytes_kept\":{bytes_kept}"),
        DiskWriteFailed => String::new(),
        MsgSent { xid, to, bytes } => format!(",\"xid\":{xid},\"to\":{to},\"bytes\":{bytes}"),
        MsgRecv { xid, from, bytes } => {
            format!(",\"xid\":{xid},\"from\":{from},\"bytes\":{bytes}")
        }
        MsgTag {
            xid,
            kind,
            origin,
            cseq,
            slot,
            round,
        } => format!(
            ",\"xid\":{xid},\"kind\":\"{kind}\",\"origin\":{origin},\"cseq\":{cseq},\"slot\":{slot},\"round\":{round}"
        ),
        MsgDropped {
            xid,
            to,
            bytes,
            reason,
        } => {
            format!(",\"xid\":{xid},\"to\":{to},\"bytes\":{bytes},\"reason\":\"{reason}\"")
        }
        MsgDuplicated { xid, to } => format!(",\"xid\":{xid},\"to\":{to}"),
        PeerSuspected { peer, silent_us } => {
            format!(",\"peer\":{peer},\"silent_us\":{silent_us}")
        }
        PeerCleared { peer, suspected_us } => {
            format!(",\"peer\":{peer},\"suspected_us\":{suspected_us}")
        }
        PartitionCut { peers } => format!(",\"peers\":{peers}"),
        PartitionHealed => String::new(),
        NetFaultSet { loss_pct, dup_pct } => {
            format!(",\"loss_pct\":{loss_pct},\"dup_pct\":{dup_pct}")
        }
        NetFaultCleared => String::new(),
        DiskFaultSet { fail_pct, torn } => format!(",\"fail_pct\":{fail_pct},\"torn\":{torn}"),
        DiskFaultCleared => String::new(),
        AuditViolation { count } => format!(",\"count\":{count}"),
        AlertPending { rule, subject } => format!(",\"rule\":\"{rule}\",\"subject\":{subject}"),
        AlertFiring {
            rule,
            subject,
            pending_us,
        } => format!(",\"rule\":\"{rule}\",\"subject\":{subject},\"pending_us\":{pending_us}"),
        AlertResolved {
            rule,
            subject,
            firing_us,
        } => format!(",\"rule\":\"{rule}\",\"subject\":{subject},\"firing_us\":{firing_us}"),
    };
    format!("{head}{fields}}}")
}

/// Renders a whole trace (records only) with one record per line and a
/// trailing newline, the canonical file form.
pub fn encode_all(records: &[TraceRecord]) -> String {
    let mut out = String::new();
    for rec in records {
        out.push_str(&encode(rec));
        out.push('\n');
    }
    out
}

/// Why a line failed to decode: a structurally sound record whose
/// event kind this build does not know (newer producer — safe to skip)
/// vs anything else (corrupt line — never skipped silently).
enum DecodeErr {
    UnknownKind(String),
    Other(String),
}

fn decode_line(line: &str) -> Result<Option<Line>, DecodeErr> {
    let line = line.trim();
    if line.is_empty() {
        return Ok(None);
    }
    let fields = parse_flat_object(line).map_err(DecodeErr::Other)?;
    if let Some(Val::Str(label)) = get(&fields, "run") {
        return Ok(Some(Line::Run(label.clone())));
    }
    let t_us = get_num(&fields, "t").map_err(DecodeErr::Other)?;
    let node = get_num(&fields, "n").map_err(DecodeErr::Other)? as u32;
    let kind = match get(&fields, "e") {
        Some(Val::Str(s)) => s.clone(),
        _ => return Err(DecodeErr::Other("missing event kind `e`".into())),
    };
    let event = match decode_event(&kind, &fields).map_err(DecodeErr::Other)? {
        Some(ev) => ev,
        None => return Err(DecodeErr::UnknownKind(kind)),
    };
    Ok(Some(Line::Record(TraceRecord { t_us, node, event })))
}

/// Parses one line; `None` for blank lines, `Err` for malformed ones
/// (including unknown event kinds — this entry point is strict).
pub fn decode(line: &str) -> Result<Option<Line>, String> {
    decode_line(line).map_err(|e| match e {
        DecodeErr::UnknownKind(k) => format!("unknown event kind {k:?}"),
        DecodeErr::Other(s) => s,
    })
}

/// One run's worth of decoded trace: `(run label, records)`.
pub type Run = (String, Vec<TraceRecord>);

/// Parses a whole file into `(run label, records)` groups. Records
/// before any header land in a group labelled `""`. Records with an
/// unknown event kind (from a newer producer) are skipped; use
/// [`decode_runs_counting`] to learn how many.
pub fn decode_runs(text: &str) -> Result<Vec<Run>, String> {
    decode_runs_counting(text).map(|(runs, _)| runs)
}

/// Like [`decode_runs`], also returning the number of records skipped
/// because their event kind was unknown — callers surface it as a
/// warning.
pub fn decode_runs_counting(text: &str) -> Result<(Vec<Run>, u64), String> {
    let mut runs: Vec<Run> = Vec::new();
    let mut skipped = 0u64;
    for (i, raw) in text.lines().enumerate() {
        match decode_line(raw) {
            Err(DecodeErr::UnknownKind(_)) => skipped += 1,
            Err(DecodeErr::Other(e)) => return Err(format!("line {}: {e}", i + 1)),
            Ok(None) => {}
            Ok(Some(Line::Run(label))) => runs.push((label, Vec::new())),
            Ok(Some(Line::Record(rec))) => {
                if runs.is_empty() {
                    runs.push((String::new(), Vec::new()));
                }
                if let Some(run) = runs.last_mut() {
                    run.1.push(rec);
                }
            }
        }
    }
    Ok((runs, skipped))
}

/// Decodes a record's event payload; `Ok(None)` means the kind is not
/// in this build's vocabulary (the caller decides strict vs skip).
fn decode_event(kind: &str, f: &[(String, Val)]) -> Result<Option<TraceEvent>, String> {
    use TraceEvent::*;
    let ev = match kind {
        "proposal_issued" => ProposalIssued {
            seq: get_num(f, "seq")?,
        },
        "promised" => Promised {
            round: get_num(f, "round")?,
            by: get_num(f, "by")? as u32,
        },
        "accepted" => Accepted {
            slot: get_num(f, "slot")?,
            round: get_num(f, "round")?,
            fast: get_bool(f, "fast")?,
        },
        "decided" => Decided {
            slot: get_num(f, "slot")?,
            noop: get_bool(f, "noop")?,
        },
        "prepare_started" => PrepareStarted {
            round: get_num(f, "round")?,
            fast: get_bool(f, "fast")?,
        },
        "leader_elected" => LeaderElected {
            round: get_num(f, "round")?,
            fast: get_bool(f, "fast")?,
        },
        "mode_switch" => ModeSwitch {
            from: get_tag(f, "from")?,
            to: get_tag(f, "to")?,
        },
        "reconfig_proposed" => ReconfigProposed {
            epoch: get_num(f, "epoch")?,
            adds: get_num(f, "adds")? as u32,
            removes: get_num(f, "removes")? as u32,
        },
        "epoch_change" => EpochChanged {
            epoch: get_num(f, "epoch")?,
            n: get_num(f, "replicas")? as u32,
            slot: get_num(f, "slot")?,
        },
        "stale_epoch_rejected" => StaleEpochRejected {
            from: get_num(f, "from")? as u32,
            msg_epoch: get_num(f, "msg_epoch")?,
            local_epoch: get_num(f, "local_epoch")?,
        },
        "update_submitted" => UpdateSubmitted {
            seq: get_num(f, "seq")?,
        },
        "batch_flushed" => BatchFlushed {
            updates: get_num(f, "updates")?,
            trigger: get_tag(f, "trigger")?,
            first_seq: get_num(f, "first_seq")?,
        },
        "log_append" => LogAppend {
            bytes: get_num(f, "bytes")?,
        },
        "append_durable" => AppendDurable,
        "checkpoint_write" => CheckpointWrite {
            generation: get_num(f, "generation")?,
            slot: get_num(f, "slot")?,
            bytes: get_num(f, "bytes")?,
        },
        "checkpoint_durable" => CheckpointDurable {
            generation: get_num(f, "generation")?,
        },
        "checkpoint_load_start" => CheckpointLoadStart {
            bytes: get_num(f, "bytes")?,
        },
        "checkpoint_loaded" => CheckpointLoaded {
            slot: get_num(f, "slot")?,
        },
        "log_replay_start" => LogReplayStart {
            bytes: get_num(f, "bytes")?,
        },
        "log_replayed" => LogReplayed {
            records: get_num(f, "records")?,
        },
        "recovery_complete" => RecoveryComplete {
            slot: get_num(f, "slot")?,
        },
        "update_delivered" => UpdateDelivered {
            slot: get_num(f, "slot")?,
            index: get_num(f, "index")?,
            submitter: get_num(f, "submitter")? as u32,
            seq: get_num(f, "seq")?,
            latency_us: get_num(f, "latency_us")?,
        },
        "reply_sent" => ReplySent {
            seq: get_num(f, "seq")?,
        },
        "client_sample" => ClientSample {
            sec: get_num(f, "sec")?,
            ok: get_num(f, "ok")?,
            err: get_num(f, "err")?,
        },
        "net_sample" => NetSample {
            messages: get_num(f, "messages")?,
            bytes: get_num(f, "bytes")?,
        },
        "queue_sample" => QueueSample {
            depth: get_num(f, "depth")?,
        },
        "crash" => Crash,
        "restart" => Restart {
            incarnation: get_num(f, "incarnation")?,
        },
        "torn_write" => TornWrite {
            bytes_kept: get_num(f, "bytes_kept")?,
        },
        "disk_write_failed" => DiskWriteFailed,
        "msg_sent" => MsgSent {
            xid: get_num(f, "xid")?,
            to: get_num(f, "to")? as u32,
            bytes: get_num(f, "bytes")?,
        },
        "msg_recv" => MsgRecv {
            xid: get_num(f, "xid")?,
            from: get_num(f, "from")? as u32,
            bytes: get_num(f, "bytes")?,
        },
        "msg_tag" => MsgTag {
            xid: get_num(f, "xid")?,
            kind: get_tag(f, "kind")?,
            origin: get_num(f, "origin")? as u32,
            cseq: get_num(f, "cseq")?,
            slot: get_num(f, "slot")?,
            round: get_num(f, "round")?,
        },
        "msg_dropped" => MsgDropped {
            xid: get_num(f, "xid")?,
            to: get_num(f, "to")? as u32,
            bytes: get_num(f, "bytes")?,
            reason: get_tag(f, "reason")?,
        },
        "msg_duplicated" => MsgDuplicated {
            xid: get_num(f, "xid")?,
            to: get_num(f, "to")? as u32,
        },
        "peer_suspected" => PeerSuspected {
            peer: get_num(f, "peer")? as u32,
            silent_us: get_num(f, "silent_us")?,
        },
        "peer_cleared" => PeerCleared {
            peer: get_num(f, "peer")? as u32,
            suspected_us: get_num(f, "suspected_us")?,
        },
        "partition_cut" => PartitionCut {
            peers: get_num(f, "peers")?,
        },
        "partition_healed" => PartitionHealed,
        "net_fault_set" => NetFaultSet {
            loss_pct: get_num(f, "loss_pct")?,
            dup_pct: get_num(f, "dup_pct")?,
        },
        "net_fault_cleared" => NetFaultCleared,
        "disk_fault_set" => DiskFaultSet {
            fail_pct: get_num(f, "fail_pct")?,
            torn: get_bool(f, "torn")?,
        },
        "disk_fault_cleared" => DiskFaultCleared,
        "audit_violation" => AuditViolation {
            count: get_num(f, "count")?,
        },
        "alert_pending" => AlertPending {
            rule: get_tag(f, "rule")?,
            subject: get_num(f, "subject")? as u32,
        },
        "alert_firing" => AlertFiring {
            rule: get_tag(f, "rule")?,
            subject: get_num(f, "subject")? as u32,
            pending_us: get_num(f, "pending_us")?,
        },
        "alert_resolved" => AlertResolved {
            rule: get_tag(f, "rule")?,
            subject: get_num(f, "subject")? as u32,
            firing_us: get_num(f, "firing_us")?,
        },
        _ => return Ok(None),
    };
    Ok(Some(ev))
}

/// Tag strings appear in events as `&'static str`; the decoder interns
/// the known vocabulary back to statics.
fn get_tag(f: &[(String, Val)], key: &str) -> Result<&'static str, String> {
    const TAGS: &[&str] = &[
        "fast",
        "classic",
        "blocked",
        "size",
        "window",
        "single",
        "partition",
        "loss",
        "dest_down",
        // Protocol message kinds carried by msg_tag records.
        "prepare",
        "promise",
        "accept",
        "any",
        "fast_propose",
        "propose",
        "accepted",
        "alive",
        "learn_request",
        "learn_reply",
        "reconfig",
        // Monitor rule names carried by alert_* records.
        "replica_down",
        "error_rate",
        "slo_fast_burn",
        "slo_slow_burn",
        "wips_drop",
    ];
    match get(f, key) {
        Some(Val::Str(s)) => TAGS
            .iter()
            .find(|t| *t == s)
            .copied()
            .ok_or_else(|| format!("unknown tag {s:?} for field {key:?}")),
        _ => Err(format!("missing string field {key:?}")),
    }
}

#[derive(Debug, Clone, PartialEq)]
enum Val {
    Num(u64),
    Bool(bool),
    Str(String),
}

fn get<'a>(fields: &'a [(String, Val)], key: &str) -> Option<&'a Val> {
    fields.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

fn get_num(fields: &[(String, Val)], key: &str) -> Result<u64, String> {
    match get(fields, key) {
        Some(Val::Num(n)) => Ok(*n),
        _ => Err(format!("missing numeric field {key:?}")),
    }
}

fn get_bool(fields: &[(String, Val)], key: &str) -> Result<bool, String> {
    match get(fields, key) {
        Some(Val::Bool(b)) => Ok(*b),
        _ => Err(format!("missing boolean field {key:?}")),
    }
}

/// Parses exactly one flat JSON object of string/number/boolean values.
fn parse_flat_object(line: &str) -> Result<Vec<(String, Val)>, String> {
    let mut chars = line.chars().peekable();
    let mut fields = Vec::new();
    if chars.next() != Some('{') {
        return Err("expected '{'".into());
    }
    loop {
        match chars.peek() {
            Some('}') => {
                chars.next();
                break;
            }
            Some('"') => {}
            other => return Err(format!("expected key, found {other:?}")),
        }
        let key = parse_string(&mut chars)?;
        if chars.next() != Some(':') {
            return Err(format!("expected ':' after key {key:?}"));
        }
        let val = match chars.peek() {
            Some('"') => Val::Str(parse_string(&mut chars)?),
            Some('t') | Some('f') => {
                let word: String = chars
                    .clone()
                    .take_while(|c| c.is_ascii_alphabetic())
                    .collect();
                for _ in 0..word.len() {
                    chars.next();
                }
                match word.as_str() {
                    "true" => Val::Bool(true),
                    "false" => Val::Bool(false),
                    other => return Err(format!("bad literal {other:?}")),
                }
            }
            Some(c) if c.is_ascii_digit() => {
                let mut n = 0u64;
                while let Some(c) = chars.peek() {
                    match c.to_digit(10) {
                        Some(d) => {
                            n = n
                                .checked_mul(10)
                                .and_then(|n| n.checked_add(d as u64))
                                .ok_or("number overflow")?;
                            chars.next();
                        }
                        None => break,
                    }
                }
                Val::Num(n)
            }
            other => return Err(format!("bad value start {other:?}")),
        };
        fields.push((key, val));
        match chars.next() {
            Some(',') => {}
            Some('}') => break,
            other => return Err(format!("expected ',' or '}}', found {other:?}")),
        }
    }
    if chars.next().is_some() {
        return Err("trailing characters after object".into());
    }
    Ok(fields)
}

fn parse_string(chars: &mut std::iter::Peekable<std::str::Chars>) -> Result<String, String> {
    if chars.next() != Some('"') {
        return Err("expected '\"'".into());
    }
    let mut out = String::new();
    loop {
        match chars.next() {
            Some('"') => return Ok(out),
            Some('\\') => match chars.next() {
                Some('"') => out.push('"'),
                Some('\\') => out.push('\\'),
                Some('n') => out.push('\n'),
                Some('t') => out.push('\t'),
                other => return Err(format!("bad escape {other:?}")),
            },
            Some(c) => out.push(c),
            None => return Err("unterminated string".into()),
        }
    }
}

pub(crate) fn quote(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(rec: TraceRecord) {
        let line = encode(&rec);
        match decode(&line).expect("parse").expect("line") {
            Line::Record(back) => assert_eq!(back, rec, "line {line}"),
            other => panic!("expected record, got {other:?}"),
        }
    }

    #[test]
    fn record_roundtrips() {
        use TraceEvent::*;
        let events = vec![
            ProposalIssued { seq: 42 },
            Accepted {
                slot: 7,
                round: 3,
                fast: true,
            },
            ModeSwitch {
                from: "fast",
                to: "classic",
            },
            ReconfigProposed {
                epoch: 2,
                adds: 1,
                removes: 2,
            },
            EpochChanged {
                epoch: 2,
                n: 5,
                slot: 977,
            },
            StaleEpochRejected {
                from: 3,
                msg_epoch: 1,
                local_epoch: 2,
            },
            UpdateSubmitted { seq: 12 },
            BatchFlushed {
                updates: 8,
                trigger: "size",
                first_seq: 5,
            },
            AppendDurable,
            UpdateDelivered {
                slot: 9,
                index: 2,
                submitter: 3,
                seq: 12,
                latency_us: 531,
            },
            ReplySent { seq: 12 },
            ClientSample {
                sec: 41,
                ok: 17,
                err: 2,
            },
            NetSample {
                messages: 120_000,
                bytes: 48_000_000,
            },
            QueueSample { depth: 7 },
            Crash,
            Restart { incarnation: 2 },
            MsgSent {
                xid: 17,
                to: 2,
                bytes: 256,
            },
            MsgRecv {
                xid: 17,
                from: 0,
                bytes: 256,
            },
            MsgTag {
                xid: 17,
                kind: "accept",
                origin: 0,
                cseq: 9,
                slot: 4,
                round: 1,
            },
            MsgTag {
                xid: 18,
                kind: "propose",
                origin: 1,
                cseq: 10,
                slot: u64::MAX,
                round: u64::MAX,
            },
            MsgDropped {
                xid: 19,
                to: 4,
                bytes: 512,
                reason: "partition",
            },
            MsgDuplicated { xid: 20, to: 3 },
            PeerSuspected {
                peer: 2,
                silent_us: 350_000,
            },
            PeerCleared {
                peer: 2,
                suspected_us: 4_200_000,
            },
            AuditViolation { count: 3 },
            AlertPending {
                rule: "replica_down",
                subject: 2,
            },
            AlertFiring {
                rule: "slo_fast_burn",
                subject: u32::MAX,
                pending_us: 2_000_000,
            },
            AlertResolved {
                rule: "wips_drop",
                subject: u32::MAX,
                firing_us: 17_000_000,
            },
        ];
        for (i, event) in events.into_iter().enumerate() {
            roundtrip(TraceRecord {
                t_us: 1000 + i as u64,
                node: i as u32,
                event,
            });
        }
    }

    #[test]
    fn run_headers_group_records() {
        let mut text = String::new();
        text.push_str(&encode_run_header("5r Browsing"));
        text.push('\n');
        text.push_str(&encode(&TraceRecord {
            t_us: 1,
            node: 0,
            event: TraceEvent::Crash,
        }));
        text.push('\n');
        text.push_str(&encode_run_header("8r Ordering"));
        text.push('\n');
        let runs = decode_runs(&text).expect("parse");
        assert_eq!(runs.len(), 2);
        assert_eq!(runs[0].0, "5r Browsing");
        assert_eq!(runs[0].1.len(), 1);
        assert_eq!(runs[1].1.len(), 0);
    }

    #[test]
    fn header_label_with_quotes_roundtrips() {
        let line = encode_run_header("a \"b\" c");
        match decode(&line).expect("parse").expect("line") {
            Line::Run(label) => assert_eq!(label, "a \"b\" c"),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn malformed_lines_are_errors_not_panics() {
        for bad in [
            "{",
            "{]",
            "{\"t\":1}",
            "nonsense",
            "{\"t\":1,\"n\":0,\"e\":\"nope\"}",
        ] {
            assert!(decode(bad).is_err(), "should reject {bad:?}");
        }
        assert_eq!(decode("   ").expect("blank ok"), None);
    }

    #[test]
    fn run_header_carries_schema_version() {
        let line = encode_run_header("x");
        assert_eq!(line, "{\"run\":\"x\",\"v\":3}");
        // Old v1 headers (no "v") still parse.
        match decode("{\"run\":\"old\"}").expect("parse").expect("line") {
            Line::Run(label) => assert_eq!(label, "old"),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn decode_runs_skips_unknown_kinds_with_count() {
        let mut text = String::new();
        text.push_str(&encode_run_header("r"));
        text.push('\n');
        // A future event kind this build does not know.
        text.push_str("{\"t\":1,\"n\":0,\"e\":\"warp_drive\",\"factor\":9}\n");
        text.push_str(&encode(&TraceRecord {
            t_us: 2,
            node: 0,
            event: TraceEvent::Crash,
        }));
        text.push('\n');
        let (runs, skipped) = decode_runs_counting(&text).expect("lenient parse");
        assert_eq!(skipped, 1);
        assert_eq!(runs.len(), 1);
        assert_eq!(runs[0].1.len(), 1, "known record survives the skip");
        // The strict single-line entry point still rejects it.
        assert!(decode("{\"t\":1,\"n\":0,\"e\":\"warp_drive\"}").is_err());
        // Corrupt lines are errors even for the lenient parser.
        assert!(decode_runs_counting("{\"t\":1}").is_err());
    }

    #[test]
    fn encoding_is_deterministic() {
        let rec = TraceRecord {
            t_us: 5,
            node: 1,
            event: TraceEvent::Decided {
                slot: 3,
                noop: false,
            },
        };
        assert_eq!(encode(&rec), encode(&rec));
        assert_eq!(
            encode(&rec),
            "{\"t\":5,\"n\":1,\"e\":\"decided\",\"slot\":3,\"noop\":false}"
        );
    }
}
