//! Trace analysis: per-incident recovery breakdowns and commit-latency
//! aggregation, reconstructed from a record stream alone.
//!
//! This is the paper's recovery decomposition applied to our traces: a
//! crash incident spans *detection* (crash → watchdog restart),
//! *re-election* (crash → a surviving coordinator wins a new ballot;
//! absent when the victim was not the leader), and the restart work —
//! *checkpoint load* and *log replay* run in parallel, then the replica
//! re-learns the *backlog* it missed until it announces recovery
//! complete. All durations come from the records' sim-time stamps, so
//! the analyzer needs nothing but the JSONL file.

use crate::event::{TraceEvent, TraceRecord};
use crate::metrics::Hist;

/// One crash incident reconstructed from a trace.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct RecoveryBreakdown {
    /// The crashed node.
    pub node: u32,
    /// Crash time (µs).
    pub crash_at_us: u64,
    /// Restart time, if the node came back within the trace.
    pub restart_at_us: Option<u64>,
    /// Detection phase: crash → restart (the watchdog delay).
    pub detection_us: Option<u64>,
    /// Re-election: crash → first `LeaderElected` anywhere in the
    /// cluster afterwards. `None` when no election was needed (the
    /// victim was a follower) or none completed in the trace.
    pub reelection_us: Option<u64>,
    /// Checkpoint load start → loaded, on the restarted incarnation.
    pub checkpoint_load_us: Option<u64>,
    /// Log replay start → replayed, on the restarted incarnation.
    pub log_replay_us: Option<u64>,
    /// Backlog re-learn: local replay done (the later of log replay and
    /// checkpoint load) → `RecoveryComplete`.
    pub backlog_replay_us: Option<u64>,
    /// Whole incident: crash → `RecoveryComplete`.
    pub total_us: Option<u64>,
    /// Whether the incident closed with a `RecoveryComplete`.
    pub complete: bool,
}

/// Reconstructs all crash incidents from `records` (one run's trace,
/// in engine order).
///
/// A second crash of the same node closes the open incident as
/// incomplete and starts a new one. Election and phase events are
/// attributed to the oldest open incident they can explain: elections
/// to the earliest incident still lacking one, load/replay/complete
/// events to the incident of their own node.
pub fn recovery_breakdowns(records: &[TraceRecord]) -> Vec<RecoveryBreakdown> {
    let mut done: Vec<RecoveryBreakdown> = Vec::new();
    let mut open: Vec<RecoveryBreakdown> = Vec::new();

    fn open_idx(open: &[RecoveryBreakdown], node: u32) -> Option<usize> {
        open.iter().position(|b| b.node == node)
    }

    for rec in records {
        match rec.event {
            TraceEvent::Crash => {
                if let Some(i) = open_idx(&open, rec.node) {
                    done.push(open.remove(i));
                }
                open.push(RecoveryBreakdown {
                    node: rec.node,
                    crash_at_us: rec.t_us,
                    ..RecoveryBreakdown::default()
                });
            }
            TraceEvent::Restart { .. } => {
                if let Some(i) = open_idx(&open, rec.node) {
                    let b = &mut open[i];
                    b.restart_at_us = Some(rec.t_us);
                    b.detection_us = Some(rec.t_us - b.crash_at_us);
                }
            }
            TraceEvent::LeaderElected { .. } => {
                // A post-crash election on any surviving node answers the
                // oldest incident still waiting for one.
                if let Some(b) = open
                    .iter_mut()
                    .filter(|b| b.reelection_us.is_none() && rec.t_us >= b.crash_at_us)
                    .min_by_key(|b| b.crash_at_us)
                {
                    b.reelection_us = Some(rec.t_us - b.crash_at_us);
                }
            }
            TraceEvent::CheckpointLoadStart { .. } => {
                if let Some(i) = open_idx(&open, rec.node) {
                    // Temporarily park the start time in the duration slot;
                    // `CheckpointLoaded` converts it to a duration.
                    open[i].checkpoint_load_us = Some(rec.t_us);
                }
            }
            TraceEvent::CheckpointLoaded { .. } => {
                if let Some(i) = open_idx(&open, rec.node) {
                    let b = &mut open[i];
                    if let Some(start) = b.checkpoint_load_us {
                        if start >= b.crash_at_us {
                            b.checkpoint_load_us = Some(rec.t_us - start);
                        }
                    }
                }
            }
            TraceEvent::LogReplayStart { .. } => {
                if let Some(i) = open_idx(&open, rec.node) {
                    open[i].log_replay_us = Some(rec.t_us);
                }
            }
            TraceEvent::LogReplayed { .. } => {
                if let Some(i) = open_idx(&open, rec.node) {
                    let b = &mut open[i];
                    if let Some(start) = b.log_replay_us {
                        if start >= b.crash_at_us {
                            b.log_replay_us = Some(rec.t_us - start);
                        }
                    }
                }
            }
            TraceEvent::RecoveryComplete { .. } => {
                if let Some(i) = open_idx(&open, rec.node) {
                    let mut b = open.remove(i);
                    b.total_us = Some(rec.t_us - b.crash_at_us);
                    b.complete = true;
                    // Local replay ends when both parallel restart reads
                    // are done; the backlog re-learn covers the rest.
                    let restart = b.restart_at_us.unwrap_or(b.crash_at_us);
                    let local_done = restart
                        + b.checkpoint_load_us
                            .unwrap_or(0)
                            .max(b.log_replay_us.unwrap_or(0));
                    b.backlog_replay_us = Some(rec.t_us.saturating_sub(local_done));
                    done.push(b);
                }
            }
            _ => {}
        }
    }
    // Incidents still open at end of trace are reported as incomplete.
    done.append(&mut open);
    done.sort_by_key(|b| (b.crash_at_us, b.node));
    done
}

/// Commit-latency aggregation of one run.
#[derive(Debug, Clone, Default)]
pub struct LatencySummary {
    /// Submit-to-apply latency of locally submitted updates.
    pub commit_latency: Hist,
    /// Total updates applied (including remote ones with no latency).
    pub updates_delivered: u64,
    /// Group-commit batches flushed.
    pub batches: u64,
    /// Updates carried by those batches.
    pub batched_updates: u64,
    /// Stable-log appends issued.
    pub log_appends: u64,
}

impl LatencySummary {
    /// Updates per consensus-log append — the batching win. 0 when no
    /// appends were traced.
    pub fn coalescing_ratio(&self) -> f64 {
        if self.log_appends == 0 {
            0.0
        } else {
            self.updates_delivered as f64 / self.log_appends as f64
        }
    }
}

/// Aggregates consensus round-trip latency and coalescing counters
/// over one run's records.
pub fn latency_summary(records: &[TraceRecord]) -> LatencySummary {
    let mut s = LatencySummary::default();
    for rec in records {
        match rec.event {
            TraceEvent::UpdateDelivered { latency_us, .. } => {
                s.updates_delivered += 1;
                if latency_us > 0 {
                    s.commit_latency.observe(latency_us);
                }
            }
            TraceEvent::BatchFlushed { updates, .. } => {
                s.batches += 1;
                s.batched_updates += updates;
            }
            TraceEvent::LogAppend { .. } => {
                s.log_appends += 1;
            }
            _ => {}
        }
    }
    s
}

/// One real crash, as the failure detectors saw it.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FdIncident {
    /// The crashed replica.
    pub peer: u32,
    /// Crash time (µs).
    pub crash_at_us: u64,
    /// Crash → first `PeerSuspected` of this peer anywhere in the
    /// cluster. `None` when no detector fired before the peer returned
    /// (or the trace ended).
    pub detection_latency_us: Option<u64>,
    /// The node whose detector fired first.
    pub detector: Option<u32>,
}

/// Failure-detector quality over one run: how fast real crashes were
/// detected, and how often live peers were wrongly suspected — the
/// completeness/accuracy trade the timeout encodes.
#[derive(Debug, Clone, Default)]
pub struct FdQuality {
    /// Real crashes, in trace order.
    pub incidents: Vec<FdIncident>,
    /// Detection latencies of the incidents that were detected.
    pub detection_latency: Hist,
    /// `PeerSuspected` records naming a peer that was up — mistakes.
    pub false_suspicions: u64,
    /// How long each mistake lasted (`PeerCleared.suspected_us` for
    /// suspicions that started while the peer was up).
    pub mistake_duration: Hist,
}

impl FdQuality {
    /// Incidents whose crash was detected by at least one peer.
    pub fn detected(&self) -> usize {
        self.incidents
            .iter()
            .filter(|i| i.detection_latency_us.is_some())
            .count()
    }
}

/// Scores the failure detectors against the trace's ground truth:
/// `Crash`/`Restart` records say when a peer was really down, so a
/// suspicion of a down peer measures detection latency and a suspicion
/// of a live peer counts as a false suspicion (its eventual
/// `PeerCleared` contributes the mistake duration).
pub fn fd_quality(records: &[TraceRecord]) -> FdQuality {
    use std::collections::{BTreeMap, BTreeSet};
    let mut q = FdQuality::default();
    // Peers currently down, with the index of their open incident.
    let mut down: BTreeMap<u32, usize> = BTreeMap::new();
    // (observer, peer) suspicions that began while the peer was up.
    let mut false_open: BTreeSet<(u32, u32)> = BTreeSet::new();
    for rec in records {
        match rec.event {
            TraceEvent::Crash => {
                q.incidents.push(FdIncident {
                    peer: rec.node,
                    crash_at_us: rec.t_us,
                    ..FdIncident::default()
                });
                down.insert(rec.node, q.incidents.len() - 1);
            }
            TraceEvent::Restart { .. } => {
                down.remove(&rec.node);
            }
            TraceEvent::PeerSuspected { peer, .. } => {
                if let Some(&i) = down.get(&peer) {
                    let inc = &mut q.incidents[i];
                    if inc.detection_latency_us.is_none() {
                        let lat = rec.t_us.saturating_sub(inc.crash_at_us);
                        inc.detection_latency_us = Some(lat);
                        inc.detector = Some(rec.node);
                        q.detection_latency.observe(lat);
                    }
                } else {
                    q.false_suspicions += 1;
                    false_open.insert((rec.node, peer));
                }
            }
            TraceEvent::PeerCleared { peer, suspected_us }
                if false_open.remove(&(rec.node, peer)) =>
            {
                q.mistake_duration.observe(suspected_us);
            }
            _ => {}
        }
    }
    q
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(t_us: u64, node: u32, event: TraceEvent) -> TraceRecord {
        TraceRecord { t_us, node, event }
    }

    /// Hand-built trace: leader crashes mid-batch, a survivor is
    /// elected, the victim restarts, loads its checkpoint while the log
    /// replays, then re-learns the backlog.
    fn crash_mid_batch_trace() -> Vec<TraceRecord> {
        vec![
            rec(
                900,
                0,
                TraceEvent::BatchFlushed {
                    updates: 4,
                    trigger: "size",
                    first_seq: 0,
                },
            ),
            rec(950, 0, TraceEvent::LogAppend { bytes: 400 }),
            // Crash strikes while the batch's append is in flight.
            rec(1_000, 0, TraceEvent::Crash),
            rec(
                1_400,
                1,
                TraceEvent::LeaderElected {
                    round: 2,
                    fast: true,
                },
            ),
            rec(3_000, 0, TraceEvent::Restart { incarnation: 1 }),
            rec(3_010, 0, TraceEvent::LogReplayStart { bytes: 4_000 }),
            rec(3_020, 0, TraceEvent::CheckpointLoadStart { bytes: 1 << 20 }),
            rec(3_510, 0, TraceEvent::LogReplayed { records: 10 }),
            rec(4_020, 0, TraceEvent::CheckpointLoaded { slot: 50 }),
            rec(6_000, 0, TraceEvent::RecoveryComplete { slot: 61 }),
        ]
    }

    #[test]
    fn crash_mid_batch_phases() {
        let out = recovery_breakdowns(&crash_mid_batch_trace());
        assert_eq!(out.len(), 1);
        let b = &out[0];
        assert!(b.complete);
        assert_eq!(b.node, 0);
        assert_eq!(b.crash_at_us, 1_000);
        assert_eq!(b.detection_us, Some(2_000));
        assert_eq!(b.reelection_us, Some(400));
        assert_eq!(b.log_replay_us, Some(500));
        assert_eq!(b.checkpoint_load_us, Some(1_000));
        // Local replay done at restart(3000) + max(500, 1000) = 4000;
        // backlog runs to 6000.
        assert_eq!(b.backlog_replay_us, Some(2_000));
        assert_eq!(b.total_us, Some(5_000));
    }

    #[test]
    fn checkpoint_load_overlaps_backlog_replay() {
        // The checkpoint is huge: the log replays and the backlog
        // re-learn effectively finishes while the checkpoint is still
        // streaming — the incident must end at the checkpoint, and the
        // backlog phase must account only for the tail after it.
        let trace = vec![
            rec(1_000, 2, TraceEvent::Crash),
            rec(2_000, 2, TraceEvent::Restart { incarnation: 1 }),
            rec(2_010, 2, TraceEvent::LogReplayStart { bytes: 100 }),
            rec(
                2_020,
                2,
                TraceEvent::CheckpointLoadStart { bytes: 80 << 20 },
            ),
            rec(2_110, 2, TraceEvent::LogReplayed { records: 2 }),
            rec(12_020, 2, TraceEvent::CheckpointLoaded { slot: 9 }),
            rec(12_500, 2, TraceEvent::RecoveryComplete { slot: 12 }),
        ];
        let out = recovery_breakdowns(&trace);
        assert_eq!(out.len(), 1);
        let b = &out[0];
        assert!(b.complete);
        assert_eq!(b.detection_us, Some(1_000));
        assert_eq!(b.reelection_us, None, "follower crash needs no election");
        assert_eq!(b.log_replay_us, Some(100));
        assert_eq!(b.checkpoint_load_us, Some(10_000));
        // Local done = 2000 + max(100, 10000) = 12000; complete at 12500.
        assert_eq!(b.backlog_replay_us, Some(500));
        assert_eq!(b.total_us, Some(11_500));
    }

    #[test]
    fn unfinished_incident_reported_incomplete() {
        let trace = vec![
            rec(1_000, 0, TraceEvent::Crash),
            rec(2_000, 0, TraceEvent::Restart { incarnation: 1 }),
        ];
        let out = recovery_breakdowns(&trace);
        assert_eq!(out.len(), 1);
        assert!(!out[0].complete);
        assert_eq!(out[0].detection_us, Some(1_000));
        assert_eq!(out[0].total_us, None);
    }

    #[test]
    fn double_crash_opens_two_incidents() {
        let trace = vec![
            rec(1_000, 0, TraceEvent::Crash),
            rec(2_000, 0, TraceEvent::Restart { incarnation: 1 }),
            rec(5_000, 0, TraceEvent::Crash),
            rec(6_000, 0, TraceEvent::Restart { incarnation: 2 }),
            rec(7_000, 0, TraceEvent::RecoveryComplete { slot: 4 }),
        ];
        let out = recovery_breakdowns(&trace);
        assert_eq!(out.len(), 2);
        assert!(!out[0].complete, "first incident never completed");
        assert!(out[1].complete);
        assert_eq!(out[1].crash_at_us, 5_000);
    }

    #[test]
    fn elections_attributed_to_oldest_waiting_incident() {
        let trace = vec![
            rec(1_000, 0, TraceEvent::Crash),
            rec(1_500, 1, TraceEvent::Crash),
            rec(
                2_000,
                2,
                TraceEvent::LeaderElected {
                    round: 5,
                    fast: false,
                },
            ),
            rec(
                2_500,
                2,
                TraceEvent::LeaderElected {
                    round: 6,
                    fast: true,
                },
            ),
        ];
        let out = recovery_breakdowns(&trace);
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].reelection_us, Some(1_000));
        assert_eq!(out[1].reelection_us, Some(1_000));
    }

    #[test]
    fn fd_quality_scores_real_and_false_suspicions() {
        let trace = vec![
            // A false suspicion before any crash: node 1 wrongly
            // suspects node 2 for 300µs.
            rec(
                500,
                1,
                TraceEvent::PeerSuspected {
                    peer: 2,
                    silent_us: 400_000,
                },
            ),
            rec(
                800,
                1,
                TraceEvent::PeerCleared {
                    peer: 2,
                    suspected_us: 300,
                },
            ),
            // A real crash of node 0, detected first by node 2.
            rec(1_000, 0, TraceEvent::Crash),
            rec(
                1_450,
                2,
                TraceEvent::PeerSuspected {
                    peer: 0,
                    silent_us: 450_000,
                },
            ),
            // A second detector firing later must not overwrite.
            rec(
                1_500,
                1,
                TraceEvent::PeerSuspected {
                    peer: 0,
                    silent_us: 500_000,
                },
            ),
            rec(4_000, 0, TraceEvent::Restart { incarnation: 1 }),
            // Clears after restart: real suspicions, not mistakes.
            rec(
                4_100,
                2,
                TraceEvent::PeerCleared {
                    peer: 0,
                    suspected_us: 2_650,
                },
            ),
        ];
        let q = fd_quality(&trace);
        assert_eq!(q.incidents.len(), 1);
        assert_eq!(q.detected(), 1);
        assert_eq!(q.incidents[0].peer, 0);
        assert_eq!(q.incidents[0].detection_latency_us, Some(450));
        assert_eq!(q.incidents[0].detector, Some(2));
        assert_eq!(q.detection_latency.count(), 1);
        assert_eq!(q.false_suspicions, 1);
        assert_eq!(q.mistake_duration.count(), 1);
    }

    #[test]
    fn fd_quality_undetected_crash_stays_open() {
        let trace = vec![rec(1_000, 3, TraceEvent::Crash)];
        let q = fd_quality(&trace);
        assert_eq!(q.incidents.len(), 1);
        assert_eq!(q.detected(), 0);
        assert_eq!(q.incidents[0].detection_latency_us, None);
    }

    #[test]
    fn latency_summary_aggregates() {
        let trace = vec![
            rec(
                10,
                0,
                TraceEvent::BatchFlushed {
                    updates: 3,
                    trigger: "window",
                    first_seq: 0,
                },
            ),
            rec(11, 0, TraceEvent::LogAppend { bytes: 300 }),
            rec(
                50,
                0,
                TraceEvent::UpdateDelivered {
                    slot: 0,
                    index: 0,
                    submitter: 0,
                    seq: 0,
                    latency_us: 40,
                },
            ),
            rec(
                51,
                0,
                TraceEvent::UpdateDelivered {
                    slot: 0,
                    index: 1,
                    submitter: 1,
                    seq: 0,
                    latency_us: 0,
                },
            ),
        ];
        let s = latency_summary(&trace);
        assert_eq!(s.updates_delivered, 2);
        assert_eq!(s.commit_latency.count(), 1, "remote updates not sampled");
        assert_eq!(s.batches, 1);
        assert_eq!(s.batched_updates, 3);
        assert_eq!(s.log_appends, 1);
        assert!((s.coalescing_ratio() - 2.0).abs() < 1e-9);
    }
}
